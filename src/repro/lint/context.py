"""Lint run configuration and the per-function analysis context.

:class:`LintOptions` says what the function *should* look like — whether
allocation already happened, what register budget / encoding scheme /
calling convention applies — because most IR properties are only right or
wrong relative to a pipeline stage.  :class:`LintContext` caches the
analyses (CFG, liveness, reachability) that the dataflow-backed rules
share, and degrades gracefully when the CFG itself is malformed so the
structural rules can still report.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from repro.diagnostics import Location
from repro.encoding.config import EncodingConfig
from repro.ir.function import BasicBlock, Function
from repro.ir.instr import Instr, Reg

if TYPE_CHECKING:  # avoid a module-level regalloc import (layering)
    from repro.regalloc.callconv import CallingConvention

__all__ = ["LintOptions", "LintContext"]


@dataclass(frozen=True)
class LintOptions:
    """What stage of the pipeline the linted function is supposed to be at.

    Attributes:
        allocated: ``True`` — the function is post-register-allocation, any
            virtual register is an error.  ``False`` — pre-allocation.
            ``None`` (default) — inferred: a function whose registers are
            all physical is treated as allocated.
        k: register budget for ``int``-class physical registers; ids at or
            beyond it are reported (rule L004).
        encoding: the differential :class:`EncodingConfig` in force; enables
            the differential-space and ``set_last_reg`` payload checks
            (rules L004/L007).
        cc: calling convention to check call sites against (rule L005).
        access_order: nominal access order, used to count register fields
            for ``set_last_reg`` delay validation.
        two_address: force the two-address conformance rule on/off;
            ``None`` enables it exactly when ``access_order`` is
            ``"two_address"``.
        coloring: the allocator's virtual-to-physical assignment, keyed on
            the registers of ``original``; together with ``original`` it
            enables the allocation-interference soundness rule (L010).
        original: the (possibly spill-extended) virtual-register function
            the ``coloring`` was computed for.
        disabled: rule ids or names to skip.
    """

    allocated: Optional[bool] = None
    k: Optional[int] = None
    encoding: Optional[EncodingConfig] = None
    cc: Optional["CallingConvention"] = None
    access_order: str = "src_first"
    two_address: Optional[bool] = None
    coloring: Optional[Mapping[Reg, int]] = None
    original: Optional[Function] = None
    disabled: FrozenSet[str] = frozenset()


class LintContext:
    """Shared analysis state for one lint run over one function."""

    def __init__(self, fn: Function, options: Optional[LintOptions] = None):
        self.fn = fn
        self.options = options or LintOptions()
        self.block_names: Set[str] = {b.name for b in fn.blocks}
        self.succs: Dict[str, List[str]] = {}
        self.preds: Dict[str, List[str]] = {}
        try:
            self.succs, self.preds = fn.cfg()
            self.cfg_ok = bool(fn.blocks)
        except (KeyError, ValueError):
            # malformed control flow (dangling labels); the structural rule
            # reports it, dataflow rules skip
            self.cfg_ok = False

    # ------------------------------------------------------------------
    # cached analyses
    # ------------------------------------------------------------------

    @cached_property
    def liveness(self):
        from repro.analysis.liveness import compute_liveness

        return compute_liveness(self.fn)

    @cached_property
    def reachable(self) -> FrozenSet[str]:
        """Block names reachable from the entry block."""
        if not self.cfg_ok:
            return frozenset(self.block_names)
        seen: Set[str] = set()
        stack = [self.fn.blocks[0].name]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            stack.extend(self.succs[name])
        return frozenset(seen)

    @cached_property
    def registers(self) -> FrozenSet[Reg]:
        return frozenset(self.fn.registers())

    @property
    def has_virtual(self) -> bool:
        return any(r.virtual for r in self.registers)

    @property
    def has_physical(self) -> bool:
        return any(not r.virtual for r in self.registers)

    @property
    def is_allocated(self) -> bool:
        """Whether to hold the function to post-allocation invariants."""
        if self.options.allocated is not None:
            return self.options.allocated
        return self.has_physical and not self.has_virtual

    # ------------------------------------------------------------------
    # location helpers
    # ------------------------------------------------------------------

    def loc(self, block: Optional[BasicBlock] = None,
            index: Optional[int] = None,
            instr: Optional[Instr] = None) -> Location:
        """A :class:`Location` inside this function, as precise as given."""
        return Location(
            function=self.fn.name,
            block=block.name if block is not None else None,
            instr_index=index,
            uid=instr.uid if instr is not None else None,
        )

    def first_use_site(self, reg: Reg) -> Tuple[Optional[BasicBlock],
                                                Optional[int],
                                                Optional[Instr]]:
        """First upward-exposed use of ``reg`` in layout order.

        Only considers blocks where ``reg`` is live-in (so the use really
        can see an undefined value) and uses not preceded by a same-block
        definition.
        """
        for block in self.fn.blocks:
            if block.name not in self.reachable:
                continue
            if reg not in self.liveness.live_in.get(block.name, frozenset()):
                continue
            for i, instr in enumerate(block.instrs):
                if reg in instr.uses():
                    return block, i, instr
                if reg in instr.defs():
                    break
        return None, None, None
