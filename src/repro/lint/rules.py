"""The lint rule catalogue (see ``docs/lint_rules.md``).

Each rule is a function from a :class:`~repro.lint.context.LintContext`
to diagnostics, registered with a stable id.  Rules marked ``needs_cfg``
are dataflow-backed and are skipped when the CFG itself is malformed —
L001 reports that case, so a broken function never crashes the linter.

========  =================  ========================================
id        name               checks
========  =================  ========================================
L001      cfg-wellformed     terminator placement, branch targets,
                             function falls off the end
L002      def-before-use     a register readable before any definition
                             on some path (liveness live-in of entry)
L003      vreg-mixing        virtual registers after allocation /
                             virtual-physical mixing before
L004      reg-class          physical ids beyond the class budget or
                             differential space
L005      callconv           call-site argument/return registers away
                             from their convention homes
L006      two-address        reg-reg ALU ops that are not two-address
                             when the THUMB-style order is in force
L007      setlr              set_last_reg payload shape, value range,
                             delay vs. next instruction's field count
L008      spill-slot         loads from (possibly) uninitialized spill
                             slots; stores never loaded back
L009      dead-block         unreachable blocks, duplicate blocks
L010      alloc-interference two simultaneously-live values assigned
                             the same physical register (needs the
                             coloring and the pre-allocation function)
L011      redundant-setlr    set_last_reg repairs the static decode
                             model proves redundant or dead; delays
                             that never fire in their block
========  =================  ========================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.diagnostics import Diagnostic, DiagnosticReport, Location, Severity
from repro.encoding.access_order import ACCESS_ORDERS
from repro.encoding.encoder import encoding_preconditions, setlr_payload
from repro.ir.function import Function
from repro.ir.instr import ALU_REG_OPS, BRANCH_OPS, Instr, Reg
from repro.lint.context import LintContext, LintOptions

__all__ = ["Rule", "RULES", "run_lint", "lint_function"]

_COMMUTATIVE = frozenset({"add", "mul", "and", "or", "xor"})


@dataclass(frozen=True)
class Rule:
    """One registered lint rule."""

    id: str
    name: str
    description: str
    check: Callable[[LintContext], List[Diagnostic]]
    needs_cfg: bool = False


RULES: Dict[str, Rule] = {}


def _rule(rule_id: str, name: str, description: str, needs_cfg: bool = False):
    def register(fn: Callable[[LintContext], List[Diagnostic]]):
        RULES[rule_id] = Rule(rule_id, name, description, fn, needs_cfg)
        return fn
    return register


def _make(rule_id: str, name: str):
    """Diagnostic factory bound to one rule id."""
    def make(severity: Severity, message: str, location: Location,
             hint: Optional[str] = None) -> Diagnostic:
        return Diagnostic(rule=rule_id, name=name, severity=severity,
                          message=message, location=location, hint=hint)
    return make


# ----------------------------------------------------------------------
# L001 — CFG well-formedness
# ----------------------------------------------------------------------

@_rule("L001", "cfg-wellformed",
       "terminators at block ends, branch targets resolvable, "
       "no fall-through off the function")
def _check_cfg(ctx: LintContext) -> List[Diagnostic]:
    make = _make("L001", "cfg-wellformed")
    out: List[Diagnostic] = []
    fn = ctx.fn
    if not fn.blocks:
        return [make(Severity.ERROR, "function has no basic blocks",
                     Location(function=fn.name))]
    for block in fn.blocks:
        for i, instr in enumerate(block.instrs):
            loc = ctx.loc(block, i, instr)
            if instr.op in BRANCH_OPS and i != len(block.instrs) - 1:
                out.append(make(
                    Severity.ERROR,
                    f"terminator {instr.op} is not the last instruction "
                    "of the block",
                    loc,
                    hint="split the block after the terminator or delete "
                         "the unreachable tail",
                ))
            if instr.op in BRANCH_OPS and instr.op != "ret":
                if instr.label is None:
                    out.append(make(
                        Severity.ERROR,
                        f"branch {instr.op} has no target label", loc))
                elif instr.label not in ctx.block_names:
                    out.append(make(
                        Severity.ERROR,
                        f"branch to unknown block {instr.label!r}", loc))
    last = fn.blocks[-1]
    if last.falls_through():
        out.append(make(
            Severity.ERROR,
            f"final block {last.name!r} falls off the end of the function",
            ctx.loc(last, max(len(last.instrs) - 1, 0)),
            hint="end the function with ret or an unconditional branch",
        ))
    return out


# ----------------------------------------------------------------------
# L002 — def-before-use on every path
# ----------------------------------------------------------------------

@_rule("L002", "def-before-use",
       "no register is readable before a definition on some path "
       "(live-in of the entry block must only hold parameters)",
       needs_cfg=True)
def _check_def_before_use(ctx: LintContext) -> List[Diagnostic]:
    make = _make("L002", "def-before-use")
    out: List[Diagnostic] = []
    fn = ctx.fn
    if not fn.blocks:
        return out
    params = set(fn.params)
    entry_live = ctx.liveness.live_in.get(fn.entry.name, frozenset())
    for reg in sorted(entry_live - params, key=str):
        block, i, instr = ctx.first_use_site(reg)
        loc = ctx.loc(block, i, instr) if block is not None \
            else Location(function=fn.name)
        if reg.virtual:
            out.append(make(
                Severity.ERROR,
                f"register {reg} may be used before it is defined",
                loc,
                hint="define it on every path to this use, or declare it "
                     "as a function parameter",
            ))
        else:
            # a physical register can carry incoming machine state that the
            # textual IR does not declare, so this is only suspicious
            out.append(make(
                Severity.WARNING,
                f"physical register {reg} is read before any definition",
                loc,
                hint="declare it as a function parameter if it carries an "
                     "incoming value",
            ))
    return out


# ----------------------------------------------------------------------
# L003 — virtual/physical mixing
# ----------------------------------------------------------------------

@_rule("L003", "vreg-mixing",
       "no virtual registers after allocation; virtual/physical mixing "
       "before allocation is flagged")
def _check_vreg_mixing(ctx: LintContext) -> List[Diagnostic]:
    make = _make("L003", "vreg-mixing")
    out: List[Diagnostic] = []
    if ctx.is_allocated and ctx.has_virtual:
        reported: Set[Reg] = set()
        for block in ctx.fn.blocks:
            for i, instr in enumerate(block.instrs):
                for r in instr.uses() + instr.defs():
                    if r.virtual and r not in reported:
                        reported.add(r)
                        out.append(make(
                            Severity.ERROR,
                            f"virtual register {r} present after "
                            "register allocation",
                            ctx.loc(block, i, instr),
                            hint="the allocator (or a later pass) failed to "
                                 "rewrite this operand",
                        ))
        for r in ctx.fn.params:
            if r.virtual and r not in reported:
                reported.add(r)
                out.append(make(
                    Severity.ERROR,
                    f"virtual register {r} present after register "
                    "allocation (function parameter)",
                    Location(function=ctx.fn.name),
                ))
    elif not ctx.is_allocated and ctx.has_virtual and ctx.has_physical:
        phys = sorted({str(r) for r in ctx.registers if not r.virtual})
        out.append(make(
            Severity.NOTE,
            "function mixes virtual and physical registers "
            f"({', '.join(phys)}) before allocation",
            Location(function=ctx.fn.name),
            hint="intentional for pre-colored operands; otherwise a pass "
                 "ordering bug",
        ))
    return out


# ----------------------------------------------------------------------
# L004 — register-class / budget legality
# ----------------------------------------------------------------------

@_rule("L004", "reg-class",
       "physical register ids stay inside the class budget (k) and the "
       "differential space (EncodingConfig)")
def _check_reg_class(ctx: LintContext) -> List[Diagnostic]:
    make = _make("L004", "reg-class")
    out: List[Diagnostic] = []
    opts = ctx.options
    if opts.encoding is not None:
        # the encoder preconditions implement exactly this check; reuse
        # them so `repro lint` and `encode_function` cannot disagree
        for d in encoding_preconditions(ctx.fn, opts.encoding):
            if d.rule == "L004":
                out.append(d)
    if opts.k is not None:
        reported: Set[Reg] = set()
        for block in ctx.fn.blocks:
            for i, instr in enumerate(block.instrs):
                for r in instr.uses() + instr.defs():
                    if (not r.virtual and r.cls == "int"
                            and r.id >= opts.k and r not in reported):
                        reported.add(r)
                        out.append(make(
                            Severity.ERROR,
                            f"register {r} exceeds the k={opts.k} budget",
                            ctx.loc(block, i, instr),
                        ))
    return out


# ----------------------------------------------------------------------
# L005 — calling-convention legality
# ----------------------------------------------------------------------

@_rule("L005", "callconv",
       "call-site argument and return registers sit in their "
       "calling-convention homes")
def _check_callconv(ctx: LintContext) -> List[Diagnostic]:
    make = _make("L005", "callconv")
    cc = ctx.options.cc
    if cc is None:
        return []
    out: List[Diagnostic] = []
    for block in ctx.fn.blocks:
        for i, instr in enumerate(block.instrs):
            if instr.op != "call":
                continue
            loc = ctx.loc(block, i, instr)
            callee = instr.label or "?"
            for slot, r in enumerate(instr.call_uses):
                if slot >= len(cc.arg_regs) or r.virtual:
                    continue
                if r.id != cc.arg_regs[slot]:
                    out.append(make(
                        Severity.ERROR,
                        f"argument {slot} of call {callee} is in r{r.id}; "
                        f"the convention expects r{cc.arg_regs[slot]}",
                        loc,
                        hint="insert compensation moves or pin the "
                             "convention registers "
                             "(regalloc.callconv.remap_with_convention)",
                    ))
            for r in instr.call_defs:
                if r.virtual:
                    continue
                if r.id != cc.ret_reg:
                    out.append(make(
                        Severity.ERROR,
                        f"return value of call {callee} lands in r{r.id}; "
                        f"the convention expects r{cc.ret_reg}",
                        loc,
                    ))
    return out


# ----------------------------------------------------------------------
# L006 — two-address conformance
# ----------------------------------------------------------------------

@_rule("L006", "two-address",
       "reg-reg ALU instructions satisfy dst == src1 when the "
       "two_address access order is in force")
def _check_two_address(ctx: LintContext) -> List[Diagnostic]:
    make = _make("L006", "two-address")
    opts = ctx.options
    active = opts.two_address if opts.two_address is not None \
        else opts.access_order == "two_address"
    if not active:
        return []
    out: List[Diagnostic] = []
    for block in ctx.fn.blocks:
        for i, instr in enumerate(block.instrs):
            if instr.op not in ALU_REG_OPS or instr.dst is None:
                continue
            loc = ctx.loc(block, i, instr)
            if instr.dst == instr.srcs[0]:
                continue
            if instr.dst == instr.srcs[1]:
                if instr.op in _COMMUTATIVE:
                    out.append(make(
                        Severity.ERROR,
                        f"commutative {instr.op} has dst == src2; "
                        "to_two_address would have swapped the operands",
                        loc,
                        hint="run repro.ir.lowering.to_two_address",
                    ))
                else:
                    out.append(make(
                        Severity.WARNING,
                        f"{instr.op} keeps a three-address form "
                        "(non-commutative op with dst aliasing src2)",
                        loc,
                        hint="known to_two_address residual; needs a "
                             "scratch register to lower",
                    ))
                continue
            out.append(make(
                Severity.ERROR,
                f"{instr.op} is not in two-address form "
                f"(dst {instr.dst} repeats neither source)",
                loc,
                hint="run repro.ir.lowering.to_two_address",
            ))
    return out


# ----------------------------------------------------------------------
# L007 — set_last_reg placement and payload
# ----------------------------------------------------------------------

@_rule("L007", "setlr",
       "set_last_reg payloads are well-formed, values lie in "
       "[0, RegN), delays match the next instruction's field count")
def _check_setlr(ctx: LintContext) -> List[Diagnostic]:
    make = _make("L007", "setlr")
    out: List[Diagnostic] = []
    config = ctx.options.encoding
    order_fn = ACCESS_ORDERS.get(ctx.options.access_order)
    for block in ctx.fn.blocks:
        for i, instr in enumerate(block.instrs):
            if instr.op != "setlr":
                continue
            loc = ctx.loc(block, i, instr)
            try:
                value, delay, cls = setlr_payload(instr)
            except ValueError:
                out.append(make(
                    Severity.ERROR,
                    f"malformed set_last_reg payload {instr.imm!r}", loc,
                    hint="expected imm=(value, delay[, cls])",
                ))
                continue
            if not isinstance(value, int) or not isinstance(delay, int):
                out.append(make(
                    Severity.ERROR,
                    f"set_last_reg payload {instr.imm!r} must carry "
                    "integer value and delay", loc))
                continue
            if delay < 0:
                out.append(make(
                    Severity.ERROR,
                    f"set_last_reg delay {delay} is negative", loc))
                continue
            if config is not None:
                if not 0 <= value < config.reg_n:
                    out.append(make(
                        Severity.ERROR,
                        f"set_last_reg value {value} outside the "
                        f"differential space [0, {config.reg_n})", loc))
                if cls not in config.classes:
                    out.append(make(
                        Severity.ERROR,
                        f"set_last_reg targets unknown register class "
                        f"{cls!r} (encoded classes: "
                        f"{', '.join(config.classes)})", loc))
            # delay semantics: the update applies after `delay` register
            # fields of the *next* instruction have decoded, so the next
            # instruction must have at least that many fields
            nxt = next((x for x in block.instrs[i + 1:] if x.op != "setlr"),
                       None)
            if nxt is None:
                if delay != 0:
                    out.append(make(
                        Severity.ERROR,
                        f"set_last_reg with delay {delay} at block end has "
                        "no following instruction to count fields of", loc,
                        hint="block-end join repairs must use delay 0",
                    ))
            elif order_fn is not None:
                n_fields = len(order_fn(nxt))
                if delay > n_fields:
                    out.append(make(
                        Severity.ERROR,
                        f"set_last_reg delay {delay} exceeds the "
                        f"{n_fields} register field(s) of the next "
                        f"instruction ({nxt.op})", loc,
                        hint="the decoder would apply the update too late; "
                             "recompute the delay for this access order",
                    ))
    return out


# ----------------------------------------------------------------------
# L008 — spill-slot initialization / aliasing
# ----------------------------------------------------------------------

def _slot_of(instr: Instr) -> Optional[int]:
    if instr.op in ("ldslot", "stslot"):
        return int(instr.imm)
    return None


@_rule("L008", "spill-slot",
       "every ldslot is reached by a stslot on every path; stores that "
       "are never loaded are flagged", needs_cfg=True)
def _check_spill_slots(ctx: LintContext) -> List[Diagnostic]:
    make = _make("L008", "spill-slot")
    fn = ctx.fn
    slots = {s for i in fn.instructions() if (s := _slot_of(i)) is not None}
    if not slots or not fn.blocks:
        return []
    out: List[Diagnostic] = []
    blocks = [b for b in fn.blocks if b.name in ctx.reachable]

    # forward may/must "slot initialized" analyses to a fixed point
    def block_stores(b) -> Set[int]:
        return {s for i in b.instrs
                if i.op == "stslot" and (s := _slot_of(i)) is not None}

    gen = {b.name: block_stores(b) for b in blocks}
    may_in = {b.name: set() for b in blocks}    # type: Dict[str, Set[int]]
    may_out = {b.name: set() for b in blocks}   # type: Dict[str, Set[int]]
    must_in = {b.name: set(slots) for b in blocks}
    must_out = {b.name: set(slots) for b in blocks}
    entry = fn.entry.name
    must_in[entry] = set()
    changed = True
    while changed:
        changed = False
        for b in blocks:
            preds = [p for p in ctx.preds[b.name] if p in ctx.reachable]
            new_may = set().union(*(may_out[p] for p in preds)) if preds \
                else set()
            new_must = set.intersection(*(must_out[p] for p in preds)) \
                if preds else set()
            if b.name == entry:
                # the function boundary is a virtual predecessor with no
                # stores: nothing is must-initialized on first entry
                new_must = set()
            new_may_out = new_may | gen[b.name]
            new_must_out = new_must | gen[b.name]
            if (new_may != may_in[b.name] or new_must != must_in[b.name]
                    or new_may_out != may_out[b.name]
                    or new_must_out != must_out[b.name]):
                may_in[b.name], must_in[b.name] = new_may, new_must
                may_out[b.name], must_out[b.name] = new_may_out, new_must_out
                changed = True

    # backward slot liveness for the dead-store check
    live_in = {b.name: set() for b in blocks}   # type: Dict[str, Set[int]]
    live_out = {b.name: set() for b in blocks}  # type: Dict[str, Set[int]]
    changed = True
    while changed:
        changed = False
        for b in reversed(blocks):
            new_out: Set[int] = set()
            for s in ctx.succs[b.name]:
                if s in live_in:
                    new_out |= live_in[s]
            live = set(new_out)
            for instr in reversed(b.instrs):
                if instr.op == "stslot":
                    live.discard(_slot_of(instr))
                elif instr.op == "ldslot":
                    live.add(_slot_of(instr))
            if new_out != live_out[b.name] or live != live_in[b.name]:
                live_out[b.name], live_in[b.name] = new_out, live
                changed = True

    for b in blocks:
        may = set(may_in[b.name])
        must = set(must_in[b.name])
        live = set(live_out[b.name])
        tail: List[Tuple[int, Instr]] = list(enumerate(b.instrs))
        # walk forward for init state; liveness needs a backward pass, so
        # precompute live-after sets per instruction
        live_after: List[Set[int]] = [set() for _ in tail]
        cur = set(live)
        for idx in range(len(tail) - 1, -1, -1):
            live_after[idx] = set(cur)
            instr = tail[idx][1]
            if instr.op == "stslot":
                cur.discard(_slot_of(instr))
            elif instr.op == "ldslot":
                cur.add(_slot_of(instr))
        for i, instr in tail:
            slot = _slot_of(instr)
            if slot is None:
                continue
            loc = ctx.loc(b, i, instr)
            if instr.op == "ldslot":
                if slot not in may:
                    out.append(make(
                        Severity.ERROR,
                        f"spill slot {slot} is loaded but never stored on "
                        "any path from entry", loc,
                        hint="the load reads garbage; a spill store is "
                             "missing or the slot was renumbered "
                             "inconsistently",
                    ))
                elif slot not in must:
                    out.append(make(
                        Severity.WARNING,
                        f"spill slot {slot} may be uninitialized on some "
                        "path to this load", loc,
                        hint="spill stores must dominate their reloads",
                    ))
            else:  # stslot
                if slot not in live_after[i]:
                    out.append(make(
                        Severity.WARNING,
                        f"spill slot {slot} is stored but never loaded "
                        "afterwards", loc,
                        hint="dead spill store; the spiller can drop it",
                    ))
                may.add(slot)
                must.add(slot)
    return out


# ----------------------------------------------------------------------
# L009 — dead / duplicate blocks
# ----------------------------------------------------------------------

def _block_signature(block, succs) -> Tuple:
    instrs = tuple(
        (i.op, str(i.dst), tuple(map(str, i.srcs)), repr(i.imm), i.label)
        for i in block.instrs
    )
    return instrs, tuple(succs[block.name])


@_rule("L009", "dead-block",
       "every block is reachable from entry; structurally identical "
       "blocks with identical successors are flagged", needs_cfg=True)
def _check_dead_blocks(ctx: LintContext) -> List[Diagnostic]:
    make = _make("L009", "dead-block")
    out: List[Diagnostic] = []
    for block in ctx.fn.blocks:
        if block.name not in ctx.reachable:
            out.append(make(
                Severity.WARNING,
                f"block {block.name!r} is unreachable from entry",
                ctx.loc(block),
                hint="delete it or restore the edge that reached it",
            ))
    seen: Dict[Tuple, str] = {}
    for block in ctx.fn.blocks:
        if block.name not in ctx.reachable or not block.instrs:
            continue
        sig = _block_signature(block, ctx.succs)
        if sig in seen:
            out.append(make(
                Severity.NOTE,
                f"block {block.name!r} duplicates block {seen[sig]!r} "
                "(same instructions, same successors)",
                ctx.loc(block),
                hint="merge the blocks and redirect the branches",
            ))
        else:
            seen[sig] = block.name
    return out


# ----------------------------------------------------------------------
# L010 — allocation-interference soundness
# ----------------------------------------------------------------------

@_rule("L010", "alloc-interference",
       "no two simultaneously-live values share a physical register "
       "(checked against the coloring on the pre-allocation function)")
def _check_alloc_interference(ctx: LintContext) -> List[Diagnostic]:
    make = _make("L010", "alloc-interference")
    opts = ctx.options
    if opts.coloring is None or opts.original is None:
        return []  # nothing to check against; pipeline checkpoints supply both
    from repro.analysis.interference import build_interference
    from repro.analysis.liveness import compute_liveness

    coloring = opts.coloring

    def color_of(r: Reg) -> Optional[int]:
        # precolored physical operands carry their own assignment
        return coloring.get(r, None if r.virtual else r.id)

    out: List[Diagnostic] = []
    try:
        liveness = compute_liveness(opts.original)
    except (KeyError, ValueError):
        return [make(
            Severity.WARNING,
            "cannot check the coloring: the pre-allocation function has "
            "malformed control flow",
            Location(function=ctx.fn.name),
        )]
    classes = sorted({r.cls for r in opts.original.registers()})
    seen: Set[Tuple[Reg, Reg]] = set()
    for cls in classes:
        graph = build_interference(opts.original, liveness=liveness, cls=cls)
        for a in graph.nodes():
            ca = color_of(a)
            if ca is None:
                continue  # spilled (rewritten to split temps) or uncolored
            for b in graph.neighbors(a):
                cb = color_of(b)
                if cb is None or cb != ca:
                    continue
                pair = (min(a, b), max(a, b))
                if pair in seen:
                    continue
                seen.add(pair)
                out.append(make(
                    Severity.ERROR,
                    f"values {pair[0]} and {pair[1]} are simultaneously "
                    f"live but share physical register r{ca} "
                    f"(class {cls!r})",
                    Location(function=ctx.fn.name),
                    hint="the allocator merged interfering live ranges; "
                         "one of the two values is clobbered",
                ))
    return out


# ----------------------------------------------------------------------
# L011 — redundant / dead set_last_reg repairs
# ----------------------------------------------------------------------

@_rule("L011", "redundant-setlr",
       "set_last_reg repairs the static decode model proves redundant "
       "(value already held) or dead (value never read); delay counters "
       "that never fire inside their block", needs_cfg=True)
def _check_redundant_setlr(ctx: LintContext) -> List[Diagnostic]:
    make = _make("L011", "redundant-setlr")
    config = ctx.options.encoding
    if config is None:
        return []
    if not any(i.op == "setlr" for i in ctx.fn.instructions()):
        return []
    if any(r.virtual for r in ctx.fn.registers()):
        return []  # the decode model needs physical operands
    from repro.encoding.static_verifier import analyze_last_reg

    try:
        analysis = analyze_last_reg(ctx.fn, config)
    except (KeyError, TypeError, ValueError):
        return []  # malformed payloads are L007's report, not ours
    out: List[Diagnostic] = []
    for fact in analysis.setlr_facts:
        if not fact.removable:
            continue
        block = ctx.fn.block(fact.block)
        instr = block.instrs[fact.instr_index]
        loc = ctx.loc(block, fact.instr_index, instr)
        if fact.redundant:
            out.append(make(
                Severity.WARNING,
                f"set_last_reg writes {fact.value} to class "
                f"{fact.cls!r} but the decoder already holds "
                f"{fact.last_at_fire} at the fire point",
                loc,
                hint="provably a no-op on every path; "
                     "encoding.setlr_elim deletes it",
            ))
        else:
            out.append(make(
                Severity.WARNING,
                f"set_last_reg value {fact.value} (class {fact.cls!r}) "
                "is never read by a later register field",
                loc,
                hint="dead repair; encoding.setlr_elim deletes it",
            ))
    for fact in analysis.delay_overflows:
        block = ctx.fn.block(fact.block)
        instr = block.instrs[fact.instr_index]
        out.append(make(
            Severity.ERROR,
            f"set_last_reg delay {fact.delay} never fires: fewer than "
            f"{fact.delay} register fields remain in block "
            f"{fact.block!r}",
            ctx.loc(block, fact.instr_index, instr),
            hint="the decoder would carry the pending update past the "
                 "block; recompute the delay",
        ))
    return out


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------

def run_lint(fn: Function, options: Optional[LintOptions] = None,
             only: Optional[Iterable[str]] = None) -> DiagnosticReport:
    """Run the rule catalogue over one function.

    Args:
        fn: the function to check (any pipeline stage; say which via
            ``options``).
        options: stage expectations; defaults to inference.
        only: restrict to these rule ids or names.

    Rules that need a CFG are skipped automatically when the control flow
    is malformed — L001 reports the breakage itself.
    """
    ctx = LintContext(fn, options)
    wanted = None
    if only is not None:
        wanted = set(only)
    report = DiagnosticReport()
    for rule_id in sorted(RULES):
        rule = RULES[rule_id]
        if wanted is not None and not wanted & {rule.id, rule.name}:
            continue
        if ctx.options.disabled & {rule.id, rule.name}:
            continue
        if rule.needs_cfg and not ctx.cfg_ok:
            continue
        report.extend(rule.check(ctx))
    return report


def lint_function(fn: Function, **options) -> DiagnosticReport:
    """Convenience wrapper: ``lint_function(fn, allocated=True, k=8)``."""
    return run_lint(fn, LintOptions(**options))
