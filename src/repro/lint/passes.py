"""Pass-pipeline instrumentation: run the linter between pipeline stages.

An LLVM ``-verify-machineinstrs`` analogue: a :class:`PassVerifier` is
handed to :func:`repro.regalloc.pipeline.run_setup` (or used directly by
any pass driver), which calls :meth:`PassVerifier.check` after every
stage with stage-appropriate :class:`~repro.lint.context.LintOptions`.
The verifier records every report, attributes the *first* violation to
the pass that introduced it, and — in ``strict`` mode — raises
:class:`PassVerificationError` naming that pass, turning a confusing
downstream failure into "pass X broke invariant Y at location Z".

``warn`` mode keeps running and exposes :attr:`PassVerifier.first_offender`
and :meth:`PassVerifier.summary` for post-hoc inspection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.diagnostics import DiagnosticReport, LintError, Severity
from repro.ir.function import Function
from repro.lint.context import LintOptions
from repro.lint.rules import run_lint

__all__ = ["PassCheckRecord", "PassVerificationError", "PassVerifier"]


@dataclass
class PassCheckRecord:
    """One lint run after one pass."""

    pass_name: str
    report: DiagnosticReport


class PassVerificationError(LintError):
    """Strict-mode failure: the named pass produced invalid IR."""

    def __init__(self, pass_name: str, report: DiagnosticReport) -> None:
        self.pass_name = pass_name
        super().__init__(
            f"IR verification failed after pass {pass_name!r}", report)


class PassVerifier:
    """Collects per-pass lint reports and attributes the first violation.

    Args:
        mode: ``"strict"`` raises :class:`PassVerificationError` at the
            first offending pass; ``"warn"`` records and keeps going.
        fail_on: minimum severity that counts as a violation (default
            :attr:`Severity.ERROR`; use :attr:`Severity.WARNING` for a
            pedantic run).
        base_options: defaults merged under per-check options.

    The optional :attr:`prefix` (e.g. a benchmark name) is prepended to
    every pass name, so one verifier can instrument a whole experiment
    and still attribute violations precisely.
    """

    def __init__(self, mode: str = "strict",
                 fail_on: Severity = Severity.ERROR,
                 base_options: Optional[LintOptions] = None) -> None:
        if mode not in ("strict", "warn"):
            raise ValueError(f"unknown mode {mode!r}; use 'strict' or 'warn'")
        self.mode = mode
        self.fail_on = fail_on
        self.base_options = base_options
        self.prefix: Optional[str] = None
        self.history: List[PassCheckRecord] = []
        self.first_offender: Optional[PassCheckRecord] = None

    def check(self, fn: Function, pass_name: str,
              options: Optional[LintOptions] = None) -> DiagnosticReport:
        """Lint ``fn`` as the output of ``pass_name``.

        Returns the report; in strict mode raises on the first violating
        pass instead.
        """
        if self.prefix:
            pass_name = f"{self.prefix}:{pass_name}"
        report = run_lint(fn, options or self.base_options)
        record = PassCheckRecord(pass_name, report)
        self.history.append(record)
        if report.at_least(self.fail_on) and self.first_offender is None:
            self.first_offender = record
            if self.mode == "strict":
                raise PassVerificationError(pass_name, report)
        return report

    @property
    def clean(self) -> bool:
        """No pass so far produced a violation at ``fail_on`` or above."""
        return self.first_offender is None

    def attribution(self) -> Optional[str]:
        """One line naming the pass that introduced the first violation."""
        if self.first_offender is None:
            return None
        worst = self.first_offender.report.at_least(self.fail_on)[0]
        return (f"first violation introduced by pass "
                f"{self.first_offender.pass_name!r}: {worst.render()}")

    def summary(self) -> str:
        """Per-pass tallies plus the attribution line."""
        lines = []
        for rec in self.history:
            n_err = len(rec.report.errors)
            n_warn = len(rec.report.warnings)
            status = "ok" if not (n_err or n_warn) else \
                f"{n_err} error(s), {n_warn} warning(s)"
            lines.append(f"{rec.pass_name}: {status}")
        attribution = self.attribution()
        if attribution:
            lines.append(attribution)
        return "\n".join(lines) if lines else "no passes checked"
