"""Static analysis (lint) framework over the three-address IR.

The decode-replay verifier (:mod:`repro.encoding.verifier`) proves the
*encoding* correct; this package statically checks the IR and allocation
results that feed it, so a buggy allocator or scheduler fails loudly at
the pass that broke the invariant instead of as a deep ``KeyError`` in
the encoder.  Three pieces:

* a diagnostic core (:mod:`repro.diagnostics`, re-exported here):
  severities, rule ids, precise locations, fix-it hints, text and JSON
  renderers;
* a rule catalogue (:mod:`repro.lint.rules`, ids ``L001``-``L011``,
  documented in ``docs/lint_rules.md``): CFG well-formedness,
  def-before-use via liveness, virtual/physical mixing, register-class
  and calling-convention legality, two-address conformance,
  ``set_last_reg`` placement, spill-slot initialization, dead/duplicate
  blocks, allocation-interference soundness against the coloring, and
  redundant/dead ``set_last_reg`` repairs from the static decode model;
* pass-pipeline instrumentation (:mod:`repro.lint.passes`): a
  :class:`PassVerifier` that :func:`repro.regalloc.pipeline.run_setup`
  and the experiment harnesses call between stages
  (``--verify-each-pass``) to attribute the first violation to the pass
  that introduced it.

Programmatic quick start::

    from repro.lint import LintOptions, run_lint

    report = run_lint(fn, LintOptions(allocated=True, k=8))
    assert report.ok, report.render_text()

or from the command line: ``python -m repro lint prog.s`` /
``python -m repro lint all``.
"""

from repro.diagnostics import (
    Diagnostic,
    DiagnosticReport,
    LintError,
    Location,
    Severity,
)
from repro.lint.context import LintContext, LintOptions
from repro.lint.passes import PassCheckRecord, PassVerificationError, PassVerifier
from repro.lint.rules import RULES, Rule, lint_function, run_lint

__all__ = [
    "Diagnostic",
    "DiagnosticReport",
    "LintError",
    "Location",
    "Severity",
    "LintContext",
    "LintOptions",
    "PassCheckRecord",
    "PassVerificationError",
    "PassVerifier",
    "RULES",
    "Rule",
    "lint_function",
    "run_lint",
]
