"""Machine models for the two evaluations of Section 10.

* :mod:`repro.machine.cache` — set-associative LRU caches.
* :mod:`repro.machine.lowend` — the ARM/THUMB-like 5-stage in-order
  processor of Table 1, as a trace-driven timing model.
* :mod:`repro.machine.spec` — the machine configurations (Table 1 and the
  Section 10.2 VLIW).
"""

from repro.machine.cache import Cache, CacheStats, access_hit_flags
from repro.machine.decoder import DecoderCostModel, DecoderEstimate
from repro.machine.lowend import CycleReport, LowEndTimingModel, simulate
from repro.machine.reuse import (clear_recorded_runs, derive_execution,
                                 interpret_or_derive, record_reference_run,
                                 trace_reuse_enabled)
from repro.machine.spec import LOWEND, VLIW, LowEndConfig, VLIWConfig

__all__ = [
    "DecoderCostModel",
    "DecoderEstimate",
    "Cache",
    "CacheStats",
    "access_hit_flags",
    "CycleReport",
    "LowEndTimingModel",
    "simulate",
    "trace_reuse_enabled",
    "record_reference_run",
    "derive_execution",
    "interpret_or_derive",
    "clear_recorded_runs",
    "LOWEND",
    "VLIW",
    "LowEndConfig",
    "VLIWConfig",
]
