"""Trace reuse across register-allocation setups.

The low-end experiments time the same program many times: every setup
(baseline, remapping, select, ...) re-interprets its allocated function
even though allocation only renames registers, inserts spills/moves and
``setlr`` — transformations that preserve the dynamic block path and
every ``ld``/``st`` effective address.  Those two recordings are exactly
what a :class:`~repro.ir.trace.ColumnarTrace` is assembled from, so one
interpretation of the *input* function yields, via
:func:`~repro.ir.trace.derive_trace`, the full dynamic trace of every
allocated variant — including the variant's own spill and ``setlr``
instructions, which are static per block.

``record_reference_run`` interprets a function once with columnar
recording, memoized on the analysis-cache structural fingerprint (so
repeated experiment passes over the same input hit the cache), and
``derive_execution`` replays that recording against an allocated
function.  Derivation is guarded structurally (same blocks, terminators
and per-block ``ld``/``st`` sequences — see ``derive_trace``) and falls
back to ``None`` whenever the guard fails; callers then interpret from
scratch.  ``REPRO_NO_TRACE_REUSE=1`` disables the whole layer.

One honest caveat: a derived result carries the recorded run's return
value, so the experiments' cross-setup checksum assertion is vacuous for
derived rows.  Fresh interpretations (and
``tests/test_trace_reuse.py``'s derived-equals-interpreted properties)
keep that contract covered.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro.analysis.cache import fingerprint_function
from repro.ir.function import Function
from repro.ir.interp import ExecutionResult, Interpreter
from repro.ir.trace import derive_trace

__all__ = ["trace_reuse_enabled", "record_reference_run",
           "derive_execution", "interpret_or_derive", "clear_recorded_runs"]

_MAX_RECORDED = 32
_recorded: "OrderedDict[Tuple, ExecutionResult]" = OrderedDict()


def trace_reuse_enabled() -> bool:
    """Whether the reuse layer is active (``REPRO_NO_TRACE_REUSE=1`` off)."""
    return os.environ.get("REPRO_NO_TRACE_REUSE") != "1"


def clear_recorded_runs() -> None:
    """Drop all memoized recordings (tests)."""
    _recorded.clear()


def record_reference_run(fn: Function, args: Tuple[int, ...] = (),
                         max_steps: int = 2_000_000
                         ) -> Optional[ExecutionResult]:
    """Interpret ``fn`` once with columnar recording, memoized.

    Returns ``None`` when reuse is disabled or no columnar trace is
    available (reference interpreter engine, or a function outside the
    fast engine's block-prefix model).
    """
    if not trace_reuse_enabled():
        return None
    key = (fingerprint_function(fn), tuple(args), max_steps)
    hit = _recorded.get(key)
    if hit is not None:
        _recorded.move_to_end(key)
        return hit
    result = Interpreter(max_steps=max_steps,
                         trace_format="columnar").run(fn, args)
    if result.columnar is None:
        return None
    _recorded[key] = result
    while len(_recorded) > _MAX_RECORDED:
        _recorded.popitem(last=False)
    return result


def derive_execution(recorded: ExecutionResult,
                     new_fn: Function) -> Optional[ExecutionResult]:
    """Replay a recorded run against an allocated variant of its function.

    Returns an :class:`ExecutionResult` whose columnar trace is assembled
    from ``new_fn``'s static code and the recording's block path / data
    addresses, or ``None`` when the structural guard rejects ``new_fn``.
    The result carries no register file or object trace — it exists to be
    timed.
    """
    if recorded.columnar is None:
        return None
    ct = derive_trace(recorded.columnar, new_fn)
    if ct is None:
        return None
    codec = ct.source
    bic: Dict[str, int] = {name: 0 for name in codec.block_names}
    for bid in (ct.block_path.tolist() if ct.is_vector else ct.block_path):
        bic[codec.block_names[bid]] += len(codec.prefix_ops[bid])
    return ExecutionResult(
        return_value=recorded.return_value,
        steps=len(ct),
        columnar=ct,
        block_instr_counts=bic,
    )


def interpret_or_derive(fn: Function, args: Tuple[int, ...],
                        recorded: Optional[ExecutionResult],
                        max_steps: int = 2_000_000) -> ExecutionResult:
    """An :class:`ExecutionResult` for ``fn``: derived from ``recorded``
    when the structural guard allows it, freshly interpreted otherwise.

    Either way the result carries a trace the timing model accepts —
    ``result.columnar`` normally, ``result.trace`` if the interpreter had
    to fall back to its reference engine."""
    if recorded is not None:
        derived = derive_execution(recorded, fn)
        if derived is not None:
            return derived
    return Interpreter(max_steps=max_steps,
                       trace_format="columnar").run(fn, args)
