"""Analytical model of the differential decoder hardware (paper §2.1).

The paper argues the implementation overhead is negligible and backs it
with rough circuit estimates: a 4-bit modulo adder is two-level
combinational logic with a two-gate delay (<0.4ns, a fifth of a 500MHz
cycle); decoding three operands in parallel for a 16-register machine
needs a 12-bit-input/4-bit-output circuit of under 2k transistors; and
only one extra architectural register (``last_reg``) is required, plus one
per register class and per speculative path.

We cannot run HSPICE, so this module reproduces the *estimates* with a
standard static model: modulo-N addition decomposed into an adder chain
plus conditional correction, gate counts from full-adder equivalents,
4 transistors per NAND-equivalent gate, and logic depth as a delay proxy.
The tests pin the model to the paper's claimed envelope.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from repro.encoding.config import EncodingConfig

__all__ = ["DecoderCostModel", "DecoderEstimate"]

_GATES_PER_FULL_ADDER = 5          # classic 2xXOR + 2xAND + OR
_TRANSISTORS_PER_GATE = 4          # NAND-equivalent CMOS
_GATE_DELAY_NS = 0.2               # the paper's 2-gate / 0.4ns calibration


@dataclass(frozen=True)
class DecoderEstimate:
    """Cost estimate for one parallel-decode configuration."""

    operands: int
    input_bits: int
    output_bits: int
    gate_count: int
    transistor_count: int
    logic_levels: int

    @property
    def delay_ns(self) -> float:
        return self.logic_levels * _GATE_DELAY_NS

    def cycle_fraction(self, clock_mhz: float = 500.0) -> float:
        """Fraction of a clock cycle the decode chain occupies."""
        cycle_ns = 1000.0 / clock_mhz
        return self.delay_ns / cycle_ns


class DecoderCostModel:
    """Estimate the decode-stage hardware for an encoding configuration.

    ``n_i = (last_reg + d_1 + ... + d_i) mod RegN`` — operand *i*'s decoder
    sums ``i`` differences with ``last_reg`` and reduces modulo ``RegN``.
    The paper's parallel formulation builds one such circuit per operand.
    """

    def __init__(self, config: EncodingConfig) -> None:
        self.config = config

    @property
    def reg_bits(self) -> int:
        """Width of ``last_reg`` and of each modulo-adder lane."""
        return max(1, math.ceil(math.log2(self.config.reg_n)))

    def last_reg_registers(self, classes: int = None,
                           speculative_paths: int = 1) -> int:
        """Extra architectural state: one ``last_reg`` per register class
        (§9.1) and per speculatively fetched path (§2.1)."""
        n_classes = classes if classes is not None else len(self.config.classes)
        return n_classes * max(1, speculative_paths)

    def _modulo_adder(self, n_inputs: int) -> Tuple[int, int]:
        """(gate count, logic levels) of an n-input modulo-RegN adder.

        Carry-save tree over the inputs, one carry-propagate stage, and a
        conditional subtract-RegN correction (for non-power-of-two RegN).
        Power-of-two RegN reduces for free (drop the carry out).
        """
        bits = self.reg_bits
        csa_stages = max(0, n_inputs - 2)
        gates = csa_stages * bits * _GATES_PER_FULL_ADDER
        gates += bits * _GATES_PER_FULL_ADDER          # final CPA
        levels = 2 * max(1, csa_stages) + 2 * bits // 2
        if self.config.reg_n & (self.config.reg_n - 1):
            gates += bits * _GATES_PER_FULL_ADDER      # -RegN correction
            gates += bits                              # select mux
            levels += 2
        # small operand counts collapse into two-level logic: a 4-bit
        # two-operand modulo adder is the paper's "two-gate delay" case
        if n_inputs <= 2 and bits <= 4:
            levels = 2
        return gates, levels

    def permi_estimate(self) -> DecoderEstimate:
        """Decode + execute cost of the shuffle-code ``permi`` extension.

        ``permi`` carries RegN direct register numbers (``reg_bits`` each),
        so its *decode* needs no modulo adders at all — the cost sits in
        the register file: an all-to-all crossbar of RegN lanes, each lane
        a RegN-to-1 mux of ``reg_bits``-wide values (a tree of 2-to-1
        muxes, ~3 gates each, ``ceil(log2 RegN)`` levels).  This is the
        estimate the ``has_permi`` machine flag buys, reported next to the
        differential decoder's own envelope in ``repro bench-moves``.
        """
        n = self.config.reg_n
        bits = self.reg_bits
        mux2_per_lane = max(1, n - 1)                  # n-to-1 mux tree
        gates_per_lane = mux2_per_lane * bits * 3      # 2:1 mux ~ 3 gates
        total_gates = n * gates_per_lane
        levels = max(1, math.ceil(math.log2(max(2, n))))
        return DecoderEstimate(
            operands=n,
            input_bits=n * bits,
            output_bits=n * bits,
            gate_count=total_gates,
            transistor_count=total_gates * _TRANSISTORS_PER_GATE,
            logic_levels=levels,
        )

    def estimate(self, operands: int = 3) -> DecoderEstimate:
        """Cost of decoding ``operands`` register fields in parallel."""
        if operands < 1:
            raise ValueError("at least one operand")
        total_gates = 0
        worst_levels = 0
        for i in range(1, operands + 1):
            gates, levels = self._modulo_adder(i + 1)  # last_reg + i diffs
            total_gates += gates
            worst_levels = max(worst_levels, levels)
        input_bits = self.reg_bits + operands * self.config.field_bits
        return DecoderEstimate(
            operands=operands,
            input_bits=input_bits,
            output_bits=self.reg_bits,
            gate_count=total_gates,
            transistor_count=total_gates * _TRANSISTORS_PER_GATE,
            logic_levels=worst_levels,
        )
