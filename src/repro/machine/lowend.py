"""Trace-driven timing model of the low-end processor (Section 10.1).

The interpreter (:mod:`repro.ir.interp`) produces the dynamic instruction
stream; this model assigns cycles to it:

* one cycle per instruction issued (single-issue in-order core);
* I-cache access per instruction fetch (PC = static index × instruction
  width), misses stall for the miss penalty;
* D-cache access for loads/stores — spill traffic included, which is exactly
  how spills hurt on this machine class;
* extra latency for multi-cycle ALU ops and taken-branch redirect penalty;
* ``set_last_reg`` occupies a fetch/decode slot (and I-cache bandwidth) but
  never executes — the paper's "removed after decoding"; it contributes one
  cycle like any single-cycle instruction but produces no data-side traffic.

``time`` accepts either trace form.  A :class:`~repro.ir.trace.
ColumnarTrace` with numpy columns goes through the vectorized engine
(segmented passes for latency/branch accounting plus the batch LRU of
:func:`repro.machine.cache.access_hit_flags`); ``REPRO_NO_SIM_VECTOR=1``
or list columns select a scalar walk of the same columns.  An object
trace goes through the original per-entry loop, kept verbatim as
``_time_reference`` — every engine returns bit-identical
:class:`CycleReport` fields.

The absolute numbers are not SimpleScalar's; the relative effects the paper
measures (spills vs ``set_last_reg`` instructions vs code size) are modelled
directly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

from repro.ir.function import Function
from repro.ir.instr import COND_BRANCH_OPS
from repro.ir.interp import ExecutionResult, Interpreter, TraceEntry
from repro.ir.trace import NO_ADDR, OP_CODE, OP_NAMES, ColumnarTrace
from repro.machine.cache import Cache, access_hit_flags
from repro.machine.spec import LOWEND, LowEndConfig

__all__ = ["CycleReport", "LowEndTimingModel", "simulate"]

#: OP_NAMES-indexed table: does this opcode redirect fetch when taken?
_IS_BRANCH_CODE: Tuple[bool, ...] = tuple(
    op in COND_BRANCH_OPS or op == "br" for op in OP_NAMES
)
_SETLR_CODE = OP_CODE["setlr"]


@dataclass
class CycleReport:
    """Cycle and energy accounting for one run."""

    cycles: int
    instructions: int
    icache_misses: int
    dcache_misses: int
    dcache_accesses: int
    branch_penalties: int
    setlr_executed: int
    config: LowEndConfig = LOWEND

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def fetch_bytes(self) -> int:
        """Instruction bytes fetched — the I-cache traffic the paper's
        THUMB citations measure energy by."""
        return self.instructions * self.config.instr_bytes

    @property
    def energy(self) -> float:
        """Relative energy estimate (arbitrary units).

        The paper reports no power numbers ("we did not present results on
        power") but leans on energy arguments throughout Section 1; this
        estimate makes the trade inspectable: fetch traffic scales with
        instruction width and count (``set_last_reg`` pays here), data
        traffic with loads/stores (spills pay here), misses dominate.
        """
        cfg = self.config
        return (
            self.fetch_bytes * cfg.energy_icache_per_byte
            + self.dcache_accesses * cfg.energy_dcache_access
            + (self.icache_misses + self.dcache_misses) * cfg.energy_cache_miss
            + self.cycles * cfg.energy_core_per_cycle
        )


class LowEndTimingModel:
    """Assign cycles to an execution trace."""

    def __init__(self, config: LowEndConfig = LOWEND) -> None:
        self.config = config

    def time(self, trace: Union[ColumnarTrace, Sequence[TraceEntry]]
             ) -> CycleReport:
        """Assign cycles (and cache/energy events) to a dynamic trace."""
        if isinstance(trace, ColumnarTrace):
            if (trace.is_vector
                    and os.environ.get("REPRO_NO_SIM_VECTOR") != "1"):
                return self._time_vectorized(trace)
            return self._time_columnar_scalar(trace)
        return self._time_reference(trace)

    # ------------------------------------------------------------------
    # vectorized engine: whole-trace numpy passes
    # ------------------------------------------------------------------

    def _time_vectorized(self, trace: ColumnarTrace) -> CycleReport:
        cfg = self.config
        np = trace.source.np
        si = trace.static_index
        opc = trace.op_code
        mem = trace.mem_addr
        n = int(si.size)
        if n == 0:
            return CycleReport(0, 0, 0, 0, 0, 0, 0, cfg)

        lat = np.asarray(cfg.extra_latency_table(OP_NAMES), dtype=np.int64)
        extra = int(lat[opc].sum())

        is_br = np.asarray(_IS_BRANCH_CODE, dtype=bool)[opc]
        # redirect penalty when the previous branch was taken: the next
        # fetch is not the fall-through static index
        branch_penalties = int((is_br[:-1] & (si[1:] != si[:-1] + 1)).sum())

        ihits = access_hit_flags(si * cfg.instr_bytes, cfg.icache_size,
                                 cfg.icache_line, cfg.icache_assoc, np=np)
        icache_misses = n - int(ihits.sum())

        daddr = mem[mem != NO_ADDR] * 4
        dcache_accesses = int(daddr.size)
        dhits = access_hit_flags(daddr, cfg.dcache_size, cfg.dcache_line,
                                 cfg.dcache_assoc, np=np)
        dcache_misses = dcache_accesses - int(dhits.sum())

        cycles = (
            n
            + extra
            + branch_penalties * cfg.taken_branch_penalty
            + (icache_misses + dcache_misses) * cfg.cache_miss_penalty
        )
        return CycleReport(
            cycles=cycles,
            instructions=n,
            icache_misses=icache_misses,
            dcache_misses=dcache_misses,
            dcache_accesses=dcache_accesses,
            branch_penalties=branch_penalties,
            setlr_executed=int((opc == _SETLR_CODE).sum()),
            config=cfg,
        )

    # ------------------------------------------------------------------
    # scalar engines
    # ------------------------------------------------------------------

    def _time_columnar_scalar(self, trace: ColumnarTrace) -> CycleReport:
        """Walk the columns with the reference loop's exact accounting
        (used when numpy is unavailable or ``REPRO_NO_SIM_VECTOR=1``)."""
        cfg = self.config
        icache = Cache(cfg.icache_size, cfg.icache_line, cfg.icache_assoc)
        dcache = Cache(cfg.dcache_size, cfg.dcache_line, cfg.dcache_assoc)
        lat = cfg.extra_latency_table(OP_NAMES)
        cycles = 0
        branch_penalties = 0
        setlr = 0
        prev_index: Optional[int] = None
        prev_was_branch = False

        si_col = trace.static_index
        opc_col = trace.op_code
        mem_col = trace.mem_addr
        if trace.is_vector:
            si_col = si_col.tolist()
            opc_col = opc_col.tolist()
            mem_col = mem_col.tolist()

        for si, opc, mem in zip(si_col, opc_col, mem_col):
            if (prev_was_branch and prev_index is not None
                    and si != prev_index + 1):
                cycles += cfg.taken_branch_penalty
                branch_penalties += 1

            cycles += 1  # issue slot
            if not icache.access(si * cfg.instr_bytes):
                cycles += cfg.cache_miss_penalty
            cycles += lat[opc]
            if mem != NO_ADDR:
                if not dcache.access(mem * 4):
                    cycles += cfg.cache_miss_penalty
            if opc == _SETLR_CODE:
                setlr += 1

            prev_index = si
            prev_was_branch = _IS_BRANCH_CODE[opc]

        return CycleReport(
            cycles=cycles,
            instructions=len(trace),
            icache_misses=icache.stats.misses,
            dcache_misses=dcache.stats.misses,
            dcache_accesses=dcache.stats.accesses,
            branch_penalties=branch_penalties,
            setlr_executed=setlr,
            config=cfg,
        )

    def _time_reference(self, trace: Sequence[TraceEntry]) -> CycleReport:
        """The original per-entry loop over an object trace."""
        cfg = self.config
        icache = Cache(cfg.icache_size, cfg.icache_line, cfg.icache_assoc)
        dcache = Cache(cfg.dcache_size, cfg.dcache_line, cfg.dcache_assoc)
        cycles = 0
        branch_penalties = 0
        setlr = 0
        prev_index: Optional[int] = None
        prev_was_branch = False

        for entry in trace:
            instr = entry.instr
            # redirect penalty when the previous branch was taken
            if (prev_was_branch and prev_index is not None
                    and entry.static_index != prev_index + 1):
                cycles += cfg.taken_branch_penalty
                branch_penalties += 1

            cycles += 1  # issue slot
            if not icache.access(entry.static_index * cfg.instr_bytes):
                cycles += cfg.cache_miss_penalty
            cycles += cfg.extra_latency.get(instr.op, 0)
            if entry.mem_addr is not None:
                if not dcache.access(entry.mem_addr * 4):
                    cycles += cfg.cache_miss_penalty
            if instr.op == "setlr":
                setlr += 1

            prev_index = entry.static_index
            prev_was_branch = instr.op in COND_BRANCH_OPS or instr.op == "br"

        return CycleReport(
            cycles=cycles,
            instructions=len(trace),
            icache_misses=icache.stats.misses,
            dcache_misses=dcache.stats.misses,
            dcache_accesses=dcache.stats.accesses,
            branch_penalties=branch_penalties,
            setlr_executed=setlr,
            config=cfg,
        )


def simulate(fn: Function, args: tuple = (),
             config: LowEndConfig = LOWEND,
             max_steps: int = 2_000_000) -> tuple:
    """Run ``fn`` and time its trace; returns ``(ExecutionResult, CycleReport)``."""
    result: ExecutionResult = Interpreter(max_steps=max_steps).run(fn, args)
    # the fast engine records the columnar form alongside the object trace;
    # time whichever is available (identical reports either way)
    trace = result.columnar if result.columnar is not None else result.trace
    report = LowEndTimingModel(config).time(trace)
    return result, report
