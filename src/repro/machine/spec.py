"""Machine configurations for both evaluations.

``LOWEND`` reproduces Table 1's ARM/THUMB-like machine: a 5-stage in-order
single-issue core where the ISA directly encodes 8 registers although the
hardware has 16.  ``VLIW`` is the Section 10.2 machine: 4 functional units,
2 memory ports, 32 architected / 64 physical registers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

__all__ = ["LowEndConfig", "VLIWConfig", "LOWEND", "LOWEND_PERMI", "VLIW"]


@dataclass(frozen=True)
class LowEndConfig:
    """The Table 1 low-end processor model."""

    name: str = "arm-thumb-like"
    pipeline_stages: int = 5
    issue_width: int = 1
    architected_regs: int = 8      # directly encodable in the 3-bit field
    physical_regs: int = 16        # present in hardware (ARM-like)
    instr_bytes: int = 2           # 16-bit compact ISA
    icache_size: int = 8 * 1024
    icache_line: int = 32
    icache_assoc: int = 2
    dcache_size: int = 2 * 1024   # low-end cores carry small D-caches
    dcache_line: int = 16
    dcache_assoc: int = 2
    cache_miss_penalty: int = 20
    taken_branch_penalty: int = 1
    #: shuffle-code extension (docs/moves.md): when set, the ISA carries a
    #: ``permi`` full-file permutation instruction and the parallel-move
    #: resolver may fold register cycles into one of them
    has_permi: bool = False
    extra_latency: Dict[str, int] = field(
        # loads pay a load-use bubble even on a hit; multiplies and divides
        # are iterative on this machine class; permi pays one extra cycle
        # for its wide register-file access (Buchwald et al. price it as a
        # short fixed-latency shuffle op)
        default_factory=lambda: {
            "mul": 1, "div": 7, "rem": 7, "ld": 1, "ldslot": 1, "permi": 1,
        }
    )
    # relative energy per event, in arbitrary units.  Ratios follow the
    # paper's Section 1 citations: caches dominate the budget, the I-cache
    # draws ~40% more than the D-cache [19], and a miss costs roughly an
    # order of magnitude more than a hit
    energy_icache_per_byte: float = 0.7
    energy_dcache_access: float = 1.0
    energy_cache_miss: float = 10.0
    energy_core_per_cycle: float = 0.5

    def extra_latency_table(self, op_names: Tuple[str, ...]) -> Tuple[int, ...]:
        """The ``extra_latency`` map as a dense table over ``op_names``.

        The vectorized timing model indexes this with an opcode-code
        column; ops without an entry cost zero extra cycles, matching
        ``extra_latency.get(op, 0)``.  (A method rather than a cached
        attribute because the dict field keeps this dataclass unhashable.)
        """
        return tuple(self.extra_latency.get(op, 0) for op in op_names)

    def rows(self) -> Tuple[Tuple[str, str], ...]:
        """Table 1 as printable rows."""
        return (
            ("Pipeline", f"{self.pipeline_stages}-stage, in-order, "
                         f"{self.issue_width}-issue"),
            ("Architected registers", str(self.architected_regs)),
            ("Physical registers", str(self.physical_regs)),
            ("Instruction width", f"{self.instr_bytes * 8} bits"),
            ("I-cache", f"{self.icache_size // 1024}KB, "
                        f"{self.icache_assoc}-way, {self.icache_line}B lines"),
            ("D-cache", f"{self.dcache_size // 1024}KB, "
                        f"{self.dcache_assoc}-way, {self.dcache_line}B lines"),
            ("Miss penalty", f"{self.cache_miss_penalty} cycles"),
            ("Permutation instruction",
             "permi (shuffle-code extension)" if self.has_permi
             else "none"),
        )


@dataclass(frozen=True)
class VLIWConfig:
    """The Section 10.2 high-performance VLIW machine."""

    name: str = "vliw-4fu"
    n_functional_units: int = 4
    n_memory_ports: int = 2
    architected_regs: int = 32
    physical_regs: int = 64
    latencies: Dict[str, int] = field(
        default_factory=lambda: {
            "alu": 1, "mul": 3, "div": 12, "mem": 2, "branch": 1,
        }
    )

    def latency(self, kind: str) -> int:
        """Latency of an operation kind (defaults to a single cycle)."""
        return self.latencies.get(kind, 1)


LOWEND = LowEndConfig()
#: the same core with the shuffle-code ``permi`` extension enabled
LOWEND_PERMI = LowEndConfig(name="arm-thumb-like+permi", has_permi=True)
VLIW = VLIWConfig()
