"""Set-associative cache simulation with LRU replacement."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["Cache", "CacheStats"]


@dataclass
class CacheStats:
    accesses: int = 0
    misses: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class Cache:
    """A byte-addressed set-associative cache.

    Args:
        size: total capacity in bytes.
        line_size: bytes per line (power of two).
        assoc: ways per set.
    """

    def __init__(self, size: int, line_size: int = 32, assoc: int = 2) -> None:
        if size % (line_size * assoc) != 0:
            raise ValueError("size must be a multiple of line_size * assoc")
        if line_size & (line_size - 1):
            raise ValueError("line_size must be a power of two")
        self.size = size
        self.line_size = line_size
        self.assoc = assoc
        self.n_sets = size // (line_size * assoc)
        # each set is an LRU-ordered list of tags, most recent last
        self._sets: Dict[int, List[int]] = {}
        self.stats = CacheStats()

    def access(self, addr: int) -> bool:
        """Access one byte address; returns True on hit."""
        self.stats.accesses += 1
        line = addr // self.line_size
        idx = line % self.n_sets
        tag = line // self.n_sets
        ways = self._sets.setdefault(idx, [])
        if tag in ways:
            ways.remove(tag)
            ways.append(tag)
            return True
        self.stats.misses += 1
        ways.append(tag)
        if len(ways) > self.assoc:
            ways.pop(0)
        return False

    def reset(self) -> None:
        """Invalidate all lines and clear statistics."""
        self._sets.clear()
        self.stats = CacheStats()
