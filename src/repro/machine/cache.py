"""Set-associative cache simulation with LRU replacement.

Two equivalent implementations:

* :class:`Cache` — the stateful per-access simulator.  Each set is an
  order-preserving dict keyed by tag (insertion order = LRU order, most
  recent last), so a hit is O(1) instead of the O(assoc) ``list.remove``
  of the original list-based sets.
* :func:`access_hit_flags` — batch form: the per-access hit/miss flags
  for a whole address sequence at once.  With numpy it groups accesses by
  set with one stable argsort, collapses consecutive same-line accesses
  (always hits, no LRU state change), and resolves the rest with exact
  closed forms for 1- and 2-way caches; higher associativities fall back
  to a per-set walk of the compressed stream.  Without numpy it simply
  replays a :class:`Cache`.  Both agree with :class:`Cache` bit-for-bit
  on every access.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

__all__ = ["Cache", "CacheStats", "access_hit_flags"]


@dataclass
class CacheStats:
    accesses: int = 0
    misses: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


def _check_geometry(size: int, line_size: int, assoc: int) -> int:
    if size % (line_size * assoc) != 0:
        raise ValueError("size must be a multiple of line_size * assoc")
    if line_size & (line_size - 1):
        raise ValueError("line_size must be a power of two")
    return size // (line_size * assoc)


class Cache:
    """A byte-addressed set-associative cache.

    Args:
        size: total capacity in bytes.
        line_size: bytes per line (power of two).
        assoc: ways per set.
    """

    def __init__(self, size: int, line_size: int = 32, assoc: int = 2) -> None:
        self.n_sets = _check_geometry(size, line_size, assoc)
        self.size = size
        self.line_size = line_size
        self.assoc = assoc
        # each set maps tag -> None in LRU order, most recent last
        self._sets: Dict[int, Dict[int, None]] = {}
        self.stats = CacheStats()

    def access(self, addr: int) -> bool:
        """Access one byte address; returns True on hit."""
        self.stats.accesses += 1
        line = addr // self.line_size
        idx = line % self.n_sets
        tag = line // self.n_sets
        ways = self._sets.setdefault(idx, {})
        if tag in ways:
            del ways[tag]
            ways[tag] = None
            return True
        self.stats.misses += 1
        ways[tag] = None
        if len(ways) > self.assoc:
            del ways[next(iter(ways))]
        return False

    def reset(self) -> None:
        """Invalidate all lines and clear statistics."""
        self._sets.clear()
        self.stats = CacheStats()


def access_hit_flags(addrs: Sequence[int], size: int, line_size: int = 32,
                     assoc: int = 2, np=None):
    """Hit/miss flag per access for a whole address sequence.

    Exactly equivalent to feeding ``addrs`` through ``Cache.access`` one
    at a time.  When ``np`` (the numpy module) is given and ``addrs`` is
    an array, the result is a boolean array computed with vector passes;
    otherwise a plain list from a scalar replay.
    """
    if np is None:
        cache = Cache(size, line_size, assoc)
        return [cache.access(a) for a in addrs]

    n_sets = _check_geometry(size, line_size, assoc)
    addrs = np.asarray(addrs, dtype=np.int64)
    n = addrs.size
    if n == 0:
        return np.zeros(0, dtype=bool)
    lines = addrs // line_size
    sets = lines % n_sets
    tags = lines // n_sets

    # group each set's accesses contiguously, preserving time order
    order = np.argsort(sets, kind="stable")
    s_set = sets[order]
    s_tag = tags[order]

    # a repeat of the immediately preceding access in the same set is a
    # guaranteed hit and leaves the LRU order unchanged — drop it before
    # resolving replacement
    dup = np.zeros(n, dtype=bool)
    dup[1:] = (s_set[1:] == s_set[:-1]) & (s_tag[1:] == s_tag[:-1])
    keep = ~dup
    c_set = s_set[keep]
    c_tag = s_tag[keep]
    m = c_set.size

    c_hits = np.zeros(m, dtype=bool)
    if assoc == 1:
        # consecutive compressed tags within a set are distinct, so every
        # compressed access evicts the single resident line: all misses
        pass
    elif assoc == 2:
        # with distinct consecutive tags, a 2-way LRU set holds exactly
        # {tag[i], tag[i-1]} after access i, so access i hits iff it
        # matches tag[i-2] (within the same set run)
        if m > 2:
            c_hits[2:] = (
                (c_set[2:] == c_set[1:-1])
                & (c_set[1:-1] == c_set[:-2])
                & (c_tag[2:] == c_tag[:-2])
            )
    else:
        # no closed form past 2 ways; replay the compressed stream (it is
        # usually far shorter than the raw one)
        lru: Dict[int, Dict[int, None]] = {}
        flags: List[bool] = []
        for s, t in zip(c_set.tolist(), c_tag.tolist()):
            ways = lru.setdefault(s, {})
            if t in ways:
                del ways[t]
                ways[t] = None
                flags.append(True)
            else:
                ways[t] = None
                if len(ways) > assoc:
                    del ways[next(iter(ways))]
                flags.append(False)
        c_hits = np.asarray(flags, dtype=bool)

    hits_sorted = np.empty(n, dtype=bool)
    hits_sorted[keep] = c_hits
    hits_sorted[dup] = True
    hits = np.empty(n, dtype=bool)
    hits[order] = hits_sorted
    return hits
