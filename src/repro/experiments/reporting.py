"""Report rendering: table formatting and the one-command report.

The single entry point for everything report-shaped: the
:class:`Table`/mean helpers the experiment harnesses share, and
:func:`generate_report`, the combined reproduction report behind
``python -m repro report``.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence

__all__ = ["Table", "geo_mean", "arith_mean", "generate_report"]


def arith_mean(values: Iterable[float]) -> float:
    """Arithmetic mean (0.0 for an empty input)."""
    vals = list(values)
    return sum(vals) / len(vals) if vals else 0.0


def geo_mean(values: Iterable[float]) -> float:
    """Geometric mean over the positive values (0.0 if none)."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


class Table:
    """An aligned plain-text table with a title."""

    def __init__(self, title: str, headers: Sequence[str]) -> None:
        self.title = title
        self.headers = list(headers)
        self.rows: List[List[str]] = []

    def add_row(self, *cells: object) -> None:
        """Append one row; floats format to two decimals."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        self.rows.append([self._fmt(c) for c in cells])

    @staticmethod
    def _fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.2f}"
        return str(cell)

    def render(self) -> str:
        """The table as aligned plain text."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def line(cells: Sequence[str]) -> str:
            return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

        sep = "-" * (sum(widths) + 2 * (len(widths) - 1))
        out = [self.title, sep, line(self.headers), sep]
        out.extend(line(r) for r in self.rows)
        out.append(sep)
        return "\n".join(out)

    def __str__(self) -> str:
        return self.render()


_PAPER_NOTES = """\
Paper reference values (PLDI 2005, Section 10):
  Figure 11 averages: baseline 10.44, remapping 6.87, select 6.84,
                      O-spill 7.32, coalesce 5.55 (% spills)
  Figure 12 averages: remapping 10.41, select 4.21, coalesce 3.04 (% cost)
  Figure 13:          remapping +7%, select <1%, O-spill -4%, coalesce -2%
  Figure 14 averages: remapping 4.5, select 9.7, O-spill 4.1,
                      coalesce 12.1 (% speedup)
  Table 2:            optimized loops >70%; all loops 10.23 -> 17.24,
                      saturating past RegN=48
  Table 3:            spills collapse by RegN=48; overall code growth
                      at most 1.13%, negative at RegN=40
Per DESIGN.md the comparison targets are qualitative shape, not absolute
numbers — see EXPERIMENTS.md for the per-figure discussion."""


def generate_report(workloads: Optional[Sequence] = None,
                    n_loops: int = 400,
                    seed: int = 2005,
                    remap_restarts: int = 50,
                    include_sweep: bool = True,
                    include_alternatives: bool = True,
                    jobs: int = 1) -> str:
    """Run all studies and return the combined report text.

    ``workloads`` defaults to the full MiBench suite.  ``jobs`` fans each
    study's workload/loop grid out over a process pool (``0`` = all
    cores); the report text is identical for any value.
    """
    # imported here because the study modules import this module's Table
    # at load time — a top-level import would be circular
    import time

    from repro.experiments.alternatives import run_alternatives_study
    from repro.experiments.lowend import run_lowend_experiment
    from repro.experiments.sweep import run_regn_sweep
    from repro.experiments.swp import run_swp_experiment
    from repro.workloads.mibench import MIBENCH

    if workloads is None:
        workloads = MIBENCH
    sections = []
    t0 = time.time()

    sections.append("# Differential Register Allocation — "
                    "reproduction report\n")
    sections.append(_PAPER_NOTES)

    lowend = run_lowend_experiment(workloads=workloads,
                                   remap_restarts=remap_restarts,
                                   jobs=jobs)
    sections.append("\n## Low-end study (Section 10.1)\n")
    sections.append(lowend.render_all())

    swp = run_swp_experiment(n_loops=n_loops, seed=seed, jobs=jobs)
    sections.append("\n## Software-pipelining study (Section 10.2)\n")
    sections.append(
        f"population: {len(swp.loops)} loops; "
        f"{100 * swp.fraction_needing_more_than_32:.1f}% need >32 registers"
    )
    sections.append(swp.render_all())

    if include_alternatives:
        study = run_alternatives_study(workloads=workloads,
                                       remap_restarts=remap_restarts // 2)
        sections.append("\n## Widening fields vs differential (Section 1)\n")
        sections.append(study.table().render())

    if include_sweep:
        sweep = run_regn_sweep(workloads=workloads,
                               remap_restarts=remap_restarts // 2,
                               jobs=jobs)
        sections.append("\n## RegN sweep (choosing the paper's 12)\n")
        sections.append(sweep.table().render())
        sections.append(f"cycle-optimal RegN: {sweep.best_reg_n()}")

    sections.append(f"\n(generated in {time.time() - t0:.0f}s, "
                    "fully deterministic)")
    return "\n".join(sections)
