"""Plain-text table formatting shared by the experiment harnesses."""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence

__all__ = ["Table", "geo_mean", "arith_mean"]


def arith_mean(values: Iterable[float]) -> float:
    """Arithmetic mean (0.0 for an empty input)."""
    vals = list(values)
    return sum(vals) / len(vals) if vals else 0.0


def geo_mean(values: Iterable[float]) -> float:
    """Geometric mean over the positive values (0.0 if none)."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


class Table:
    """An aligned plain-text table with a title."""

    def __init__(self, title: str, headers: Sequence[str]) -> None:
        self.title = title
        self.headers = list(headers)
        self.rows: List[List[str]] = []

    def add_row(self, *cells: object) -> None:
        """Append one row; floats format to two decimals."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        self.rows.append([self._fmt(c) for c in cells])

    @staticmethod
    def _fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.2f}"
        return str(cell)

    def render(self) -> str:
        """The table as aligned plain text."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def line(cells: Sequence[str]) -> str:
            return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

        sep = "-" * (sum(widths) + 2 * (len(widths) - 1))
        out = [self.title, sep, line(self.headers), sep]
        out.extend(line(r) for r in self.rows)
        out.append(sep)
        return "\n".join(out)

    def __str__(self) -> str:
        return self.render()
