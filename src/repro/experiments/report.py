"""One-command reproduction report.

Runs every study — Table 1, Figures 11-14, Tables 2-3, the width study and
the RegN sweep — and emits a single self-contained text/markdown report,
the generated counterpart of the repository's EXPERIMENTS.md.  Exposed as
``python -m repro report``.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from repro.experiments.alternatives import run_alternatives_study
from repro.experiments.lowend import run_lowend_experiment
from repro.experiments.sweep import run_regn_sweep
from repro.experiments.swp import run_swp_experiment
from repro.workloads.mibench import MIBENCH, Workload

__all__ = ["generate_report"]

_PAPER_NOTES = """\
Paper reference values (PLDI 2005, Section 10):
  Figure 11 averages: baseline 10.44, remapping 6.87, select 6.84,
                      O-spill 7.32, coalesce 5.55 (% spills)
  Figure 12 averages: remapping 10.41, select 4.21, coalesce 3.04 (% cost)
  Figure 13:          remapping +7%, select <1%, O-spill -4%, coalesce -2%
  Figure 14 averages: remapping 4.5, select 9.7, O-spill 4.1,
                      coalesce 12.1 (% speedup)
  Table 2:            optimized loops >70%; all loops 10.23 -> 17.24,
                      saturating past RegN=48
  Table 3:            spills collapse by RegN=48; overall code growth
                      at most 1.13%, negative at RegN=40
Per DESIGN.md the comparison targets are qualitative shape, not absolute
numbers — see EXPERIMENTS.md for the per-figure discussion."""


def generate_report(workloads: Sequence[Workload] = MIBENCH,
                    n_loops: int = 400,
                    seed: int = 2005,
                    remap_restarts: int = 50,
                    include_sweep: bool = True,
                    include_alternatives: bool = True,
                    jobs: int = 1) -> str:
    """Run all studies and return the combined report text.

    ``jobs`` fans each study's workload/loop grid out over a process pool
    (``0`` = all cores); the report text is identical for any value.
    """
    sections = []
    t0 = time.time()

    sections.append("# Differential Register Allocation — "
                    "reproduction report\n")
    sections.append(_PAPER_NOTES)

    lowend = run_lowend_experiment(workloads=workloads,
                                   remap_restarts=remap_restarts,
                                   jobs=jobs)
    sections.append("\n## Low-end study (Section 10.1)\n")
    sections.append(lowend.render_all())

    swp = run_swp_experiment(n_loops=n_loops, seed=seed, jobs=jobs)
    sections.append("\n## Software-pipelining study (Section 10.2)\n")
    sections.append(
        f"population: {len(swp.loops)} loops; "
        f"{100 * swp.fraction_needing_more_than_32:.1f}% need >32 registers"
    )
    sections.append(swp.render_all())

    if include_alternatives:
        study = run_alternatives_study(workloads=workloads,
                                       remap_restarts=remap_restarts // 2)
        sections.append("\n## Widening fields vs differential (Section 1)\n")
        sections.append(study.table().render())

    if include_sweep:
        sweep = run_regn_sweep(workloads=workloads,
                               remap_restarts=remap_restarts // 2,
                               jobs=jobs)
        sections.append("\n## RegN sweep (choosing the paper's 12)\n")
        sections.append(sweep.table().render())
        sections.append(f"cycle-optimal RegN: {sweep.best_reg_n()}")

    sections.append(f"\n(generated in {time.time() - t0:.0f}s, "
                    "fully deterministic)")
    return "\n".join(sections)
