"""Deprecated alias of :mod:`repro.experiments.reporting`.

``report`` and ``reporting`` coexisted as near-duplicate names — one held
the combined-report generator, the other the table formatting every
harness shares.  They merged into :mod:`repro.experiments.reporting`,
which is now the single documented entry point; this module re-exports
its public names and warns on import.  It will be removed after one
release cycle.
"""

from __future__ import annotations

import warnings

from repro.experiments.reporting import (Table, arith_mean,  # noqa: F401
                                         generate_report, geo_mean)

__all__ = ["generate_report", "Table", "geo_mean", "arith_mean"]

warnings.warn(
    "repro.experiments.report is deprecated; import from "
    "repro.experiments.reporting instead",
    DeprecationWarning, stacklevel=2,
)
