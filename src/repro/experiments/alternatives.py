"""The introduction's argument, measured: three ways to get more registers.

The paper's Section 1 motivates differential encoding against the obvious
alternative — just widen the register fields: "adding 1 bit to the register
field typically leads to an increase of 2 or more bits for each
instruction", which grows code size, I-cache pressure and energy (the
ARM/THUMB studies it cites).  This harness quantifies the three options on
our kernels and timing model:

* **direct-8** — the compact baseline ISA: 16-bit instructions, 3-bit
  fields, 8 registers, spills where pressure exceeds them.
* **direct-16** — widen every instruction to reach 16 registers directly.
  With three 4-bit fields a 16-bit format no longer fits; realistically the
  ISA jumps to 32-bit instructions (THUMB → ARM), doubling fetch bytes.
* **differential-12** — keep 16-bit instructions and 3-bit fields, address
  12 registers differentially (DiffN=8), pay ``set_last_reg`` repairs.

The differential point sits between the two direct options on registers
but keeps the compact fetch width — the paper's whole pitch.  Kernels this
small never stress an 8KB I-cache, so raw cycles understate the wide-ISA
cost; the *fetch traffic* column (bytes fetched per run, the I-cache energy
proxy behind the paper's cited 19% THUMB saving) is where the 32-bit
format pays.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from repro.analysis.profile import (block_frequencies_from_counts,
                                    profile_block_frequencies)
from repro.experiments.reporting import Table, arith_mean
from repro.ir.wire import to_wire
from repro.machine.lowend import LowEndTimingModel
from repro.parallel import parallel_map
from repro.machine.reuse import interpret_or_derive, record_reference_run
from repro.machine.spec import LOWEND, LowEndConfig
from repro.regalloc.pipeline import run_setup
from repro.workloads.mibench import MIBENCH, Workload

__all__ = ["AlternativeRow", "AlternativesStudy", "run_alternatives_study"]


@dataclass
class AlternativeRow:
    benchmark: str
    option: str
    instructions: int
    code_bytes: float
    spills: int
    setlr: int
    cycles: int
    icache_misses: int
    fetch_bytes: int


@dataclass
class AlternativesStudy:
    rows: List[AlternativeRow]
    options: Sequence[str] = ("direct-8", "direct-16", "differential-12")

    def row(self, benchmark: str, option: str) -> AlternativeRow:
        """Look up one (benchmark, option) measurement."""
        for r in self.rows:
            if r.benchmark == benchmark and r.option == option:
                return r
        raise KeyError((benchmark, option))

    def benchmarks(self) -> List[str]:
        """Benchmark names in first-seen order."""
        seen: List[str] = []
        for r in self.rows:
            if r.benchmark not in seen:
                seen.append(r.benchmark)
        return seen

    def table(self) -> Table:
        """Render the suite-average comparison table."""
        t = Table(
            "Widening the fields vs differential encoding "
            "(averages over the suite)",
            ["option", "registers", "instr bytes", "code bytes",
             "spill %", "setlr %", "cycles vs direct-8 %",
             "fetch bytes vs direct-8 %"],
        )
        meta = {
            "direct-8": ("8", 2),
            "direct-16": ("16", 4),
            "differential-12": ("12", 2),
        }
        benches = self.benchmarks()
        for option in self.options:
            regs, ibytes = meta[option]
            code = arith_mean(self.row(b, option).code_bytes for b in benches)
            spill = 100 * arith_mean(
                self.row(b, option).spills / self.row(b, option).instructions
                for b in benches
            )
            setlr = 100 * arith_mean(
                self.row(b, option).setlr / self.row(b, option).instructions
                for b in benches
            )
            cycles = arith_mean(
                100.0 * (self.row(b, option).cycles
                         / self.row(b, "direct-8").cycles - 1.0)
                for b in benches
            )
            fetch = arith_mean(
                100.0 * (self.row(b, option).fetch_bytes
                         / self.row(b, "direct-8").fetch_bytes - 1.0)
                for b in benches
            )
            t.add_row(option, regs, ibytes, code, spill, setlr, cycles,
                      fetch)
        return t


def _alternatives_workload(payload) -> List[AlternativeRow]:
    """One workload through all three options; the grid task of
    :func:`run_alternatives_study`.

    Module-level and pure in its payload so it pickles into a process
    pool; the function travels in compact wire form.  All three options
    of one workload stay in one task because they share a recorded run
    — and because rows are per-workload, order across workloads (hence
    the job count) cannot change any number.
    """
    name, wire, args, config, remap_restarts, profile = payload
    from repro.ir.wire import from_wire

    fn = from_wire(wire)
    wide_config = replace(config, instr_bytes=4)
    # the three options share one recorded run: their traces differ
    # only statically, and the machine configs differ only in timing
    recorded = record_reference_run(fn, args)
    if not profile:
        freq = None
    elif recorded is not None and recorded.block_instr_counts:
        freq = block_frequencies_from_counts(
            fn, recorded.block_instr_counts)
    else:
        freq = profile_block_frequencies(fn, args)

    option_runs = {
        # (setup, base_k, reg_n, machine config, instr bytes)
        "direct-8": ("baseline", 8, 12, config),
        "direct-16": ("baseline", 16, 16, wide_config),
        "differential-12": ("select", 8, 12, config),
    }
    rows: List[AlternativeRow] = []
    for option, (setup, base_k, reg_n, mconfig) in option_runs.items():
        prog = run_setup(fn, setup, base_k=base_k, reg_n=reg_n,
                         diff_n=8, remap_restarts=remap_restarts,
                         freq=freq)
        result = interpret_or_derive(prog.final_fn, args, recorded)
        report = LowEndTimingModel(mconfig).time(
            result.columnar if result.columnar is not None
            else result.trace)
        rows.append(AlternativeRow(
            benchmark=name,
            option=option,
            instructions=prog.n_instructions,
            code_bytes=prog.n_instructions * mconfig.instr_bytes,
            spills=prog.n_spills,
            setlr=prog.n_setlr,
            cycles=report.cycles,
            icache_misses=report.icache_misses,
            fetch_bytes=report.instructions * mconfig.instr_bytes,
        ))
    return rows


def run_alternatives_study(workloads: Sequence[Workload] = MIBENCH,
                           config: LowEndConfig = LOWEND,
                           remap_restarts: int = 25,
                           profile: bool = True,
                           jobs: int = 1) -> AlternativesStudy:
    """Run the three-option comparison over the kernel suite.

    ``jobs`` distributes workloads over the shared process fleet
    (``0`` = all cores); results are identical for every job count.
    """
    payloads = [
        (w.name, to_wire(w.function()), tuple(w.default_args), config,
         remap_restarts, profile)
        for w in workloads
    ]
    rows: List[AlternativeRow] = []
    for workload_rows in parallel_map(_alternatives_workload, payloads,
                                      jobs=jobs):
        rows.extend(workload_rows)
    return AlternativesStudy(rows)
