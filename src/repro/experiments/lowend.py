"""The low-end evaluation: Table 1 and Figures 11-14 (Section 10.1).

Every MiBench-like kernel runs through the five setups; per setup we record
static spills, ``set_last_reg`` cost, code size, and simulated cycles, then
print the same comparisons the paper plots:

* **Figure 11** — static spill percentage over the entire code.
* **Figure 12** — ``set_last_reg`` percentage for the three differential
  schemes.
* **Figure 13** — code size normalised to the baseline.
* **Figure 14** — speedup over the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.reporting import Table, arith_mean
from repro.machine.lowend import LowEndTimingModel
from repro.machine.reuse import interpret_or_derive, record_reference_run
from repro.machine.spec import LOWEND, LowEndConfig
from repro.parallel import parallel_map
from repro.regalloc.pipeline import PAPER_SETUPS, AllocatedProgram, run_setup
from repro.workloads.mibench import MIBENCH, Workload

__all__ = ["BenchmarkRow", "LowEndExperiment", "run_lowend_experiment"]

DIFFERENTIAL_SETUPS = ("remapping", "select", "coalesce")


@dataclass
class BenchmarkRow:
    """Metrics for one benchmark under one setup."""

    benchmark: str
    setup: str
    instructions: int
    spills: int
    setlr: int
    cycles: int
    checksum: int

    @property
    def spill_fraction(self) -> float:
        return self.spills / self.instructions if self.instructions else 0.0

    @property
    def setlr_fraction(self) -> float:
        return self.setlr / self.instructions if self.instructions else 0.0


@dataclass
class LowEndExperiment:
    """All rows of the Section 10.1 study, with per-figure renderers."""

    rows: List[BenchmarkRow]
    base_k: int
    reg_n: int
    diff_n: int
    config: LowEndConfig = LOWEND
    #: the per-pass lint trail when run with ``verify_each_pass``
    pass_verifier: Optional[object] = None

    def row(self, benchmark: str, setup: str) -> BenchmarkRow:
        """Look up one (benchmark, setup) measurement."""
        for r in self.rows:
            if r.benchmark == benchmark and r.setup == setup:
                return r
        raise KeyError((benchmark, setup))

    def benchmarks(self) -> List[str]:
        """Benchmark names in first-seen order."""
        seen: List[str] = []
        for r in self.rows:
            if r.benchmark not in seen:
                seen.append(r.benchmark)
        return seen

    def setups(self) -> List[str]:
        """Setups present, in first-seen order."""
        seen: List[str] = []
        for r in self.rows:
            if r.setup not in seen:
                seen.append(r.setup)
        return seen

    # ------------------------------------------------------------------
    # figures
    # ------------------------------------------------------------------

    def table1(self) -> Table:
        """The machine-configuration table (paper Table 1)."""
        t = Table("Table 1: low-end machine configuration",
                  ["parameter", "value"])
        for k, v in self.config.rows():
            t.add_row(k, v)
        return t

    def fig11_spills(self) -> Table:
        """Static spill percentage over the entire code (paper averages:
        baseline 10.44, remapping 6.87, select 6.84, O-spill 7.32,
        coalesce 5.55)."""
        setups = self.setups()
        t = Table("Figure 11: static spill percentage", ["benchmark"] + list(setups))
        for b in self.benchmarks():
            t.add_row(b, *(100 * self.row(b, s).spill_fraction for s in setups))
        t.add_row("average", *(
            100 * arith_mean(self.row(b, s).spill_fraction
                             for b in self.benchmarks())
            for s in setups))
        return t

    def fig12_cost(self) -> Table:
        """set_last_reg percentage for the differential schemes (paper
        averages: remapping 10.41, select 4.21, coalesce 3.04)."""
        setups = [s for s in self.setups() if s in DIFFERENTIAL_SETUPS]
        t = Table("Figure 12: set_last_reg cost percentage",
                  ["benchmark"] + list(setups))
        for b in self.benchmarks():
            t.add_row(b, *(100 * self.row(b, s).setlr_fraction for s in setups))
        t.add_row("average", *(
            100 * arith_mean(self.row(b, s).setlr_fraction
                             for b in self.benchmarks())
            for s in setups))
        return t

    def fig13_codesize(self) -> Table:
        """Code size normalised to baseline (paper: remapping +7%,
        select <1%, O-spill -4%, coalesce -2%)."""
        setups = [s for s in self.setups() if s != "baseline"]
        t = Table("Figure 13: code size relative to baseline",
                  ["benchmark"] + list(setups))
        for b in self.benchmarks():
            base = self.row(b, "baseline").instructions
            t.add_row(b, *(self.row(b, s).instructions / base for s in setups))
        t.add_row("average", *(
            arith_mean(self.row(b, s).instructions
                       / self.row(b, "baseline").instructions
                       for b in self.benchmarks())
            for s in setups))
        return t

    def fig14_speedup(self) -> Table:
        """Percent speedup over baseline (paper averages: remapping 4.5,
        select 9.7, coalesce 12.1, O-spill 4.1)."""
        setups = [s for s in self.setups() if s != "baseline"]
        t = Table("Figure 14: speedup over baseline (%)",
                  ["benchmark"] + list(setups))
        speedups: Dict[str, List[float]] = {s: [] for s in setups}
        for b in self.benchmarks():
            base = self.row(b, "baseline").cycles
            row_vals = []
            for s in setups:
                sp = 100.0 * (base / self.row(b, s).cycles - 1.0)
                row_vals.append(sp)
                speedups[s].append(sp)
            t.add_row(b, *row_vals)
        t.add_row("average", *(arith_mean(speedups[s]) for s in setups))
        return t

    def render_all(self) -> str:
        """Every table/figure of the study as one text report."""
        return "\n\n".join(
            t.render() for t in (
                self.table1(), self.fig11_spills(), self.fig12_cost(),
                self.fig13_codesize(), self.fig14_speedup(),
            )
        )


def _lowend_workload(payload) -> List[BenchmarkRow]:
    """One workload through every setup; the grid task of
    :func:`run_lowend_experiment`.

    Module-level and pure in its payload so it pickles into a process
    pool; the (possibly composite) function travels in compact wire form,
    built once by the caller and decoded here.  The cross-setup checksum
    consistency check happens here, inside the task, because it only
    relates rows of the same workload.
    """
    (name, wire, args, setups, base_k, reg_n, diff_n, config,
     remap_restarts, use_ilp, verify, profile, seed) = payload
    from repro.analysis.profile import (block_frequencies_from_counts,
                                        profile_block_frequencies)
    from repro.ir.wire import from_wire

    timing = LowEndTimingModel(config)
    fn = from_wire(wire)
    # one interpretation of the input function serves every setup: the
    # profile weights below and, via trace derivation, each allocated
    # variant's dynamic trace (allocation preserves the block path and
    # data addresses — see repro.machine.reuse)
    recorded = record_reference_run(fn, args)
    if not profile:
        freq = None
    elif recorded is not None and recorded.block_instr_counts:
        freq = block_frequencies_from_counts(fn, recorded.block_instr_counts)
    else:
        freq = profile_block_frequencies(fn, args)
    rows: List[BenchmarkRow] = []
    checksums = {}
    for setup in setups:
        prog: AllocatedProgram = run_setup(
            fn, setup, base_k=base_k, reg_n=reg_n, diff_n=diff_n,
            remap_restarts=remap_restarts, use_ilp=use_ilp, verify=verify,
            freq=freq, remap_seed=seed,
        )
        result = interpret_or_derive(prog.final_fn, args, recorded)
        report = timing.time(result.columnar if result.columnar is not None
                             else result.trace)
        rows.append(BenchmarkRow(
            benchmark=name,
            setup=setup,
            instructions=prog.n_instructions,
            spills=prog.n_spills,
            setlr=prog.n_setlr,
            cycles=report.cycles,
            checksum=result.return_value,
        ))
        checksums[setup] = result.return_value
    if len(set(checksums.values())) != 1:
        raise AssertionError(
            f"{name}: setups disagree on semantics: {checksums}"
        )
    return rows


def run_lowend_experiment(workloads: Sequence[Workload] = MIBENCH,
                          setups: Sequence[str] = PAPER_SETUPS,
                          base_k: int = 8, reg_n: int = 12, diff_n: int = 8,
                          scale: str = "default",
                          config: LowEndConfig = LOWEND,
                          remap_restarts: int = 50,
                          use_ilp: bool = True,
                          verify: bool = True,
                          profile: bool = True,
                          composite: bool = False,
                          verify_each_pass: bool = False,
                          lint_mode: str = "strict",
                          jobs: int = 1,
                          seed: int = 0) -> LowEndExperiment:
    """Run the full Section 10.1 study.

    ``scale`` selects each workload's ``default_args`` (fast) or
    ``bench_args`` (longer traces).  ``profile`` weights all frequency
    estimates with an interpreter profile of each benchmark (Section 4's
    "profile information could be incorporated"); disable it to reproduce
    the paper's static-estimation setting, whose per-benchmark results the
    authors themselves call irregular.  ``composite`` runs each benchmark
    as a whole program — the hot kernel plus two auxiliary synthetic
    phases; an ablation, off by default because the synthetic phases are
    denser than real cold code and inflate every setup's cost.  Semantics
    are cross-checked: every setup of a benchmark must return the same
    checksum.

    ``verify_each_pass`` runs the static IR checker (:mod:`repro.lint`)
    between every pipeline stage of every benchmark; ``lint_mode`` is
    ``"strict"`` (raise at the offending pass) or ``"warn"`` (record and
    continue; inspect ``experiment.pass_verifier.summary()``).

    ``jobs`` distributes workloads over a process pool (``0`` = all
    cores); ``seed`` seeds the remapping restarts.  Row contents are
    identical for every job count.  ``verify_each_pass`` forces serial
    execution — the pass verifier accumulates one cross-benchmark lint
    trail, which has no meaningful parallel merge.
    """
    pass_verifier = None
    if verify_each_pass:
        from repro.lint import PassVerifier

        pass_verifier = PassVerifier(mode=lint_mode)

    rows: List[BenchmarkRow] = []
    if pass_verifier is not None:
        # serial path, threading the verifier through every run_setup
        from repro.analysis.profile import (block_frequencies_from_counts,
                                            profile_block_frequencies)
        from repro.workloads.compose import concat_functions
        from repro.workloads.synth import generate_function

        timing = LowEndTimingModel(config)
        for wi, w in enumerate(workloads):
            fn = w.function()
            if composite:
                fn = concat_functions(w.name, [
                    fn,
                    generate_function(9000 + 2 * wi, n_regions=3,
                                      base_values=7),
                    generate_function(9001 + 2 * wi, n_regions=3,
                                      base_values=7, with_memory=True),
                ])
            args = w.default_args if scale == "default" else w.bench_args
            recorded = record_reference_run(fn, args)
            if not profile:
                freq = None
            elif recorded is not None and recorded.block_instr_counts:
                freq = block_frequencies_from_counts(
                    fn, recorded.block_instr_counts)
            else:
                freq = profile_block_frequencies(fn, args)
            checksums = {}
            for setup in setups:
                pass_verifier.prefix = w.name
                prog: AllocatedProgram = run_setup(
                    fn, setup, base_k=base_k, reg_n=reg_n, diff_n=diff_n,
                    remap_restarts=remap_restarts, use_ilp=use_ilp,
                    verify=verify, freq=freq, pass_verifier=pass_verifier,
                    remap_seed=seed,
                )
                result = interpret_or_derive(prog.final_fn, args, recorded)
                report = timing.time(result.columnar
                                     if result.columnar is not None
                                     else result.trace)
                rows.append(BenchmarkRow(
                    benchmark=w.name,
                    setup=setup,
                    instructions=prog.n_instructions,
                    spills=prog.n_spills,
                    setlr=prog.n_setlr,
                    cycles=report.cycles,
                    checksum=result.return_value,
                ))
                checksums[setup] = result.return_value
            if len(set(checksums.values())) != 1:
                raise AssertionError(
                    f"{w.name}: setups disagree on semantics: {checksums}"
                )
    else:
        from repro.ir.wire import to_wire
        from repro.workloads.compose import concat_functions
        from repro.workloads.synth import generate_function

        payloads = []
        for wi, w in enumerate(workloads):
            fn = w.function()
            if composite:
                fn = concat_functions(w.name, [
                    fn,
                    generate_function(9000 + 2 * wi, n_regions=3,
                                      base_values=7),
                    generate_function(9001 + 2 * wi, n_regions=3,
                                      base_values=7, with_memory=True),
                ])
            args = w.default_args if scale == "default" else w.bench_args
            payloads.append(
                (w.name, to_wire(fn), tuple(args), tuple(setups), base_k,
                 reg_n, diff_n, config, remap_restarts, use_ilp, verify,
                 profile, seed))
        for workload_rows in parallel_map(_lowend_workload, payloads,
                                          jobs=jobs):
            rows.extend(workload_rows)
    return LowEndExperiment(rows, base_k, reg_n, diff_n, config,
                            pass_verifier=pass_verifier)
