"""RegN sweep for the low-end configuration.

The paper fixes the low-end differential point at RegN=12, DiffN=8 and
sweeps registers only in the VLIW study (Table 2).  This harness fills the
gap: sweep RegN from the direct baseline (8) upward at fixed 3-bit fields
and watch the trade — spills fall as registers grow, repair cost rises as
the register circle gets sparser relative to DiffN, and the cycle count
bottoms out where the marginal spill is worth less than the marginal
``set_last_reg``.  It shows *why* 12 is a sensible choice for this machine
class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.profile import (block_frequencies_from_counts,
                                    profile_block_frequencies)
from repro.experiments.reporting import Table, arith_mean
from repro.ir.wire import from_wire, to_wire
from repro.machine.lowend import LowEndTimingModel
from repro.machine.reuse import interpret_or_derive, record_reference_run
from repro.machine.spec import LOWEND, LowEndConfig
from repro.parallel import parallel_map
from repro.regalloc.pipeline import run_setup
from repro.workloads.mibench import MIBENCH, Workload

__all__ = ["SweepPoint", "RegNSweep", "run_regn_sweep"]


@dataclass
class SweepPoint:
    """Averages over the suite for one RegN."""

    reg_n: int
    spill_fraction: float
    setlr_fraction: float
    relative_cycles: float   # vs the RegN=8 direct baseline
    relative_energy: float


@dataclass
class RegNSweep:
    points: List[SweepPoint]
    diff_n: int

    def table(self) -> Table:
        """Render the sweep as a table."""
        t = Table(
            f"RegN sweep at DiffN={self.diff_n} (3-bit fields, "
            "differential select, suite averages)",
            ["RegN", "spill %", "setlr %", "cycles vs direct-8",
             "energy vs direct-8"],
        )
        for p in self.points:
            t.add_row(p.reg_n, 100 * p.spill_fraction,
                      100 * p.setlr_fraction, p.relative_cycles,
                      p.relative_energy)
        return t

    def best_reg_n(self) -> int:
        """The RegN with the lowest average relative cycle count."""
        return min(self.points, key=lambda p: p.relative_cycles).reg_n


def _sweep_workload(payload) -> List[Tuple[float, float, float, float]]:
    """One workload through every RegN point; the grid task of
    :func:`run_regn_sweep`.

    Module-level and pure in its payload so it pickles into a process
    pool; the function travels in compact wire form (built once by the
    caller, decoded here) instead of being rebuilt per task.
    Normalisation is per-workload against its own first (baseline)
    point, so evaluation order across workloads — and hence the job
    count — cannot change any number.
    """
    wire, args, reg_ns, diff_n, config, remap_restarts, use_ilp, \
        remap_seed = payload
    timing = LowEndTimingModel(config)
    fn = from_wire(wire)
    # one interpretation serves the profile and every sweep point's trace
    recorded = record_reference_run(fn, args)
    if recorded is not None and recorded.block_instr_counts:
        freq = block_frequencies_from_counts(fn, recorded.block_instr_counts)
    else:
        freq = profile_block_frequencies(fn, args)
    base_cycles: Optional[float] = None
    base_energy: Optional[float] = None
    stats: List[Tuple[float, float, float, float]] = []
    for reg_n in reg_ns:
        setup = "baseline" if reg_n <= diff_n else "select"
        prog = run_setup(fn, setup, base_k=diff_n, reg_n=reg_n,
                         diff_n=diff_n, remap_restarts=remap_restarts,
                         use_ilp=use_ilp, freq=freq, remap_seed=remap_seed)
        result = interpret_or_derive(prog.final_fn, args, recorded)
        report = timing.time(result.columnar if result.columnar is not None
                             else result.trace)
        if base_cycles is None:
            base_cycles = float(report.cycles)
            base_energy = report.energy
        stats.append((prog.spill_fraction, prog.setlr_fraction,
                      report.cycles / base_cycles,
                      report.energy / base_energy))
    return stats


def run_regn_sweep(workloads: Sequence[Workload] = MIBENCH,
                   reg_ns: Sequence[int] = (8, 10, 12, 14, 16),
                   diff_n: int = 8,
                   config: LowEndConfig = LOWEND,
                   remap_restarts: int = 20,
                   use_ilp: bool = True,
                   jobs: int = 1,
                   seed: int = 0) -> RegNSweep:
    """Sweep RegN over the kernel suite.

    ``reg_n == diff_n`` points run as plain direct encoding (the baseline);
    larger RegN uses the differential-select setup.  Relative cycles and
    energy are normalised against the *first* point, which must therefore
    be a direct baseline: ``reg_ns[0] <= diff_n`` is required, rather than
    silently normalising against whatever configuration happens to run
    first.

    ``jobs`` distributes workloads over a process pool (``0`` = all
    cores); ``seed`` seeds the remapping restarts.  Results are identical
    for every job count.
    """
    if not reg_ns:
        raise ValueError("reg_ns must be non-empty")
    if reg_ns[0] > diff_n:
        raise ValueError(
            f"reg_ns[0] must be a direct baseline point (reg_n <= diff_n): "
            f"relative cycles/energy are normalised against the first "
            f"point, got reg_ns[0]={reg_ns[0]} > diff_n={diff_n}"
        )
    payloads = [
        (to_wire(w.function()), tuple(w.default_args), tuple(reg_ns),
         diff_n, config, remap_restarts, use_ilp, seed)
        for w in workloads
    ]
    per_workload = parallel_map(_sweep_workload, payloads, jobs=jobs)

    per_point: Dict[int, Dict[str, List[float]]] = {
        r: {"spill": [], "setlr": [], "cycles": [], "energy": []}
        for r in reg_ns
    }
    for stats_list in per_workload:
        for reg_n, (spill, setlr, cycles, energy) in zip(reg_ns, stats_list):
            stats = per_point[reg_n]
            stats["spill"].append(spill)
            stats["setlr"].append(setlr)
            stats["cycles"].append(cycles)
            stats["energy"].append(energy)

    points = [
        SweepPoint(
            reg_n=r,
            spill_fraction=arith_mean(per_point[r]["spill"]),
            setlr_fraction=arith_mean(per_point[r]["setlr"]),
            relative_cycles=arith_mean(per_point[r]["cycles"]),
            relative_energy=arith_mean(per_point[r]["energy"]),
        )
        for r in reg_ns
    ]
    return RegNSweep(points, diff_n)
