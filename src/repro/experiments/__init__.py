"""Experiment harnesses — one per table and figure of Section 10.

* :mod:`repro.experiments.lowend` — Figures 11-14 and Table 1 (the MiBench
  low-end study).
* :mod:`repro.experiments.swp` — Tables 2-3 (the software-pipelining study).
* :mod:`repro.experiments.reporting` — shared table formatting and the
  one-command combined report (``python -m repro report``).
"""

from repro.experiments.reporting import Table, generate_report, geo_mean
from repro.experiments.lowend import LowEndExperiment, run_lowend_experiment
from repro.experiments.swp import SwpExperiment, run_swp_experiment
from repro.experiments.alternatives import (
    AlternativesStudy,
    run_alternatives_study,
)
from repro.experiments.sweep import RegNSweep, run_regn_sweep

__all__ = [
    "AlternativesStudy",
    "run_alternatives_study",
    "RegNSweep",
    "run_regn_sweep",
    "generate_report",
    "Table",
    "geo_mean",
    "LowEndExperiment",
    "run_lowend_experiment",
    "SwpExperiment",
    "run_swp_experiment",
]
