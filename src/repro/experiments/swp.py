"""The software-pipelining evaluation: Tables 2 and 3 (Section 10.2).

For every loop in the synthetic SPEC-like population, the kernel is modulo
scheduled and register-allocated under the baseline (``RegN = 32``, no
differential encoding) and under differential configurations
``RegN in {40, 48, 56, 64}`` with ``DiffN = 32``.  Only loops that spill at
32 registers are optimised — differential encoding is enabled selectively
(Section 8.2) and its ``set_last_reg`` repairs are promoted before the loop
(Section 8.1), so the in-loop cost is zero and the benefit is the lower II
from removed spill memory traffic.

* **Table 2** — percent speedup: optimised loops, all loops, and overall
  (loops are ~80% of execution per the paper; the rest is unaffected).
* **Table 3** — spills remaining in optimised loops and static code growth
  for optimised loops / all loops / all code (loop kernels are a
  configurable fraction of total code, default 30%).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.reporting import Table
from repro.machine.spec import VLIW, VLIWConfig
from repro.swp.ddg import LoopDDG
from repro.swp.diffswp import encode_kernel
from repro.swp.modulo import ScheduleError
from repro.swp.rotalloc import KernelAllocation, allocate_kernel
from repro.workloads.spec_loops import LoopSpec, generate_loop_population

__all__ = ["LoopResult", "SwpExperiment", "run_swp_experiment"]

REG_NS = (32, 40, 48, 56, 64)


@dataclass
class LoopResult:
    """One loop under every register configuration."""

    name: str
    big: bool
    optimized: bool                      # needed > 32 registers
    cycles: Dict[int, int]               # reg_n -> execution cycles
    spills: Dict[int, int]               # reg_n -> spill mem ops in kernel
    code_ops: Dict[int, int]             # reg_n -> static ops incl. setlr
    setlr: Dict[int, int]                # reg_n -> promoted set_last_reg


@dataclass
class SwpExperiment:
    """Aggregated results with Table 2 / Table 3 renderers."""

    loops: List[LoopResult]
    reg_ns: Tuple[int, ...]
    diff_n: int
    loops_time_fraction: float = 0.8     # loops are >80% of execution (paper)
    loops_code_fraction: float = 0.3     # loop kernels' share of static code

    def optimized_loops(self) -> List[LoopResult]:
        """Loops that spilled at 32 registers — the differential targets."""
        return [l for l in self.loops if l.optimized]

    # ------------------------------------------------------------------
    # Table 2: speedups
    # ------------------------------------------------------------------

    def _speedup(self, loops: Sequence[LoopResult], reg_n: int) -> float:
        base = sum(l.cycles[32] for l in loops)
        new = sum(l.cycles[reg_n] for l in loops)
        return 100.0 * (base / new - 1.0) if new else 0.0

    def table2_speedup(self) -> Table:
        """Paper: optimised-loop speedup >70%; all-loops speedup 10.23%
        (RegN=40) to 17.24% (RegN=64), saturating past RegN=48."""
        t = Table(
            "Table 2: speedup (%), DiffN=32",
            ["RegN", "optimized loops", "all loops", "overall"],
        )
        opt = self.optimized_loops()
        for reg_n in self.reg_ns:
            if reg_n == 32:
                continue
            s_opt = self._speedup(opt, reg_n)
            s_all = self._speedup(self.loops, reg_n)
            # overall: loops are loops_time_fraction of total execution
            f = self.loops_time_fraction
            denom = (1 - f) + f / (1 + s_all / 100.0)
            s_overall = 100.0 * (1.0 / denom - 1.0)
            t.add_row(reg_n, s_opt, s_all, s_overall)
        return t

    # ------------------------------------------------------------------
    # Table 3: spills and code growth
    # ------------------------------------------------------------------

    def table3_code_growth(self) -> Table:
        """Paper: spills drop sharply by RegN=48; code growth ≤1.13%
        overall, negative at RegN=40."""
        t = Table(
            "Table 3: spills and code growth, DiffN=32",
            ["RegN", "spills (opt loops)", "growth opt loops %",
             "growth all loops %", "growth all code %"],
        )
        opt = self.optimized_loops()
        base_opt = sum(l.code_ops[32] for l in opt)
        base_all = sum(l.code_ops[32] for l in self.loops)
        for reg_n in self.reg_ns:
            spills = sum(l.spills[reg_n] for l in opt)
            new_opt = sum(l.code_ops[reg_n] for l in opt)
            new_all = sum(l.code_ops[reg_n] for l in self.loops)
            g_opt = 100.0 * (new_opt / base_opt - 1.0) if base_opt else 0.0
            g_all = 100.0 * (new_all / base_all - 1.0) if base_all else 0.0
            g_code = g_all * self.loops_code_fraction
            t.add_row(reg_n, spills, g_opt, g_all, g_code)
        return t

    def render_all(self) -> str:
        """Tables 2 and 3 as one text report."""
        return "\n\n".join(
            t.render() for t in (self.table2_speedup(), self.table3_code_growth())
        )

    @property
    def fraction_needing_more_than_32(self) -> float:
        n = len(self.loops)
        return len(self.optimized_loops()) / n if n else 0.0


def _evaluate_loop(spec: LoopSpec, reg_ns: Sequence[int], diff_n: int,
                   machine: VLIWConfig, remap_restarts: int) -> Optional[LoopResult]:
    cycles: Dict[int, int] = {}
    spills: Dict[int, int] = {}
    code_ops: Dict[int, int] = {}
    setlr: Dict[int, int] = {}
    try:
        base = allocate_kernel(spec.ddg, 32, machine)
    except ScheduleError:
        return None
    optimized = base.n_spill_ops > 0

    for reg_n in reg_ns:
        if reg_n == 32 or not optimized:
            # differential encoding is selectively disabled: the loop keeps
            # its baseline schedule and pays nothing (Section 8.2)
            alloc = base
            rep = None
        else:
            try:
                alloc = allocate_kernel(spec.ddg, reg_n, machine)
            except ScheduleError:
                alloc = base
                rep = None
            else:
                rep = encode_kernel(alloc, diff_n, restarts=remap_restarts)
        cycles[reg_n] = alloc.execution_cycles()
        spills[reg_n] = alloc.n_spill_ops
        n_setlr = rep.n_setlr + rep.enable_overhead if rep else 0
        setlr[reg_n] = n_setlr
        code_ops[reg_n] = alloc.code_size_ops() + n_setlr
    return LoopResult(
        name=spec.name, big=spec.big, optimized=optimized,
        cycles=cycles, spills=spills, code_ops=code_ops, setlr=setlr,
    )


def _evaluate_loop_batch(payload) -> List[Optional[LoopResult]]:
    """Worker task: evaluate a contiguous chunk of the loop population.

    Module-level and pure in its payload so it pickles into a process
    pool; loops are independent, so chunk boundaries cannot change any
    result.
    """
    specs, reg_ns, diff_n, machine, remap_restarts = payload
    return [
        _evaluate_loop(spec, reg_ns, diff_n, machine, remap_restarts)
        for spec in specs
    ]


def run_swp_experiment(n_loops: int = 1928, seed: int = 2005,
                       reg_ns: Sequence[int] = REG_NS, diff_n: int = 32,
                       machine: VLIWConfig = VLIW,
                       remap_restarts: int = 4,
                       population: Optional[Sequence[LoopSpec]] = None,
                       jobs: int = 1
                       ) -> SwpExperiment:
    """Run the Section 10.2 study over the loop population.

    ``n_loops`` defaults to the paper's 1928; tests and quick runs pass a
    smaller population.  Loops whose recurrences cannot be scheduled at all
    are dropped (none occur with the default generator parameters).

    ``jobs`` distributes contiguous chunks of the population over a
    process pool (``0`` = all cores); every loop is evaluated
    independently, so results are identical for every job count.
    """
    from repro.parallel import chunked, parallel_map, resolve_jobs

    specs = list(population) if population is not None else \
        generate_loop_population(n=n_loops, seed=seed)
    n_jobs = resolve_jobs(jobs)
    payloads = [
        (batch, tuple(reg_ns), diff_n, machine, remap_restarts)
        for batch in chunked(specs, n_jobs)
    ]
    loops: List[LoopResult] = [
        result
        for batch_results in parallel_map(_evaluate_loop_batch, payloads,
                                          jobs=n_jobs)
        for result in batch_results
        if result is not None
    ]
    return SwpExperiment(loops, tuple(reg_ns), diff_n)
