"""JSON persistence for experiment results.

Reproduction runs are deterministic, but they are not free — the full
low-end study takes seconds and the full 1928-loop population minutes.
Persisting results lets CI track regressions ("did the Figure 11 ordering
survive this change?") without re-running, and lets notebooks consume the
numbers directly.

Envelope validation (the ``kind``/``format`` fields) goes through
:func:`repro.diagnostics.check_format_version` — the same helper the
service protocol uses — so a file written by a newer schema fails with a
structured diagnostic, never a ``KeyError``.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Dict, List

from repro.diagnostics import check_format_version
from repro.experiments.lowend import BenchmarkRow, LowEndExperiment
from repro.experiments.swp import LoopResult, SwpExperiment
from repro.machine.spec import LowEndConfig

__all__ = [
    "lowend_to_json",
    "lowend_from_json",
    "swp_to_json",
    "swp_from_json",
]

_FORMAT_VERSION = 1
_SUPPORTED_FORMATS = (1,)


def lowend_to_json(exp: LowEndExperiment) -> str:
    """Serialise a low-end experiment (Figures 11-14 inputs)."""
    return json.dumps({
        "format": _FORMAT_VERSION,
        "kind": "lowend",
        "base_k": exp.base_k,
        "reg_n": exp.reg_n,
        "diff_n": exp.diff_n,
        "rows": [asdict(r) for r in exp.rows],
    }, indent=2)


def lowend_from_json(text: str) -> LowEndExperiment:
    """Inverse of :func:`lowend_to_json`."""
    data = json.loads(text)
    check_format_version(data, kind="lowend", supported=_SUPPORTED_FORMATS)
    rows = [BenchmarkRow(**r) for r in data["rows"]]
    return LowEndExperiment(rows, data["base_k"], data["reg_n"],
                            data["diff_n"], LowEndConfig())


def _int_keys(d: Dict[str, int]) -> Dict[int, int]:
    return {int(k): v for k, v in d.items()}


def swp_to_json(exp: SwpExperiment) -> str:
    """Serialise a software-pipelining experiment (Tables 2-3 inputs)."""
    return json.dumps({
        "format": _FORMAT_VERSION,
        "kind": "swp",
        "reg_ns": list(exp.reg_ns),
        "diff_n": exp.diff_n,
        "loops_time_fraction": exp.loops_time_fraction,
        "loops_code_fraction": exp.loops_code_fraction,
        "loops": [asdict(l) for l in exp.loops],
    }, indent=2)


def swp_from_json(text: str) -> SwpExperiment:
    """Inverse of :func:`swp_to_json`."""
    data = json.loads(text)
    check_format_version(data, kind="swp", supported=_SUPPORTED_FORMATS)
    loops: List[LoopResult] = []
    for l in data["loops"]:
        loops.append(LoopResult(
            name=l["name"],
            big=l["big"],
            optimized=l["optimized"],
            cycles=_int_keys(l["cycles"]),
            spills=_int_keys(l["spills"]),
            code_ops=_int_keys(l["code_ops"]),
            setlr=_int_keys(l["setlr"]),
        ))
    exp = SwpExperiment(loops, tuple(data["reg_ns"]), data["diff_n"])
    exp.loops_time_fraction = data["loops_time_fraction"]
    exp.loops_code_fraction = data["loops_code_fraction"]
    return exp
