"""Hand-written classic loop kernels as DDGs.

The synthetic population (:mod:`repro.workloads.spec_loops`) covers the
statistics; these named kernels cover the *shapes* compiler textbooks
reason about — reductions, streaming filters, stencils — with known
structure: which bound (ResMII vs RecMII) binds, and how register pressure
behaves.  Useful for demos, documentation and targeted tests.
"""

from __future__ import annotations

from typing import Dict, List

from repro.swp.ddg import Dep, LoopDDG, LoopOp

__all__ = ["CLASSIC_LOOPS", "get_classic_loop"]


def dot_product() -> LoopDDG:
    """``acc += a[i] * b[i]`` — two streaming loads into a MAC recurrence.

    The accumulator's distance-1 self-dependence bounds RecMII by the
    add latency; memory ports bound ResMII.
    """
    ops = [
        LoopOp(0, "mem_load", 2),   # a[i]
        LoopOp(1, "mem_load", 2),   # b[i]
        LoopOp(2, "mul", 3),        # a[i] * b[i]
        LoopOp(3, "alu", 1),        # acc +=
        LoopOp(4, "alu", 1),        # i++
    ]
    deps = [
        Dep(0, 2), Dep(1, 2), Dep(2, 3),
        Dep(3, 3, distance=1),      # accumulator recurrence
        Dep(4, 4, distance=1),      # induction recurrence
        Dep(4, 0, distance=1), Dep(4, 1, distance=1),
    ]
    return LoopDDG(ops, deps, trip_count=256, name="dot_product")


def daxpy() -> LoopDDG:
    """``y[i] = a * x[i] + y[i]`` — stream in, stream out, no recurrence
    except induction: ResMII-bound on the memory ports."""
    ops = [
        LoopOp(0, "mem_load", 2),   # x[i]
        LoopOp(1, "mem_load", 2),   # y[i]
        LoopOp(2, "mul", 3),        # a * x[i]
        LoopOp(3, "alu", 1),        # + y[i]
        LoopOp(4, "mem_store", 2),  # y[i] =
        LoopOp(5, "alu", 1),        # i++
    ]
    deps = [
        Dep(0, 2), Dep(2, 3), Dep(1, 3), Dep(3, 4, is_data=True),
        Dep(5, 5, distance=1),
        Dep(5, 0, distance=1), Dep(5, 1, distance=1),
        Dep(1, 4, is_data=False),   # store after the load it replaces
    ]
    return LoopDDG(ops, deps, trip_count=512, name="daxpy")


def fir_filter(taps: int = 8) -> LoopDDG:
    """``y[i] = sum_k c[k] * x[i-k]`` with the window kept in registers.

    The shifted window gives ``taps`` distance-1 dependences — the classic
    high-pressure software-pipelining example: MaxLive grows with the tap
    count while the II stays resource-bound.
    """
    ops: List[LoopOp] = [LoopOp(0, "mem_load", 2)]       # x[i]
    deps: List[Dep] = []
    win = [0]
    next_id = 1
    for k in range(1, taps):
        ops.append(LoopOp(next_id, "alu", 1))            # window shift copy
        deps.append(Dep(win[-1], next_id, distance=1, is_data=True))
        win.append(next_id)
        next_id += 1
    prev_sum = None
    for k in range(taps):
        mul = next_id
        ops.append(LoopOp(mul, "mul", 3))
        deps.append(Dep(win[k], mul, is_data=True))
        next_id += 1
        if prev_sum is None:
            prev_sum = mul
        else:
            add = next_id
            ops.append(LoopOp(add, "alu", 1))
            deps.append(Dep(prev_sum, add, is_data=True))
            deps.append(Dep(mul, add, is_data=True))
            prev_sum = add
            next_id += 1
    store = next_id
    ops.append(LoopOp(store, "mem_store", 2))
    deps.append(Dep(prev_sum, store, is_data=True))
    return LoopDDG(ops, deps, trip_count=256, name=f"fir{taps}")


def stencil3() -> LoopDDG:
    """``out[i] = (in[i-1] + 2*in[i] + in[i+1]) / 4`` with the neighbour
    values carried across iterations instead of reloaded."""
    ops = [
        LoopOp(0, "mem_load", 2),   # in[i+1]
        LoopOp(1, "alu", 1),        # keep as next centre (shift)
        LoopOp(2, "alu", 1),        # keep as next left (shift)
        LoopOp(3, "alu", 1),        # centre * 2
        LoopOp(4, "alu", 1),        # left + right
        LoopOp(5, "alu", 1),        # sum
        LoopOp(6, "alu", 1),        # >> 2
        LoopOp(7, "mem_store", 2),  # out[i]
        LoopOp(8, "alu", 1),        # i++
    ]
    deps = [
        Dep(0, 1), Dep(1, 2, distance=1),
        Dep(1, 3, distance=1),      # centre came from last iteration's load
        Dep(2, 4, distance=1),      # left from two iterations back
        Dep(0, 4),                  # right is this iteration's load
        Dep(3, 5), Dep(4, 5), Dep(5, 6), Dep(6, 7, is_data=True),
        Dep(8, 8, distance=1), Dep(8, 0, distance=1),
    ]
    return LoopDDG(ops, deps, trip_count=512, name="stencil3")


def recurrence_chain(latency: int = 4) -> LoopDDG:
    """A tight loop-carried chain — RecMII-bound by construction: the II
    cannot drop below the chain latency no matter the resources."""
    ops = [
        LoopOp(0, "mul", latency),
        LoopOp(1, "alu", 1),
        LoopOp(2, "alu", 1),
    ]
    deps = [
        Dep(0, 1), Dep(1, 0, distance=1),   # cycle: latency + 1 over dist 1
        Dep(2, 2, distance=1),
    ]
    return LoopDDG(ops, deps, trip_count=128, name=f"recur{latency}")


def reduction_tree(width: int = 8) -> LoopDDG:
    """``acc += a[0..w-1]`` per iteration, summed as a balanced tree —
    wide instruction-level parallelism, FU-bound ResMII."""
    ops: List[LoopOp] = []
    deps: List[Dep] = []
    level = []
    next_id = 0
    for _ in range(width):
        ops.append(LoopOp(next_id, "mem_load", 2))
        level.append(next_id)
        next_id += 1
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            ops.append(LoopOp(next_id, "alu", 1))
            deps.append(Dep(level[i], next_id, is_data=True))
            deps.append(Dep(level[i + 1], next_id, is_data=True))
            nxt.append(next_id)
            next_id += 1
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    acc = next_id
    ops.append(LoopOp(acc, "alu", 1))
    deps.append(Dep(level[0], acc, is_data=True))
    deps.append(Dep(acc, acc, distance=1, is_data=True))
    return LoopDDG(ops, deps, trip_count=128, name=f"reduce{width}")


CLASSIC_LOOPS: Dict[str, LoopDDG] = {
    loop.name: loop
    for loop in (
        dot_product(), daxpy(), fir_filter(8), fir_filter(16),
        stencil3(), recurrence_chain(4), reduction_tree(8),
    )
}


def get_classic_loop(name: str) -> LoopDDG:
    """Look up a classic loop by name (KeyError if unknown)."""
    return CLASSIC_LOOPS[name]
