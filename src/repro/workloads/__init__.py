"""Workloads for the two evaluations.

* :mod:`repro.workloads.mibench` — ten executable IR kernels modelled on the
  MiBench programs the paper evaluates (Section 10.1).
* :mod:`repro.workloads.synth` — seeded random program generator used by
  property-based tests and population studies.
* :mod:`repro.workloads.spec_loops` — the synthetic population of SPEC2000-
  like innermost loops for the software-pipelining study (Section 10.2).
"""

from repro.workloads.mibench import MIBENCH, Workload, get_workload
from repro.workloads.synth import generate_function
from repro.workloads.spec_loops import LoopSpec, generate_loop_population

__all__ = [
    "MIBENCH",
    "Workload",
    "get_workload",
    "generate_function",
    "LoopSpec",
    "generate_loop_population",
]
