"""Ten executable IR kernels modelled on the MiBench suite.

The paper evaluates 10 MiBench programs (Section 10.1).  We cannot compile
C, so each kernel is a hand-written IR transcription of the corresponding
program's hot loop, self-contained (inputs are generated in-IR with an LCG)
and returning a checksum so semantic preservation can be asserted across
every allocation/encoding setup.

The kernels are written the way an optimising compiler leaves them:
loop-invariant constants (polynomials, masks, base addresses, bounds, LCG
multipliers) are hoisted into registers outside the loops.  That is what
creates the register pressure the paper measures — a THUMB-class 8-register
ISA cannot keep a CRC polynomial, two masks, three addresses and the
induction variables resident at once, so the baseline spills; with 12
differentially addressable registers most of those spills disappear.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

from repro.ir.builder import FunctionBuilder
from repro.ir.function import Function
from repro.ir.instr import Instr, Reg

__all__ = ["Workload", "MIBENCH", "get_workload"]

_LCG_A = 1103515245
_LCG_C = 12345
_LCG_MASK = 0x7FFFFFFF


class _Consts:
    """Loop-invariant constants materialised once in the entry block."""

    def __init__(self, fb: FunctionBuilder) -> None:
        self.fb = fb
        self._regs: dict = {}

    def get(self, value: int) -> Reg:
        if value not in self._regs:
            r = self.fb.vreg()
            self.fb.li(r, value)
            self._regs[value] = r
        return self._regs[value]


def _lcg_step(fb: FunctionBuilder, c: _Consts, seed: Reg, tmp: Reg) -> None:
    """seed = (seed * A + C) & MASK, with hoisted constants."""
    fb.mul(tmp, seed, c.get(_LCG_A))
    fb.add(tmp, tmp, c.get(_LCG_C))
    fb.emit(Instr("and", dst=seed, srcs=(tmp, c.get(_LCG_MASK))))


def _fill_array(fb: FunctionBuilder, c: _Consts, label: str, base_addr: int,
                count: Reg, seed_init: int, mask: int = 0xFF) -> None:
    """Emit a loop writing ``count`` pseudo-random values to ``base_addr``."""
    seed, tmp, idx, addr, val = fb.vregs(5)
    fb.li(seed, seed_init)
    fb.li(idx, 0)
    fb.li(addr, base_addr)
    fb.block(f"{label}_fill")
    _lcg_step(fb, c, seed, tmp)
    fb.emit(Instr("and", dst=val, srcs=(seed, c.get(mask))))
    fb.st(val, addr, 0)
    fb.addi(addr, addr, 1)
    fb.addi(idx, idx, 1)
    fb.blt(idx, count, f"{label}_fill")
    fb.block(f"{label}_done")


# ----------------------------------------------------------------------
# kernels
# ----------------------------------------------------------------------


def build_bitcount() -> Function:
    """Kernighan bit counting over an LCG stream (MiBench *bitcount*)."""
    fb = FunctionBuilder("bitcount")
    n = fb.vreg()
    fb.params = (n,)
    fb.block("entry")
    c = _Consts(fb)
    one, zero = c.get(1), c.get(0)
    seed, tmp, acc, i = fb.vregs(4)
    fb.li(seed, 12345)
    fb.li(acc, 0)
    fb.li(i, 0)
    fb.block("outer")
    _lcg_step(fb, c, seed, tmp)
    x, bit = fb.vregs(2)
    fb.mov(x, seed)
    fb.block("inner")
    fb.emit(Instr("and", dst=bit, srcs=(x, one)))
    fb.add(acc, acc, bit)
    fb.shri(x, x, 1)
    fb.bgt(x, zero, "inner")
    fb.block("next")
    fb.add(i, i, one)
    fb.blt(i, n, "outer")
    fb.block("exit")
    fb.ret(acc)
    return fb.build()


def build_crc32() -> Function:
    """Bitwise CRC-32 over LCG bytes (MiBench *crc32*)."""
    fb = FunctionBuilder("crc32")
    n = fb.vreg()
    fb.params = (n,)
    fb.block("entry")
    c = _Consts(fb)
    poly = c.get(0x04C11DB7)
    byte_mask = c.get(0xFF)
    one, zero, eight = c.get(1), c.get(0), c.get(8)
    crc, seed, tmp, i, byte = fb.vregs(5)
    fb.li(crc, -1)
    fb.li(seed, 99)
    fb.li(i, 0)
    fb.block("outer")
    _lcg_step(fb, c, seed, tmp)
    fb.emit(Instr("and", dst=byte, srcs=(seed, byte_mask)))
    fb.xor(crc, crc, byte)
    j, lsb = fb.vregs(2)
    fb.li(j, 0)
    fb.block("bits")
    fb.emit(Instr("and", dst=lsb, srcs=(crc, one)))
    fb.shri(crc, crc, 1)
    fb.beq(lsb, zero, "no_poly")
    fb.block("do_poly")
    fb.xor(crc, crc, poly)
    fb.block("no_poly")
    fb.add(j, j, one)
    fb.blt(j, eight, "bits")
    fb.block("next")
    fb.add(i, i, one)
    fb.blt(i, n, "outer")
    fb.block("exit")
    fb.ret(crc)
    return fb.build()


def build_qsort() -> Function:
    """In-place bubble sort + checksum (stands in for MiBench *qsort*'s
    comparison-and-swap traffic)."""
    fb = FunctionBuilder("qsort")
    n = fb.vreg()
    fb.params = (n,)
    fb.block("entry")
    c = _Consts(fb)
    base = c.get(0x1000)
    one = c.get(1)
    mul31 = c.get(31)
    _fill_array(fb, c, "arr", 0x1000, n, 7)
    i, j, limit = fb.vregs(3)
    fb.li(i, 0)
    fb.block("outer")
    fb.li(j, 0)
    fb.sub(limit, n, i)
    fb.sub(limit, limit, one)
    fb.bge(j, limit, "outer_next")
    fb.block("inner")
    a, b, addr = fb.vregs(3)
    fb.add(addr, base, j)
    fb.ld(a, addr, 0)
    fb.ld(b, addr, 1)
    fb.ble(a, b, "no_swap")
    fb.block("swap")
    fb.st(b, addr, 0)
    fb.st(a, addr, 1)
    fb.block("no_swap")
    fb.add(j, j, one)
    fb.blt(j, limit, "inner")
    fb.block("outer_next")
    fb.add(i, i, one)
    fb.blt(i, n, "outer")
    fb.block("checksum")
    acc, k, addr2, v, w = fb.vregs(5)
    fb.li(acc, 0)
    fb.li(k, 0)
    fb.mov(addr2, base)
    fb.block("sum")
    fb.ld(v, addr2, 0)
    fb.mul(w, acc, mul31)
    fb.add(acc, w, v)
    fb.add(addr2, addr2, one)
    fb.add(k, k, one)
    fb.blt(k, n, "sum")
    fb.block("exit")
    fb.ret(acc)
    return fb.build()


def build_dijkstra() -> Function:
    """All-pairs relaxation over an LCG weight matrix (MiBench *dijkstra*)."""
    fb = FunctionBuilder("dijkstra")
    n = fb.vreg()
    fb.params = (n,)
    fb.block("entry")
    c = _Consts(fb)
    wbase = c.get(0x2000)
    dbase = c.get(0x3000)
    one = c.get(1)
    three = c.get(3)
    nn, big = fb.vregs(2)
    fb.mul(nn, n, n)
    _fill_array(fb, c, "w", 0x2000, nn, 3, 0x3F)
    di, daddr = fb.vregs(2)
    fb.li(big, 1 << 20)
    fb.li(di, 0)
    fb.mov(daddr, dbase)
    fb.block("dist_init")
    fb.st(big, daddr, 0)
    fb.add(daddr, daddr, one)
    fb.add(di, di, one)
    fb.blt(di, n, "dist_init")
    fb.block("dist_src")
    d0 = fb.vreg()
    fb.li(d0, 0)
    fb.st(d0, dbase, 0)
    rounds = fb.vreg()
    fb.li(rounds, 0)
    fb.block("round")
    u, v = fb.vregs(2)
    fb.li(u, 0)
    fb.block("u_loop")
    fb.li(v, 0)
    fb.block("v_loop")
    du, dv, wuv, cand, ua, va, wa, row = fb.vregs(8)
    fb.add(ua, dbase, u)
    fb.ld(du, ua, 0)
    fb.add(va, dbase, v)
    fb.ld(dv, va, 0)
    fb.mul(row, u, n)
    fb.add(wa, wbase, row)
    fb.add(wa, wa, v)
    fb.ld(wuv, wa, 0)
    fb.add(cand, du, wuv)
    fb.bge(cand, dv, "no_relax")
    fb.block("relax")
    fb.st(cand, va, 0)
    fb.block("no_relax")
    fb.add(v, v, one)
    fb.blt(v, n, "v_loop")
    fb.block("u_next")
    fb.add(u, u, one)
    fb.blt(u, n, "u_loop")
    fb.block("round_next")
    fb.add(rounds, rounds, one)
    fb.blt(rounds, three, "round")
    fb.block("checksum")
    acc, k, addr, val = fb.vregs(4)
    fb.li(acc, 0)
    fb.li(k, 0)
    fb.mov(addr, dbase)
    fb.block("sum")
    fb.ld(val, addr, 0)
    fb.add(acc, acc, val)
    fb.add(addr, addr, one)
    fb.add(k, k, one)
    fb.blt(k, n, "sum")
    fb.block("exit")
    fb.ret(acc)
    return fb.build()


def build_sha() -> Function:
    """SHA-1-style mixing rounds — the high-pressure kernel (MiBench *sha*).

    Five chaining variables, a 16-entry schedule, a hoisted round constant
    and table base: the inner loop keeps ~15 values live, well past 8
    registers.
    """
    fb = FunctionBuilder("sha")
    n = fb.vreg()
    fb.params = (n,)
    fb.block("entry")
    c = _Consts(fb)
    wbase = c.get(0x4000)
    kconst = c.get(0x5A827999)
    fifteen = c.get(15)
    one = c.get(1)
    twenty = c.get(20)
    w_count = fb.vreg()
    fb.li(w_count, 16)
    _fill_array(fb, c, "w", 0x4000, w_count, 11, 0x7FFFFFFF)
    a, b, d, e, f_ = fb.vregs(5)
    fb.li(a, 0x67452301)
    fb.li(b, 0x7FCDAB89)
    fb.li(d, 0x10325476)
    fb.li(e, 0x43D2E1F0)
    cc = fb.vreg()
    fb.li(cc, 0x18BADCFE)
    blk = fb.vreg()
    fb.li(blk, 0)
    fb.block("block_loop")
    t = fb.vreg()
    fb.li(t, 0)
    fb.block("round")
    f1, f2, nb, rot5, rot27, tmp, widx, wval, waddr = fb.vregs(9)
    fb.emit(Instr("and", dst=f1, srcs=(b, cc)))
    fb.xori(nb, b, -1)
    fb.emit(Instr("and", dst=f2, srcs=(nb, d)))
    fb.emit(Instr("or", dst=f1, srcs=(f1, f2)))
    fb.shli(rot5, a, 5)
    fb.shri(tmp, a, 27)
    fb.emit(Instr("or", dst=rot5, srcs=(rot5, tmp)))
    fb.emit(Instr("and", dst=widx, srcs=(t, fifteen)))
    fb.add(waddr, wbase, widx)
    fb.ld(wval, waddr, 0)
    fb.add(rot5, rot5, f1)
    fb.add(rot5, rot5, e)
    fb.add(rot5, rot5, kconst)
    fb.add(rot5, rot5, wval)
    fb.mov(e, d)
    fb.mov(d, cc)
    fb.shli(rot27, b, 30)
    fb.shri(tmp, b, 2)
    fb.emit(Instr("or", dst=cc, srcs=(rot27, tmp)))
    fb.mov(b, a)
    fb.mov(a, rot5)
    w2idx, w2addr, w2val = fb.vregs(3)
    fb.addi(w2idx, t, 2)
    fb.emit(Instr("and", dst=w2idx, srcs=(w2idx, fifteen)))
    fb.add(w2addr, wbase, w2idx)
    fb.ld(w2val, w2addr, 0)
    fb.xor(wval, wval, w2val)
    fb.st(wval, waddr, 0)
    fb.add(t, t, one)
    fb.blt(t, twenty, "round")
    fb.block("block_next")
    fb.add(blk, blk, one)
    fb.blt(blk, n, "block_loop")
    fb.block("exit")
    acc = fb.vreg()
    fb.add(acc, a, b)
    fb.add(acc, acc, cc)
    fb.add(acc, acc, d)
    fb.add(acc, acc, e)
    fb.ret(acc)
    return fb.build()


def build_fft() -> Function:
    """Fixed-point butterfly passes (MiBench *fft*) — high register pressure."""
    fb = FunctionBuilder("fft")
    n = fb.vreg()
    fb.params = (n,)
    fb.block("entry")
    c = _Consts(fb)
    rbase = c.get(0x5000)
    ibase = c.get(0x6000)
    scale = c.get(4096)
    eight = c.get(8)
    one = c.get(1)
    size, half = fb.vregs(2)
    fb.li(size, 32)
    fb.li(half, 16)
    _fill_array(fb, c, "re", 0x5000, size, 17, 0xFFF)
    _fill_array(fb, c, "im", 0x6000, size, 29, 0xFFF)
    p = fb.vreg()
    fb.li(p, 0)
    fb.block("pass_loop")
    i = fb.vreg()
    fb.li(i, 0)
    fb.block("bfly")
    ra, ia, rb, ib, wr, wi, tr, ti, aaddr, baddr, iaaddr, ibaddr = fb.vregs(12)
    fb.add(aaddr, rbase, i)
    fb.add(baddr, aaddr, half)
    fb.add(iaaddr, ibase, i)
    fb.add(ibaddr, iaaddr, half)
    fb.ld(ra, aaddr, 0)
    fb.ld(ia, iaaddr, 0)
    fb.ld(rb, baddr, 0)
    fb.ld(ib, ibaddr, 0)
    fb.mul(wi, i, eight)
    fb.sub(wr, scale, wi)
    t1, t2 = fb.vregs(2)
    fb.mul(t1, wr, rb)
    fb.mul(t2, wi, ib)
    fb.sub(tr, t1, t2)
    fb.shri(tr, tr, 12)
    fb.mul(t1, wr, ib)
    fb.mul(t2, wi, rb)
    fb.add(ti, t1, t2)
    fb.shri(ti, ti, 12)
    o1, o2 = fb.vregs(2)
    fb.add(o1, ra, tr)
    fb.sub(o2, ra, tr)
    fb.st(o1, aaddr, 0)
    fb.st(o2, baddr, 0)
    fb.add(o1, ia, ti)
    fb.sub(o2, ia, ti)
    fb.st(o1, iaaddr, 0)
    fb.st(o2, ibaddr, 0)
    fb.add(i, i, one)
    fb.blt(i, half, "bfly")
    fb.block("pass_next")
    fb.add(p, p, one)
    fb.blt(p, n, "pass_loop")
    fb.block("checksum")
    acc, kk, addr, val = fb.vregs(4)
    fb.li(acc, 0)
    fb.li(kk, 0)
    fb.mov(addr, rbase)
    fb.block("sum")
    fb.ld(val, addr, 0)
    fb.add(acc, acc, val)
    fb.add(addr, addr, one)
    fb.add(kk, kk, one)
    fb.blt(kk, size, "sum")
    fb.block("exit")
    fb.ret(acc)
    return fb.build()


def build_stringsearch() -> Function:
    """Naive substring scan over LCG text (MiBench *stringsearch*)."""
    fb = FunctionBuilder("stringsearch")
    n = fb.vreg()
    fb.params = (n,)
    fb.block("entry")
    c = _Consts(fb)
    tbase = c.get(0x7000)
    one = c.get(1)
    _fill_array(fb, c, "text", 0x7000, n, 23, 0x0F)
    # pattern: the first two text elements (guarantees at least one match)
    p0, p1 = fb.vregs(2)
    fb.ld(p0, tbase, 0)
    fb.ld(p1, tbase, 1)
    found, i, limit = fb.vregs(3)
    fb.li(found, 0)
    fb.li(i, 0)
    fb.sub(limit, n, one)
    fb.block("scan")
    c0, c1, addr = fb.vregs(3)
    fb.add(addr, tbase, i)
    fb.ld(c0, addr, 0)
    fb.bne(c0, p0, "no_match")
    fb.block("second")
    fb.ld(c1, addr, 1)
    fb.bne(c1, p1, "no_match")
    fb.block("match")
    fb.add(found, found, one)
    fb.block("no_match")
    fb.add(i, i, one)
    fb.blt(i, limit, "scan")
    fb.block("exit")
    fb.ret(found)
    return fb.build()


def build_blowfish() -> Function:
    """Feistel rounds with S-box lookups (MiBench *blowfish*)."""
    fb = FunctionBuilder("blowfish")
    n = fb.vreg()
    fb.params = (n,)
    fb.block("entry")
    c = _Consts(fb)
    sbase = c.get(0x8000)
    m63 = c.get(63)
    golden = c.get(0x9E3779)
    one = c.get(1)
    sixteen = c.get(16)
    sbox_n = fb.vreg()
    fb.li(sbox_n, 64)
    _fill_array(fb, c, "sbox", 0x8000, sbox_n, 41, 0xFFFF)
    left, right, blk, acc = fb.vregs(4)
    fb.li(left, 0x12345678)
    fb.li(right, 0x7EDCBA98)
    fb.li(blk, 0)
    fb.li(acc, 0)
    fb.block("block_loop")
    r = fb.vreg()
    fb.li(r, 0)
    fb.block("round")
    i1, i2, i3, i4, s1, s2, s3, s4, f, addr = fb.vregs(10)
    fb.emit(Instr("and", dst=i1, srcs=(left, m63)))
    fb.shri(i2, left, 6)
    fb.emit(Instr("and", dst=i2, srcs=(i2, m63)))
    fb.shri(i3, left, 12)
    fb.emit(Instr("and", dst=i3, srcs=(i3, m63)))
    fb.shri(i4, left, 18)
    fb.emit(Instr("and", dst=i4, srcs=(i4, m63)))
    fb.add(addr, sbase, i1)
    fb.ld(s1, addr, 0)
    fb.add(addr, sbase, i2)
    fb.ld(s2, addr, 0)
    fb.add(addr, sbase, i3)
    fb.ld(s3, addr, 0)
    fb.add(addr, sbase, i4)
    fb.ld(s4, addr, 0)
    fb.add(f, s1, s2)
    fb.xor(f, f, s3)
    fb.add(f, f, s4)
    rc, newl = fb.vregs(2)
    fb.mul(rc, r, golden)
    fb.xor(f, f, rc)
    fb.xor(right, right, f)
    fb.mov(newl, right)
    fb.mov(right, left)
    fb.mov(left, newl)
    fb.add(r, r, one)
    fb.blt(r, sixteen, "round")
    fb.block("block_next")
    fb.xor(acc, acc, left)
    fb.add(acc, acc, right)
    fb.add(blk, blk, one)
    fb.blt(blk, n, "block_loop")
    fb.block("exit")
    fb.ret(acc)
    return fb.build()


def build_adpcm() -> Function:
    """ADPCM step encoder with clamping branches (MiBench *adpcm*)."""
    fb = FunctionBuilder("adpcm")
    n = fb.vreg()
    fb.params = (n,)
    fb.block("entry")
    c = _Consts(fb)
    pbase = c.get(0x9000)
    zero = c.get(0)
    one = c.get(1)
    four = c.get(4)
    seven = c.get(7)
    nine = c.get(9)
    five = c.get(5)
    seventeen = c.get(17)
    _fill_array(fb, c, "pcm", 0x9000, n, 31, 0xFFF)
    pred, step, i, out = fb.vregs(4)
    fb.li(pred, 0)
    fb.li(step, 7)
    fb.li(i, 0)
    fb.li(out, 0)
    fb.block("sample")
    x, diff, delta, addr = fb.vregs(4)
    fb.add(addr, pbase, i)
    fb.ld(x, addr, 0)
    fb.sub(diff, x, pred)
    fb.bge(diff, zero, "pos")
    fb.block("neg")
    fb.sub(diff, zero, diff)
    fb.block("pos")
    fb.div(delta, diff, step)
    fb.ble(delta, seven, "no_clamp")
    fb.block("clamp")
    fb.mov(delta, seven)
    fb.block("no_clamp")
    upd = fb.vreg()
    fb.mul(upd, delta, step)
    fb.add(pred, pred, upd)
    fb.bge(delta, four, "step_up")
    fb.block("step_down")
    fb.mul(step, step, nine)
    fb.shri(step, step, 4)
    fb.br("step_done")
    fb.block("step_up")
    fb.mul(step, step, five)
    fb.shri(step, step, 2)
    fb.block("step_done")
    fb.bge(step, one, "step_ok")
    fb.block("step_min")
    fb.mov(step, one)
    fb.block("step_ok")
    fb.mul(out, out, seventeen)
    fb.add(out, out, delta)
    fb.add(i, i, one)
    fb.blt(i, n, "sample")
    fb.block("exit")
    fb.ret(out)
    return fb.build()


def build_susan() -> Function:
    """3-tap weighted smoothing stencil (MiBench *susan* smoothing)."""
    fb = FunctionBuilder("susan")
    n = fb.vreg()
    fb.params = (n,)
    fb.block("entry")
    c = _Consts(fb)
    ibase = c.get(0xA000)
    obase = c.get(0xB000)
    two = c.get(2)
    one = c.get(1)
    _fill_array(fb, c, "img", 0xA000, n, 53, 0xFF)
    i, limit, acc = fb.vregs(3)
    fb.li(i, 1)
    fb.sub(limit, n, one)
    fb.li(acc, 0)
    fb.block("stencil")
    a, b, cx, w0, w1, s, addr, outaddr = fb.vregs(8)
    fb.add(addr, ibase, i)
    fb.ld(a, addr, -1)
    fb.ld(b, addr, 0)
    fb.ld(cx, addr, 1)
    fb.mul(w0, b, two)
    fb.add(w1, a, cx)
    fb.add(s, w0, w1)
    fb.shri(s, s, 2)
    fb.add(outaddr, obase, i)
    fb.st(s, outaddr, 0)
    fb.add(acc, acc, s)
    fb.add(i, i, one)
    fb.blt(i, limit, "stencil")
    fb.block("exit")
    fb.ret(acc)
    return fb.build()


def build_rijndael() -> Function:
    """Byte-substitution + mixing rounds (MiBench *rijndael*)."""
    fb = FunctionBuilder("rijndael")
    n = fb.vreg()
    fb.params = (n,)
    fb.block("entry")
    c = _Consts(fb)
    tbase = c.get(0xC000)
    m63 = c.get(63)
    rcmul = c.get(0x1B)
    one = c.get(1)
    tbl_n = fb.vreg()
    fb.li(tbl_n, 64)
    _fill_array(fb, c, "tbl", 0xC000, tbl_n, 61, 0xFF)
    s0, s1, s2, s3, blk, acc = fb.vregs(6)
    fb.li(s0, 0x11)
    fb.li(s1, 0x22)
    fb.li(s2, 0x33)
    fb.li(s3, 0x44)
    fb.li(blk, 0)
    fb.li(acc, 0)
    fb.block("block_loop")
    t0, t1, t2, t3, addr, key = fb.vregs(6)
    for src, dst in ((s0, t0), (s1, t1), (s2, t2), (s3, t3)):
        idx = fb.vreg()
        fb.emit(Instr("and", dst=idx, srcs=(src, m63)))
        fb.add(addr, tbase, idx)
        fb.ld(dst, addr, 0)
    fb.xor(s0, t0, t1)
    fb.xor(s1, t1, t2)
    fb.xor(s2, t2, t3)
    fb.xor(s3, t3, t0)
    fb.mul(key, blk, rcmul)
    fb.xor(s0, s0, key)
    fb.add(acc, acc, s0)
    fb.add(acc, acc, s2)
    fb.add(blk, blk, one)
    fb.blt(blk, n, "block_loop")
    fb.block("exit")
    fb.add(acc, acc, s1)
    fb.add(acc, acc, s3)
    fb.ret(acc)
    return fb.build()


def build_dct() -> Function:
    """1-D 8-point integer DCT butterflies (MiBench *jpeg*'s hot kernel).

    The even/odd decomposition keeps all eight inputs, four sums, four
    differences and the scaled constants live at once — with the stencil
    coefficients hoisted, pressure rivals ``sha``.
    """
    fb = FunctionBuilder("dct")
    n = fb.vreg()
    fb.params = (n,)
    fb.block("entry")
    c = _Consts(fb)
    ibase = c.get(0xD000)
    obase = c.get(0xE000)
    c1 = c.get(1004)   # cos table, 10-bit fixed point
    c2 = c.get(851)
    c3 = c.get(569)
    c4 = c.get(724)
    one = c.get(1)
    eight = c.get(8)
    count = fb.vreg()
    fb.mul(count, n, eight)
    _fill_array(fb, c, "samples", 0xD000, count, 37, 0x3FF)
    blk, acc = fb.vregs(2)
    fb.li(blk, 0)
    fb.li(acc, 0)
    fb.block("block_loop")
    base, x0, x1, x2, x3, x4, x5, x6, x7 = fb.vregs(9)
    fb.mul(base, blk, eight)
    fb.add(base, base, ibase)
    fb.ld(x0, base, 0)
    fb.ld(x1, base, 1)
    fb.ld(x2, base, 2)
    fb.ld(x3, base, 3)
    fb.ld(x4, base, 4)
    fb.ld(x5, base, 5)
    fb.ld(x6, base, 6)
    fb.ld(x7, base, 7)
    # even part: sums and differences
    s0, s1, s2, s3, d0, d1, d2, d3 = fb.vregs(8)
    fb.add(s0, x0, x7)
    fb.add(s1, x1, x6)
    fb.add(s2, x2, x5)
    fb.add(s3, x3, x4)
    fb.sub(d0, x0, x7)
    fb.sub(d1, x1, x6)
    fb.sub(d2, x2, x5)
    fb.sub(d3, x3, x4)
    y0, y2, y4, y6, t0, t1 = fb.vregs(6)
    fb.add(t0, s0, s3)
    fb.add(t1, s1, s2)
    fb.add(y0, t0, t1)
    fb.sub(y4, t0, t1)
    fb.sub(t0, s0, s3)
    fb.sub(t1, s1, s2)
    fb.mul(y2, t0, c2)
    fb.mul(t1, t1, c3)
    fb.add(y2, y2, t1)
    fb.shri(y2, y2, 10)
    fb.mul(y6, t0, c3)
    fb.sub(y6, y6, t1)
    fb.shri(y6, y6, 10)
    # odd part (abbreviated rotation network)
    y1, y3, o0, o1 = fb.vregs(4)
    fb.mul(o0, d0, c1)
    fb.mul(o1, d1, c4)
    fb.add(y1, o0, o1)
    fb.shri(y1, y1, 10)
    fb.mul(o0, d2, c4)
    fb.mul(o1, d3, c1)
    fb.sub(y3, o0, o1)
    fb.shri(y3, y3, 10)
    out = fb.vreg()
    fb.mul(out, blk, eight)
    fb.add(out, out, obase)
    fb.st(y0, out, 0)
    fb.st(y1, out, 1)
    fb.st(y2, out, 2)
    fb.st(y3, out, 3)
    fb.st(y4, out, 4)
    fb.st(y6, out, 6)
    fb.add(acc, acc, y0)
    fb.xor(acc, acc, y2)
    fb.add(acc, acc, y1)
    fb.add(blk, blk, one)
    fb.blt(blk, n, "block_loop")
    fb.block("exit")
    fb.ret(acc)
    return fb.build()


def build_patricia() -> Function:
    """Bit-trie lookups over a packed node array (MiBench *patricia*).

    Branchy pointer chasing: each probe walks nodes testing one key bit per
    step, with the node layout (bit index, left, right, value) flattened
    into memory.  Low ALU pressure, high branch and D-cache activity —
    the opposite profile from ``sha``/``fft``.
    """
    fb = FunctionBuilder("patricia")
    n = fb.vreg()
    fb.params = (n,)
    fb.block("entry")
    c = _Consts(fb)
    tbase = c.get(0xF000)   # node array: 4 words per node
    one = c.get(1)
    four = c.get(4)
    seven = c.get(7)
    depth_limit = c.get(6)
    node_count = fb.vreg()
    fb.li(node_count, 64)
    # fill the node fields pseudo-randomly: bit in [0,7], children in [0,15]
    nn = fb.vreg()
    fb.mul(nn, node_count, four)
    _fill_array(fb, c, "nodes", 0xF000, nn, 43, 0x0F)
    seed, tmp, i, acc = fb.vregs(4)
    fb.li(seed, 5)
    fb.li(i, 0)
    fb.li(acc, 0)
    fb.block("probe")
    _lcg_step(fb, c, seed, tmp)
    key, node, depth = fb.vregs(3)
    fb.emit(Instr("and", dst=key, srcs=(seed, c.get(0xFF))))
    fb.li(node, 0)
    fb.li(depth, 0)
    fb.block("walk")
    addr, bit_idx, bit, child = fb.vregs(4)
    fb.mul(addr, node, four)
    fb.add(addr, addr, tbase)
    fb.ld(bit_idx, addr, 0)
    fb.emit(Instr("and", dst=bit_idx, srcs=(bit_idx, seven)))
    fb.shr(bit, key, bit_idx)
    fb.emit(Instr("and", dst=bit, srcs=(bit, one)))
    fb.beq(bit, one, "go_right")
    fb.block("go_left")
    fb.ld(child, addr, 1)
    fb.br("descend")
    fb.block("go_right")
    fb.ld(child, addr, 2)
    fb.block("descend")
    fb.mov(node, child)
    fb.add(depth, depth, one)
    fb.blt(depth, depth_limit, "walk")
    fb.block("leaf")
    val = fb.vreg()
    fb.mul(addr, node, four)
    fb.add(addr, addr, tbase)
    fb.ld(val, addr, 3)
    fb.add(acc, acc, val)
    fb.xor(acc, acc, key)
    fb.add(i, i, one)
    fb.blt(i, n, "probe")
    fb.block("exit")
    fb.ret(acc)
    return fb.build()


def build_gsm() -> Function:
    """Short-term LPC analysis filter (MiBench *gsm*).

    A multiply-accumulate lattice over eight reflection coefficients with
    saturation clamps — DSP-style code: moderate pressure, long dependence
    chains, branchy clamping.
    """
    fb = FunctionBuilder("gsm")
    n = fb.vreg()
    fb.params = (n,)
    fb.block("entry")
    c = _Consts(fb)
    sbase = c.get(0x11000)
    rbase = c.get(0x12000)
    one = c.get(1)
    eight = c.get(8)
    sat_hi = c.get(32767)
    sat_lo = c.get(-32768)
    _fill_array(fb, c, "samples", 0x11000, n, 71, 0x7FFF)
    coeff_n = fb.vreg()
    fb.li(coeff_n, 8)
    _fill_array(fb, c, "refl", 0x12000, coeff_n, 73, 0x3FFF)
    i, acc = fb.vregs(2)
    fb.li(i, 0)
    fb.li(acc, 0)
    fb.block("sample")
    # lattice: u and d recurrences through the coefficient array
    u, d, addr = fb.vregs(3)
    fb.add(addr, sbase, i)
    fb.ld(u, addr, 0)
    fb.mov(d, u)
    k = fb.vreg()
    fb.li(k, 0)
    fb.block("stage")
    r, caddr, t1, t2, unew = fb.vregs(5)
    fb.add(caddr, rbase, k)
    fb.ld(r, caddr, 0)
    fb.mul(t1, r, d)
    fb.shri(t1, t1, 14)
    fb.add(unew, u, t1)
    fb.mul(t2, r, u)
    fb.shri(t2, t2, 14)
    fb.add(d, d, t2)
    fb.mov(u, unew)
    # saturate u
    fb.ble(u, sat_hi, "no_hi")
    fb.block("clamp_hi")
    fb.mov(u, sat_hi)
    fb.block("no_hi")
    fb.bge(u, sat_lo, "no_lo")
    fb.block("clamp_lo")
    fb.mov(u, sat_lo)
    fb.block("no_lo")
    fb.add(k, k, one)
    fb.blt(k, eight, "stage")
    fb.block("next")
    fb.xor(acc, acc, u)
    fb.add(acc, acc, d)
    fb.add(i, i, one)
    fb.blt(i, n, "sample")
    fb.block("exit")
    fb.ret(acc)
    return fb.build()


def build_sha256() -> Function:
    """SHA-256-style compression step (modern-crypto cousin of ``sha``).

    Eight chaining variables plus the sigma rotations: the highest-pressure
    kernel in the suite (~18 live values in the round loop).
    """
    fb = FunctionBuilder("sha256")
    n = fb.vreg()
    fb.params = (n,)
    fb.block("entry")
    c = _Consts(fb)
    wbase = c.get(0x13000)
    kconst = c.get(0x428A2F98 & 0x7FFFFFFF)
    fifteen = c.get(15)
    one = c.get(1)
    rounds = c.get(16)
    w_count = fb.vreg()
    fb.li(w_count, 16)
    _fill_array(fb, c, "w", 0x13000, w_count, 83, 0x7FFFFFFF)
    a, b, cc, d, e, f, g, h = fb.vregs(8)
    for reg, init in ((a, 0x6A09E667), (b, 0x3B67AE85), (cc, 0x3C6EF372),
                      (d, 0x2454FF53), (e, 0x310E527F), (f, 0x1B05688C),
                      (g, 0x1F83D9AB), (h, 0x5BE0CD19)):
        fb.li(reg, init & 0x7FFFFFFF)
    blk = fb.vreg()
    fb.li(blk, 0)
    fb.block("block_loop")
    t = fb.vreg()
    fb.li(t, 0)
    fb.block("round")
    s1, ch, nch, tmp1, s0, maj, tmp2, widx, waddr, wval = fb.vregs(10)
    # S1 = rotr(e, 6) ^ rotr(e, 11) (truncated rotation network)
    r1, r2 = fb.vregs(2)
    fb.shri(r1, e, 6)
    fb.shli(r2, e, 26)
    fb.emit(Instr("or", dst=s1, srcs=(r1, r2)))
    fb.shri(r1, e, 11)
    fb.xor(s1, s1, r1)
    # ch = (e & f) ^ (~e & g)
    fb.emit(Instr("and", dst=ch, srcs=(e, f)))
    fb.xori(nch, e, -1)
    fb.emit(Instr("and", dst=nch, srcs=(nch, g)))
    fb.xor(ch, ch, nch)
    fb.emit(Instr("and", dst=widx, srcs=(t, fifteen)))
    fb.add(waddr, wbase, widx)
    fb.ld(wval, waddr, 0)
    fb.add(tmp1, h, s1)
    fb.add(tmp1, tmp1, ch)
    fb.add(tmp1, tmp1, kconst)
    fb.add(tmp1, tmp1, wval)
    # S0 and maj
    fb.shri(r1, a, 2)
    fb.shli(r2, a, 30)
    fb.emit(Instr("or", dst=s0, srcs=(r1, r2)))
    fb.emit(Instr("and", dst=maj, srcs=(a, b)))
    fb.emit(Instr("and", dst=r1, srcs=(a, cc)))
    fb.xor(maj, maj, r1)
    fb.emit(Instr("and", dst=r2, srcs=(b, cc)))
    fb.xor(maj, maj, r2)
    fb.add(tmp2, s0, maj)
    # rotate the eight chaining variables
    fb.mov(h, g)
    fb.mov(g, f)
    fb.mov(f, e)
    fb.add(e, d, tmp1)
    fb.mov(d, cc)
    fb.mov(cc, b)
    fb.mov(b, a)
    fb.add(a, tmp1, tmp2)
    fb.add(t, t, one)
    fb.blt(t, rounds, "round")
    fb.block("block_next")
    fb.add(blk, blk, one)
    fb.blt(blk, n, "block_loop")
    fb.block("exit")
    out = fb.vreg()
    fb.add(out, a, e)
    fb.xor(out, out, d)
    fb.add(out, out, h)
    fb.ret(out)
    return fb.build()


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------


@dataclass
class Workload:
    """One benchmark kernel: a builder plus run parameters."""

    name: str
    build: Callable[[], Function]
    default_args: Tuple[int, ...] = (16,)
    bench_args: Tuple[int, ...] = (64,)
    description: str = ""

    def function(self) -> Function:
        """Build a fresh copy of the kernel."""
        return self.build()


MIBENCH: Tuple[Workload, ...] = (
    Workload("bitcount", build_bitcount, (24,), (256,),
             "Kernighan bit counting"),
    Workload("crc32", build_crc32, (24,), (256,), "bitwise CRC-32"),
    Workload("qsort", build_qsort, (12,), (48,), "comparison sort sweep"),
    Workload("dijkstra", build_dijkstra, (6,), (12,),
             "shortest-path relaxation"),
    Workload("sha", build_sha, (4,), (32,), "SHA-1-style mixing rounds"),
    Workload("fft", build_fft, (4,), (32,), "fixed-point butterflies"),
    Workload("stringsearch", build_stringsearch, (48,), (512,),
             "substring scan"),
    Workload("blowfish", build_blowfish, (6,), (48,), "Feistel rounds"),
    Workload("adpcm", build_adpcm, (24,), (256,), "ADPCM step encoder"),
    Workload("susan", build_susan, (32,), (512,), "smoothing stencil"),
    Workload("rijndael", build_rijndael, (16,), (128,),
             "byte substitution rounds"),
    Workload("dct", build_dct, (6,), (48,), "8-point integer DCT"),
    Workload("patricia", build_patricia, (24,), (256,),
             "bit-trie lookups"),
    Workload("gsm", build_gsm, (12,), (96,), "LPC lattice filter"),
    Workload("sha256", build_sha256, (3,), (24,),
             "SHA-256 compression rounds"),
)


def get_workload(name: str) -> Workload:
    """Look up a benchmark kernel by name (KeyError if unknown)."""
    for w in MIBENCH:
        if w.name == name:
            return w
    raise KeyError(f"unknown workload {name!r}")
