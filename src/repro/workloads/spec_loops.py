"""Synthetic population of SPEC2000-like innermost loops (Section 10.2).

The paper studies 1928 innermost loops from SPEC2000 integer benchmarks,
reporting that ~11% of them need more than 32 registers and that those
loops, being big, account for over 30% of loop execution time.  We cannot
replay SPEC traces, so this generator produces a seeded population matched
to those quoted statistics:

* most loops are small, with short value lifetimes (local dataflow);
* a minority are large — long bodies whose values are produced early and
  consumed late, plus loop-carried accumulators — which is what drives
  MaxLive past 32 after modulo scheduling;
* big loops get larger trip counts, concentrating execution time.

Every loop is a :class:`repro.swp.ddg.LoopDDG`, directly consumable by the
modulo scheduler.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.swp.ddg import Dep, LoopDDG, LoopOp

__all__ = ["LoopSpec", "generate_loop", "generate_loop_population"]


@dataclass
class LoopSpec:
    """One synthetic loop plus its population metadata."""

    ddg: LoopDDG
    big: bool
    seed: int

    @property
    def name(self) -> str:
        return self.ddg.name


_KINDS_SMALL = (("alu", 1, 0.62), ("mul", 3, 0.08), ("mem_load", 2, 0.18),
                ("mem_store", 2, 0.12))
_KINDS_BIG = (("alu", 1, 0.66), ("mul", 3, 0.10), ("mem_load", 2, 0.15),
              ("mem_store", 2, 0.09))


def _pick_kind(rng: random.Random, table) -> Tuple[str, int]:
    x = rng.random()
    acc = 0.0
    for kind, lat, p in table:
        acc += p
        if x < acc:
            return kind, lat
    return table[0][0], table[0][1]


def generate_loop(seed: int, big: Optional[bool] = None,
                  name: Optional[str] = None) -> LoopSpec:
    """Generate one loop.  ``big`` forces the class; default draws 11%."""
    rng = random.Random(seed)
    if big is None:
        big = rng.random() < 0.11

    if big:
        n_ops = rng.randrange(48, 112)
        lookback = n_ops            # long lifetimes: uses reach far back
        extra_uses = 2              # some values consumed late
        n_accumulators = rng.randrange(1, 3)
        trip = rng.randrange(40, 220)
        table = _KINDS_BIG
    else:
        n_ops = rng.randrange(6, 26)
        lookback = 4                # local dataflow, short lifetimes
        extra_uses = 0
        n_accumulators = rng.randrange(0, 2)
        trip = rng.randrange(20, 400)
        table = _KINDS_SMALL

    ops: List[LoopOp] = []
    deps: List[Dep] = []
    producers: List[int] = []  # ids of value-producing ops so far

    for i in range(n_ops):
        kind, lat = _pick_kind(rng, table)
        op = LoopOp(i, kind, lat)
        ops.append(op)
        # operands: 1-2 values from the lookback window
        if producers:
            window = producers[-lookback:]
            n_src = rng.randrange(1, 3)
            for src in rng.sample(window, min(n_src, len(window))):
                deps.append(Dep(src, i, 0, is_data=True))
        if op.produces_value:
            producers.append(i)

    # long-range extra uses in big loops: early values consumed much later,
    # with the consumers spread over the body (concentrating them at the
    # end would funnel dozens of values into one region — a shape spilling
    # cannot relieve and one real loop bodies do not exhibit)
    if extra_uses and len(producers) > 8:
        early = producers[: len(producers) // 3]
        for _ in range(extra_uses * len(early) // 2):
            src = rng.choice(early)
            lo = max(src + 1, len(ops) // 3)
            if lo >= len(ops):
                continue
            dst = ops[rng.randrange(lo, len(ops))].id
            if dst > src:
                deps.append(Dep(src, dst, 0, is_data=True))

    # loop-carried accumulators: a late op feeds an early op next iteration
    acc_candidates = [i for i in producers if ops[i].kind in ("alu", "mul")]
    for _ in range(n_accumulators):
        if len(acc_candidates) < 2:
            break
        src = rng.choice(acc_candidates[len(acc_candidates) // 2:])
        dst = rng.choice(acc_candidates[: max(1, len(acc_candidates) // 2)])
        if src != dst:
            deps.append(Dep(src, dst, 1, is_data=True))

    # dedupe
    deps = sorted(set(deps), key=lambda d: (d.src, d.dst, d.distance))
    ddg = LoopDDG(ops, deps, trip_count=trip,
                  name=name or f"loop{seed}")
    return LoopSpec(ddg=ddg, big=big, seed=seed)


def generate_loop_population(n: int = 1928, seed: int = 2005,
                             big_fraction: float = 0.11) -> List[LoopSpec]:
    """The full Section 10.2 population, deterministic in ``seed``.

    Exactly ``round(n * big_fraction)`` big loops, shuffled among the rest —
    matching the paper's ~11% of loops requiring more than 32 registers.
    """
    rng = random.Random(seed)
    n_big = round(n * big_fraction)
    classes = [True] * n_big + [False] * (n - n_big)
    rng.shuffle(classes)
    return [
        generate_loop(seed * 1_000_003 + i, big=cls)
        for i, cls in enumerate(classes)
    ]
