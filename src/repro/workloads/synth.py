"""Seeded random program generator.

Produces well-formed, always-terminating, executable functions with
configurable register pressure and control-flow shape.  Used by the
property-based tests (allocation/encoding must preserve semantics on *any*
program) and by population studies.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.ir.builder import FunctionBuilder
from repro.ir.function import Function
from repro.ir.instr import Instr, Reg

__all__ = ["generate_function"]

_ALU_TWO = ("add", "sub", "mul", "xor", "or", "and")
_ALU_IMM = ("addi", "subi", "muli", "xori", "andi", "shri")
_BRANCHES = ("beq", "bne", "blt", "bge")


def _emit_alu(fb: FunctionBuilder, rng: random.Random, pool: List[Reg],
              fresh_bias: float) -> None:
    """One random ALU instruction over defined values.

    Sources are drawn before a fresh destination joins the pool, so an
    instruction can never read its own not-yet-written result.
    """
    if rng.random() < 0.7:
        op = rng.choice(_ALU_TWO)
        srcs = (rng.choice(pool), rng.choice(pool))
        imm = None
    else:
        op = rng.choice(_ALU_IMM)
        srcs = (rng.choice(pool),)
        imm = rng.randrange(1, 64)
    if rng.random() < fresh_bias:
        dst = fb.vreg()
        pool.append(dst)
    else:
        dst = rng.choice(pool)
    fb.emit(Instr(op, dst=dst, srcs=srcs, imm=imm))


def generate_function(seed: int,
                      n_regions: int = 4,
                      base_values: int = 8,
                      ops_per_block: int = 6,
                      loop_trip: int = 3,
                      fresh_bias: float = 0.25,
                      with_memory: bool = False,
                      name: Optional[str] = None) -> Function:
    """Generate a random executable function.

    The function is a chain of ``n_regions`` regions, each randomly a
    straight-line block, an if/else diamond, or a bounded counted loop.
    ``base_values`` values are initialised up front, setting the pressure
    floor; ``fresh_bias`` controls how often new live ranges appear.
    The function always terminates and never reads undefined registers
    (every value in the pool is initialised in the entry block, so all
    paths define before use).
    """
    rng = random.Random(seed)
    fb = FunctionBuilder(name or f"synth{seed}")
    n = fb.vreg()
    fb.params = (n,)
    pool: List[Reg] = [n]

    fb.block("entry")
    for i in range(base_values):
        v = fb.vreg()
        fb.li(v, rng.randrange(1, 100))
        pool.append(v)
    if with_memory:
        base = fb.vreg()
        fb.li(base, 0x1000)
        pool.append(base)

    for region in range(n_regions):
        kind = rng.choice(("straight", "diamond", "loop"))
        # keep the pool from growing without bound
        if len(pool) > base_values * 3:
            pool[:] = rng.sample(pool, base_values * 2)
            if n not in pool:
                pool.append(n)

        if kind == "straight":
            for _ in range(rng.randrange(2, ops_per_block + 1)):
                _emit_alu(fb, rng, pool, fresh_bias)
        elif kind == "diamond":
            a, b = rng.choice(pool), rng.choice(pool)
            op = rng.choice(_BRANCHES)
            fb.emit(Instr(op, srcs=(a, b), label=f"r{region}_else"))
            fb.block(f"r{region}_then")
            for _ in range(rng.randrange(1, ops_per_block)):
                _emit_alu(fb, rng, pool, 0.0)  # no fresh defs on one arm only
            fb.br(f"r{region}_join")
            fb.block(f"r{region}_else")
            for _ in range(rng.randrange(1, ops_per_block)):
                _emit_alu(fb, rng, pool, 0.0)
            fb.block(f"r{region}_join")
            fb.nop()
        else:  # loop
            counter, limit = fb.vregs(2)
            fb.li(counter, 0)
            fb.li(limit, rng.randrange(1, loop_trip + 1))
            fb.block(f"r{region}_loop")
            for _ in range(rng.randrange(2, ops_per_block + 1)):
                _emit_alu(fb, rng, pool, 0.0)
            if with_memory and rng.random() < 0.5:
                base = fb.vreg()
                fb.li(base, 0x1000)
                val = rng.choice(pool)
                fb.st(val, base, rng.randrange(8))
                out = fb.vreg()
                fb.ld(out, base, rng.randrange(8))
                pool.append(out)
            fb.addi(counter, counter, 1)
            fb.blt(counter, limit, f"r{region}_loop")
            fb.block(f"r{region}_done")
            fb.nop()

    fb.block("collect")
    acc = fb.vreg()
    fb.li(acc, 0)
    for v in pool:
        fb.add(acc, acc, v)
    fb.ret(acc)
    return fb.build()
