"""Compose several functions into one whole-program workload.

The paper evaluates whole MiBench *programs*, not isolated kernels.  Program
scale matters to the comparison between the three differential schemes:
differential remapping applies one global register permutation, which cannot
satisfy many distinct hot regions at once (Section 6: the register-level
adjacency graph becomes "very dense ... and restrictive"), while
differential select tunes each live range.  Composing a kernel with
auxiliary phases reproduces that program-scale tension.

``concat_functions`` renames virtual registers and blocks apart, threads the
single integer parameter into every part, and combines the parts' return
values into one checksum.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.ir.function import BasicBlock, Function
from repro.ir.instr import Instr, Reg

__all__ = ["concat_functions"]


def _offset_reg(r: Reg, offset: int) -> Reg:
    if not r.virtual:
        return r
    return Reg(r.id + offset, virtual=True, cls=r.cls)


def concat_functions(name: str, parts: Sequence[Function]) -> Function:
    """Concatenate ``parts`` into one function.

    Every part must take exactly one (virtual) integer parameter and end
    each exit path with ``ret``.  The composite takes one parameter, feeds
    it to every part in order, and returns a mixed checksum of the parts'
    return values.
    """
    if not parts:
        raise ValueError("need at least one part")
    for fn in parts:
        if len(fn.params) != 1 or not fn.params[0].virtual:
            raise ValueError(
                f"{fn.name}: composite parts take exactly one virtual "
                "register parameter"
            )

    shared_param = Reg(0, virtual=True)
    acc = Reg(1, virtual=True)
    next_vreg = 2
    blocks: List[BasicBlock] = []

    header = BasicBlock("entry")
    header.append(Instr("li", dst=acc, imm=0))
    blocks.append(header)

    for pi, fn in enumerate(parts):
        offset = next_vreg
        max_v = fn.max_vreg_id()
        next_vreg = offset + max_v + 1
        prefix = f"p{pi}_"
        local_param = _offset_reg(fn.params[0], offset)
        entry_name = prefix + fn.entry.name
        # bridge: bind the part's parameter, jump into its entry
        bridge = BasicBlock(f"p{pi}_bind")
        bridge.append(Instr("mov", dst=local_param, srcs=(shared_param,)))
        blocks.append(bridge)

        exit_name = f"p{pi}_done"
        result = Reg(next_vreg, virtual=True)
        next_vreg += 1

        for b in fn.blocks:
            nb = BasicBlock(prefix + b.name)
            for instr in b.instrs:
                mapping = {
                    r: _offset_reg(r, offset)
                    for r in set(instr.uses()) | set(instr.defs())
                }
                ni = instr.rewrite(mapping)
                if ni.label is not None and ni.op != "call":
                    ni = ni.copy()
                    ni.label = prefix + ni.label
                if ni.op == "ret":
                    nb.append(Instr("mov", dst=result, srcs=(ni.srcs[0],)))
                    nb.append(Instr("br", label=exit_name))
                else:
                    nb.append(ni)
            blocks.append(nb)

        closer = BasicBlock(exit_name)
        mixed = Reg(next_vreg, virtual=True)
        next_vreg += 1
        closer.append(Instr("muli", dst=mixed, srcs=(acc,), imm=31))
        closer.append(Instr("xor", dst=acc, srcs=(mixed, result)))
        blocks.append(closer)

    tail = BasicBlock("collect")
    tail.append(Instr("ret", srcs=(acc,)))
    blocks.append(tail)

    out = Function(name, blocks, params=(shared_param,))
    out.validate()
    return out
