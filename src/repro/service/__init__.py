"""Allocation-as-a-service: a batching compile daemon with a durable cache.

Every other entry point (``repro bench``, ``repro lowend``, the
experiment grids) re-runs the full allocator pipeline in a fresh process;
the only reuse is the in-process analysis cache.  This package turns the
pipeline into a long-running service so identical requests — allocation
is expensive but deterministic — are served from a content-addressed
on-disk store without recompiling:

* :mod:`repro.service.protocol` — versioned JSON request/response
  schemas, canonical encoding, error envelopes reusing
  :mod:`repro.diagnostics` codes.
* :mod:`repro.service.store` — the content-addressed artifact cache
  (LRU size cap, corruption treated as a miss).
* :mod:`repro.service.server` — the daemon (``repro serve``): bounded
  queue, micro-batching onto a :class:`repro.parallel.WorkerPool`,
  per-request timeouts, 429 backpressure, SIGTERM drain.
* :mod:`repro.service.client` — ``repro request`` and the python API.
* :mod:`repro.service.metrics` — counters and latency percentiles for
  ``/statsz`` and the shutdown telemetry snapshot.
* :mod:`repro.service.smoke` — the end-to-end smoke driver CI runs
  (``repro service-smoke``).

Contract: a served response is byte-identical to the direct in-process
run (:func:`repro.service.server.execute_request` through
:func:`repro.service.protocol.encode_message`), whether it came from a
cold compile or a warm store hit.
"""

from repro.service.client import ServiceClient, ServiceError, compile_local
from repro.service.protocol import (SCHEMA_VERSION, ProtocolError,
                                    build_compile_request, cache_key,
                                    decode_message, encode_message,
                                    error_response, normalize_request,
                                    ok_response)
from repro.service.server import ServiceServer, execute_request
from repro.service.store import ArtifactStore, default_store_root

__all__ = [
    "SCHEMA_VERSION",
    "ProtocolError",
    "build_compile_request",
    "cache_key",
    "decode_message",
    "encode_message",
    "error_response",
    "normalize_request",
    "ok_response",
    "ArtifactStore",
    "default_store_root",
    "ServiceServer",
    "execute_request",
    "ServiceClient",
    "ServiceError",
    "compile_local",
]
