"""The compile daemon: batching HTTP server over the allocator pipeline.

Request lifecycle (``POST /``):

1. The handler thread decodes and normalises the request, builds the
   source function, and computes the content-address key.  Validation
   failures answer immediately with an error envelope.
2. The artifact store is consulted.  A hit is served straight from disk —
   the pipeline is never invoked — with ``X-Repro-Cache: hit``.
3. A miss enters the bounded queue.  A full queue answers 429 with
   ``Retry-After`` (backpressure); a draining server answers 503.
4. The single batch dispatcher thread collects queued requests for a
   short linger window and fans the whole micro-batch out in one
   :meth:`repro.parallel.WorkerPool.map` call — serial when ``jobs=1``,
   a persistent process pool otherwise.  Results are stored (successes
   only) and handed back to the waiting handler threads.
5. A handler that waits longer than the per-request timeout answers 504;
   the computed artifact still lands in the store when it finishes, so
   a retry is a cheap hit.

``SIGTERM``/``SIGINT`` starts a graceful drain: new compiles are
refused, every accepted request finishes and flushes its response, then
the listener stops and the telemetry snapshot persists.

Everything is stdlib: ``http.server`` (threading), ``queue``,
``signal``.  :func:`execute_request` is module-level and consumes/returns
plain dicts so it crosses process boundaries for ``--jobs > 1``.
"""

from __future__ import annotations

import json
import queue
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple

from repro.diagnostics import LintError
from repro.parallel import WorkerCrashError, WorkerPool
from repro.service import protocol
from repro.service.metrics import ServiceMetrics
from repro.service.store import ArtifactStore
from repro.service.protocol import ProtocolError

__all__ = ["ServiceServer", "execute_request", "build_source_function"]


# ----------------------------------------------------------------------
# request execution (pure; runs in pool workers and in direct callers)
# ----------------------------------------------------------------------


def build_source_function(source: Dict[str, str]):
    """Materialise the request's function, mapping failures to protocol
    errors: unknown workloads to SVC05, parse errors to SVC06."""
    if "workload" in source:
        from repro.workloads import get_workload

        try:
            return get_workload(source["workload"]).function()
        except KeyError:
            raise ProtocolError(
                "SVC05", f"unknown workload {source['workload']!r}; "
                "see `repro list`") from None
    from repro.ir import ParseError, parse_function

    try:
        return parse_function(source["text"], filename="<request>")
    except ParseError as exc:
        raise ProtocolError("SVC06", "source.text does not parse",
                            [exc.diagnostic]) from None


def _request_function(req: Dict[str, object]):
    """The request's function, preferring the compact wire form the
    server attaches after validation (``req["_wire"]``) over re-building
    from source — one parse per request instead of one per process.
    Results are identical either way: the decoded function is
    structurally equal to the parsed one, and the pipeline's outputs
    never depend on instruction uids."""
    wire = req.get("_wire")
    if wire is not None:
        from repro.ir.wire import WireError, from_wire

        try:
            return from_wire(wire)
        except WireError:
            pass  # corrupt payload: fall back to the source of truth
    return build_source_function(req["source"])


def _default_args(source: Dict[str, str]) -> Tuple[int, ...]:
    """Execution arguments when the request leaves ``args`` null."""
    if "workload" in source:
        from repro.workloads import get_workload

        return tuple(get_workload(source["workload"]).default_args)
    return ()


def _compile(req: Dict[str, object]) -> Dict[str, object]:
    from repro.analysis.profile import (block_frequencies_from_counts,
                                        profile_block_frequencies)
    from repro.ir import format_function
    from repro.machine import (LowEndConfig, LowEndTimingModel,
                               interpret_or_derive, record_reference_run)
    from repro.regalloc.pipeline import run_setup

    fn = _request_function(req)
    if req["debug_sleep"]:
        time.sleep(req["debug_sleep"])
    options = req["options"]
    machine = LowEndConfig(**req["machine"])

    args = tuple(req["args"]) if req["args"] is not None \
        else _default_args(req["source"])

    freq = None
    if options["profile"]:
        recorded = record_reference_run(fn, args)
        if recorded is not None and recorded.block_instr_counts:
            freq = block_frequencies_from_counts(
                fn, recorded.block_instr_counts)
        else:
            freq = profile_block_frequencies(fn, args)

    prog = run_setup(
        fn, req["setup"],
        base_k=options["base_k"], reg_n=options["reg_n"],
        diff_n=options["diff_n"], remap_restarts=options["restarts"],
        access_order=options["access_order"], freq=freq,
        remap_seed=options["seed"], remap_jobs=1,
    )

    result: Dict[str, object] = {
        "name": fn.name,
        "setup": req["setup"],
        "allocation": {
            "instructions": prog.n_instructions,
            "spills": prog.n_spills,
            "spill_fraction": prog.spill_fraction,
            "setlr": prog.n_setlr,
            "setlr_fraction": prog.setlr_fraction,
            "code": format_function(prog.final_fn),
        },
        "encoding": None,
        "cycles": None,
        "checksum": None,
    }
    if prog.encoded is not None:
        config = prog.encoded.config
        result["encoding"] = {
            "reg_n": config.reg_n,
            "diff_n": config.diff_n,
            "field_bits": config.field_bits,
            "direct_field_bits": config.direct_field_bits,
            "n_setlr_inline": prog.encoded.n_setlr_inline,
            "n_setlr_join": prog.encoded.n_setlr_join,
            "overhead_fraction": prog.encoded.overhead_fraction,
        }
    if req["simulate"]:
        recorded = record_reference_run(fn, args)
        try:
            execution = interpret_or_derive(prog.final_fn, args, recorded)
        except Exception as exc:
            raise ProtocolError(
                "SVC08", f"simulation failed: "
                f"{type(exc).__name__}: {exc}") from None
        report = LowEndTimingModel(machine).time(
            execution.columnar if execution.columnar is not None
            else execution.trace)
        result["cycles"] = {
            "cycles": report.cycles,
            "instructions": report.instructions,
            "icache_misses": report.icache_misses,
            "dcache_misses": report.dcache_misses,
            "dcache_accesses": report.dcache_accesses,
            "branch_penalties": report.branch_penalties,
            "setlr_executed": report.setlr_executed,
            "cpi": report.cpi,
            "energy": report.energy,
        }
        result["checksum"] = execution.return_value
    return result


def execute_request(req: Dict[str, object]) -> Dict[str, object]:
    """Run one *normalized* compile request to a response envelope.

    Never raises — every failure becomes an error envelope — and is a
    pure function of the request, so cold server compiles, warm store
    hits and direct in-process calls all produce identical bytes under
    :func:`repro.service.protocol.encode_message`.
    """
    try:
        return protocol.ok_response(_compile(req))
    except ProtocolError as exc:
        return protocol.protocol_error_response(exc)
    except LintError as exc:
        return protocol.error_response(
            "SVC07", f"pipeline rejected the function: "
            f"{str(exc).splitlines()[0]}", exc.diagnostics)
    except ValueError as exc:
        return protocol.error_response("SVC03", str(exc))
    except Exception as exc:  # noqa: BLE001 - envelope, don't crash a worker
        return protocol.error_response(
            "SVC12", f"{type(exc).__name__}: {exc}")


# ----------------------------------------------------------------------
# the daemon
# ----------------------------------------------------------------------


class _Pending:
    """One queued compile: the request, its key, and the rendezvous."""

    __slots__ = ("request", "key", "event", "body", "response")

    def __init__(self, request: Dict[str, object], key: str) -> None:
        self.request = request
        self.key = key
        self.event = threading.Event()
        self.body: Optional[bytes] = None
        self.response: Optional[Dict[str, object]] = None

    def resolve(self, body: bytes, response: Dict[str, object]) -> None:
        self.body = body
        self.response = response
        self.event.set()


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-service"

    @property
    def service(self) -> "ServiceServer":
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, fmt: str, *args) -> None:
        if self.service.verbose:
            BaseHTTPRequestHandler.log_message(self, fmt, *args)

    def _reply(self, status: int, body: bytes,
               headers: Optional[Dict[str, str]] = None) -> None:
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        if path == "/healthz":
            doc = self.service.health()
        elif path == "/statsz":
            doc = self.service.statsz()
        else:
            self._reply(404, protocol.encode_message(protocol.error_response(
                "SVC03", f"unknown endpoint {path!r}")))
            return
        self._reply(200, json.dumps(doc, sort_keys=True).encode("ascii"))

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        try:
            length = int(self.headers.get("Content-Length", "0"))
            raw = self.rfile.read(length)
        except (ValueError, OSError):
            raw = b""
        try:
            status, headers, body = self.service.handle_compile(raw)
        except Exception as exc:  # noqa: BLE001 - keep the daemon alive
            body = protocol.encode_message(protocol.error_response(
                "SVC12", f"{type(exc).__name__}: {exc}"))
            status, headers = 500, {}
        try:
            self._reply(status, body, headers)
        except OSError:
            pass  # client went away; nothing to salvage


class ServiceServer:
    """The long-running allocation service (``repro serve``)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8421, *,
                 store: ArtifactStore,
                 jobs: int = 1,
                 queue_limit: int = 64,
                 max_batch: int = 8,
                 linger: float = 0.02,
                 request_timeout: float = 60.0,
                 recycle_after: Optional[int] = None,
                 allow_debug: bool = False,
                 telemetry_path: Optional[str] = None,
                 verbose: bool = False) -> None:
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.store = store
        self.metrics = ServiceMetrics()
        self.pool = WorkerPool(jobs, recycle_after=recycle_after)
        self.max_batch = max_batch
        self.linger = linger
        self.request_timeout = request_timeout
        self.allow_debug = allow_debug
        self.telemetry_path = telemetry_path
        self.verbose = verbose
        self._queue: "queue.Queue[_Pending]" = queue.Queue(
            maxsize=queue_limit)
        self._draining = threading.Event()
        self._stopping = threading.Event()
        self._batch_thread = threading.Thread(
            target=self._batch_loop, name="repro-service-batcher",
            daemon=True)
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.service = self  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    # addresses / introspection
    # ------------------------------------------------------------------

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    def health(self) -> Dict[str, object]:
        """The ``/healthz`` document: serving or draining."""
        return {
            "v": protocol.SCHEMA_VERSION,
            "ok": True,
            "status": "draining" if self._draining.is_set() else "serving",
        }

    def statsz(self) -> Dict[str, object]:
        """The ``/statsz`` document: counters + store + pool shape."""
        doc = self.metrics.snapshot(queue_depth=self._queue.qsize())
        doc["store"] = self.store.stats()
        doc["jobs"] = self.pool.jobs
        doc["pool"] = self.pool.stats()
        return doc

    # ------------------------------------------------------------------
    # the compile path (runs on handler threads)
    # ------------------------------------------------------------------

    def handle_compile(self, raw: bytes
                       ) -> Tuple[int, Dict[str, str], bytes]:
        """Serve one POST body; returns (status, headers, body bytes)."""
        t0 = time.monotonic()
        self.metrics.inc("requests")
        try:
            req = protocol.normalize_request(protocol.decode_message(raw))
            if req["debug_sleep"] and not self.allow_debug:
                req["debug_sleep"] = 0.0
            fn = build_source_function(req["source"])
            from repro.analysis.cache import fingerprint_digest

            key = protocol.cache_key(req, fingerprint_digest(fn))
            # The handler thread already materialised the function for
            # the cache key; ship that work to the worker as a compact
            # wire payload so the pool never re-parses the source.
            # Attached *after* cache_key: the key hashes named fields
            # only, and the wire form must never influence it.
            from repro.ir.wire import WireError, to_wire

            try:
                req["_wire"] = to_wire(fn)
            except WireError:
                pass  # worker falls back to building from source
        except ProtocolError as exc:
            self.metrics.inc("responses_error")
            body = protocol.encode_message(
                protocol.protocol_error_response(exc))
            return exc.http_status, {}, body

        cached = self.store.get(key)
        if cached is not None:
            self.metrics.inc("store_hits")
            self.metrics.inc("responses_ok")
            self.metrics.observe_latency(time.monotonic() - t0)
            return 200, {"X-Repro-Cache": "hit", "X-Repro-Key": key}, cached
        self.metrics.inc("store_misses")

        if self._draining.is_set():
            self.metrics.inc("drained_refusals")
            response = protocol.error_response(
                "SVC11", "server is draining; retry against a live "
                "instance", retry_after=5)
            return 503, {"Retry-After": "5"}, \
                protocol.encode_message(response)

        pending = _Pending(req, key)
        try:
            self._queue.put_nowait(pending)
        except queue.Full:
            self.metrics.inc("rejected")
            response = protocol.error_response(
                "SVC10", "compile queue is full", retry_after=1)
            return 429, {"Retry-After": "1"}, \
                protocol.encode_message(response)
        self.metrics.note_queue_depth(self._queue.qsize())

        if not pending.event.wait(self.request_timeout):
            self.metrics.inc("timeouts")
            self.metrics.inc("responses_error")
            response = protocol.error_response(
                "SVC09", f"compile exceeded the {self.request_timeout:g}s "
                "request timeout; the artifact will be cached when it "
                "completes — retry", retry_after=1)
            return 504, {"Retry-After": "1", "X-Repro-Key": key}, \
                protocol.encode_message(response)

        assert pending.body is not None and pending.response is not None
        status = protocol.http_status(pending.response)
        self.metrics.inc("responses_ok" if status == 200
                         else "responses_error")
        self.metrics.observe_latency(time.monotonic() - t0)
        return status, {"X-Repro-Cache": "miss", "X-Repro-Key": key}, \
            pending.body

    # ------------------------------------------------------------------
    # the batch dispatcher (single background thread)
    # ------------------------------------------------------------------

    def _collect_batch(self) -> Optional[list]:
        """Block for the next request, then linger briefly to co-schedule
        whatever else is queued (micro-batching)."""
        try:
            first = self._queue.get(timeout=0.1)
        except queue.Empty:
            return None
        batch = [first]
        deadline = time.monotonic() + self.linger
        while len(batch) < self.max_batch:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                batch.append(self._queue.get(timeout=remaining))
            except queue.Empty:
                break
        return batch

    def _prewarm_batch(self, batch: List["_Pending"]) -> None:
        """Analyze a micro-batch's functions in one vectorized corpus pass
        (:func:`repro.analysis.batched.prewarm_corpus`) before fan-out.

        Only worth doing when the pool executes in process (one effective
        worker): the analysis memo cache is per-process, so memos warmed
        here would never be seen by real worker processes.  Failures are
        swallowed — a function that cannot be analyzed fails identically,
        with a proper error envelope, inside :func:`execute_request`.
        """
        from repro.analysis.batched import prewarm_corpus

        fns = []
        for pending in batch:
            try:
                fns.append(_request_function(pending.request))
            except Exception:  # noqa: BLE001 - the worker will report it
                pass
        if fns:
            try:
                prewarm_corpus(fns)
            except Exception:  # noqa: BLE001 - prewarm is best-effort
                pass

    def _batch_loop(self) -> None:
        while True:
            batch = self._collect_batch()
            if batch is None:
                if self._stopping.is_set():
                    return
                continue
            if len(batch) > 1 and self.pool.max_workers <= 1:
                self._prewarm_batch(batch)
            try:
                responses = self.pool.map(
                    execute_request, [p.request for p in batch])
            except WorkerCrashError as exc:
                # a worker died mid-batch (segfault, OOM kill): the pool
                # has already recycled itself, so only this in-flight
                # batch fails — the dispatcher and later batches live on
                self.metrics.inc("worker_crashes")
                responses = [protocol.error_response(
                    "SVC13", f"worker crashed while compiling this "
                    f"batch: {exc}; the pool has been rebuilt — retry",
                    retry_after=1)] * len(batch)
            except Exception as exc:  # noqa: BLE001 - e.g. a dead pool
                responses = [protocol.error_response(
                    "SVC12", f"batch dispatch failed: "
                    f"{type(exc).__name__}: {exc}")] * len(batch)
            self.metrics.record_batch(len(batch))
            for pending, response in zip(batch, responses):
                body = protocol.encode_message(response)
                if response.get("ok"):
                    self.store.put(pending.key, body)
                pending.resolve(body, response)
                self._queue.task_done()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start the dispatcher (tests drive the HTTP loop separately).

        Pre-warms the worker fleet so the first real batch is served by
        processes that already exist — spawn cost is paid before the
        listener takes traffic, not inside a request's latency budget.
        """
        self.pool.warm()
        self._batch_thread.start()

    def start_background(self) -> threading.Thread:
        """Run the HTTP loop on a daemon thread (tests, embedding)."""
        self.start()
        thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-service-http", daemon=True)
        thread.start()
        return thread

    def stop_background(self, thread: threading.Thread) -> None:
        """Stop a :meth:`start_background` server and release resources."""
        if thread.is_alive():
            self._httpd.shutdown()
        thread.join(timeout=30)
        self.shutdown()

    def serve_forever(self, install_signal_handlers: bool = True,
                      ready_callback=None) -> None:
        """Run until :meth:`initiate_drain` completes a graceful drain.

        With ``install_signal_handlers``, SIGTERM and SIGINT both start
        the drain.  ``ready_callback`` fires with ``(host, port)`` once
        the listener is live (the CLI writes the ``--ready-file`` here).
        """
        if install_signal_handlers:
            signal.signal(signal.SIGTERM, self._on_signal)
            signal.signal(signal.SIGINT, self._on_signal)
        self.start()
        if ready_callback is not None:
            ready_callback(self.host, self.port)
        try:
            self._httpd.serve_forever(poll_interval=0.1)
        finally:
            self.shutdown()

    def _on_signal(self, _signum, _frame) -> None:
        self.initiate_drain()

    def initiate_drain(self) -> None:
        """Refuse new compiles, finish accepted ones, then stop."""
        if self._draining.is_set():
            return
        self._draining.set()
        threading.Thread(target=self._drain_then_stop,
                         name="repro-service-drain", daemon=True).start()

    def _drain_then_stop(self) -> None:
        self._queue.join()          # every accepted compile resolved
        self._httpd.shutdown()      # stop the accept loop

    def shutdown(self) -> None:
        """Finish in-flight work, flush telemetry, release everything."""
        self._draining.set()
        self._queue.join()
        self._stopping.set()
        if self._batch_thread.is_alive():
            self._batch_thread.join()
        # joins still-running handler threads so no accepted response is
        # lost (ThreadingHTTPServer.block_on_close)
        self._httpd.server_close()
        self.pool.close()
        if self.telemetry_path:
            self.metrics.persist(self.telemetry_path,
                                 extra={"store": self.store.stats()})
