"""Content-addressed on-disk artifact store.

Allocation is the expensive, deterministic step (the combinatorial-
allocation survey's argument for memoization), so the service caches the
*response bytes* of every successful compile under a key derived from the
function's structural fingerprint plus everything else that affects the
output (:func:`repro.service.protocol.cache_key`).  Identical requests
across process lifetimes — or across the wire and in-process — are then
served without touching the allocator.

Robustness rules:

* **Corruption is a miss, never a crash.**  Every artifact is a JSON
  wrapper carrying its own key and a SHA-256 of the body; anything that
  fails to read, parse or verify is deleted and recomputed.
* **Writes are atomic.**  Artifacts land via ``os.replace`` from a
  uniquely named temp file, so concurrent writers (server threads, or
  several server processes sharing one root) can never interleave bytes.
* **Bounded.**  A byte-size cap enforced by least-recently-used eviction;
  a hit refreshes the artifact's mtime, which is the recency clock.
* **Hot tier.**  A small in-memory LRU dict (``hot_entries`` response
  bodies) sits in front of the disk: artifacts are content-addressed and
  immutable, so a hot entry can never go stale, and repeat traffic for
  the same key skips the open/parse/checksum entirely.  ``hot_hits`` /
  ``hot_misses`` counters surface in :meth:`ArtifactStore.stats` (and
  through the server's ``/statsz``).

:class:`ShardedArtifactStore` spreads one logical store over several
child directories via a consistent-hash ring (``repro serve
--store-shards N``).  Keys are SHA-256 hex, so placement hashes the key
directly onto virtual ring nodes; growing or shrinking the shard count
only relocates the keys whose ring arc moved, and a relocated key is
merely a cache miss.  The sharded store duck-types the flat one, so the
server, the cache CLI and ``/statsz`` work with either.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import threading
from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["ArtifactStore", "ShardedArtifactStore", "open_store",
           "default_store_root", "DEFAULT_MAX_BYTES", "DEFAULT_HOT_ENTRIES"]

#: Format of the on-disk wrapper, independent of the protocol schema.
STORE_VERSION = 1

DEFAULT_MAX_BYTES = 64 * 1024 * 1024

#: Hot-tier entry cap.  Responses are a few KB, so the default keeps the
#: tier well under a megabyte; 0 disables the tier.
DEFAULT_HOT_ENTRIES = 128

_tmp_counter = itertools.count()


def default_store_root() -> str:
    """``$REPRO_SERVICE_STORE``, else ``~/.cache/repro/service``."""
    env = os.environ.get("REPRO_SERVICE_STORE")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro",
                        "service")


class ArtifactStore:
    """A directory of response artifacts addressed by content key."""

    def __init__(self, root: str,
                 max_bytes: int = DEFAULT_MAX_BYTES,
                 hot_entries: int = DEFAULT_HOT_ENTRIES) -> None:
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        if hot_entries < 0:
            raise ValueError(
                f"hot_entries must be >= 0, got {hot_entries}")
        self.root = root
        self.max_bytes = max_bytes
        self.hot_entries = hot_entries
        self._objects = os.path.join(root, "objects")
        self._lock = threading.Lock()
        self._hot: "OrderedDict[str, bytes]" = OrderedDict()
        self._hot_lock = threading.Lock()
        self.hot_hits = 0    # gets served from the in-memory tier
        self.hot_misses = 0  # gets that had to consult the disk
        self.corrupt_dropped = 0  # artifacts discarded by validation
        os.makedirs(self._objects, exist_ok=True)

    # ------------------------------------------------------------------
    # layout
    # ------------------------------------------------------------------

    def _path(self, key: str) -> str:
        return os.path.join(self._objects, key[:2], f"{key}.json")

    def _entries(self) -> Iterator[Tuple[str, int, float]]:
        """Yield ``(path, size, mtime)`` for every artifact, tolerating
        files that vanish mid-walk (a concurrent evictor or ``clear``)."""
        try:
            shards = os.listdir(self._objects)
        except FileNotFoundError:
            return
        for shard in shards:
            shard_dir = os.path.join(self._objects, shard)
            try:
                names = os.listdir(shard_dir)
            except (FileNotFoundError, NotADirectoryError):
                continue
            for name in names:
                if not name.endswith(".json"):
                    continue
                path = os.path.join(shard_dir, name)
                try:
                    st = os.stat(path)
                except FileNotFoundError:
                    continue
                yield path, st.st_size, st.st_mtime

    # ------------------------------------------------------------------
    # get / put
    # ------------------------------------------------------------------

    def _hot_get(self, key: str) -> Optional[bytes]:
        with self._hot_lock:
            data = self._hot.get(key)
            if data is not None:
                self._hot.move_to_end(key)
                self.hot_hits += 1
            else:
                self.hot_misses += 1
            return data

    def _hot_put(self, key: str, data: bytes) -> None:
        if not self.hot_entries:
            return
        with self._hot_lock:
            self._hot[key] = data
            self._hot.move_to_end(key)
            while len(self._hot) > self.hot_entries:
                self._hot.popitem(last=False)

    def get(self, key: str) -> Optional[bytes]:
        """The cached response bytes for ``key``, or ``None``.

        The in-memory hot tier answers first; a disk hit back-fills it.
        Truncated, garbage, mis-keyed or checksum-failing artifacts are
        unlinked and reported as misses — the caller recomputes and the
        rewrite repairs the store.
        """
        hot = self._hot_get(key)
        if hot is not None:
            return hot
        path = self._path(key)
        try:
            with open(path, "r", encoding="ascii") as fh:
                wrapper = json.load(fh)
            if not isinstance(wrapper, dict):
                raise ValueError("wrapper is not an object")
            if wrapper.get("store") != STORE_VERSION:
                raise ValueError("wrong store version")
            if wrapper.get("key") != key:
                raise ValueError("key mismatch")
            body = wrapper.get("body")
            if not isinstance(body, str):
                raise ValueError("missing body")
            data = body.encode("ascii")
            if hashlib.sha256(data).hexdigest() != wrapper.get("sha256"):
                raise ValueError("checksum mismatch")
        except FileNotFoundError:
            return None
        except (OSError, ValueError, UnicodeError):
            self.corrupt_dropped += 1
            self._unlink(path)
            return None
        self._touch(path)
        self._hot_put(key, data)
        return data

    def put(self, key: str, body: bytes) -> None:
        """Store ``body`` (canonical ASCII response bytes) under ``key``."""
        wrapper = {
            "store": STORE_VERSION,
            "key": key,
            "sha256": hashlib.sha256(body).hexdigest(),
            "body": body.decode("ascii"),
        }
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = f"{path}.{os.getpid()}.{threading.get_ident()}." \
              f"{next(_tmp_counter)}.tmp"
        with open(tmp, "w", encoding="ascii") as fh:
            json.dump(wrapper, fh)
        os.replace(tmp, path)
        self._hot_put(key, body)
        self._evict()

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------

    def _evict(self) -> None:
        """Drop least-recently-used artifacts until under the byte cap.

        The most recent artifact always survives, even if it alone
        exceeds the cap.  Races with other evictors are benign: a
        missing file is simply skipped.
        """
        with self._lock:
            entries: List[Tuple[str, int, float]] = list(self._entries())
            total = sum(size for _, size, _ in entries)
            if total <= self.max_bytes:
                return
            entries.sort(key=lambda e: (e[2], e[0]))  # oldest mtime first
            for path, size, _mtime in entries[:-1]:
                if total <= self.max_bytes:
                    break
                if self._unlink(path):
                    total -= size

    def stats(self) -> Dict[str, object]:
        """Store stats: disk entry count, byte total, cap, root, plus the
        hot tier's size and hit/miss counters."""
        entries = list(self._entries())
        with self._hot_lock:
            hot_entries = len(self._hot)
            hot_hits, hot_misses = self.hot_hits, self.hot_misses
        return {
            "root": self.root,
            "entries": len(entries),
            "bytes": sum(size for _, size, _ in entries),
            "max_bytes": self.max_bytes,
            "corrupt_dropped": self.corrupt_dropped,
            "hot_entries": hot_entries,
            "hot_max_entries": self.hot_entries,
            "hot_hits": hot_hits,
            "hot_misses": hot_misses,
        }

    def clear(self) -> int:
        """Delete every artifact (and empty the hot tier); returns how
        many disk artifacts were removed."""
        with self._hot_lock:
            self._hot.clear()
        removed = 0
        for path, _size, _mtime in list(self._entries()):
            if self._unlink(path):
                removed += 1
        return removed

    # ------------------------------------------------------------------
    # small helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _touch(path: str) -> None:
        try:
            os.utime(path)
        except OSError:
            pass

    @staticmethod
    def _unlink(path: str) -> bool:
        try:
            os.unlink(path)
            return True
        except OSError:
            return False


#: ring positions per shard; enough that a shard's share of the key
#: space stays within a few percent of 1/N
_RING_REPLICAS = 64


class ShardedArtifactStore:
    """Consistent-hash sharding over ``n_shards`` child artifact stores.

    Shard directories are ``<root>/shard-00 .. shard-NN``; each child is
    a full :class:`ArtifactStore` (atomic writes, LRU eviction, its own
    hot tier) holding an equal slice of the byte and hot-entry budgets.
    Placement is a consistent-hash ring: each shard owns
    ``_RING_REPLICAS`` virtual nodes at ``sha256("shard-i/r")``
    positions, and a key lives on the first virtual node clockwise from
    its own hash.  Changing ``n_shards`` therefore strands only the keys
    whose arc moved — a stranded key is just a miss that recomputes.
    """

    def __init__(self, root: str, n_shards: int,
                 max_bytes: int = DEFAULT_MAX_BYTES,
                 hot_entries: int = DEFAULT_HOT_ENTRIES) -> None:
        if n_shards < 2:
            raise ValueError(
                f"n_shards must be >= 2 (got {n_shards}); "
                "use ArtifactStore for a single directory")
        self.root = root
        self.max_bytes = max_bytes
        self.hot_entries = hot_entries
        self.shards: List[ArtifactStore] = [
            ArtifactStore(
                os.path.join(root, f"shard-{i:02d}"),
                max_bytes=max(1, max_bytes // n_shards),
                hot_entries=hot_entries // n_shards,
            )
            for i in range(n_shards)
        ]
        # ring: sorted (position, shard index) pairs
        ring: List[Tuple[int, int]] = []
        for i in range(n_shards):
            for r in range(_RING_REPLICAS):
                digest = hashlib.sha256(
                    f"shard-{i:02d}/{r}".encode("ascii")).hexdigest()
                ring.append((int(digest[:16], 16), i))
        ring.sort()
        self._ring = ring

    def shard_for(self, key: str) -> int:
        """Index of the shard owning ``key`` (first node clockwise)."""
        point = int(hashlib.sha256(
            key.encode("ascii")).hexdigest()[:16], 16)
        lo, hi = 0, len(self._ring)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._ring[mid][0] < point:
                lo = mid + 1
            else:
                hi = mid
        if lo == len(self._ring):  # wrap past the last node
            lo = 0
        return self._ring[lo][1]

    # -- the ArtifactStore surface, routed --

    def get(self, key: str) -> Optional[bytes]:
        """Fetch ``key`` from its owning shard (None on miss)."""
        return self.shards[self.shard_for(key)].get(key)

    def put(self, key: str, body: bytes) -> None:
        """Write ``key`` to its owning shard (atomic, LRU-bounded)."""
        self.shards[self.shard_for(key)].put(key, body)

    def clear(self) -> int:
        """Delete every artifact in every shard; returns the count."""
        return sum(shard.clear() for shard in self.shards)

    @property
    def corrupt_dropped(self) -> int:
        return sum(shard.corrupt_dropped for shard in self.shards)

    def stats(self) -> Dict[str, object]:
        """Aggregated counters plus a per-shard breakdown.

        The top-level keys match :meth:`ArtifactStore.stats` so existing
        consumers (``/statsz``, ``repro cache stats``) read either store
        kind; ``shards`` carries each child's own stats dict.
        """
        per_shard = [shard.stats() for shard in self.shards]
        return {
            "root": self.root,
            "entries": sum(s["entries"] for s in per_shard),
            "bytes": sum(s["bytes"] for s in per_shard),
            "max_bytes": self.max_bytes,
            "corrupt_dropped": sum(s["corrupt_dropped"] for s in per_shard),
            "hot_entries": sum(s["hot_entries"] for s in per_shard),
            "hot_max_entries": sum(s["hot_max_entries"] for s in per_shard),
            "hot_hits": sum(s["hot_hits"] for s in per_shard),
            "hot_misses": sum(s["hot_misses"] for s in per_shard),
            "n_shards": len(self.shards),
            "shards": per_shard,
        }


def open_store(root: Optional[str] = None, shards: int = 1,
               max_bytes: int = DEFAULT_MAX_BYTES,
               hot_entries: int = DEFAULT_HOT_ENTRIES):
    """Open the artifact store at ``root`` (default resolved), flat when
    ``shards`` is 1, consistent-hash sharded otherwise."""
    root = root or default_store_root()
    if shards <= 1:
        return ArtifactStore(root, max_bytes=max_bytes,
                             hot_entries=hot_entries)
    return ShardedArtifactStore(root, shards, max_bytes=max_bytes,
                                hot_entries=hot_entries)
