"""Service counters, latency percentiles, and the telemetry snapshot.

One :class:`ServiceMetrics` instance lives on the server; handler threads
and the batch dispatcher update it under a single lock.  ``/statsz``
serves :meth:`ServiceMetrics.snapshot`, and on shutdown the same snapshot
persists to a JSON file (the CI smoke job uploads it as an artifact).

Latencies are kept in a bounded ring (the most recent
``max_latencies`` observations), so p50/p95 describe current behaviour
and memory stays flat under sustained traffic.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Deque, Dict, Optional

__all__ = ["ServiceMetrics"]

_COUNTERS = (
    "requests",            # POSTs that reached the compile handler
    "responses_ok",        # 200s served (hit or compiled)
    "responses_error",     # error envelopes served
    "store_hits",          # served straight from the artifact store
    "store_misses",        # had to enter the compile queue
    "batches",             # parallel_map fan-outs dispatched
    "batched_requests",    # requests carried by those fan-outs
    "rejected",            # 429 queue-full rejections
    "timeouts",            # per-request deadline expiries
    "drained_refusals",    # 503s while draining
    "worker_crashes",      # batches lost to a broken pool (SVC13s)
)


class ServiceMetrics:
    """Thread-safe counters plus a latency ring."""

    def __init__(self, max_latencies: int = 4096) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {name: 0 for name in _COUNTERS}
        self._latencies: Deque[float] = deque(maxlen=max_latencies)
        self._max_queue_depth = 0
        self._max_batch = 0
        self._started = time.time()

    def inc(self, counter: str, n: int = 1) -> None:
        """Bump one of the named counters."""
        with self._lock:
            self._counters[counter] += n

    def observe_latency(self, seconds: float) -> None:
        """Record one request's wall-clock service time."""
        with self._lock:
            self._latencies.append(seconds)

    def record_batch(self, size: int) -> None:
        """Account one dispatched micro-batch of ``size`` requests."""
        with self._lock:
            self._counters["batches"] += 1
            self._counters["batched_requests"] += size
            self._max_batch = max(self._max_batch, size)

    def note_queue_depth(self, depth: int) -> None:
        """Track the high-water mark of the request queue."""
        with self._lock:
            self._max_queue_depth = max(self._max_queue_depth, depth)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    @staticmethod
    def _percentile(sorted_values, fraction: float) -> float:
        if not sorted_values:
            return 0.0
        index = min(len(sorted_values) - 1,
                    int(fraction * len(sorted_values)))
        return sorted_values[index]

    def snapshot(self, queue_depth: Optional[int] = None
                 ) -> Dict[str, object]:
        """A JSON-ready view of every counter and percentile."""
        with self._lock:
            counters = dict(self._counters)
            latencies = sorted(self._latencies)
            max_depth = self._max_queue_depth
            max_batch = self._max_batch
            started = self._started
        hits = counters["store_hits"]
        misses = counters["store_misses"]
        looked_up = hits + misses
        snap: Dict[str, object] = dict(counters)
        snap.update({
            "hit_rate": hits / looked_up if looked_up else 0.0,
            "latency_count": len(latencies),
            "latency_p50_ms": 1e3 * self._percentile(latencies, 0.50),
            "latency_p95_ms": 1e3 * self._percentile(latencies, 0.95),
            "max_batch": max_batch,
            "max_queue_depth": max_depth,
            "uptime_s": time.time() - started,
        })
        if queue_depth is not None:
            snap["queue_depth"] = queue_depth
        return snap

    def persist(self, path: str,
                extra: Optional[Dict[str, object]] = None) -> None:
        """Write the snapshot (plus ``extra``, e.g. store stats) to
        ``path`` — the shutdown telemetry artifact."""
        doc = self.snapshot()
        if extra:
            doc.update(extra)
        with open(path, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
