"""Versioned JSON schemas for the compile service.

One request kind travels over the wire — ``compile``: take a function
(workload name or assembly text) through one Section 10.1 setup under a
chosen :class:`~repro.machine.spec.LowEndConfig`, and return the
allocation, the :class:`~repro.machine.lowend.CycleReport` and the
encoding statistics.  Health and stats are plain GET endpoints and need
no schema.

Three properties the rest of the service leans on:

* **Canonical bytes.**  :func:`encode_message` is deterministic
  (``sort_keys``, fixed separators), so "byte-identical" is a meaningful
  contract between direct in-process runs, cold server compiles and warm
  store hits — and the artifact store can cache response bytes directly.
* **Normalisation before keying.**  :func:`normalize_request` fills every
  default, so two requests that differ only in spelled-out defaults hash
  to the same cache key.
* **Shared failure machinery.**  Envelope validation reuses
  :func:`repro.diagnostics.check_format_version` (the same helper the
  experiment persistence loaders use), and error envelopes carry
  :class:`repro.diagnostics.Diagnostic` objects so parser and lint
  findings render identically on both sides of the wire.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Dict, List, Optional, Tuple

from repro.diagnostics import (Diagnostic, DiagnosticReport, FormatError,
                               Location, Severity, check_format_version)
from repro.machine.spec import LOWEND, LowEndConfig
from repro.regalloc.pipeline import SETUPS

__all__ = [
    "SCHEMA_VERSION",
    "ERROR_CATALOG",
    "ProtocolError",
    "normalize_request",
    "build_compile_request",
    "cache_key",
    "encode_message",
    "decode_message",
    "ok_response",
    "error_response",
    "protocol_error_response",
    "diagnostic_for_exception",
    "http_status",
]

#: Bumped whenever a request or response field changes meaning.  Part of
#: every message and of the artifact-store cache key, so a schema change
#: can never serve stale artifacts.
SCHEMA_VERSION = 1

#: code -> (slug, HTTP status).  Codes are stable ids in the same spirit
#: as the lint rules (L001-) and the CLI diagnostics (CLI01).
ERROR_CATALOG: Dict[str, Tuple[str, int]] = {
    "SVC01": ("bad-json", 400),
    "SVC02": ("bad-version", 400),
    "SVC03": ("bad-request", 400),
    "SVC04": ("unknown-setup", 400),
    "SVC05": ("unknown-workload", 404),
    "SVC06": ("parse-error", 400),
    "SVC07": ("pipeline-error", 422),
    "SVC08": ("exec-error", 422),
    "SVC09": ("timeout", 504),
    "SVC10": ("queue-full", 429),
    "SVC11": ("draining", 503),
    "SVC12": ("internal-error", 500),
    "SVC13": ("worker-crash", 500),
}

#: LowEndConfig fields a request may override: every scalar numeric knob
#: (``extra_latency`` and ``name`` stay server-side).  Maps field name to
#: the expected python type.
MACHINE_FIELDS: Dict[str, type] = {
    f.name: type(getattr(LOWEND, f.name))
    for f in dataclasses.fields(LowEndConfig)
    if isinstance(getattr(LOWEND, f.name), (int, float))
    and not isinstance(getattr(LOWEND, f.name), bool)
}

_OPTION_DEFAULTS: Dict[str, object] = {
    "base_k": 8,
    "reg_n": 12,
    "diff_n": 8,
    "access_order": "src_first",
    "restarts": 50,
    "seed": 0,
    "profile": False,
}

_ACCESS_ORDERS = ("src_first", "dst_first", "two_address")


class ProtocolError(FormatError):
    """A request the service must reject, with its wire representation.

    Carries the stable error ``code`` (see :data:`ERROR_CATALOG`), the
    HTTP status the server should answer with, and optionally structured
    diagnostics (a parse error's location, for example).
    """

    def __init__(self, code: str, message: str,
                 diagnostics: Optional[List[Diagnostic]] = None,
                 retry_after: Optional[int] = None) -> None:
        self.code = code
        self.slug, self.http_status = ERROR_CATALOG[code]
        self.retry_after = retry_after
        super().__init__(f"{code}/{self.slug}: {message}",
                         DiagnosticReport(list(diagnostics or ())))
        self.message = message


def _bad(message: str, code: str = "SVC03") -> ProtocolError:
    return ProtocolError(code, message)


def _require_int(value: object, what: str, minimum: int = 0) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise _bad(f"{what} must be an integer, got {value!r}")
    if value < minimum:
        raise _bad(f"{what} must be >= {minimum}, got {value}")
    return value


def normalize_request(data: object) -> Dict[str, object]:
    """Validate a raw decoded request and fill every default.

    Returns the canonical request dict — the form :func:`cache_key`
    hashes and :func:`repro.service.server.execute_request` consumes —
    or raises :class:`ProtocolError`.
    """
    try:
        check_format_version(data, supported=(SCHEMA_VERSION,),
                             version_field="v")
    except ProtocolError:
        raise
    except FormatError as exc:
        raise ProtocolError("SVC02", str(exc.args[0]).splitlines()[0],
                            exc.diagnostics) from None
    assert isinstance(data, dict)

    known = {"v", "op", "source", "setup", "options", "machine", "args",
             "simulate", "debug_sleep"}
    unknown = sorted(set(data) - known)
    if unknown:
        raise _bad(f"unknown request field(s): {', '.join(unknown)}")

    if data.get("op", "compile") != "compile":
        raise _bad(f"unknown op {data.get('op')!r}; this schema version "
                   "only defines 'compile'")

    source = data.get("source")
    if not isinstance(source, dict) or \
            sorted(source) not in (["text"], ["workload"]):
        raise _bad("source must be {\"workload\": name} or {\"text\": asm}")
    src_kind, src_value = next(iter(source.items()))
    if not isinstance(src_value, str) or not src_value:
        raise _bad(f"source.{src_kind} must be a non-empty string")

    setup = data.get("setup", "remapping")
    if setup not in SETUPS:
        raise ProtocolError(
            "SVC04", f"unknown setup {setup!r}; expected one of "
            f"{', '.join(SETUPS)}")

    raw_options = data.get("options", {})
    if not isinstance(raw_options, dict):
        raise _bad("options must be an object")
    unknown = sorted(set(raw_options) - set(_OPTION_DEFAULTS))
    if unknown:
        raise _bad(f"unknown option(s): {', '.join(unknown)}")
    options = dict(_OPTION_DEFAULTS)
    options.update(raw_options)
    for field in ("base_k", "reg_n", "diff_n"):
        options[field] = _require_int(options[field], f"options.{field}", 1)
    options["restarts"] = _require_int(options["restarts"],
                                       "options.restarts", 0)
    options["seed"] = _require_int(options["seed"], "options.seed", 0)
    if options["access_order"] not in _ACCESS_ORDERS:
        raise _bad(f"options.access_order must be one of "
                   f"{', '.join(_ACCESS_ORDERS)}")
    if not isinstance(options["profile"], bool):
        raise _bad("options.profile must be a boolean")
    if options["diff_n"] > options["reg_n"]:
        raise _bad(f"options.diff_n ({options['diff_n']}) cannot exceed "
                   f"options.reg_n ({options['reg_n']})")

    raw_machine = data.get("machine", {})
    if not isinstance(raw_machine, dict):
        raise _bad("machine must be an object of LowEndConfig overrides")
    machine: Dict[str, object] = {}
    for field in sorted(raw_machine):
        if field not in MACHINE_FIELDS:
            raise _bad(f"unknown machine field {field!r}; overridable: "
                       f"{', '.join(sorted(MACHINE_FIELDS))}")
        value = raw_machine[field]
        if MACHINE_FIELDS[field] is int:
            machine[field] = _require_int(value, f"machine.{field}", 0)
        else:
            if isinstance(value, bool) or \
                    not isinstance(value, (int, float)):
                raise _bad(f"machine.{field} must be a number, "
                           f"got {value!r}")
            machine[field] = float(value)

    args = data.get("args")
    if args is not None:
        if not isinstance(args, list) or \
                any(isinstance(a, bool) or not isinstance(a, int)
                    for a in args):
            raise _bad("args must be a list of integers (or null for "
                       "the workload's defaults)")
        args = list(args)

    simulate = data.get("simulate", True)
    if not isinstance(simulate, bool):
        raise _bad("simulate must be a boolean")

    debug_sleep = data.get("debug_sleep", 0)
    if isinstance(debug_sleep, bool) or \
            not isinstance(debug_sleep, (int, float)) or debug_sleep < 0:
        raise _bad("debug_sleep must be a non-negative number")

    return {
        "v": SCHEMA_VERSION,
        "op": "compile",
        "source": {src_kind: src_value},
        "setup": setup,
        "options": options,
        "machine": machine,
        "args": args,
        "simulate": simulate,
        "debug_sleep": float(debug_sleep),
    }


def build_compile_request(workload: Optional[str] = None,
                          text: Optional[str] = None,
                          setup: str = "remapping",
                          args: Optional[List[int]] = None,
                          simulate: bool = True,
                          machine: Optional[Dict[str, object]] = None,
                          debug_sleep: float = 0.0,
                          **options: object) -> Dict[str, object]:
    """Assemble a raw compile request (CLI / python-API convenience).

    Exactly one of ``workload``/``text`` must be given; keyword options
    (``reg_n=16`` ...) land in the request's ``options`` object.  The
    result still goes through :func:`normalize_request` server-side.
    """
    if (workload is None) == (text is None):
        raise ValueError("exactly one of workload/text is required")
    source = {"workload": workload} if workload is not None else \
        {"text": text}
    request: Dict[str, object] = {
        "v": SCHEMA_VERSION, "op": "compile", "source": source,
        "setup": setup, "simulate": simulate,
    }
    if args is not None:
        request["args"] = list(args)
    if machine:
        request["machine"] = dict(machine)
    if options:
        request["options"] = dict(options)
    if debug_sleep:
        request["debug_sleep"] = debug_sleep
    return request


def cache_key(normalized: Dict[str, object], fn_digest: str) -> str:
    """The content address of one compile's artifact.

    Hashes the *function* digest (so a workload name and the identical
    assembly text share an entry) together with everything else that can
    change the response bytes: setup, options, machine overrides, args,
    the simulate flag — and the schema version, so a protocol bump never
    serves an old-format artifact.  ``debug_sleep`` is deliberately
    excluded: it changes latency, never bytes.
    """
    material = json.dumps({
        "schema": SCHEMA_VERSION,
        "fn": fn_digest,
        "setup": normalized["setup"],
        "options": normalized["options"],
        "machine": normalized["machine"],
        "args": normalized["args"],
        "simulate": normalized["simulate"],
    }, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(material.encode()).hexdigest()


def encode_message(doc: Dict[str, object]) -> bytes:
    """Canonical wire bytes: sorted keys, minimal separators, ASCII."""
    return json.dumps(doc, sort_keys=True,
                      separators=(",", ":")).encode("ascii")


def decode_message(raw: bytes) -> Dict[str, object]:
    """Parse wire bytes; malformed input raises ``SVC01/bad-json``."""
    try:
        data = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError("SVC01", f"request is not valid JSON: {exc}") \
            from None
    if not isinstance(data, dict):
        raise ProtocolError("SVC01", "request must be a JSON object")
    return data


def ok_response(result: Dict[str, object]) -> Dict[str, object]:
    """The success envelope."""
    return {"v": SCHEMA_VERSION, "ok": True, "result": result}


def error_response(code: str, message: str,
                   diagnostics: Optional[List[Diagnostic]] = None,
                   retry_after: Optional[int] = None) -> Dict[str, object]:
    """The failure envelope (also built from a caught ProtocolError)."""
    slug, _status = ERROR_CATALOG[code]
    error: Dict[str, object] = {
        "code": code, "name": slug, "message": message,
        "diagnostics": [d.to_dict() for d in diagnostics or ()],
    }
    if retry_after is not None:
        error["retry_after"] = retry_after
    return {"v": SCHEMA_VERSION, "ok": False, "error": error}


def http_status(response: Dict[str, object]) -> int:
    """The HTTP status a response envelope maps to (200 for success)."""
    if response.get("ok"):
        return 200
    error = response.get("error")
    code = error.get("code") if isinstance(error, dict) else None
    if isinstance(code, str) and code in ERROR_CATALOG:
        return ERROR_CATALOG[code][1]
    return 500


def protocol_error_response(exc: ProtocolError) -> Dict[str, object]:
    """Envelope for a caught :class:`ProtocolError`."""
    return error_response(exc.code, exc.message, exc.diagnostics,
                          exc.retry_after)


def diagnostic_for_exception(message: str, file: Optional[str] = None
                             ) -> Diagnostic:
    """A bare ERROR diagnostic for failures with no structured origin."""
    return Diagnostic(rule="SVC00", name="service", severity=Severity.ERROR,
                      message=message, location=Location(file=file))
