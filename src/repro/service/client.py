"""Client side of the compile service: ``repro request`` and a python API.

:class:`ServiceClient` is a thin stdlib HTTP client (one connection per
call — the server speaks plain HTTP/1.1, so any client works).
:func:`compile_local` is the serial in-process reference path: the exact
bytes a healthy server would produce for the same request, used by the
parity tests and available to library callers who want the service
semantics without a daemon.
"""

from __future__ import annotations

import http.client
import json
from typing import Dict, List, Optional, Tuple

from repro.service import protocol
from repro.service.protocol import ProtocolError

__all__ = ["ServiceClient", "ServiceError", "ServiceReply", "compile_local"]


class ServiceError(RuntimeError):
    """A non-OK response envelope, with its HTTP status and error body."""

    def __init__(self, status: int, envelope: Dict[str, object]) -> None:
        error = envelope.get("error") if isinstance(envelope, dict) else None
        detail = error.get("message") if isinstance(error, dict) else None
        code = error.get("code") if isinstance(error, dict) else None
        super().__init__(f"service returned {status}"
                         + (f" [{code}] {detail}" if detail else ""))
        self.status = status
        self.envelope = envelope
        self.code = code
        self.retry_after = (error or {}).get("retry_after") \
            if isinstance(error, dict) else None


class ServiceReply:
    """One raw exchange: status, headers, body bytes, decoded envelope."""

    def __init__(self, status: int, headers: Dict[str, str],
                 body: bytes) -> None:
        self.status = status
        self.headers = headers
        self.body = body
        try:
            self.envelope: Dict[str, object] = json.loads(body)
        except (ValueError, UnicodeDecodeError):
            self.envelope = {}

    @property
    def ok(self) -> bool:
        return self.status == 200 and bool(self.envelope.get("ok"))

    @property
    def cache(self) -> Optional[str]:
        """``"hit"``/``"miss"`` from ``X-Repro-Cache``, if present."""
        return self.headers.get("x-repro-cache")

    def result(self) -> Dict[str, object]:
        """The compile result, raising :class:`ServiceError` otherwise."""
        if not self.ok:
            raise ServiceError(self.status, self.envelope)
        return self.envelope["result"]  # type: ignore[return-value]


class ServiceClient:
    """Talk to one ``repro serve`` instance."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8421,
                 timeout: float = 120.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------

    def _exchange(self, method: str, path: str,
                  body: Optional[bytes] = None) -> ServiceReply:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            headers = {"Content-Type": "application/json"} if body else {}
            conn.request(method, path, body=body, headers=headers)
            resp = conn.getresponse()
            payload = resp.read()
            lowered = {k.lower(): v for k, v in resp.getheaders()}
            return ServiceReply(resp.status, lowered, payload)
        finally:
            conn.close()

    def post_raw(self, raw: bytes) -> ServiceReply:
        """POST arbitrary bytes — the smoke driver's malformed requests."""
        return self._exchange("POST", "/", raw)

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------

    def compile_request(self, request: Dict[str, object]) -> ServiceReply:
        """Send an already-assembled compile request dict."""
        return self.post_raw(protocol.encode_message(request))

    def compile(self, workload: Optional[str] = None,
                text: Optional[str] = None,
                setup: str = "remapping",
                args: Optional[List[int]] = None,
                simulate: bool = True,
                machine: Optional[Dict[str, object]] = None,
                **options: object) -> Dict[str, object]:
        """Compile and return the result dict, raising on any error."""
        request = protocol.build_compile_request(
            workload=workload, text=text, setup=setup, args=args,
            simulate=simulate, machine=machine, **options)
        return self.compile_request(request).result()

    def health(self) -> Dict[str, object]:
        """``GET /healthz``: liveness and serving/draining state."""
        reply = self._exchange("GET", "/healthz")
        return reply.envelope

    def stats(self) -> Dict[str, object]:
        """``GET /statsz``: the server's live counter snapshot."""
        reply = self._exchange("GET", "/statsz")
        return reply.envelope


def compile_local(request: Dict[str, object]
                  ) -> Tuple[Dict[str, object], bytes]:
    """The serial in-process reference for one raw compile request.

    Returns ``(envelope, canonical bytes)`` — exactly what a server
    would compute for the same request body, minus the transport.
    Validation failures become error envelopes, mirroring the server.
    """
    try:
        normalized = protocol.normalize_request(request)
    except ProtocolError as exc:
        envelope = protocol.protocol_error_response(exc)
        return envelope, protocol.encode_message(envelope)
    from repro.service.server import execute_request

    envelope = execute_request(normalized)
    return envelope, protocol.encode_message(envelope)
