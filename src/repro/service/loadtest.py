"""Service load test: replay mixed compile traffic, measure the tail.

``repro loadtest`` drives N deterministic mixed compile requests (the
same bag the smoke scenario uses: workloads across setups plus
assembly-text sources) at a live ``repro serve`` instance through a
client-side thread pool, then writes ``BENCH_service.json``:

* latency percentiles (p50/p90/p99, milliseconds, client-observed wall
  time per request),
* throughput (requests per second over the whole replay),
* artifact-store hit rate (from the ``X-Repro-Cache`` header — the mix
  repeats, so a healthy store converts the tail of the run into hits),
* error counts and, when reachable, the server's ``/statsz`` snapshot
  (pool shape, batch sizes, worker crashes).

With ``spawn=True`` the harness boots its own in-process server against
a throwaway store first — that is what the CI job does, so the bench
file tracks a hermetic configuration rather than whatever daemon happens
to be running.
"""

from __future__ import annotations

import json
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional

from repro.service.client import ServiceClient
from repro.service.smoke import _compile_requests

__all__ = ["run_loadtest", "LOADTEST_SCHEMA"]

LOADTEST_SCHEMA = 1


def _percentile(sorted_values: List[float], fraction: float) -> float:
    """The same nearest-rank percentile ``/statsz`` reports."""
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[index]


def _replay(client: ServiceClient, requests: List[Dict[str, object]],
            concurrency: int) -> List[Dict[str, object]]:
    """Send every request; one observation dict per request, in order."""

    def one(request: Dict[str, object]) -> Dict[str, object]:
        t0 = time.monotonic()
        try:
            reply = client.compile_request(request)
            return {
                "seconds": time.monotonic() - t0,
                "ok": bool(reply.ok),
                "status": reply.status,
                "cache": reply.cache,
            }
        except OSError as exc:
            return {
                "seconds": time.monotonic() - t0,
                "ok": False,
                "status": 0,
                "cache": None,
                "error": f"{type(exc).__name__}: {exc}",
            }

    with ThreadPoolExecutor(max_workers=max(1, concurrency)) as pool:
        return list(pool.map(one, requests))


def run_loadtest(host: str = "127.0.0.1", port: int = 8421, *,
                 n_requests: int = 100,
                 concurrency: int = 8,
                 out_path: Optional[str] = "BENCH_service.json",
                 spawn: bool = False,
                 jobs: int = 2,
                 client_timeout: float = 120.0) -> Dict[str, object]:
    """Replay the mixed bag and return (and write) the bench document.

    Against an already-running server, pass its ``host``/``port``; with
    ``spawn=True`` the function instead boots an in-process
    :class:`~repro.service.server.ServiceServer` with ``jobs`` workers
    and a temporary store, and tears it down afterwards.
    """
    if n_requests < 1:
        raise ValueError(f"n_requests must be >= 1, got {n_requests}")
    # cycle a half-size unique bag so the replay revisits each request
    # (~twice): the second visit should be an artifact-store hit, which
    # makes the reported hit rate measure the store, not the mix
    unique = _compile_requests(max(1, n_requests // 2))
    requests = [unique[i % len(unique)] for i in range(n_requests)]

    server = thread = tmp = None
    try:
        if spawn:
            from repro.service.server import ServiceServer
            from repro.service.store import ArtifactStore

            tmp = tempfile.TemporaryDirectory(prefix="repro-loadtest-")
            server = ServiceServer(
                "127.0.0.1", 0, store=ArtifactStore(tmp.name), jobs=jobs)
            thread = server.start_background()
            host, port = server.host, server.port

        client = ServiceClient(host, port, timeout=client_timeout)
        t0 = time.monotonic()
        observations = _replay(client, requests, concurrency)
        elapsed = time.monotonic() - t0

        latencies = sorted(o["seconds"] for o in observations)
        hits = sum(1 for o in observations if o["cache"] == "hit")
        misses = sum(1 for o in observations if o["cache"] == "miss")
        errors = [o for o in observations if not o["ok"]]
        try:
            statsz = client.stats()
        except OSError:
            statsz = None

        doc: Dict[str, object] = {
            "schema": LOADTEST_SCHEMA,
            "loadtest": {
                "requests": len(observations),
                "concurrency": concurrency,
                "ok": len(observations) - len(errors),
                "errors": len(errors),
                "p50_ms": 1000 * _percentile(latencies, 0.50),
                "p90_ms": 1000 * _percentile(latencies, 0.90),
                "p99_ms": 1000 * _percentile(latencies, 0.99),
                "elapsed_seconds": elapsed,
                "throughput_rps": len(observations) / elapsed
                if elapsed else float("inf"),
                "hits": hits,
                "misses": misses,
                "hit_rate": hits / (hits + misses)
                if hits + misses else 0.0,
                "spawned": spawn,
                "jobs": jobs if spawn else None,
                # the cpu-clamped worker count actually serving requests
                # — the same field (and clamp) bench_sweep reports, read
                # from the server's own pool when reachable
                "effective_workers":
                    statsz["pool"].get("max_workers")
                    if statsz and "pool" in statsz else None,
                "statsz": statsz,
            },
        }
    finally:
        if server is not None and thread is not None:
            server.stop_background(thread)
        if tmp is not None:
            tmp.cleanup()

    if out_path:
        with open(out_path, "w") as f:
            json.dump(doc, f, indent=2, sort_keys=True)
            f.write("\n")
    return doc
