"""End-to-end service smoke: the scenario CI runs (``repro service-smoke``).

Boots a real ``repro serve`` subprocess against a fresh store, then:

1. drives ~50 mixed requests — compiles across workloads and setups,
   assembly-text sources, malformed JSON, an unknown workload, a bad
   schema version, and one forced timeout (``debug_sleep`` past the
   server's request deadline) — through a small thread pool so
   micro-batching actually engages;
2. repeats the well-formed compile set and asserts the second pass is
   served with a non-zero store hit-rate and byte-identical bodies;
3. sends SIGTERM and asserts the daemon drains cleanly (exit code 0)
   and persists its telemetry snapshot.

Returns a process exit code; prints a one-line verdict per phase so CI
logs read as a checklist.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple

from repro.service import protocol
from repro.service.client import ServiceClient

__all__ = ["run_smoke"]

_TEXT_SOURCE = """\
func smoke_text(v0):
entry:
    li v1, 7
    li v2, 13
    add v3, v0, v1
    mul v4, v3, v2
    sub v5, v4, v1
    ret v5
"""


def _compile_requests(cases: int) -> List[Dict[str, object]]:
    """A deterministic mixed bag of well-formed compile requests."""
    from repro.regalloc.pipeline import SETUPS
    from repro.workloads import MIBENCH

    requests: List[Dict[str, object]] = []
    names = [w.name for w in MIBENCH[:6]]
    for i in range(cases):
        if i % 7 == 3:
            requests.append(protocol.build_compile_request(
                text=_TEXT_SOURCE, setup=SETUPS[i % len(SETUPS)],
                args=[9], restarts=2))
        else:
            requests.append(protocol.build_compile_request(
                workload=names[i % len(names)],
                setup=SETUPS[i % len(SETUPS)],
                restarts=2 + (i % 2)))
    return requests


def _drive(client: ServiceClient, requests: List[Dict[str, object]],
           workers: int = 8) -> List:
    with ThreadPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(client.compile_request, requests))


def _wait_ready(ready_file: str, proc: subprocess.Popen,
                timeout: float = 30.0) -> Tuple[str, int]:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(
                f"server exited early with code {proc.returncode}")
        try:
            with open(ready_file) as fh:
                text = fh.read().strip()
            if text:
                host, port = text.rsplit(":", 1)
                return host, int(port)
        except (FileNotFoundError, ValueError):
            pass
        time.sleep(0.05)
    raise RuntimeError("server did not become ready in time")


def run_smoke(out_path: str = "TELEMETRY_service.json",
              cases: int = 50, jobs: int = 2,
              request_timeout: float = 5.0,
              store_root: Optional[str] = None) -> int:
    """Run the whole scenario; returns 0 on success, 1 on any failure."""
    failures: List[str] = []

    def check(ok: bool, label: str) -> None:
        print(f"  {'ok' if ok else 'FAIL'}: {label}")
        if not ok:
            failures.append(label)

    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as tmp:
        ready_file = os.path.join(tmp, "ready")
        store = store_root or os.path.join(tmp, "store")
        cmd = [
            sys.executable, "-m", "repro", "serve",
            "--host", "127.0.0.1", "--port", "0",
            "--jobs", str(jobs), "--store", store,
            "--telemetry", out_path, "--ready-file", ready_file,
            "--allow-debug", "--timeout", str(request_timeout),
            "--linger", "0.01", "--queue-limit", "64",
        ]
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        env["PYTHONPATH"] = src_root + os.pathsep + \
            env.get("PYTHONPATH", "")
        proc = subprocess.Popen(cmd, env=env)
        try:
            host, port = _wait_ready(ready_file, proc)
            client = ServiceClient(host, port,
                                   timeout=request_timeout + 30)
            print(f"server ready on {host}:{port}")
            check(client.health().get("status") == "serving", "healthz")

            requests = _compile_requests(cases)

            print(f"pass 1: {len(requests)} compiles + malformed traffic")
            t0 = time.monotonic()
            first = _drive(client, requests)
            cold_elapsed = time.monotonic() - t0
            check(all(r.ok for r in first), "every well-formed compile OK")

            bad_json = client.post_raw(b"{not json")
            check(bad_json.status == 400
                  and bad_json.envelope["error"]["code"] == "SVC01",
                  "malformed JSON answered 400/SVC01")
            bad_version = client.compile_request(
                {"v": 99, "source": {"workload": "sha"}})
            check(bad_version.status == 400
                  and bad_version.envelope["error"]["code"] == "SVC02",
                  "bad schema version answered 400/SVC02")
            missing = client.compile_request(
                protocol.build_compile_request(workload="no-such-kernel"))
            check(missing.status == 404, "unknown workload answered 404")
            # seed 999 is used by no other request, so this cannot be a
            # store hit (debug_sleep itself is not part of the cache key)
            slow = client.compile_request(protocol.build_compile_request(
                workload="sha", restarts=2, seed=999,
                debug_sleep=request_timeout + 2))
            check(slow.status == 504
                  and slow.envelope["error"]["code"] == "SVC09",
                  "forced timeout answered 504/SVC09")

            print("pass 2: identical compile set (expect store hits)")
            t0 = time.monotonic()
            second = _drive(client, requests)
            warm_elapsed = time.monotonic() - t0
            check(all(r.ok for r in second), "warm pass OK")
            check(all(a.body == b.body
                      for a, b in zip(first, second)),
                  "warm bodies byte-identical to cold")
            stats = client.stats()
            check(stats.get("store_hits", 0) > 0
                  and stats.get("hit_rate", 0) > 0,
                  f"store hit-rate > 0 (hits={stats.get('store_hits')}, "
                  f"rate={stats.get('hit_rate'):.2f})")
            print(f"  cold {cold_elapsed:.2f}s, warm {warm_elapsed:.2f}s "
                  f"({cold_elapsed / max(warm_elapsed, 1e-9):.1f}x)")

            print("drain: SIGTERM")
            proc.send_signal(signal.SIGTERM)
            code = proc.wait(timeout=60)
            check(code == 0, f"clean drain exit (code {code})")
            check(os.path.exists(out_path), f"telemetry written: {out_path}")
            if os.path.exists(out_path):
                import json

                with open(out_path) as fh:
                    telemetry = json.load(fh)
                check(telemetry.get("batches", 0) > 0,
                      f"telemetry records batching "
                      f"(batches={telemetry.get('batches')}, "
                      f"max_batch={telemetry.get('max_batch')})")
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)

    if failures:
        print(f"service-smoke: {len(failures)} failure(s)")
        return 1
    print("service-smoke: all checks passed")
    return 0
