"""Post-encoding elimination of provably unnecessary ``set_last_reg``.

The encoder plans join repairs block by block in layout order, and a
repair committed early can be made unnecessary by decisions taken later
(a predecessor-end repair further down the layout changes that
predecessor's exit value; a back edge adopts the entry value the repair
was defending against).  Every surviving ``set_last_reg`` costs a
fetch/decode slot per execution in the timing model, so deleting the
provably unnecessary ones is pure profit — the paper's overhead numbers
(Figure 12) count exactly these instructions.

Two removable classes, both proved by :func:`repro.encoding.
static_verifier.analyze_last_reg`:

* **redundant** — at its fire point ``last_reg[cls]`` already holds the
  written value on *every* reaching path.  The write is a semantic no-op,
  so any subset of redundant repairs can be deleted simultaneously: the
  decode state trajectory is bit-for-bit unchanged.
* **dead** — the written value is never read (no field of the class is
  differentially decoded) before being overwritten or the function ends.
  Simultaneous deletion is safe too: removing one dead write extends the
  previous value's lifetime only across a region the analysis already
  proved read-free.

The two classes must not be deleted in the *same* sweep: a repair can be
redundant only because a dead repair upstream wrote its value.  The pass
therefore alternates — delete all dead, re-analyse, delete all redundant,
re-analyse — until neither class is inhabited, then (by default) proves
the result with the decode-replay verifier.  Deleting a ``set_last_reg``
never perturbs other delay counters: counters tick on decoded register
fields only, never on ``set_last_reg`` instructions themselves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set

from repro.encoding.encoder import EncodedFunction
from repro.encoding.static_verifier import SetlrFact, analyze_last_reg

__all__ = ["EliminationResult", "eliminate_redundant_setlr"]


@dataclass
class EliminationResult:
    """Outcome of :func:`eliminate_redundant_setlr` on one encoding."""

    enc: EncodedFunction
    n_removed_redundant: int = 0
    n_removed_dead: int = 0
    rounds: int = 0
    #: the facts of the deleted instructions, for reporting
    removed: List[SetlrFact] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.removed is None:
            self.removed = []

    @property
    def n_removed(self) -> int:
        return self.n_removed_redundant + self.n_removed_dead


def _delete_setlrs(enc: EncodedFunction, uids: Set[int]) -> None:
    for block in enc.fn.blocks:
        block.instrs = [
            i for i in block.instrs
            if not (i.op == "setlr" and i.uid in uids)
        ]


def eliminate_redundant_setlr(enc: EncodedFunction,
                              verify: bool = True) -> EliminationResult:
    """Delete every provably redundant or dead ``set_last_reg`` in ``enc``.

    Mutates ``enc`` in place (the function, and the ``n_setlr_removed``
    counter that :attr:`EncodedFunction.n_setlr` subtracts) and returns
    the statistics.  With ``verify`` set, the result is decode-replayed
    over every CFG path — an :class:`~repro.encoding.verifier.
    EncodingError` here would mean the static proof is wrong, so it
    propagates rather than being swallowed.
    """
    result = EliminationResult(enc=enc)
    while True:
        result.rounds += 1
        analysis = analyze_last_reg(enc.fn, enc.config)
        # dead first: a repair may be redundant only because a dead
        # repair upstream wrote its value, so the two classes must be
        # re-proved between sweeps
        dead = [f for f in analysis.setlr_facts if f.dead]
        if dead:
            _delete_setlrs(enc, {f.uid for f in dead})
            result.n_removed_dead += len(dead)
            result.removed.extend(dead)
            continue
        redundant = [f for f in analysis.setlr_facts if f.redundant]
        if redundant:
            _delete_setlrs(enc, {f.uid for f in redundant})
            result.n_removed_redundant += len(redundant)
            result.removed.extend(redundant)
            continue
        break

    enc.n_setlr_removed += result.n_removed
    if verify and result.n_removed:
        from repro.encoding.verifier import verify_encoding

        verify_encoding(enc)
    return result
