"""Difference-distribution statistics.

Differential encoding is profitable exactly because real access sequences
concentrate on small clockwise differences — that is the paper's implicit
empirical premise (and why its Figure 2 example encodes four registers in
one bit).  This module measures the premise: the histogram of modular
differences in a function's access sequence, and the coverage a given
``DiffN`` achieves (the fraction of fields encodable without repair).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.encoding.access_order import access_sequence
from repro.ir.function import Function

__all__ = ["DifferenceStats", "difference_stats"]


@dataclass
class DifferenceStats:
    """Histogram of modular differences over one access sequence."""

    reg_n: int
    histogram: Dict[int, int]          # difference -> occurrences
    n_fields: int

    def coverage(self, diff_n: int) -> float:
        """Fraction of fields whose difference fits ``[0, diff_n)`` —
        an upper bound on repair-free encodability (joins aside)."""
        if self.n_fields == 0:
            return 1.0
        covered = sum(
            count for diff, count in self.histogram.items() if diff < diff_n
        )
        return covered / self.n_fields

    def smallest_diff_n_for(self, target_coverage: float) -> int:
        """The smallest DiffN reaching ``target_coverage``."""
        for diff_n in range(1, self.reg_n + 1):
            if self.coverage(diff_n) >= target_coverage:
                return diff_n
        return self.reg_n

    def quantiles(self) -> Tuple[int, int, int]:
        """(median, p90, max) of the difference distribution."""
        expanded: List[int] = []
        for diff in sorted(self.histogram):
            expanded.extend([diff] * self.histogram[diff])
        if not expanded:
            return (0, 0, 0)
        return (
            expanded[len(expanded) // 2],
            expanded[int(len(expanded) * 0.9)],
            expanded[-1],
        )


def difference_stats(fn: Function, reg_n: int,
                     order: str = "src_first",
                     initial: int = 0) -> DifferenceStats:
    """Measure the difference distribution of an allocated function.

    The sequence is the straight-line layout-order view (like the adjacency
    graph); registers outside ``[0, reg_n)`` are skipped, as special
    registers would be.
    """
    histogram: Dict[int, int] = {}
    last = initial
    n = 0
    for reg in access_sequence(fn, order):
        if reg.virtual:
            raise ValueError("difference statistics need allocated code")
        if not 0 <= reg.id < reg_n:
            continue
        d = (reg.id - last) % reg_n
        histogram[d] = histogram.get(d, 0) + 1
        last = reg.id
        n += 1
    return DifferenceStats(reg_n=reg_n, histogram=histogram, n_fields=n)
