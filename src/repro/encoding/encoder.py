"""Differential encoding of an allocated function (paper Sections 2.2-2.3).

Input: a function whose register operands are physical registers, either
inside the differential space ``[0, RegN)`` or special registers with
reserved direct slots.  Output: an :class:`EncodedFunction` — a copy of the
function with ``set_last_reg`` instructions inserted, plus the encoded field
values and overhead statistics.

Two repair situations exist:

* **difference out of range** (Section 2.2.1): the modular difference to the
  next accessed register does not fit in ``DiffN`` values.  We insert
  ``set_last_reg(n, delay)`` in front of the instruction, where ``delay`` is
  the number of register fields of that instruction decoded before the
  offending one; the field then encodes difference 0.
* **multi-path inconsistency** (Section 2.2.2): control-flow joins can reach
  a block with different ``last_reg`` values.  The paper offers two
  placements — one ``set_last_reg`` at the head of the join block, or on the
  mismatching predecessor edges.  Our ``pred_end`` policy chooses per join,
  by estimated execution frequency: the canonical entry value is picked to
  make the *hot* incoming edge repair-free, and cold edges are repaired at
  the end of their predecessor when that predecessor's other successors
  agree (otherwise the block-entry placement is the fallback).

A key structural fact makes this clean: a block's exit ``last_reg`` is just
the last register accessed in it — independent of its entry value — so
exits can be computed before any entry value is chosen.

``set_last_reg`` carries ``imm=(value, delay, cls)`` — the class tag exists
only for multi-class configurations (Section 9.1) and defaults to ``"int"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.analysis.frequency import estimate_block_frequencies
from repro.diagnostics import (
    Diagnostic,
    DiagnosticReport,
    LintError,
    Location,
    Severity,
)
from repro.encoding.access_order import ACCESS_ORDERS
from repro.encoding.config import EncodingConfig
from repro.ir.function import BasicBlock, Function
from repro.ir.instr import Instr, Reg

__all__ = [
    "EncodedFunction",
    "encode_function",
    "encoding_preconditions",
    "setlr_payload",
]


def setlr_payload(instr: Instr) -> Tuple[int, int, str]:
    """Normalise a ``setlr`` immediate to ``(value, delay, cls)``."""
    imm = instr.imm
    if isinstance(imm, tuple):
        if len(imm) == 3:
            return imm  # type: ignore[return-value]
        if len(imm) == 2:
            return (imm[0], imm[1], "int")
    raise ValueError(f"malformed setlr payload {imm!r}")


@dataclass
class EncodedFunction:
    """Result of :func:`encode_function`."""

    fn: Function
    config: EncodingConfig
    field_codes: Dict[int, Tuple[int, ...]]
    entry_values: Dict[str, Dict[str, int]]  # block -> cls -> last_reg on entry
    exit_values: Dict[str, Dict[str, int]]
    n_setlr_inline: int = 0   # out-of-range repairs
    n_setlr_join: int = 0     # multi-path repairs
    n_setlr_removed: int = 0  # repairs deleted by setlr_elim

    @property
    def n_setlr(self) -> int:
        return self.n_setlr_inline + self.n_setlr_join - self.n_setlr_removed

    @property
    def overhead_fraction(self) -> float:
        """set_last_reg instructions as a fraction of all instructions
        (the paper's Figure 12 'cost' metric)."""
        total = self.fn.num_instructions()
        return self.n_setlr / total if total else 0.0


def encoding_preconditions(fn: Function,
                           config: EncodingConfig) -> DiagnosticReport:
    """Statically check that ``fn`` is legal encoder input.

    Returns a report of lint diagnostics (rule ids match the catalogue in
    :mod:`repro.lint.rules` / ``docs/lint_rules.md``): stray virtual
    registers (L003), physical registers outside the differential space
    that are not reserved special registers (L004), and pre-existing
    ``set_last_reg`` instructions (L007).  The encoder rejects input with
    a non-empty report; :mod:`repro.lint` re-uses the same check so
    ``repro lint`` reports identical findings without running the encoder.
    """
    report = DiagnosticReport()
    seen: set = set()

    def check_reg(r: Reg, loc: Location) -> None:
        if r in seen:
            return
        seen.add(r)
        if r.virtual:
            report.add(Diagnostic(
                rule="L003", name="vreg-mixing", severity=Severity.ERROR,
                message=f"virtual register {r} survives to encoding",
                location=loc,
                hint="run register allocation first",
            ))
            return
        if r.cls not in config.classes:
            return
        if not config.is_special(r) and r.id >= config.reg_n:
            report.add(Diagnostic(
                rule="L004", name="reg-class", severity=Severity.ERROR,
                message=f"register {r} outside differential space "
                        f"[0, {config.reg_n}) and not a reserved special "
                        "register",
                location=loc,
            ))

    fn_loc = Location(function=fn.name)
    for r in fn.params:
        check_reg(r, fn_loc)
    for block in fn.blocks:
        for i, instr in enumerate(block.instrs):
            loc = Location(function=fn.name, block=block.name,
                           instr_index=i, uid=instr.uid)
            if instr.op == "setlr":
                report.add(Diagnostic(
                    rule="L007", name="setlr", severity=Severity.ERROR,
                    message="input already contains set_last_reg",
                    location=loc,
                    hint="encode_function inserts repairs itself; "
                         "pass the pre-encoding function",
                ))
            for r in instr.uses() + instr.defs():
                check_reg(r, loc)
    return report


def _check_registers(fn: Function, config: EncodingConfig) -> None:
    report = encoding_preconditions(fn, config)
    if not report.ok:
        raise LintError(f"{fn.name}: illegal encoder input", report)


def _last_encodable(fields, config: EncodingConfig, cls: str) -> Optional[int]:
    """The register id a block's decode leaves in ``last_reg`` — the last
    non-special field of class ``cls`` — or None if there is none."""
    out: Optional[int] = None
    for r in fields:
        if r.cls == cls and not config.is_special(r):
            out = r.id
    return out


def _terminator_field_count(block: BasicBlock, config: EncodingConfig) -> int:
    term = block.terminator()
    if term is None:
        return 0
    return len(ACCESS_ORDERS[config.access_order](term))


def encode_function(fn: Function, config: EncodingConfig,
                    freq: Optional[Mapping[str, float]] = None) -> EncodedFunction:
    """Differentially encode ``fn`` under ``config``.

    The input function is not modified; the returned ``EncodedFunction.fn``
    contains the inserted ``set_last_reg`` instructions.  ``freq`` biases
    the join-repair placement (defaults to the static loop-nest estimate).
    """
    _check_registers(fn, config)
    fn = fn.copy()
    order_fn = ACCESS_ORDERS[config.access_order]
    succs, preds = fn.cfg()
    if freq is None:
        freq = estimate_block_frequencies(fn)

    # ------------------------------------------------------------------
    # phase 1: block exit values (entry-independent)
    # ------------------------------------------------------------------
    block_fields: Dict[str, List[Reg]] = {}
    for b in fn.blocks:
        fields: List[Reg] = []
        for instr in b.instrs:
            fields.extend(order_fn(instr))
        block_fields[b.name] = fields

    # exit[b][cls]: concrete id, or None meaning "passes the entry through"
    raw_exit: Dict[str, Dict[str, Optional[int]]] = {
        b.name: {
            cls: _last_encodable(block_fields[b.name], config, cls)
            for cls in config.classes
        }
        for b in fn.blocks
    }

    # ------------------------------------------------------------------
    # phase 2: choose entry values and plan join repairs, in layout order
    # ------------------------------------------------------------------
    entry_values: Dict[str, Dict[str, int]] = {b.name: {} for b in fn.blocks}
    exit_values: Dict[str, Dict[str, int]] = {b.name: {} for b in fn.blocks}
    # repair plan: ("entry", block, cls, value) or ("pred", pred, cls, value)
    repairs: List[Tuple[str, str, str, int]] = []
    decided: Dict[str, bool] = {}

    def effective_exit(p: str, cls: str) -> Optional[int]:
        """Exit value of p as successors see it, if known yet."""
        if not decided.get(p):
            raw = raw_exit[p][cls]
            return raw  # None if pass-through and p not yet decided
        return exit_values[p].get(cls)

    for bi, block in enumerate(fn.blocks):
        name = block.name
        for cls in config.classes:
            if bi == 0:
                entry = config.initial_last_reg
            else:
                entry = _choose_entry(
                    fn, config, name, cls, preds, succs, freq,
                    effective_exit, entry_values, decided, repairs,
                    exit_values,
                )
            entry_values[name][cls] = entry
            raw = raw_exit[name][cls]
            exit_values[name][cls] = entry if raw is None else raw
        decided[name] = True

    # re-check every edge after all entries are decided: edges from
    # later-layout predecessors (back edges) may still mismatch
    for block in fn.blocks:
        name = block.name
        for cls in config.classes:
            want = entry_values[name][cls]
            pending = [
                p for p in preds[name]
                if exit_values[p][cls] != want
                and not _edge_repaired(repairs, p, name, cls)
            ]
            if not pending:
                continue
            _plan_block_repairs(
                fn, config, name, cls, want, pending, succs,
                entry_values, exit_values, freq, repairs,
            )

    # ------------------------------------------------------------------
    # phase 3: encode fields, inserting inline out-of-range repairs
    # ------------------------------------------------------------------
    field_codes: Dict[int, Tuple[int, ...]] = {}
    n_inline = 0
    for block in fn.blocks:
        last = dict(entry_values[block.name])
        new_instrs: List[Instr] = []
        for instr in block.instrs:
            codes: List[int] = []
            pre: List[Instr] = []
            for pos, r in enumerate(order_fn(instr)):
                if r.cls not in config.classes:
                    continue
                if config.is_special(r):
                    codes.append(config.code_for_register(r))
                    continue
                d = (r.id - last[r.cls]) % config.reg_n
                if d < config.diff_n:
                    codes.append(d)
                else:
                    pre.append(Instr("setlr", imm=(r.id, pos, r.cls)))
                    n_inline += 1
                    codes.append(0)
                last[r.cls] = r.id
            field_codes[instr.uid] = tuple(codes)
            new_instrs.extend(pre)
            new_instrs.append(instr)
        block.instrs = new_instrs

    # ------------------------------------------------------------------
    # phase 4: materialise the join-repair plan
    # ------------------------------------------------------------------
    n_join = 0
    for kind, where, cls, value in repairs:
        target = fn.block(where)
        if kind == "entry":
            target.instrs.insert(0, Instr("setlr", imm=(value, 0, cls)))
        else:  # pred-end, after the terminator's own fields decode
            delay = _terminator_field_count(target, config)
            repair = Instr("setlr", imm=(value, delay, cls))
            if target.terminator() is None:
                target.instrs.append(repair)
            else:
                target.instrs.insert(len(target.instrs) - 1, repair)
        n_join += 1

    return EncodedFunction(
        fn=fn,
        config=config,
        field_codes=field_codes,
        entry_values=entry_values,
        exit_values=exit_values,
        n_setlr_inline=n_inline,
        n_setlr_join=n_join,
    )


def _edge_repaired(repairs: List[Tuple[str, str, str, int]],
                   p: str, b: str, cls: str) -> bool:
    """Whether a planned repair already fixes the edge p -> b for cls."""
    for kind, where, rcls, _ in repairs:
        if rcls != cls:
            continue
        if kind == "entry" and where == b:
            return True
        if kind == "pred" and where == p:
            return True
    return False


def _pred_end_safe(fn: Function, p: str, cls: str, value: int,
                   target: str, succs, entry_values, decided) -> bool:
    """A pred-end ``set_last_reg`` changes ``p``'s exit on *all* its
    outgoing edges, so every other successor must expect ``value`` too."""
    for s in succs[p]:
        if s == target:
            continue
        if not decided.get(s) or entry_values[s].get(cls) != value:
            return False
    return True


def _choose_entry(fn: Function, config: EncodingConfig, name: str, cls: str,
                  preds, succs, freq, effective_exit, entry_values, decided,
                  repairs, exit_values) -> int:
    """Pick the canonical entry value for one block and plan its repairs.

    Candidates are the known predecessor exits — including raw exits of
    not-yet-decided predecessors (back edges), so a loop header can adopt
    the back edge's exit and keep the hot path repair-free.  Each candidate
    is costed by the frequency of the edges still needing repair.  Repairs
    are committed only on already-decided predecessors; mismatching back
    edges are reconciled by the post-pass once every entry is fixed.
    """
    known: List[Tuple[str, int, bool]] = []  # (pred, exit, is_decided)
    for p in preds[name]:
        e = effective_exit(p, cls)
        if e is not None:
            known.append((p, e, bool(decided.get(p))))
    if not known:
        return config.initial_last_reg

    candidates = sorted({e for _, e, _ in known})
    best_value = candidates[0]
    best_cost: Optional[Tuple[float, int]] = None
    block_freq = freq.get(name, 1.0)
    plans: Dict[int, List[Tuple[str, str, str, int]]] = {}

    for v in candidates:
        weighted = 0.0
        static = 0
        plan: List[Tuple[str, str, str, int]] = []
        entry_needed = False
        for p, e, is_decided in known:
            if e == v:
                continue
            pred_ok = (
                config.join_repair == "pred_end"
                and _pred_end_safe(fn, p, cls, v, name, succs,
                                   entry_values, decided)
            )
            if pred_ok and is_decided:
                weighted += freq.get(p, 1.0)
                static += 1
                plan.append(("pred", p, cls, v))
            elif (config.join_repair == "pred_end" and not is_decided
                  and len(succs[p]) == 1):
                # back edge from a single-successor block: the post-pass
                # will place the repair at its end; estimate that cost
                weighted += freq.get(p, 1.0)
                static += 1
            else:
                entry_needed = True
        if entry_needed:
            weighted += block_freq
            static += 1
            plan = [("entry", name, cls, v)]  # entry repair covers everything
        cost = (weighted, static)
        plans[v] = plan
        if best_cost is None or cost < best_cost:
            best_cost, best_value = cost, v

    for item in plans[best_value]:
        repairs.append(item)
        if item[0] == "pred":
            # the predecessor's exit now delivers the canonical value
            exit_values[item[1]][cls] = item[3]
    return best_value


def _plan_block_repairs(fn: Function, config: EncodingConfig, name: str,
                        cls: str, want: int, pending: List[str], succs,
                        entry_values, exit_values, freq, repairs) -> None:
    """Repair residual mismatching edges discovered after all entries are
    fixed (mostly back edges).  All-pred-end when every pending edge allows
    it, otherwise a single block-entry repair covers them all."""
    all_decided = {b.name: True for b in fn.blocks}
    safe = [
        p for p in pending
        if config.join_repair == "pred_end"
        and _pred_end_safe(fn, p, cls, want, name, succs, entry_values,
                           all_decided)
    ]
    if len(safe) == len(pending):
        for p in safe:
            repairs.append(("pred", p, cls, want))
            exit_values[p][cls] = want
    else:
        repairs.append(("entry", name, cls, want))
