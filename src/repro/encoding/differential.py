"""Modular difference arithmetic (paper Definition 1, Equations 1 and 2).

Encoding a register access sequence ``n1, n2, ..., nk`` (with the implicit
``n0 = 0``) produces differences ``d_i = (n_i - n_{i-1}) mod RegN``; decoding
inverts with ``n_i = (d_i + n_{i-1}) mod RegN``.  On the clock-face picture of
Figure 1, ``d_i`` is the clockwise hop count from the previous register to the
current one.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = [
    "encode_difference",
    "decode_difference",
    "encode_sequence",
    "decode_sequence",
    "min_diff_width",
]


def encode_difference(current: int, previous: int, reg_n: int) -> int:
    """Equation (1): ``(current - previous) mod RegN``.

    Python's ``%`` already matches the paper's Definition 1 (result in
    ``[0, RegN)`` for positive modulus).
    """
    if not 0 <= current < reg_n:
        raise ValueError(f"register {current} out of range for RegN={reg_n}")
    if not 0 <= previous < reg_n:
        raise ValueError(f"register {previous} out of range for RegN={reg_n}")
    return (current - previous) % reg_n


def decode_difference(diff: int, previous: int, reg_n: int) -> int:
    """Equation (2): ``(diff + previous) mod RegN``."""
    if not 0 <= diff < reg_n:
        raise ValueError(f"difference {diff} out of range for RegN={reg_n}")
    return (diff + previous) % reg_n


def encode_sequence(registers: Sequence[int], reg_n: int, initial: int = 0) -> List[int]:
    """Differences for a whole access sequence (``n0 = initial``)."""
    out: List[int] = []
    last = initial
    for n in registers:
        out.append(encode_difference(n, last, reg_n))
        last = n
    return out


def decode_sequence(diffs: Sequence[int], reg_n: int, initial: int = 0) -> List[int]:
    """Invert :func:`encode_sequence`."""
    out: List[int] = []
    last = initial
    for d in diffs:
        last = decode_difference(d, last, reg_n)
        out.append(last)
    return out


def min_diff_width(diffs: Iterable[int]) -> int:
    """Bits needed to represent every difference in ``diffs`` directly."""
    top = max(diffs, default=0)
    return max(1, top.bit_length())
