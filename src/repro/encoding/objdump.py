"""objdump-style listings for packed differential binaries.

Renders a :class:`~repro.encoding.binary.PackedProgram` the way a
disassembler would: bit offsets, the raw bits of every instruction, and
the decoded mnemonic — ``set_last_reg`` lines are kept and marked, since a
disassembler sees them even though the pipeline discards them at decode.
Useful for eyeballing exactly what the encoder emitted.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.encoding.binary import PackedProgram, unpack_function
from repro.ir.printer import format_instr

__all__ = ["disassemble"]


def _bits_of(packed: PackedProgram, start: int, end: int,
             limit: int = 40) -> str:
    out: List[str] = []
    for pos in range(start, min(end, start + limit)):
        byte = packed.data[pos // 8]
        out.append(str((byte >> (7 - pos % 8)) & 1))
        if (pos - start) % 8 == 7:
            out.append(" ")
    text = "".join(out).strip()
    if end - start > limit:
        text += "..."
    return text


def disassemble(packed: PackedProgram) -> str:
    """Render the packed program as an annotated listing."""
    extents: List[Tuple[str, int, int, bool]] = []
    decoded = unpack_function(packed, collect_extents=extents)

    cfg = packed.config
    lines = [
        f"; {packed.name}: {packed.n_bits} bits "
        f"({packed.size_bytes:.1f} bytes), "
        f"{cfg.field_bits}-bit register fields, "
        f"RegN={cfg.reg_n} DiffN={cfg.diff_n}",
    ]

    # group extents per block; the decoded function has the non-setlr
    # instructions in the same order as the non-setlr extents
    by_block: dict = {}
    for name, start, end, is_setlr in extents:
        by_block.setdefault(name, []).append((start, end, is_setlr))

    for block, entry in zip(decoded.blocks, packed.block_entries):
        anchors = ", ".join(f"{cls}=r{val}" for cls, val in entry)
        lines.append(f"{block.name}:    ; entry last_reg {anchors}")
        instr_iter = iter(block.instrs)
        for start, end, is_setlr in by_block.get(block.name, ()):
            bits = _bits_of(packed, start, end)
            if is_setlr:
                lines.append(
                    f"  {start:6d}: {bits:<44} ; set_last_reg "
                    "(dies at decode)"
                )
            else:
                instr = next(instr_iter)
                lines.append(
                    f"  {start:6d}: {bits:<44} {format_instr(instr)}"
                )
    return "\n".join(lines)
