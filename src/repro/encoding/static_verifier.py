"""Static verification of differential encodings by abstract interpretation.

:mod:`repro.encoding.verifier` proves an encoding sound by *replaying* the
decode over every reachable ``(block, last_reg state)`` pair.  This module
proves the same property *statically*: it abstracts the decoder's
``last_reg`` (per access class) into a three-level lattice

    ⊥  (unreachable — no decode state ever arrives)
    n  (every path reaching this point leaves ``last_reg = n``)
    ⊤  (paths disagree — at least two distinct values reach this point)

and runs a forward dataflow problem over the CFG using the generic
worklist framework (:mod:`repro.analysis.dataflow`).  The abstraction is
*exact* in the collecting sense: per class, the abstract entry value of a
block is precisely the join of the concrete ``last_reg`` values the replay
verifier would enumerate there, because a field's decode depends only on
its own class's ``last_reg`` and every field access overwrites it with the
(known) original operand.  That exactness is what makes the static verdict
provably agree with decode replay — see ``tests/test_properties.py``.

``set_last_reg`` delay counters are modelled symbolically: each block is
pre-compiled into an *event stream* interleaving register-field decodes
with the ``set_last_reg`` fires their delay counters trigger, exactly as
``repro.encoding.verifier._decode_block`` ticks them.

Two entry points:

* :func:`analyze_last_reg` — codes-free analysis of any function (with or
  without field codes): per-block entry/exit abstract states plus one
  :class:`SetlrFact` per ``set_last_reg`` classifying it as *redundant*
  (the value it writes is already in ``last_reg`` on every path) and/or
  *dead* (the value it writes is never read before being overwritten).
  This is the substrate of lint rule L011 and the ``setlr_elim`` pass.
* :func:`verify_encoding_static` — the full static verifier over an
  :class:`~repro.encoding.encoder.EncodedFunction`: additionally checks
  every field code against the abstract decode state and emits the
  E-series diagnostics catalogued in ``docs/static_analysis.md``.

E-series diagnostics::

    E001 undecodable-field    ERROR    a field decodes to the wrong
                                       register on some reachable path
    E002 join-inconsistency   WARNING  predecessors disagree on last_reg
                                       but no field consumes the value
    E003 field-code-mismatch  ERROR    an instruction has too few or too
                                       many field codes
    E004 delay-outlives-block ERROR    a set_last_reg delay counter never
                                       fires inside its block
    E005 redundant-setlr      WARNING  the written value is already in
                                       last_reg on every reaching path
    E006 dead-setlr           WARNING  the written value is never read
                                       before being overwritten
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple, Union

from repro.analysis.dataflow import DataflowProblem, solve, union_join
from repro.diagnostics import (
    Diagnostic,
    DiagnosticReport,
    Location,
    Severity,
)
from repro.encoding.access_order import ACCESS_ORDERS
from repro.encoding.config import EncodingConfig
from repro.encoding.encoder import EncodedFunction, setlr_payload
from repro.ir.function import Function
from repro.ir.instr import Reg

__all__ = [
    "TOP",
    "AbstractValue",
    "SetlrFact",
    "StaticAnalysis",
    "StaticVerificationReport",
    "analyze_last_reg",
    "verify_encoding_static",
]


class _Top:
    """Singleton ⊤: conflicting ``last_reg`` values reach this point."""

    _instance: Optional["_Top"] = None

    def __new__(cls) -> "_Top":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "⊤"


TOP = _Top()

#: One class's abstract ``last_reg``: a concrete register id or ⊤.
#: ⊥ is represented at the *state* level (a whole-block state of ``None``
#: means the block is unreachable), never per class.
AbstractValue = Union[int, _Top]

# a whole abstract state: sorted (cls, value) pairs, or None for ⊥
_State = Optional[Tuple[Tuple[str, AbstractValue], ...]]


def _join_value(a: AbstractValue, b: AbstractValue) -> AbstractValue:
    return a if a == b else TOP


def _join_state(a: _State, b: _State) -> _State:
    if a is None:
        return b
    if b is None:
        return a
    da, db = dict(a), dict(b)
    return tuple(sorted(
        (cls, _join_value(da[cls], db[cls])) for cls in da
    ))


@dataclass(frozen=True)
class _SetlrSite:
    """One ``set_last_reg`` instruction, located."""

    uid: int
    block: str
    instr_index: int
    value: int
    delay: int
    cls: str


# an event is ("field", Reg) or ("setlr", _SetlrSite); the stream lists
# them in decode order, with delayed fires placed after the field ticks
# that trigger them — exactly the replay verifier's semantics
_Event = Tuple[str, object]


def _block_events(fn: Function, config: EncodingConfig,
                  name: str) -> Tuple[List[_Event], List[_SetlrSite]]:
    """Compile one block into its decode event stream.

    Returns ``(events, overflows)`` where ``overflows`` are the
    ``set_last_reg`` sites whose delay counter never fires inside the
    block (the replay verifier rejects these outright).
    """
    order_fn = ACCESS_ORDERS[config.access_order]
    events: List[_Event] = []
    pending: List[List[object]] = []  # [remaining, site]
    for idx, instr in enumerate(fn.block(name).instrs):
        if instr.op == "setlr":
            value, delay, cls = setlr_payload(instr)
            site = _SetlrSite(uid=instr.uid, block=name, instr_index=idx,
                              value=value, delay=delay, cls=cls)
            if delay == 0:
                events.append(("setlr", site))
            else:
                pending.append([delay, site])
            continue
        for r in order_fn(instr):
            events.append(("field", r))
            fire = []
            for entry in pending:
                entry[0] -= 1  # type: ignore[operator]
                if entry[0] == 0:
                    fire.append(entry)
            for entry in fire:
                pending.remove(entry)
                events.append(("setlr", entry[1]))
    return events, [entry[1] for entry in pending]  # type: ignore[misc]


def _apply_events(events: List[_Event], config: EncodingConfig,
                  state: Dict[str, AbstractValue]) -> Dict[str, AbstractValue]:
    """Forward abstract transfer of one block's event stream."""
    for kind, payload in events:
        if kind == "setlr":
            site: _SetlrSite = payload  # type: ignore[assignment]
            state[site.cls] = site.value
        else:
            r: Reg = payload  # type: ignore[assignment]
            if r.cls in config.classes and not config.is_special(r):
                # a decoded field always leaves the operand in last_reg,
                # re-concretising the state regardless of the entry value
                state[r.cls] = r.id
    return state


@dataclass(frozen=True)
class SetlrFact:
    """Static classification of one ``set_last_reg`` instruction."""

    uid: int
    block: str
    instr_index: int
    value: int
    delay: int
    cls: str
    #: abstract ``last_reg`` the moment the write fires (None when the
    #: enclosing block is unreachable)
    last_at_fire: Optional[AbstractValue]
    #: the write stores a value already in ``last_reg`` on every path
    redundant: bool
    #: the written value is never read before being overwritten
    dead: bool

    @property
    def removable(self) -> bool:
        """Deletable without changing any reachable decode."""
        return self.redundant or self.dead


@dataclass
class StaticAnalysis:
    """Result of :func:`analyze_last_reg` on one function."""

    fn: Function
    config: EncodingConfig
    #: block -> cls -> abstract last_reg at entry; None = unreachable
    entry_states: Dict[str, Optional[Dict[str, AbstractValue]]]
    #: block -> cls -> abstract last_reg at exit; None = unreachable
    exit_states: Dict[str, Optional[Dict[str, AbstractValue]]]
    #: one fact per set_last_reg, in layout order
    setlr_facts: List[SetlrFact] = field(default_factory=list)
    #: set_last_reg sites whose delay counter never fires in their block
    delay_overflows: List[SetlrFact] = field(default_factory=list)
    iterations: int = 0

    @property
    def n_redundant(self) -> int:
        return sum(1 for f in self.setlr_facts if f.redundant)

    @property
    def n_dead(self) -> int:
        return sum(1 for f in self.setlr_facts if f.dead)

    def fact_for(self, uid: int) -> Optional[SetlrFact]:
        """The fact of the ``set_last_reg`` with instruction ``uid``."""
        for f in self.setlr_facts:
            if f.uid == uid:
                return f
        return None


def analyze_last_reg(fn: Function, config: EncodingConfig) -> StaticAnalysis:
    """Abstractly interpret the decode stage of ``fn`` (codes-free).

    Works on any function whose register operands are physical — field
    codes are not needed because a decoded field always leaves the
    *original operand* in ``last_reg``.  Computes per-block entry/exit
    abstract states (forward problem) and per-class ``last_reg`` liveness
    (backward problem), then classifies every ``set_last_reg``.
    """
    events: Dict[str, List[_Event]] = {}
    overflows: Dict[str, List[_SetlrSite]] = {}
    for b in fn.blocks:
        events[b.name], overflows[b.name] = _block_events(fn, config, b.name)

    # ------------------------------------------------------------------
    # forward: abstract last_reg per class
    # ------------------------------------------------------------------
    boundary: _State = tuple(
        sorted((cls, config.initial_last_reg) for cls in config.classes)
    )

    def fwd_transfer(block, state: _State) -> _State:
        if state is None:
            return None
        out = _apply_events(events[block.name], config, dict(state))
        return tuple(sorted(out.items()))

    fwd = solve(fn, DataflowProblem(
        direction="forward",
        boundary=boundary,
        init=None,
        join=_join_state,
        transfer=fwd_transfer,
    ))

    # ------------------------------------------------------------------
    # backward: which classes' last_reg values are still read
    # ------------------------------------------------------------------
    def bwd_transfer(block, live: FrozenSet[str]) -> FrozenSet[str]:
        out = set(live)
        for kind, payload in reversed(events[block.name]):
            if kind == "setlr":
                out.discard(payload.cls)  # type: ignore[union-attr]
            else:
                r: Reg = payload  # type: ignore[assignment]
                if r.cls in config.classes and not config.is_special(r):
                    out.add(r.cls)  # the decode reads last_reg[cls]
        return frozenset(out)

    bwd = solve(fn, DataflowProblem(
        direction="backward",
        boundary=frozenset(),
        init=frozenset(),
        join=union_join,
        transfer=bwd_transfer,
    ))

    # ------------------------------------------------------------------
    # per-setlr facts: walk each reachable block once in both directions
    # ------------------------------------------------------------------
    facts: List[SetlrFact] = []
    overflow_facts: List[SetlrFact] = []
    for b in fn.blocks:
        entry = fwd.in_facts[b.name]
        reachable = entry is not None

        # liveness immediately after each event (backward sweep)
        live_after: Dict[int, FrozenSet[str]] = {}
        live = set(bwd.out_facts[b.name])
        for i in range(len(events[b.name]) - 1, -1, -1):
            live_after[i] = frozenset(live)
            kind, payload = events[b.name][i]
            if kind == "setlr":
                live.discard(payload.cls)  # type: ignore[union-attr]
            else:
                r = payload
                if r.cls in config.classes and not config.is_special(r):
                    live.add(r.cls)

        state: Dict[str, AbstractValue] = dict(entry) if reachable else {}
        for i, (kind, payload) in enumerate(events[b.name]):
            if kind == "setlr":
                site: _SetlrSite = payload  # type: ignore[assignment]
                last = state.get(site.cls) if reachable else None
                facts.append(SetlrFact(
                    uid=site.uid, block=site.block,
                    instr_index=site.instr_index,
                    value=site.value, delay=site.delay, cls=site.cls,
                    last_at_fire=last,
                    redundant=reachable and last == site.value,
                    dead=reachable and site.cls not in live_after[i],
                ))
                if reachable:
                    state[site.cls] = site.value
            elif reachable:
                r = payload
                if r.cls in config.classes and not config.is_special(r):
                    state[r.cls] = r.id
        for site in overflows[b.name]:
            overflow_facts.append(SetlrFact(
                uid=site.uid, block=site.block,
                instr_index=site.instr_index,
                value=site.value, delay=site.delay, cls=site.cls,
                last_at_fire=None, redundant=False, dead=False,
            ))

    facts.sort(key=lambda f: (_block_index(fn, f.block), f.instr_index))
    return StaticAnalysis(
        fn=fn, config=config,
        entry_states={
            b.name: dict(fwd.in_facts[b.name])
            if fwd.in_facts[b.name] is not None else None
            for b in fn.blocks
        },
        exit_states={
            b.name: dict(fwd.out_facts[b.name])
            if fwd.out_facts[b.name] is not None else None
            for b in fn.blocks
        },
        setlr_facts=facts,
        delay_overflows=overflow_facts,
        iterations=fwd.iterations + bwd.iterations,
    )


def _block_index(fn: Function, name: str) -> int:
    for i, b in enumerate(fn.blocks):
        if b.name == name:
            return i
    return len(fn.blocks)


# ----------------------------------------------------------------------
# full static verification of an EncodedFunction
# ----------------------------------------------------------------------


@dataclass
class StaticVerificationReport:
    """Result of :func:`verify_encoding_static`."""

    report: DiagnosticReport
    analysis: StaticAnalysis
    blocks_checked: int = 0
    fields_checked: int = 0

    @property
    def ok(self) -> bool:
        """No error-severity findings — the static analogue of the replay
        verifier returning without raising."""
        return self.report.ok


def verify_encoding_static(enc: EncodedFunction) -> StaticVerificationReport:
    """Statically verify ``enc`` without replaying any path.

    Emits the E-series diagnostics described in the module docstring.
    ``result.ok`` (no error-severity findings) agrees with
    :func:`repro.encoding.verifier.verify_encoding` on every encoding:
    the abstract states are exact joins of the concrete states replay
    enumerates, so an E001/E003/E004 error exists if and only if some
    reachable path mis-decodes.
    """
    config = enc.config
    fn = enc.fn
    analysis = analyze_last_reg(fn, config)
    report = DiagnosticReport()
    order_fn = ACCESS_ORDERS[config.access_order]
    slot_to_reg = dict(config.direct_slots)

    blocks_checked = 0
    fields_checked = 0
    _, preds = fn.cfg()
    for block in fn.blocks:
        entry = analysis.entry_states[block.name]
        if entry is None:
            continue  # unreachable: replay never decodes it either
        blocks_checked += 1
        # which classes arrive ⊤, and whether a field consumes that ⊤
        top_unconsumed = {cls for cls, v in entry.items() if v is TOP}

        last: Dict[str, AbstractValue] = dict(entry)
        pending: List[List[object]] = []  # [remaining, value, cls]

        def tick() -> None:
            fire = []
            for p in pending:
                p[0] -= 1  # type: ignore[operator]
                if p[0] == 0:
                    fire.append(p)
            for p in fire:
                pending.remove(p)
                last[p[2]] = p[1]  # type: ignore[index]

        for idx, instr in enumerate(block.instrs):
            loc = Location(function=fn.name, block=block.name,
                           instr_index=idx, uid=instr.uid)
            if instr.op == "setlr":
                value, delay, cls = setlr_payload(instr)
                if delay == 0:
                    last[cls] = value
                    top_unconsumed.discard(cls)
                else:
                    pending.append([delay, value, cls])
                continue
            codes = list(enc.field_codes.get(instr.uid, ()))
            ci = 0
            for r in order_fn(instr):
                if r.cls not in config.classes:
                    fields_checked += 1
                    tick()
                    continue
                if ci >= len(codes):
                    report.add(Diagnostic(
                        rule="E003", name="field-code-mismatch",
                        severity=Severity.ERROR,
                        message=f"missing field code for {instr} field {r}",
                        location=loc,
                    ))
                    fields_checked += 1
                    tick()
                    continue
                code = codes[ci]
                ci += 1
                if code >= config.diff_n:
                    decoded = slot_to_reg.get(code)
                    if decoded is None:
                        report.add(Diagnostic(
                            rule="E001", name="undecodable-field",
                            severity=Severity.ERROR,
                            message=f"field code {code} is neither a "
                                    "difference nor a direct slot",
                            location=loc,
                        ))
                    elif decoded != r.id:
                        report.add(Diagnostic(
                            rule="E001", name="undecodable-field",
                            severity=Severity.ERROR,
                            message=f"direct slot {code} decodes to "
                                    f"r{decoded}, expected {r}",
                            location=loc,
                        ))
                else:
                    prev = last[r.cls]
                    if prev is TOP:
                        report.add(Diagnostic(
                            rule="E001", name="undecodable-field",
                            severity=Severity.ERROR,
                            message=f"field of {instr} consumes an "
                                    "inconsistent last_reg: converging "
                                    "paths disagree, so the difference "
                                    f"code {code} mis-decodes on at least "
                                    "one of them",
                            location=loc,
                            hint="insert a set_last_reg join repair "
                                 "before the first field of this class",
                        ))
                        top_unconsumed.discard(r.cls)
                    elif (prev + code) % config.reg_n != r.id:
                        report.add(Diagnostic(
                            rule="E001", name="undecodable-field",
                            severity=Severity.ERROR,
                            message=f"field of {instr} decodes to "
                                    f"r{(prev + code) % config.reg_n}, "
                                    f"expected {r} (last_reg={prev}, "
                                    f"code={code})",
                            location=loc,
                        ))
                    # recover with the intended operand, like the
                    # hardware decoding the correct encoding would
                    last[r.cls] = r.id
                    top_unconsumed.discard(r.cls)
                fields_checked += 1
                tick()
            if ci != len(codes):
                report.add(Diagnostic(
                    rule="E003", name="field-code-mismatch",
                    severity=Severity.ERROR,
                    message=f"{len(codes) - ci} unused field codes on "
                            f"{instr}",
                    location=loc,
                ))
        if pending:
            report.add(Diagnostic(
                rule="E004", name="delay-outlives-block",
                severity=Severity.ERROR,
                message=f"{len(pending)} set_last_reg delay counter(s) "
                        "never fire before the block ends",
                location=Location(function=fn.name, block=block.name),
                hint="a delayed set_last_reg must fire within its block; "
                     "reduce the delay or move the repair",
            ))

        # joins that disagree but are never consumed: not an error (no
        # field mis-decodes) but worth surfacing — report only where the
        # inconsistency is created, not everywhere it propagates
        for cls in sorted(top_unconsumed):
            incoming = [
                analysis.exit_states[p][cls]
                for p in preds[block.name]
                if analysis.exit_states[p] is not None
            ]
            if TOP in incoming:
                continue  # inherited, reported upstream
            report.add(Diagnostic(
                rule="E002", name="join-inconsistency",
                severity=Severity.WARNING,
                message=f"predecessors leave last_reg[{cls}] at "
                        f"{sorted(set(incoming))} but no field of class "
                        f"'{cls}' is decoded before it is overwritten",
                location=Location(function=fn.name, block=block.name),
            ))

    # structurally-broken delayed repairs found by the codes-free pass on
    # unreachable blocks are invisible to replay; only reachable ones are
    # errors, and those were reported above from the live walk
    for fact in analysis.setlr_facts:
        loc = Location(function=fn.name, block=fact.block,
                       instr_index=fact.instr_index, uid=fact.uid)
        if fact.redundant:
            report.add(Diagnostic(
                rule="E005", name="redundant-setlr",
                severity=Severity.WARNING,
                message=f"set_last_reg({fact.value}, {fact.delay}) writes "
                        f"the value last_reg[{fact.cls}] already holds on "
                        "every reaching path",
                location=loc,
                hint="repro.encoding.setlr_elim deletes these",
            ))
        elif fact.dead:
            report.add(Diagnostic(
                rule="E006", name="dead-setlr",
                severity=Severity.WARNING,
                message=f"set_last_reg({fact.value}, {fact.delay}) writes "
                        f"a last_reg[{fact.cls}] value no field reads "
                        "before it is overwritten",
                location=loc,
                hint="repro.encoding.setlr_elim deletes these",
            ))

    return StaticVerificationReport(
        report=report,
        analysis=analysis,
        blocks_checked=blocks_checked,
        fields_checked=fields_checked,
    )
