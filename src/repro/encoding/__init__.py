"""Differential register encoding (paper Sections 2, 4, 9).

The core primitive is modular difference encoding of register fields
(:mod:`repro.encoding.differential`), combined with a nominal *access order*
(:mod:`repro.encoding.access_order`).  :mod:`repro.encoding.encoder` turns an
allocated function into differentially encoded form, inserting
``set_last_reg`` repairs for out-of-range differences and control-flow join
inconsistencies; :mod:`repro.encoding.verifier` replays the decode over every
CFG path to prove the encoding sound; :mod:`repro.encoding.codesize` models
binary size.
"""

from repro.encoding.differential import (
    decode_difference,
    decode_sequence,
    encode_difference,
    encode_sequence,
)
from repro.encoding.access_order import (
    ACCESS_ORDERS,
    access_fields,
    access_sequence,
    block_access_sequence,
)
from repro.encoding.config import EncodingConfig
from repro.encoding.encoder import EncodedFunction, encode_function
from repro.encoding.verifier import EncodingError, verify_encoding
from repro.encoding.static_verifier import (
    TOP,
    SetlrFact,
    StaticAnalysis,
    StaticVerificationReport,
    analyze_last_reg,
    verify_encoding_static,
)
from repro.encoding.setlr_elim import EliminationResult, eliminate_redundant_setlr
from repro.encoding.codesize import code_size_bits, code_size_bytes, register_field_fraction
from repro.encoding.binary import (
    PackedProgram,
    PackError,
    pack_function,
    unpack_function,
)

__all__ = [
    "PackedProgram",
    "PackError",
    "pack_function",
    "unpack_function",
    "encode_difference",
    "decode_difference",
    "encode_sequence",
    "decode_sequence",
    "ACCESS_ORDERS",
    "access_fields",
    "access_sequence",
    "block_access_sequence",
    "EncodingConfig",
    "EncodedFunction",
    "encode_function",
    "EncodingError",
    "verify_encoding",
    "TOP",
    "SetlrFact",
    "StaticAnalysis",
    "StaticVerificationReport",
    "analyze_last_reg",
    "verify_encoding_static",
    "EliminationResult",
    "eliminate_redundant_setlr",
    "code_size_bits",
    "code_size_bytes",
    "register_field_fraction",
]
