"""Binary code-size model.

Two models are provided:

* **fixed width** — every instruction occupies the same number of bits, like
  the 16-bit THUMB ISA the paper's low-end study mimics.  There, baseline and
  differential code share the instruction width (both use 3-bit register
  fields); size differences come purely from instruction *count* (spills vs
  ``set_last_reg``), which is why O-spill and coalesce shrink the binary in
  Figure 13 despite adding repairs.
* **field sensitive** — each instruction is ``base_bits`` plus
  ``field_bits`` per register field.  This model exposes what *direct*
  encoding of more registers would cost (wider fields in every instruction),
  the alternative the paper's introduction argues against.
"""

from __future__ import annotations

from typing import Optional

from repro.encoding.access_order import ACCESS_ORDERS
from repro.ir.function import Function

__all__ = [
    "code_size_bits",
    "code_size_bytes",
    "register_field_fraction",
]


def code_size_bits(fn: Function, field_bits: int, base_bits: int = 10,
                   fixed_width: Optional[int] = None,
                   access_order: str = "src_first") -> int:
    """Total code size of ``fn`` in bits.

    With ``fixed_width`` set, every instruction is that many bits.  Otherwise
    each instruction costs ``base_bits + n_register_fields * field_bits``
    (``set_last_reg`` has no register fields; its immediate payload is inside
    ``base_bits``, consistent with the paper's claim that it is as cheap as a
    move).
    """
    if fixed_width is not None:
        return fn.num_instructions() * fixed_width
    order_fn = ACCESS_ORDERS[access_order]
    total = 0
    for instr in fn.instructions():
        total += base_bits + len(order_fn(instr)) * field_bits
    return total


def code_size_bytes(fn: Function, field_bits: int, base_bits: int = 10,
                    fixed_width: Optional[int] = None) -> float:
    """:func:`code_size_bits` divided by eight."""
    return code_size_bits(fn, field_bits, base_bits, fixed_width) / 8.0


def register_field_fraction(fn: Function, field_bits: int,
                            base_bits: int = 10,
                            access_order: str = "src_first") -> float:
    """Fraction of the binary occupied by register fields.

    The paper motivates differential encoding by noting register fields take
    ~28% of an Alpha binary and ~25% of an ARM binary; this reproduces that
    statistic for our IR programs.
    """
    order_fn = ACCESS_ORDERS[access_order]
    field_total = 0
    for instr in fn.instructions():
        field_total += len(order_fn(instr)) * field_bits
    total = code_size_bits(fn, field_bits, base_bits, access_order=access_order)
    return field_total / total if total else 0.0
