"""Bit-level machine-code emission and decoding.

Everything else in :mod:`repro.encoding` manipulates field *values*; this
module commits them to actual bits.  :func:`pack_function` serialises an
:class:`~repro.encoding.encoder.EncodedFunction` into a bitstream whose
register fields are ``DiffW`` bits wide; :func:`unpack_function` plays the
hardware's role — it reads opcodes, walks the register fields in access
order, maintains ``last_reg`` (honouring ``set_last_reg`` and its delay
counter), and reconstructs the original program.

The round trip is the reproduction's strongest soundness statement::

    unpack_function(pack_function(encode_function(fn, cfg)), cfg) == fn

— the decoded program has the *original* register numbers and no
``set_last_reg`` (the paper: "such instructions are removed after
decoding"), from a binary whose register fields really are ``DiffW`` bits.

Instruction formats (opcode 6 bits; fields in access order):

=============== ==========================================================
kind            payload
=============== ==========================================================
ALU r,r,r       3 register fields
ALU r,r,imm     2 register fields + imm32
li              1 register field + imm32
mov             2 register fields
ld / st         2/3 register fields + imm32 offset
ldslot/stslot   1 register field + imm16 slot
br              block16
conditional     2 register fields + block16
ret             1 register field
setlr           regw value + delay4 + class4
permi           RegN direct register numbers (regw each); no differential
                fields, so it neither reads nor moves ``last_reg``
nop             —
=============== ==========================================================

Block labels are encoded as block indexes; block names travel in a side
table (a real toolchain would keep them in symbol metadata).  ``call`` is
not packable — its register effects are IR bookkeeping, not encoded fields.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.encoding.access_order import ACCESS_ORDERS
from repro.encoding.config import EncodingConfig
from repro.encoding.encoder import EncodedFunction, setlr_payload
from repro.ir.function import BasicBlock, Function
from repro.ir.instr import (
    ALU_IMM_OPS,
    ALU_REG_OPS,
    COND_BRANCH_OPS,
    Instr,
    OPCODES as _OPINFO,
    Reg,
)

__all__ = ["PackedProgram", "pack_function", "unpack_function", "PackError"]

_OPCODES: Tuple[str, ...] = tuple(sorted(
    set(ALU_REG_OPS) | set(ALU_IMM_OPS)
    | {"li", "mov", "ld", "st", "ldslot", "stslot", "br", "ret", "setlr",
       "nop", "permi"} | set(COND_BRANCH_OPS)
))
_OP_BITS = 6
_IMM_BITS = 32
_SLOT_BITS = 16
_BLOCK_BITS = 16
_DELAY_BITS = 4
_CLASS_BITS = 4


class PackError(ValueError):
    """Instruction or operand not representable in the binary format."""


class _BitWriter:
    def __init__(self) -> None:
        self.bits: List[int] = []

    def write(self, value: int, width: int) -> None:
        if value < 0 or value >= (1 << width):
            raise PackError(f"value {value} does not fit in {width} bits")
        for i in reversed(range(width)):
            self.bits.append((value >> i) & 1)

    def to_bytes(self) -> bytes:
        out = bytearray()
        for i in range(0, len(self.bits), 8):
            byte = 0
            for b in self.bits[i:i + 8]:
                byte = (byte << 1) | b
            byte <<= max(0, 8 - len(self.bits[i:i + 8]))
            out.append(byte)
        return bytes(out)

    def __len__(self) -> int:
        return len(self.bits)


class _BitReader:
    def __init__(self, data: bytes, n_bits: int) -> None:
        self.data = data
        self.n_bits = n_bits
        self.pos = 0

    def read(self, width: int) -> int:
        if self.pos + width > self.n_bits:
            raise PackError("bitstream underrun")
        value = 0
        for _ in range(width):
            byte = self.data[self.pos // 8]
            bit = (byte >> (7 - self.pos % 8)) & 1
            value = (value << 1) | bit
            self.pos += 1
        return value


@dataclass
class PackedProgram:
    """A function committed to bits."""

    name: str
    data: bytes
    n_bits: int
    block_names: Tuple[str, ...]
    block_sizes: Tuple[int, ...]     # instructions per block
    block_entries: Tuple[Tuple[Tuple[str, int], ...], ...]  # last_reg anchors
    params: Tuple[Tuple[int, bool, str], ...]  # (id, virtual, cls)
    config: EncodingConfig

    @property
    def size_bytes(self) -> float:
        return self.n_bits / 8.0


def _encode_imm(value: int, width: int) -> int:
    mask = (1 << width) - 1
    return value & mask


def _decode_imm(raw: int, width: int) -> int:
    if raw >= (1 << (width - 1)):
        return raw - (1 << width)
    return raw


def pack_function(enc: EncodedFunction) -> PackedProgram:
    """Serialise an encoded function into its differential bitstream."""
    config = enc.config
    order_fn = ACCESS_ORDERS[config.access_order]
    field_bits = config.field_bits
    reg_bits = max(1, math.ceil(math.log2(
        config.reg_n + len(config.direct_slots) or 2
    )))
    class_index = {cls: i for i, cls in enumerate(config.classes)}
    block_index = {b.name: i for i, b in enumerate(enc.fn.blocks)}
    w = _BitWriter()

    for block in enc.fn.blocks:
        for instr in block.instrs:
            if instr.op == "call":
                raise PackError("call instructions are not packable")
            if (config.access_order == "two_address"
                    and instr.op in ALU_REG_OPS
                    and instr.dst != instr.srcs[0]):
                raise PackError(
                    "two_address binaries need strictly two-address code; "
                    f"run to_two_address() first ({instr})"
                )
            w.write(_OPCODES.index(instr.op), _OP_BITS)
            if instr.op == "setlr":
                value, delay, cls = setlr_payload(instr)
                w.write(value, reg_bits)
                w.write(delay, _DELAY_BITS)
                w.write(class_index[cls], _CLASS_BITS)
                continue
            if instr.op == "permi":
                if len(instr.imm) != config.reg_n:
                    raise PackError(
                        f"permi permutation width {len(instr.imm)} does not "
                        f"match RegN={config.reg_n}")
                for p in instr.imm:
                    w.write(p, reg_bits)
                continue
            codes = list(enc.field_codes.get(instr.uid, ()))
            ci = 0
            for r in order_fn(instr):
                if r.cls != "int":
                    # a real ISA distinguishes classes by opcode; our generic
                    # ALU ops cannot, so the bitstream would be ambiguous
                    raise PackError(
                        "binary packing supports single-class (int) "
                        f"functions; found {r}"
                    )
                w.write(codes[ci], field_bits)
                ci += 1
            if instr.op in ("ldslot", "stslot"):
                w.write(int(instr.imm), _SLOT_BITS)
            elif instr.info.has_imm:
                w.write(_encode_imm(int(instr.imm), _IMM_BITS), _IMM_BITS)
            if instr.op == "br" or instr.op in COND_BRANCH_OPS:
                w.write(block_index[instr.label], _BLOCK_BITS)

    return PackedProgram(
        name=enc.fn.name,
        data=w.to_bytes(),
        n_bits=len(w),
        block_names=tuple(b.name for b in enc.fn.blocks),
        block_sizes=tuple(len(b.instrs) for b in enc.fn.blocks),
        block_entries=tuple(
            tuple(sorted(enc.entry_values[b.name].items()))
            for b in enc.fn.blocks
        ),
        params=tuple((p.id, p.virtual, p.cls) for p in enc.fn.params),
        config=config,
    )


def unpack_function(packed: PackedProgram,
                    config: Optional[EncodingConfig] = None,
                    collect_extents: Optional[List[Tuple[str, int, int, bool]]]
                    = None) -> Function:
    """Decode a packed program back to IR — the hardware decoder in software.

    Register fields are differential: the reader keeps one ``last_reg`` per
    class, applies ``set_last_reg`` (with its delay semantics) and drops
    those instructions from the output, exactly as the pipeline would.

    Each block is decoded from its recorded entry anchor
    (``PackedProgram.block_entries``): hardware reaches a block along CFG
    edges, which the encoder made consistent, while a linear disassembler
    flows across ``br``/``ret`` textual boundaries no execution crosses —
    the anchors stand in for the fetch path.

    ``collect_extents``, when given a list, receives one
    ``(block, start_bit, end_bit, is_setlr)`` tuple per decoded
    instruction — the disassembler's raw material.
    """
    config = config or packed.config
    order_fn = ACCESS_ORDERS[config.access_order]
    field_bits = config.field_bits
    reg_bits = max(1, math.ceil(math.log2(
        config.reg_n + len(config.direct_slots) or 2
    )))
    classes = list(config.classes)
    slot_to_reg = dict(config.direct_slots)
    r = _BitReader(packed.data, packed.n_bits)

    last: Dict[str, int] = {
        cls: config.initial_last_reg for cls in classes
    }
    pending: List[List[object]] = []

    def tick() -> None:
        fire = []
        for entry in pending:
            entry[0] -= 1  # type: ignore[operator]
            if entry[0] == 0:
                fire.append(entry)
        for entry in fire:
            pending.remove(entry)
            last[entry[2]] = entry[1]  # type: ignore[index]

    def read_field(cls: str) -> Reg:
        code = r.read(field_bits)
        if code >= config.diff_n:
            rid = slot_to_reg.get(code)
            if rid is None:
                raise PackError(f"invalid direct slot code {code}")
            reg = Reg(rid, virtual=False, cls=cls)
        else:
            rid = (last[cls] + code) % config.reg_n
            last[cls] = rid
            reg = Reg(rid, virtual=False, cls=cls)
        tick()
        return reg

    blocks: List[BasicBlock] = []
    for name, size, entry in zip(packed.block_names, packed.block_sizes,
                                 packed.block_entries):
        # anchor the decoder at this block's entry state: hardware reaches
        # it along CFG edges (which the encoder made consistent); a linear
        # disassembler flowing across a `br`/`ret` textual boundary would
        # otherwise carry a state no execution ever produces
        last.update(dict(entry))
        pending.clear()
        block = BasicBlock(name)
        decoded = 0
        while decoded < size:
            start_bit = r.pos
            op = _OPCODES[r.read(_OP_BITS)]
            decoded += 1
            if op == "setlr":
                value = r.read(reg_bits)
                delay = r.read(_DELAY_BITS)
                cls = classes[r.read(_CLASS_BITS)]
                if delay == 0:
                    last[cls] = value
                else:
                    pending.append([delay, value, cls])
                if collect_extents is not None:
                    collect_extents.append((name, start_bit, r.pos, True))
                continue  # removed after decoding (§2.3)
            if op == "permi":
                # direct register numbers: decoded without touching the
                # differential last_reg state
                perm = tuple(r.read(reg_bits) for _ in range(config.reg_n))
                if collect_extents is not None:
                    collect_extents.append((name, start_bit, r.pos, False))
                block.append(Instr("permi", imm=perm))
                continue
            opinfo = _OPINFO[op]
            # fields arrive in access order; rebuild srcs/dst from it
            if (config.access_order == "two_address"
                    and op in ALU_REG_OPS):
                # strict two-address form: one field is both dst and src1
                fields = [read_field("int") for _ in range(2)]
                dst = fields[0]
                srcs = (fields[0], fields[1])
            else:
                n_fields = opinfo.n_src + (1 if opinfo.has_dst else 0)
                fields = [read_field("int") for _ in range(n_fields)]
                if config.access_order == "dst_first":
                    dst = fields[0] if opinfo.has_dst else None
                    srcs = tuple(fields[1 if opinfo.has_dst else 0:])
                else:  # src_first (also two_address non-ALU forms)
                    srcs = tuple(fields[:opinfo.n_src])
                    dst = fields[opinfo.n_src] if opinfo.has_dst else None
            imm: object = None
            label: Optional[str] = None
            if op in ("ldslot", "stslot"):
                imm = r.read(_SLOT_BITS)
            elif opinfo.has_imm:
                imm = _decode_imm(r.read(_IMM_BITS), _IMM_BITS)
            if op == "br" or op in COND_BRANCH_OPS:
                label = packed.block_names[r.read(_BLOCK_BITS)]
            if collect_extents is not None:
                collect_extents.append((name, start_bit, r.pos, False))
            block.append(Instr(op, dst=dst, srcs=srcs, imm=imm, label=label))
        blocks.append(block)

    params = tuple(
        Reg(rid, virtual=virtual, cls=cls)
        for rid, virtual, cls in packed.params
    )
    return Function(packed.name, blocks, params)
