"""Decode-replay verification of a differential encoding.

The verifier is an executable model of the decode stage described in Section
2: it walks every reachable ``(block, last_reg state)`` pair of the CFG,
decodes each register field from its encoded value, and checks the decoded
register equals the original operand.  ``set_last_reg`` is modelled exactly —
including the ``delay`` parameter, whose counter ticks once per decoded
register field.

Because *all* CFG paths are explored (states are propagated along every
edge to a fixed point), a pass proves the multi-path repairs of
:mod:`repro.encoding.encoder` sufficient: no execution order can desynchronise
the decoder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.encoding.access_order import ACCESS_ORDERS
from repro.encoding.config import EncodingConfig
from repro.encoding.encoder import EncodedFunction, setlr_payload
from repro.ir.function import Function
from repro.ir.instr import Reg

__all__ = ["EncodingError", "VerificationReport", "verify_encoding"]


class EncodingError(ValueError):
    """A field decoded to the wrong register along some execution path."""


@dataclass
class VerificationReport:
    """Statistics from a successful verification."""

    states_visited: int
    fields_decoded: int
    blocks: int


State = Tuple[Tuple[str, int], ...]  # sorted (cls, last_reg) pairs


def _decode_block(enc: EncodedFunction, block_name: str,
                  state: Dict[str, int]) -> Tuple[Dict[str, int], int]:
    """Decode one block from entry state; returns (exit state, #fields).

    Raises :class:`EncodingError` on any mismatch.
    """
    config = enc.config
    order_fn = ACCESS_ORDERS[config.access_order]
    slot_to_reg = dict(config.direct_slots)
    last = dict(state)
    pending: List[List[object]] = []  # [remaining, value, cls]
    fields = 0
    block = enc.fn.block(block_name)

    def tick() -> None:
        """One register field was decoded; advance delay counters."""
        fire = []
        for entry in pending:
            entry[0] -= 1  # type: ignore[operator]
            if entry[0] == 0:
                fire.append(entry)
        for entry in fire:
            pending.remove(entry)
            last[entry[2]] = entry[1]  # type: ignore[index]

    for instr in block.instrs:
        if instr.op == "setlr":
            value, delay, cls = setlr_payload(instr)
            if delay == 0:
                last[cls] = value
            else:
                pending.append([delay, value, cls])
            continue
        codes = list(enc.field_codes.get(instr.uid, ()))
        ci = 0
        for r in order_fn(instr):
            if r.cls not in config.classes:
                fields += 1
                tick()
                continue
            if ci >= len(codes):
                raise EncodingError(
                    f"{enc.fn.name}/{block_name}: missing field code for "
                    f"{instr} field {r}"
                )
            code = codes[ci]
            ci += 1
            if code >= config.diff_n:
                decoded = slot_to_reg.get(code)
                if decoded is None:
                    raise EncodingError(
                        f"{enc.fn.name}/{block_name}: field code {code} is "
                        f"neither a difference nor a direct slot"
                    )
                if decoded != r.id:
                    raise EncodingError(
                        f"{enc.fn.name}/{block_name}: direct slot {code} "
                        f"decodes to r{decoded}, expected {r}"
                    )
            else:
                decoded = (last[r.cls] + code) % config.reg_n
                if decoded != r.id:
                    raise EncodingError(
                        f"{enc.fn.name}/{block_name}: field of {instr} "
                        f"decodes to r{decoded}, expected {r} "
                        f"(last_reg={last[r.cls]}, code={code})"
                    )
                last[r.cls] = decoded
            fields += 1
            tick()
        if ci != len(codes):
            raise EncodingError(
                f"{enc.fn.name}/{block_name}: {len(codes) - ci} unused field "
                f"codes on {instr}"
            )
    if pending:
        raise EncodingError(
            f"{enc.fn.name}/{block_name}: set_last_reg delay outlives the "
            f"block ({pending})"
        )
    return last, fields


def verify_encoding(enc: EncodedFunction) -> VerificationReport:
    """Exhaustively verify ``enc`` over all CFG paths.

    Raises :class:`EncodingError` if any reachable path decodes a field to a
    register other than the original operand.
    """
    config = enc.config
    fn = enc.fn
    init: State = tuple(
        sorted((cls, config.initial_last_reg) for cls in config.classes)
    )
    seen: Dict[str, Set[State]] = {b.name: set() for b in fn.blocks}
    worklist: List[Tuple[str, State]] = [(fn.entry.name, init)]
    seen[fn.entry.name].add(init)
    states = 0
    fields = 0
    while worklist:
        name, state = worklist.pop()
        states += 1
        exit_state, nf = _decode_block(enc, name, dict(state))
        fields += nf
        out: State = tuple(sorted(exit_state.items()))
        for succ in fn.successors(fn.block(name)):
            if out not in seen[succ.name]:
                seen[succ.name].add(out)
                worklist.append((succ.name, out))
    return VerificationReport(states, fields, len(fn.blocks))
