"""Encoding-scheme configuration.

Ties together the paper's parameters: ``RegN`` (architected registers
addressable differentially), ``DiffN`` (distinct differences encodable in a
field), the access order, reserved direct slots for special-purpose registers
(Section 9.2), register classes (Section 9.1), and the join-repair placement
policy (Section 2.2.2 offers both choices).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

from repro.ir.instr import Reg

__all__ = ["EncodingConfig"]


@dataclass(frozen=True)
class EncodingConfig:
    """Parameters of a differential encoding scheme.

    Attributes:
        reg_n: number of registers addressable through differences (RegN).
        diff_n: number of difference values a field can hold (DiffN).
            ``diff_n == reg_n`` degenerates to direct encoding.
        direct_slots: field code -> physical register id, for special-purpose
            registers (stack pointer etc.) that are always encoded directly.
            Codes must lie in ``[diff_n, 2**field_bits)``; the target register
            ids must lie outside ``[0, reg_n)`` so the differential space and
            the direct space do not overlap.
        access_order: ``"src_first"`` (paper default) or ``"dst_first"``.
        classes: register classes that are differentially encoded, each with
            its own ``last_reg``.
        initial_last_reg: hardware reset value of ``last_reg`` (paper: n0=0).
        join_repair: ``"block_entry"`` inserts one ``set_last_reg`` at the
            head of an inconsistent join block; ``"pred_end"`` (default)
            repairs on the incoming edges where that is safe and cheaper by
            estimated frequency, falling back to ``block_entry`` — the paper
            describes both placements in Section 2.3.
    """

    reg_n: int
    diff_n: int
    direct_slots: Mapping[int, int] = field(default_factory=dict)
    access_order: str = "src_first"
    classes: Tuple[str, ...] = ("int",)
    initial_last_reg: int = 0
    join_repair: str = "pred_end"

    def __post_init__(self) -> None:
        if self.diff_n < 1 or self.reg_n < 1:
            raise ValueError("reg_n and diff_n must be positive")
        if self.diff_n > self.reg_n:
            raise ValueError(
                f"diff_n ({self.diff_n}) cannot exceed reg_n ({self.reg_n})"
            )
        if self.join_repair not in ("block_entry", "pred_end"):
            raise ValueError(f"unknown join_repair policy {self.join_repair!r}")
        if not 0 <= self.initial_last_reg < self.reg_n:
            raise ValueError("initial_last_reg out of range")
        object.__setattr__(self, "direct_slots", dict(self.direct_slots))
        width = self.field_bits
        for code, rid in self.direct_slots.items():
            if not self.diff_n <= code < (1 << width):
                raise ValueError(
                    f"direct slot code {code} collides with difference range "
                    f"[0, {self.diff_n}) or exceeds {width}-bit field"
                )
            if 0 <= rid < self.reg_n:
                raise ValueError(
                    f"special register r{rid} lies inside the differential "
                    f"space [0, {self.reg_n})"
                )
        if len(set(self.direct_slots.values())) != len(self.direct_slots):
            raise ValueError("two direct slots map to the same register")

    # ------------------------------------------------------------------
    # derived widths
    # ------------------------------------------------------------------

    @property
    def field_bits(self) -> int:
        """DiffW — bits per register field under this scheme."""
        needed = self.diff_n + len(self.direct_slots)
        return max(1, math.ceil(math.log2(needed)))

    @property
    def direct_field_bits(self) -> int:
        """RegW — bits per field under direct encoding of RegN registers."""
        return max(1, math.ceil(math.log2(self.reg_n + len(self.direct_slots))))

    @property
    def is_direct(self) -> bool:
        """True when the scheme degenerates to plain direct encoding."""
        return self.diff_n == self.reg_n

    # ------------------------------------------------------------------
    # special registers
    # ------------------------------------------------------------------

    def special_register_ids(self) -> frozenset:
        """Register ids addressed through reserved direct slots."""
        return frozenset(self.direct_slots.values())

    def code_for_register(self, r: Reg) -> int:
        """Direct slot code for a special register; KeyError otherwise."""
        for code, rid in self.direct_slots.items():
            if rid == r.id:
                return code
        raise KeyError(r)

    def is_special(self, r: Reg) -> bool:
        """Whether ``r`` is a reserved special-purpose register."""
        return r.id in self.special_register_ids()

    def is_encodable(self, r: Reg) -> bool:
        """Whether ``r`` participates in differential encoding."""
        return r.cls in self.classes and not self.is_special(r)

    @staticmethod
    def direct(reg_n: int, **kw) -> "EncodingConfig":
        """A configuration where every difference is encodable
        (``diff_n == reg_n``).

        Out-of-range repairs disappear, but decode remains *relative*: a
        control-flow join whose predecessors leave different ``last_reg``
        values still needs a join repair on cyclic control flow.  Truly
        absolute register fields are the experiment baselines, which skip
        differential encoding entirely.
        """
        return EncodingConfig(reg_n=reg_n, diff_n=reg_n, **kw)
