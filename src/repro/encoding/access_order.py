"""Nominal register access order and access sequences (paper Section 2).

The access order fixes, within one instruction, the order in which register
fields are decoded.  The paper's default is ``src1, src2, ..., dst``; Section
9.4 suggests alternatives, which we expose for the ablation benchmarks.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.ir.function import BasicBlock, Function
from repro.ir.instr import Instr, Reg

__all__ = ["ACCESS_ORDERS", "access_fields", "access_sequence", "block_access_sequence"]


def _src_first(instr: Instr) -> Tuple[Reg, ...]:
    fields: List[Reg] = list(instr.srcs)
    if instr.dst is not None:
        fields.append(instr.dst)
    return tuple(fields)


def _dst_first(instr: Instr) -> Tuple[Reg, ...]:
    fields: List[Reg] = []
    if instr.dst is not None:
        fields.append(instr.dst)
    fields.extend(instr.srcs)
    return tuple(fields)


def _two_address(instr: Instr) -> Tuple[Reg, ...]:
    """THUMB-style field order for two-address code.

    For register-register ALU ops where the destination repeats a source
    (the invariant :func:`repro.ir.lowering.to_two_address` establishes),
    the repeated register is one physical field: ``add rd, rs`` carries two
    fields, decoded destination-first.  Instructions that are not
    two-address ALU forms keep the default source-first layout.
    """
    from repro.ir.instr import ALU_REG_OPS

    if (instr.op in ALU_REG_OPS and instr.dst is not None
            and instr.dst == instr.srcs[0]):
        return (instr.dst, instr.srcs[1])
    return _src_first(instr)


ACCESS_ORDERS = {
    "src_first": _src_first,    # the paper's default: src1, src2 ... dst
    "dst_first": _dst_first,    # Section 9.4 alternative
    "two_address": _two_address,  # THUMB forms after to_two_address()
}


def access_fields(instr: Instr, order: str = "src_first",
                  cls: str = "int") -> Tuple[Reg, ...]:
    """Register fields of one instruction in access order.

    Only fields of register class ``cls`` participate: with multiple classes
    each class has its own access sequence and ``last_reg`` (Section 9.1), so
    other classes are skipped.  ``call`` side-effect registers are implicit
    (not encoded fields) and never appear.
    """
    try:
        fields = ACCESS_ORDERS[order](instr)
    except KeyError:
        raise ValueError(f"unknown access order {order!r}") from None
    return tuple(r for r in fields if r.cls == cls)


def block_access_sequence(block: BasicBlock, order: str = "src_first",
                          cls: str = "int") -> List[Reg]:
    """The access sequence of a single basic block."""
    seq: List[Reg] = []
    for instr in block.instrs:
        seq.extend(access_fields(instr, order, cls))
    return seq


def access_sequence(fn: Function, order: str = "src_first",
                    cls: str = "int") -> List[Reg]:
    """The whole function's access sequence in layout order.

    This is the straight-line view used for building adjacency graphs; the
    encoder itself walks blocks and handles control-flow joins separately.
    """
    seq: List[Reg] = []
    for block in fn.blocks:
        seq.extend(block_access_sequence(block, order, cls))
    return seq
