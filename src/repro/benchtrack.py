"""Wall-clock benchmark harness for the incremental remap kernel.

Times the rewritten greedy-descent engine against the retained
O(E)-per-candidate reference (:func:`repro.regalloc.remap.
_greedy_descent_reference`) and the serial RegN sweep against its
process-pool fan-out, then emits the measurements as ``BENCH_remap.json``.
CI uploads the file as an artifact, so the speedups are tracked run over
run; ``python -m repro bench-remap`` produces it locally.

Every timed comparison also cross-checks outputs: the incremental engine
must return exactly the reference's costs and permutations, and the
parallel sweep exactly the serial sweep's points — a benchmark that got
faster by changing answers is a bug, not a result.
"""

from __future__ import annotations

import json
import time
from typing import Dict, Optional, Sequence

__all__ = ["bench_remap_descent", "bench_sweep", "collect_benchmarks",
           "write_bench_json"]

BENCH_SCHEMA = 1


def bench_remap_descent(workload: str = "sha", reg_n: int = 16,
                        diff_n: int = 8, restarts: int = 100,
                        seed: int = 0) -> Dict[str, object]:
    """Time the full restart schedule, reference vs incremental engine.

    Both runs descend from the identical starting permutations; the
    result records wall-times, the speedup, and whether every
    ``(cost, permutation)`` outcome matched (with exact integer edge
    weights it always should).
    """
    from repro.regalloc.iterated import iterated_allocate
    from repro.regalloc.remap import (_edge_list, _greedy_descent_reference,
                                      _make_engine, _start_perms)
    from repro.analysis.frequency import estimate_block_frequencies
    from repro.workloads import get_workload

    fn = iterated_allocate(get_workload(workload).function(), reg_n).fn
    freq = estimate_block_frequencies(fn)
    edges = _edge_list(fn, reg_n, "src_first", freq)
    free = list(range(reg_n))
    starts = _start_perms(list(range(reg_n)), free, restarts, seed)

    # warm-up outside the timed regions: the first engine construction
    # pays one-time process costs (the numpy import above all)
    _make_engine(edges, reg_n, diff_n, free).descend(list(starts[0]))

    t0 = time.perf_counter()
    reference = [
        (_greedy_descent_reference(p, edges, reg_n, diff_n, free), p)
        for p in [list(s) for s in starts]
    ]
    t_ref = time.perf_counter() - t0

    t0 = time.perf_counter()
    engine = _make_engine(edges, reg_n, diff_n, free)
    incremental = [
        (engine.descend(p), p) for p in [list(s) for s in starts]
    ]
    t_inc = time.perf_counter() - t0

    return {
        "workload": workload,
        "reg_n": reg_n,
        "diff_n": diff_n,
        "restarts": restarts,
        "seed": seed,
        "edges": len(edges),
        "engine": type(engine).__name__,
        "reference_seconds": t_ref,
        "incremental_seconds": t_inc,
        "speedup": t_ref / t_inc if t_inc else float("inf"),
        "identical_results": reference == incremental,
    }


def bench_sweep(n_workloads: int = 4,
                reg_ns: Sequence[int] = (8, 12, 16),
                remap_restarts: int = 8,
                jobs: int = 0) -> Dict[str, object]:
    """Time the RegN sweep grid, serial vs process-pool fan-out."""
    from repro.experiments.sweep import run_regn_sweep
    from repro.parallel import resolve_jobs
    from repro.workloads import MIBENCH

    workloads = MIBENCH[:n_workloads]
    n_jobs = resolve_jobs(jobs)

    t0 = time.perf_counter()
    serial = run_regn_sweep(workloads, reg_ns=tuple(reg_ns),
                            remap_restarts=remap_restarts, jobs=1)
    t_serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = run_regn_sweep(workloads, reg_ns=tuple(reg_ns),
                              remap_restarts=remap_restarts, jobs=n_jobs)
    t_parallel = time.perf_counter() - t0

    return {
        "workloads": [w.name for w in workloads],
        "reg_ns": list(reg_ns),
        "remap_restarts": remap_restarts,
        "jobs": n_jobs,
        "serial_seconds": t_serial,
        "parallel_seconds": t_parallel,
        "speedup": t_serial / t_parallel if t_parallel else float("inf"),
        "identical_results": serial.points == parallel.points,
    }


def collect_benchmarks(remap_restarts: int = 100,
                       sweep_jobs: int = 0,
                       workload: str = "sha",
                       reg_n: int = 16) -> Dict[str, object]:
    """All harness measurements as one JSON-ready document."""
    return {
        "schema": BENCH_SCHEMA,
        "remap": bench_remap_descent(workload=workload, reg_n=reg_n,
                                     restarts=remap_restarts),
        "sweep": bench_sweep(jobs=sweep_jobs),
    }


def write_bench_json(path: str = "BENCH_remap.json",
                     doc: Optional[Dict[str, object]] = None,
                     **kwargs) -> Dict[str, object]:
    """Run :func:`collect_benchmarks` (unless ``doc`` is given) and write
    the result to ``path``; returns the document."""
    if doc is None:
        doc = collect_benchmarks(**kwargs)
    with open(path, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    return doc
