"""Wall-clock benchmark harness for the rewritten hot paths.

Times the rewritten greedy-descent engine against the retained
O(E)-per-candidate reference (:func:`repro.regalloc.remap.
_greedy_descent_reference`), the serial RegN sweep against its
process-pool fan-out, the columnar simulation layer (fast
interpreter engine + trace reuse + vectorized timing) against the
reference interpreter/object-trace path, and the corpus-batched
analysis kernels (:mod:`repro.analysis.batched`) against the
object-walking reference analyses, then emits the measurements as
``BENCH_remap.json`` / ``BENCH_sim.json`` / ``BENCH_analysis.json``.
CI uploads the files as artifacts, so the speedups are tracked run over
run; ``python -m repro bench-remap``, ``bench-sim`` and
``bench-analysis`` produce them locally.

Every timed comparison also cross-checks outputs: the incremental engine
must return exactly the reference's costs and permutations, the parallel
sweep exactly the serial sweep's points, and the columnar path exactly
the reference path's ``CycleReport`` per program — a benchmark that got
faster by changing answers is a bug, not a result.
"""

from __future__ import annotations

import json
import struct
import time
from typing import Dict, Optional, Sequence

__all__ = ["bench_remap_descent", "bench_sweep", "bench_sim",
           "bench_wire", "bench_analysis", "bench_moves",
           "bench_allocators",
           "collect_benchmarks", "collect_sim_benchmarks",
           "collect_analysis_benchmarks", "collect_moves_benchmarks",
           "collect_allocator_benchmarks",
           "write_bench_json"]

BENCH_SCHEMA = 1


def bench_remap_descent(workload: str = "sha", reg_n: int = 16,
                        diff_n: int = 8, restarts: int = 100,
                        seed: int = 0) -> Dict[str, object]:
    """Time the full restart schedule, reference vs incremental engine.

    Both runs descend from the identical starting permutations; the
    result records wall-times, the speedup, and whether every
    ``(cost, permutation)`` outcome matched (with exact integer edge
    weights it always should).
    """
    from repro.regalloc.iterated import iterated_allocate
    from repro.regalloc.remap import (_edge_list, _greedy_descent_reference,
                                      _make_engine, _start_perms)
    from repro.analysis.frequency import estimate_block_frequencies
    from repro.workloads import get_workload

    fn = iterated_allocate(get_workload(workload).function(), reg_n).fn
    freq = estimate_block_frequencies(fn)
    edges = _edge_list(fn, reg_n, "src_first", freq)
    free = list(range(reg_n))
    starts = _start_perms(list(range(reg_n)), free, restarts, seed)

    # warm-up outside the timed regions: the first engine construction
    # pays one-time process costs (the numpy import above all)
    _make_engine(edges, reg_n, diff_n, free).descend(list(starts[0]))

    t0 = time.perf_counter()
    reference = [
        (_greedy_descent_reference(p, edges, reg_n, diff_n, free), p)
        for p in [list(s) for s in starts]
    ]
    t_ref = time.perf_counter() - t0

    t0 = time.perf_counter()
    engine = _make_engine(edges, reg_n, diff_n, free)
    incremental = [
        (engine.descend(p), p) for p in [list(s) for s in starts]
    ]
    t_inc = time.perf_counter() - t0

    return {
        "workload": workload,
        "reg_n": reg_n,
        "diff_n": diff_n,
        "restarts": restarts,
        "seed": seed,
        "edges": len(edges),
        "engine": type(engine).__name__,
        "reference_seconds": t_ref,
        "incremental_seconds": t_inc,
        "speedup": t_ref / t_inc if t_inc else float("inf"),
        "identical_results": reference == incremental,
    }


def bench_sweep(n_workloads: int = 4,
                reg_ns: Sequence[int] = (8, 12, 16),
                remap_restarts: int = 8,
                jobs: int = 0,
                repeats: int = 3) -> Dict[str, object]:
    """Time the RegN sweep grid: serial vs the shared-fleet fan-out,
    across a jobs sweep (1, 2, 4, and the requested count).

    Each timing is the best of ``repeats`` runs — the fleet's workers
    persist between calls, so the min reflects warm steady state, and
    best-of-N suppresses scheduler noise on loaded CI machines.  Every
    parallel run is also checked bit-identical to the serial one; the
    recorded ``effective_workers`` makes the core clamp explicit (on a
    single-core machine every job count collapses to the serial path,
    so its speedup is ~1.0 by construction, not by luck).
    """
    import os

    from repro.experiments.sweep import run_regn_sweep
    from repro.parallel import get_fleet, resolve_jobs
    from repro.workloads import MIBENCH

    workloads = MIBENCH[:n_workloads]
    n_jobs = resolve_jobs(jobs)
    cpus = os.cpu_count() or 1

    def timed(j: int):
        if j > 1:
            get_fleet(j).warm()  # spin-up paid outside the timed region
        best = float("inf")
        result = None
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            result = run_regn_sweep(workloads, reg_ns=tuple(reg_ns),
                                    remap_restarts=remap_restarts, jobs=j)
            best = min(best, time.perf_counter() - t0)
        return result, best

    serial, t_serial = timed(1)

    jobs_sweep = []
    by_jobs: Dict[int, float] = {}
    for j in sorted({2, 4, n_jobs} - {1}):
        result, t = timed(j)
        by_jobs[j] = t
        jobs_sweep.append({
            "jobs": j,
            "effective_workers": max(1, min(j, cpus)),
            "seconds": t,
            "speedup": t_serial / t if t else float("inf"),
            "identical_results": result.points == serial.points,
        })

    t_parallel = by_jobs.get(n_jobs, t_serial)
    return {
        "workloads": [w.name for w in workloads],
        "reg_ns": list(reg_ns),
        "remap_restarts": remap_restarts,
        "jobs": n_jobs,
        "effective_workers": max(1, min(n_jobs, cpus)),
        "cpus": cpus,
        "repeats": repeats,
        "serial_seconds": t_serial,
        "parallel_seconds": t_parallel,
        "speedup": t_serial / t_parallel if t_parallel else float("inf"),
        "identical_results": all(e["identical_results"]
                                 for e in jobs_sweep),
        "jobs_sweep": jobs_sweep,
    }


def bench_wire(n_workloads: int = 8,
               repeats: int = 200) -> Dict[str, object]:
    """Serialization micro-benchmark: pickle vs the compact wire codec.

    Measures, over the first ``n_workloads`` kernels, total payload
    bytes and best-of-3 encode/decode wall time for both formats.  The
    wire codec is what the worker fleet ships functions with; this entry
    keeps its size advantage (and any speed drift) on the trajectory.
    """
    import pickle

    from repro.ir.wire import from_wire, to_wire
    from repro.workloads import MIBENCH

    fns = [w.function() for w in MIBENCH[:n_workloads]]
    wires = [to_wire(fn) for fn in fns]
    pickles = [pickle.dumps(fn, protocol=pickle.HIGHEST_PROTOCOL)
               for fn in fns]

    def best_of(fn_once) -> float:
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            for _ in range(max(1, repeats)):
                fn_once()
            best = min(best, time.perf_counter() - t0)
        return best / max(1, repeats)

    t_enc = best_of(lambda: [to_wire(f) for f in fns])
    t_dec = best_of(lambda: [from_wire(b) for b in wires])
    t_penc = best_of(lambda: [pickle.dumps(
        f, protocol=pickle.HIGHEST_PROTOCOL) for f in fns])
    t_pdec = best_of(lambda: [pickle.loads(b) for b in pickles])

    wire_bytes = sum(len(b) for b in wires)
    pickle_bytes = sum(len(b) for b in pickles)
    return {
        "workloads": [w.name for w in MIBENCH[:n_workloads]],
        "instructions": sum(fn.num_instructions() for fn in fns),
        "wire_bytes": wire_bytes,
        "pickle_bytes": pickle_bytes,
        "bytes_ratio": pickle_bytes / wire_bytes if wire_bytes
        else float("inf"),
        "wire_encode_us": 1e6 * t_enc,
        "wire_decode_us": 1e6 * t_dec,
        "pickle_encode_us": 1e6 * t_penc,
        "pickle_decode_us": 1e6 * t_pdec,
    }


def bench_sim(n_workloads: int = 15,
              setups: Sequence[str] = ("baseline", "remapping", "select"),
              remap_restarts: int = 5) -> Dict[str, object]:
    """Time the simulation layer, reference path vs columnar path.

    The Figure 14 run re-simulates every workload once per setup.  The
    old path interprets each allocated program with the reference engine
    and walks the object trace through the per-entry timing loop; the new
    path interprets each *input* function once (fast engine, columnar
    recording), derives every setup's trace from that recording and times
    it vectorized.  Allocation is hoisted out of both timed regions — it
    is identical work either way and not what this benchmark measures.
    Workloads run at ``bench_args`` scale, and both paths must produce
    bit-identical :class:`~repro.machine.lowend.CycleReport` rows.
    """
    from repro.ir.interp import Interpreter
    from repro.machine.lowend import LowEndTimingModel
    from repro.machine.reuse import (clear_recorded_runs, interpret_or_derive,
                                     record_reference_run)
    from repro.machine.spec import LOWEND
    from repro.regalloc.pipeline import run_setup
    from repro.workloads import MIBENCH

    workloads = MIBENCH[:n_workloads]
    model = LowEndTimingModel(LOWEND)
    # the ILP-free setups keep allocation (untimed but still paid) cheap
    programs = []
    for w in workloads:
        fn = w.function()
        variants = [
            run_setup(fn, s, base_k=8, reg_n=12, diff_n=8,
                      remap_restarts=remap_restarts, use_ilp=False).final_fn
            for s in setups
        ]
        programs.append((fn, w.bench_args, variants))

    # warm-up outside the timed regions (the numpy import above all)
    Interpreter(trace_format="columnar").run(programs[0][0], programs[0][1])

    t0 = time.perf_counter()
    reference = []
    for _, args, variants in programs:
        for vf in variants:
            result = Interpreter(engine="reference").run(vf, args)
            reference.append(model.time(result.trace))
    t_ref = time.perf_counter() - t0

    clear_recorded_runs()
    t0 = time.perf_counter()
    columnar = []
    for fn, args, variants in programs:
        recorded = record_reference_run(fn, args)
        for vf in variants:
            result = interpret_or_derive(vf, args, recorded)
            columnar.append(model.time(
                result.columnar if result.columnar is not None
                else result.trace))
    t_col = time.perf_counter() - t0

    return {
        "workloads": [w.name for w in workloads],
        "setups": list(setups),
        "remap_restarts": remap_restarts,
        "programs": len(reference),
        "dynamic_instructions": sum(r.instructions for r in reference),
        "reference_seconds": t_ref,
        "columnar_seconds": t_col,
        "speedup": t_ref / t_col if t_col else float("inf"),
        "identical_results": reference == columnar,
    }


def bench_moves(n_workloads: int = 8,
                setups: Sequence[str] = ("select", "coalesce"),
                remap_restarts: int = 3,
                gap_workloads: int = 3,
                gap_reg_n: int = 6,
                gap_diff_n: int = 4,
                gap_restarts: int = 20) -> Dict[str, object]:
    """Measure the parallel-move resolver and the exact-remap calibration.

    Three sections.  ``resolver``: every workload × setup is allocated
    three ways — resolver disabled (``REPRO_NO_MOVE_RESOLVER=1``),
    resolver on, and resolver on with the ``permi`` machine feature
    (``LOWEND_PERMI``) — and each result is simulated at ``bench_args``
    scale.  The acceptance invariant is recorded per row: with the
    resolver on, the ``CycleReport`` must be bit-identical-or-better
    (the rewrite only fires when strictly shorter).  ``remap_gap``:
    :func:`repro.regalloc.remap.remap_optimality_gap` calibrates the
    greedy descent against the exact branch-and-bound optimum at a
    small RegN, per workload.  ``decoder``: the differential decoder's
    gate/delay envelope next to the ``permi`` crossbar's, so the cost
    of the machine flag stays on the trajectory.
    """
    import os

    from repro.encoding.config import EncodingConfig
    from repro.machine.decoder import DecoderCostModel
    from repro.machine.lowend import simulate
    from repro.machine.spec import LOWEND_PERMI
    from repro.regalloc.iterated import iterated_allocate
    from repro.regalloc.moves import NO_RESOLVER_ENV
    from repro.regalloc.pipeline import run_setup
    from repro.regalloc.remap import remap_optimality_gap
    from repro.workloads import MIBENCH

    workloads = MIBENCH[:n_workloads]

    def allocate(fn, setup, machine=None, disabled=False):
        old = os.environ.get(NO_RESOLVER_ENV)
        try:
            if disabled:
                os.environ[NO_RESOLVER_ENV] = "1"
            else:
                os.environ.pop(NO_RESOLVER_ENV, None)
            return run_setup(fn, setup, base_k=8, reg_n=12, diff_n=8,
                             remap_restarts=remap_restarts, use_ilp=False,
                             machine=machine)
        finally:
            if old is None:
                os.environ.pop(NO_RESOLVER_ENV, None)
            else:
                os.environ[NO_RESOLVER_ENV] = old

    rows = []
    for w in workloads:
        fn = w.function()
        for setup in setups:
            off = allocate(fn, setup, disabled=True)
            on = allocate(fn, setup)
            permi = allocate(fn, setup, machine=LOWEND_PERMI)
            _, rep_off = simulate(off.final_fn, w.bench_args)
            _, rep_on = simulate(on.final_fn, w.bench_args)
            _, rep_permi = simulate(permi.final_fn, w.bench_args,
                                    LOWEND_PERMI)
            s, sp = on.allocation.stats, permi.allocation.stats
            rows.append({
                "workload": w.name,
                "setup": setup,
                "runs_seen": s.get("moves_runs_seen", 0.0),
                "runs_rewritten": s.get("moves_runs_rewritten", 0.0),
                "instructions_saved":
                    s.get("moves_instructions_saved", 0.0),
                "permis": sp.get("moves_permis", 0.0),
                "cycles_off": rep_off.cycles,
                "cycles_on": rep_on.cycles,
                "cycles_permi": rep_permi.cycles,
                "identical_or_better": rep_on.cycles <= rep_off.cycles,
            })

    gaps = []
    for w in workloads[:gap_workloads]:
        alloc = iterated_allocate(w.function(), gap_reg_n)
        gap = remap_optimality_gap(alloc.fn, gap_reg_n, gap_diff_n,
                                   restarts=gap_restarts)
        gaps.append({"workload": w.name, "reg_n": gap_reg_n,
                     "diff_n": gap_diff_n, **gap})

    model = DecoderCostModel(EncodingConfig(reg_n=12, diff_n=8))
    diff_est, permi_est = model.estimate(), model.permi_estimate()

    def envelope(est) -> Dict[str, float]:
        return {"gate_count": est.gate_count,
                "transistor_count": est.transistor_count,
                "logic_levels": est.logic_levels,
                "delay_ns": est.delay_ns}

    return {
        "workloads": [w.name for w in workloads],
        "setups": list(setups),
        "resolver": rows,
        "totals": {
            "runs_rewritten": sum(r["runs_rewritten"] for r in rows),
            "instructions_saved":
                sum(r["instructions_saved"] for r in rows),
            "permis": sum(r["permis"] for r in rows),
            "cycles_off": sum(r["cycles_off"] for r in rows),
            "cycles_on": sum(r["cycles_on"] for r in rows),
            "cycles_permi": sum(r["cycles_permi"] for r in rows),
        },
        "remap_gap": gaps,
        "max_gap": max((g["gap"] for g in gaps), default=0.0),
        "decoder": {"differential": envelope(diff_est),
                    "permi_crossbar": envelope(permi_est)},
        "identical_results": all(r["identical_or_better"] for r in rows),
    }


def bench_allocators(n_workloads: int = 0,
                     remap_restarts: int = 3) -> Dict[str, object]:
    """Differential cross-check of every registered allocator backend.

    Each MiBench workload (``n_workloads`` of them; 0 = all) runs
    through every backend the zoo registers, simulating the final
    function at ``bench_args`` scale.  The acceptance invariant is
    observational: every backend must produce the same interpreter
    return value as ``baseline`` on every workload — the allocators may
    disagree about everything except the answer.  Per-backend totals
    (instruction count, spills, ``set_last_reg`` repairs, cycles) give
    the trajectory a cost axis; an SSA backend that starts spilling
    more shows up here before it shows up in a figure.
    """
    from repro.machine.lowend import simulate
    from repro.regalloc.pipeline import SETUPS, run_setup
    from repro.regalloc.zoo import list_allocators
    from repro.workloads import MIBENCH

    workloads = MIBENCH[:n_workloads] if n_workloads else MIBENCH

    rows = []
    reference: Dict[str, object] = {}
    for w in workloads:
        fn = w.function()
        for setup in SETUPS:
            prog = run_setup(fn, setup, base_k=8, reg_n=12, diff_n=8,
                             remap_restarts=remap_restarts, use_ilp=False)
            result, report = simulate(prog.final_fn, w.bench_args)
            if setup == "baseline":
                reference[w.name] = result.return_value
            rows.append({
                "workload": w.name,
                "setup": setup,
                "instructions": prog.n_instructions,
                "spills": prog.n_spills,
                "setlr": prog.n_setlr,
                "cycles": report.cycles,
                "return_value": result.return_value,
                "matches_baseline":
                    result.return_value == reference[w.name],
            })

    totals = {
        setup: {
            key: float(sum(r[key] for r in rows if r["setup"] == setup))
            for key in ("instructions", "spills", "setlr", "cycles")
        }
        for setup in SETUPS
    }
    return {
        "workloads": [w.name for w in workloads],
        "setups": list(SETUPS),
        "backends": [info.to_dict() for info in list_allocators()],
        "results": rows,
        "totals": totals,
        "identical_results": all(r["matches_baseline"] for r in rows),
    }


def _bits(x: float) -> bytes:
    """IEEE-754 image of ``x`` — equality down to the last bit."""
    return struct.pack("<d", x)


def _same_liveness(a, b) -> bool:
    if list(a.live_in) != list(b.live_in):
        return False
    for attr in ("live_in", "live_out", "use", "defs",
                 "instr_live_out", "instr_live_in"):
        da, db = getattr(a, attr), getattr(b, attr)
        if list(da.keys()) != list(db.keys()) or da != db:
            return False
    return True


def _same_interference(a, b) -> bool:
    return (list(a._adj.keys()) == list(b._adj.keys())
            and a._adj == b._adj
            and list(a.moves.keys()) == list(b.moves.keys())
            and all(_bits(a.moves[k]) == _bits(b.moves[k])
                    for k in a.moves))


def _same_adjacency(a, b) -> bool:
    for side in ("_out", "_in"):
        da, db = getattr(a, side), getattr(b, side)
        if list(da.keys()) != list(db.keys()):
            return False
        for u in da:
            if list(da[u].keys()) != list(db[u].keys()):
                return False
            if any(_bits(da[u][v]) != _bits(db[u][v]) for v in da[u]):
                return False
    return True


def bench_analysis(n_workloads: int = 0, cls: str = "int",
                   order: str = "src_first",
                   repeats: int = 30) -> Dict[str, object]:
    """Time the analysis stages, object-walking reference vs the
    corpus-batched numpy kernels, over the MiBench suite.

    The comparison is warm-representation on both sides: the reference
    builders walk the pre-existing ``Function`` objects (the IR *is*
    their warm representation), so the vectorized side gets its
    equivalent — memoized columnar views with their lazy per-view tables
    populated by one untimed warm-up pass.  Deriving the views from
    scratch is reported separately as ``views_seconds``; ``speedup``
    gates on the analysis stages alone, ``cold_speedup`` folds the view
    derivation in.  Stage inputs match too: the reference interference
    builder receives precomputed liveness objects exactly as the
    batched kernel receives precomputed live-out bitsets.

    Every timing is the best of ``repeats`` runs, with the reference and
    batched runs of every stage *interleaved* in the same round-robin
    loop — CPU frequency or load drift during the benchmark then shifts
    both sides alike instead of skewing the ratio — and every stage's
    outputs are checked exactly equal against the reference's, dict
    insertion orders and float bit-patterns included.
    """
    from repro.analysis import batched
    from repro.analysis.adjacency import _build_adjacency_ref
    from repro.analysis.interference import _build_interference_ref
    from repro.analysis.liveness import _compute_liveness
    from repro.ir.columnar import ColumnarFunction
    from repro.ir.trace import numpy_or_none
    from repro.workloads import MIBENCH

    np = numpy_or_none()
    if np is None:
        raise RuntimeError("bench-analysis needs numpy (the vectorized "
                           "side has nothing to run without it)")

    workloads = MIBENCH[:n_workloads] if n_workloads else list(MIBENCH)
    fns = [w.function() for w in workloads]
    nones = [None] * len(fns)

    views = [ColumnarFunction(fn) for fn in fns]
    # untimed warm-up pass: populates every lazy per-view table (register
    # singletons, class seeds, access fields, byte-decode entries) the
    # way repeated pipeline use would; kernel *results* are not cached
    # (no fingerprints are passed), so every timed run recomputes them
    bits = batched._liveness_kernel(views, np)[1]
    batched._interference_kernel(views, bits, nones, cls, np)
    batched._adjacency_kernel(views, order, cls, nones, np)

    ref_live = [_compute_liveness(fn) for fn in fns]
    runs = [
        lambda: [_compute_liveness(fn) for fn in fns],
        lambda: batched._liveness_kernel(views, np),
        lambda: [_build_interference_ref(fn, live, None, cls)
                 for fn, live in zip(fns, ref_live)],
        lambda: batched._interference_kernel(views, bits, nones, cls, np),
        lambda: [_build_adjacency_ref(fn, order, cls, None) for fn in fns],
        lambda: batched._adjacency_kernel(views, order, cls, nones, np),
        lambda: [ColumnarFunction(fn) for fn in fns],
    ]
    best = [float("inf")] * len(runs)
    results = [None] * len(runs)
    for _ in range(max(1, repeats)):
        for i, run in enumerate(runs):
            t0 = time.perf_counter()
            results[i] = run()
            t = time.perf_counter() - t0
            if t < best[i]:
                best[i] = t

    (ref_live, (vec_live, bits), ref_int, vec_int, ref_adj, vec_adj,
     _) = results
    (t_ref_live, t_vec_live, t_ref_int, t_vec_int, t_ref_adj, t_vec_adj,
     t_views) = best

    identical = (
        all(map(_same_liveness, ref_live, vec_live))
        and all(map(_same_interference, ref_int, vec_int))
        and all(map(_same_adjacency, ref_adj, vec_adj))
    )

    def stage(t_ref: float, t_vec: float) -> Dict[str, float]:
        return {
            "reference_seconds": t_ref,
            "batched_seconds": t_vec,
            "speedup": t_ref / t_vec if t_vec else float("inf"),
        }

    t_ref = t_ref_live + t_ref_int + t_ref_adj
    t_vec = t_vec_live + t_vec_int + t_vec_adj
    return {
        "workloads": [w.name for w in workloads],
        "functions": len(fns),
        "instructions": sum(fn.num_instructions() for fn in fns),
        "cls": cls,
        "order": order,
        "repeats": repeats,
        "stages": {
            "liveness": stage(t_ref_live, t_vec_live),
            "interference": stage(t_ref_int, t_vec_int),
            "adjacency": stage(t_ref_adj, t_vec_adj),
        },
        "views_seconds": t_views,
        "reference_seconds": t_ref,
        "batched_seconds": t_vec,
        "speedup": t_ref / t_vec if t_vec else float("inf"),
        "cold_speedup": t_ref / (t_vec + t_views)
        if t_vec + t_views else float("inf"),
        "identical_results": identical,
    }


def collect_benchmarks(remap_restarts: int = 100,
                       sweep_jobs: int = 0,
                       workload: str = "sha",
                       reg_n: int = 16) -> Dict[str, object]:
    """All harness measurements as one JSON-ready document."""
    return {
        "schema": BENCH_SCHEMA,
        "remap": bench_remap_descent(workload=workload, reg_n=reg_n,
                                     restarts=remap_restarts),
        "sweep": bench_sweep(jobs=sweep_jobs),
        "wire": bench_wire(),
    }


def collect_sim_benchmarks(**kwargs) -> Dict[str, object]:
    """The simulation-layer measurements as one JSON-ready document."""
    return {
        "schema": BENCH_SCHEMA,
        "sim": bench_sim(**kwargs),
    }


def collect_moves_benchmarks(**kwargs) -> Dict[str, object]:
    """The move-resolver measurements as one JSON-ready document."""
    return {
        "schema": BENCH_SCHEMA,
        "moves": bench_moves(**kwargs),
    }


def collect_allocator_benchmarks(**kwargs) -> Dict[str, object]:
    """The allocator-zoo cross-check as one JSON-ready document."""
    return {
        "schema": BENCH_SCHEMA,
        "allocators": bench_allocators(**kwargs),
    }


def collect_analysis_benchmarks(**kwargs) -> Dict[str, object]:
    """The analysis-kernel measurements as one JSON-ready document."""
    return {
        "schema": BENCH_SCHEMA,
        "analysis": bench_analysis(**kwargs),
    }


def write_bench_json(path: str = "BENCH_remap.json",
                     doc: Optional[Dict[str, object]] = None,
                     **kwargs) -> Dict[str, object]:
    """Run :func:`collect_benchmarks` (unless ``doc`` is given) and write
    the result to ``path``; returns the document."""
    if doc is None:
        doc = collect_benchmarks(**kwargs)
    with open(path, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    return doc
