"""Seeded random IR generator for the fuzzing harness.

Builds on the same pool discipline as :mod:`repro.workloads.synth` — every
value an instruction may read is initialised in the entry block or earlier
on every path — but exposes the full knob set the differential harness
sweeps: region count, loop nesting depth, register pressure, call density
and memory-op density.  Output is guaranteed to pass the L001-L009 lint
rules *by construction*:

* every block ends before a new one starts and the last block returns
  (L001: terminators);
* sources are always drawn from the already-defined pool and fresh values
  are only defined at points that dominate their uses — never inside one
  arm of a diamond (L002: def-before-use);
* no physical registers, spill ops or ``setlr`` appear (L003/L007/L008);
* every emitted block is reachable: diamond arms and join blocks hang off
  the branch that creates them, loop bodies off the loop entry (L009).

Determinism is a contract, not an accident: the only entropy source is the
single ``random.Random(seed)`` stream, so one ``(seed, config)`` pair names
one program forever — that is what makes ``repro fuzz repro --seed N``
reproduce a failure found on another machine or under ``--jobs 16``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields, replace
from typing import Dict, Iterator, List, Optional

from repro.ir.builder import FunctionBuilder
from repro.ir.function import Function
from repro.ir.instr import Instr, Reg

__all__ = [
    "FuzzConfig",
    "generate_fuzz_function",
    "generate_pressure_function",
    "generate_loop_ddg",
    "knob_matrix",
]

_ALU_TWO = ("add", "sub", "mul", "xor", "or", "and")
_ALU_IMM = ("addi", "subi", "muli", "xori", "andi", "shri")
_BRANCHES = ("beq", "bne", "blt", "bge")


@dataclass(frozen=True)
class FuzzConfig:
    """Generator knobs.  One config + one seed = one program.

    ============= ====================================================
    knob          meaning
    ============= ====================================================
    n_regions     sequential control-flow regions (straight/diamond/loop)
    loop_depth    maximum loop nesting depth (0 = no loops at all)
    base_values   values initialised up front — the register-pressure floor
    ops_per_block ALU instructions per straight run
    loop_trip     maximum trip count of any single loop
    fresh_bias    probability an ALU result starts a new live range
    call_density  probability a region body contains a ``call``
    mem_density   probability a region body contains a ``st``/``ld`` pair
    ============= ====================================================
    """

    n_regions: int = 4
    loop_depth: int = 1
    base_values: int = 8
    ops_per_block: int = 5
    loop_trip: int = 3
    fresh_bias: float = 0.25
    call_density: float = 0.0
    mem_density: float = 0.0

    def __post_init__(self) -> None:
        if self.n_regions < 1:
            raise ValueError("n_regions must be >= 1")
        if self.loop_depth < 0:
            raise ValueError("loop_depth must be >= 0")
        if self.base_values < 2:
            raise ValueError("base_values must be >= 2")
        if self.ops_per_block < 2:
            raise ValueError("ops_per_block must be >= 2")
        if self.loop_trip < 1:
            raise ValueError("loop_trip must be >= 1")
        for knob in ("fresh_bias", "call_density", "mem_density"):
            v = getattr(self, knob)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{knob} must be in [0, 1], got {v}")

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form — the picklable payload the harness fans out."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "FuzzConfig":
        return cls(**d)

    def cli_args(self) -> str:
        """The ``repro fuzz repro`` flags that reproduce this config."""
        return (f"--regions {self.n_regions} --loop-depth {self.loop_depth} "
                f"--values {self.base_values} --ops {self.ops_per_block} "
                f"--trip {self.loop_trip} --fresh-bias {self.fresh_bias} "
                f"--calls {self.call_density} --mem {self.mem_density}")


def knob_matrix() -> List[FuzzConfig]:
    """A bounded matrix covering every knob at its interesting extremes.

    Each knob is exercised at its minimum, a middle value and a stressed
    value while the others stay at defaults, plus a handful of corner
    combinations (everything-minimal, everything-stressed, calls+memory
    together).  The generator-soundness test runs every entry through
    strict lint and the interpreter.
    """
    base = FuzzConfig()
    matrix: List[FuzzConfig] = [base]
    per_knob = {
        "n_regions": (1, 2, 6),
        "loop_depth": (0, 2, 3),
        "base_values": (2, 5, 14),
        "ops_per_block": (2, 4, 8),
        "loop_trip": (1, 2, 5),
        "fresh_bias": (0.0, 0.5, 1.0),
        "call_density": (0.0, 0.5, 1.0),
        "mem_density": (0.0, 0.5, 1.0),
    }
    for knob, values in per_knob.items():
        for v in values:
            cfg = replace(base, **{knob: v})
            if cfg not in matrix:
                matrix.append(cfg)
    matrix.append(FuzzConfig(n_regions=1, loop_depth=0, base_values=2,
                             ops_per_block=2, loop_trip=1, fresh_bias=0.0))
    matrix.append(FuzzConfig(n_regions=6, loop_depth=3, base_values=14,
                             ops_per_block=8, loop_trip=4, fresh_bias=0.6,
                             call_density=0.5, mem_density=0.5))
    matrix.append(FuzzConfig(call_density=1.0, mem_density=1.0))
    return matrix


def _emit_alu(fb: FunctionBuilder, rng: random.Random, pool: List[Reg],
              fresh_bias: float) -> None:
    """One ALU instruction over defined values; sources drawn before any
    fresh destination joins the pool, so nothing reads its own result."""
    if rng.random() < 0.7:
        op = rng.choice(_ALU_TWO)
        srcs = (rng.choice(pool), rng.choice(pool))
        imm = None
    else:
        op = rng.choice(_ALU_IMM)
        srcs = (rng.choice(pool),)
        imm = rng.randrange(1, 64)
    if rng.random() < fresh_bias:
        dst = fb.vreg()
        pool.append(dst)
    else:
        dst = rng.choice(pool)
    fb.emit(Instr(op, dst=dst, srcs=srcs, imm=imm))


class _Gen:
    """One generation run: builder + pool + fresh-label counters."""

    def __init__(self, seed: int, config: FuzzConfig, name: str) -> None:
        self.rng = random.Random(seed)
        self.cfg = config
        self.fb = FunctionBuilder(name)
        n = self.fb.vreg()
        self.fb.params = (n,)
        self.pool: List[Reg] = [n]
        self.param = n
        self.base: Optional[Reg] = None
        self.n_calls = 0
        self.n_labels = 0

    def label(self, stem: str) -> str:
        self.n_labels += 1
        return f"{stem}{self.n_labels}"

    # ------------------------------------------------------------------
    # unconditional emissions (safe to define fresh values)
    # ------------------------------------------------------------------

    def maybe_memory(self) -> None:
        """A store/load pair against the shared base pointer."""
        if self.base is None or self.rng.random() >= self.cfg.mem_density:
            return
        self.fb.st(self.rng.choice(self.pool), self.base,
                   self.rng.randrange(8))
        out = self.fb.vreg()
        self.fb.ld(out, self.base, self.rng.randrange(8))
        self.pool.append(out)

    def maybe_call(self) -> None:
        """A call with explicit use/def register effects."""
        if self.rng.random() >= self.cfg.call_density:
            return
        n_uses = self.rng.randrange(0, min(3, len(self.pool)) + 1)
        uses = tuple(self.rng.sample(self.pool, n_uses))
        ret = self.fb.vreg()
        self.n_calls += 1
        self.fb.call(f"ext{self.n_calls}", uses=uses, defs=(ret,))
        self.pool.append(ret)

    def straight(self, n_ops: int, fresh_bias: float) -> None:
        for _ in range(n_ops):
            _emit_alu(self.fb, self.rng, self.pool, fresh_bias)

    # ------------------------------------------------------------------
    # regions
    # ------------------------------------------------------------------

    def diamond(self) -> None:
        """An if/else diamond.  Arms define no fresh values (one arm may
        not execute, so a fresh def there would be conditional)."""
        rng, fb, cfg = self.rng, self.fb, self.cfg
        a, b = rng.choice(self.pool), rng.choice(self.pool)
        else_l, join_l = self.label("else"), self.label("join")
        fb.emit(Instr(rng.choice(_BRANCHES), srcs=(a, b), label=else_l))
        fb.block(self.label("then"))
        self.straight(rng.randrange(1, cfg.ops_per_block), 0.0)
        fb.br(join_l)
        fb.block(else_l)
        self.straight(rng.randrange(1, cfg.ops_per_block), 0.0)
        fb.block(join_l)
        fb.nop()

    def loop(self, depth: int) -> None:
        """A counted loop; body may contain calls, memory ops and — up to
        ``loop_depth`` — another loop.  The trip count is at least one, so
        body defs dominate everything after the loop."""
        rng, fb, cfg = self.rng, self.fb, self.cfg
        counter, limit = fb.vregs(2)
        fb.li(counter, 0)
        fb.li(limit, rng.randrange(1, cfg.loop_trip + 1))
        head = self.label("loop")
        fb.block(head)
        self.straight(rng.randrange(2, cfg.ops_per_block + 1),
                      cfg.fresh_bias)
        self.maybe_memory()
        self.maybe_call()
        if depth < cfg.loop_depth and rng.random() < 0.6:
            self.loop(depth + 1)
        fb.addi(counter, counter, 1)
        fb.blt(counter, limit, head)
        fb.block(self.label("done"))
        fb.nop()

    def trim_pool(self) -> None:
        """Keep register pressure near ``base_values`` instead of growing
        without bound as fresh values accumulate."""
        cap = self.cfg.base_values * 3
        if len(self.pool) > cap:
            self.pool[:] = self.rng.sample(self.pool,
                                           self.cfg.base_values * 2)
            if self.param not in self.pool:
                self.pool.append(self.param)

    def run(self) -> Function:
        rng, fb, cfg = self.rng, self.fb, self.cfg
        fb.block("entry")
        for _ in range(cfg.base_values):
            v = fb.vreg()
            fb.li(v, rng.randrange(1, 100))
            self.pool.append(v)
        if cfg.mem_density > 0.0:
            self.base = fb.vreg()
            fb.li(self.base, 0x1000)
            self.pool.append(self.base)

        kinds = ["straight", "diamond"]
        if cfg.loop_depth >= 1:
            kinds.append("loop")
        for _ in range(cfg.n_regions):
            self.trim_pool()
            kind = rng.choice(kinds)
            if kind == "straight":
                self.straight(rng.randrange(2, cfg.ops_per_block + 1),
                              cfg.fresh_bias)
                self.maybe_memory()
                self.maybe_call()
            elif kind == "diamond":
                self.diamond()
            else:
                self.loop(depth=1)

        fb.block("collect")
        acc = fb.vreg()
        fb.li(acc, 0)
        for v in self.pool:
            fb.add(acc, acc, v)
        fb.ret(acc)
        return fb.build()


def generate_fuzz_function(seed: int, config: Optional[FuzzConfig] = None,
                           name: Optional[str] = None) -> Function:
    """Generate one well-formed, always-terminating, lint-clean function.

    ``(seed, config)`` fully determines the output; the function takes one
    integer parameter and returns a checksum of its live values, so any
    register-allocation miscompile that reaches the exit perturbs the
    return value.
    """
    config = config or FuzzConfig()
    return _Gen(seed, config, name or f"fuzz{seed}").run()


def generate_pressure_function(nvals: int = 14, seed: int = 1,
                               iters: int = 20,
                               name: str = "pressure") -> Function:
    """A loop kernel keeping ``nvals`` values live across iterations.

    The canonical spill-pressure workload: with ``nvals`` above the
    register count every allocator must spill, which is what the spill
    mutation classes (dropped reloads, shuffled slots) need to bite on.
    Previously duplicated as ``make_pressure_fn`` in ``tests/conftest.py``.
    """
    rng = random.Random(seed)
    fb = FunctionBuilder(name)
    n = fb.vreg()
    fb.params = (n,)
    vals = fb.vregs(nvals)
    fb.block("entry")
    for j, v in enumerate(vals):
        fb.li(v, j + 1)
    i = fb.vreg()
    fb.li(i, 0)
    fb.block("loop")
    for _ in range(iters):
        a, b = rng.sample(vals, 2)
        d = rng.choice(vals)
        fb.add(d, a, b)
    fb.addi(i, i, 1)
    fb.blt(i, n, "loop")
    fb.block("exit")
    acc = fb.vreg()
    fb.li(acc, 0)
    for v in vals:
        fb.add(acc, acc, v)
    fb.ret(acc)
    return fb.build()


def generate_loop_ddg(seed: int, max_ops: int = 28):
    """A random well-formed loop DDG for the software-pipelining suite.

    Acyclic dataflow plus (sometimes) one bounded-latency recurrence —
    the same shape ``tests/test_swp_properties.py`` used to build inline.
    Imported lazily so the fuzz layer has no hard dependency on the SWP
    substrate.
    """
    from repro.swp import Dep, LoopDDG, LoopOp

    kinds = [("alu", 1), ("alu", 1), ("mul", 3), ("mem_load", 2),
             ("mem_store", 2)]
    rng = random.Random(seed)
    n = rng.randrange(2, max_ops + 1)
    ops = []
    deps = []
    for i in range(n):
        kind, lat = rng.choice(kinds)
        ops.append(LoopOp(i, kind, lat))
        if i and rng.random() < 0.8:
            src = rng.randrange(i)
            if ops[src].produces_value:
                deps.append(Dep(src, i, 0, is_data=True))
    if n >= 4 and rng.random() < 0.5:
        late = rng.randrange(n // 2, n)
        early = rng.randrange(n // 2)
        if ops[late].produces_value and late != early:
            deps.append(Dep(late, early, distance=rng.randint(1, 2),
                            is_data=True))
    trip = rng.randrange(4, 50)
    return LoopDDG(ops, sorted(set(deps),
                               key=lambda d: (d.src, d.dst, d.distance)),
                   trip_count=trip)
