"""Bug injector: known-miscompiling corruptions of allocated functions.

Mutation testing for :mod:`repro.fuzz.checker`: if the symbolic checker is
to be trusted as the harness's main oracle, it must catch every *real*
miscompile we can manufacture.  The catalogue covers seven distinct
classes:

=============== ======================================================
kind            corruption
=============== ======================================================
use-swap        a use field reads a different register
def-swap        a result is written to a different register
drop-reload     a spill reload (``ldslot``) is deleted
drop-store      a spill store (``stslot``) is deleted
slot-shuffle    a reload reads the wrong spill slot
move-corrupt    a resolver-emitted register copy is dropped,
                duplicated at a later offset, or reordered with its
                neighbour (armed mutants must fall to the symbolic
                checker or the L010 interference lint)
setlr-corrupt   a ``set_last_reg`` payload is corrupted or the
                instruction is misplaced, then the binary is re-decoded
=============== ======================================================

Not every syntactic corruption is a semantic bug (swapping a dead def, or
a ``setlr`` whose damage is masked by a block-entry anchor, changes
nothing), so the gate first *arms* each mutation with checker-independent
evidence — interpreter divergence or fault against the original program —
and then requires the checker to catch 100% of the armed set.  That keeps
the validation honest: the checker is never judged against mutations only
the checker itself thinks are bugs.

``setlr`` corruption works at the encoding layer: the payload is mutated
in the :class:`EncodedFunction`, committed to bits with ``pack_function``
and decoded back with ``unpack_function`` — exactly what the hardware
would do — and the *decoded* function (with original uids re-attached
positionally) is what the checker and interpreter judge.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Sequence, Tuple

from repro.encoding.binary import PackError, pack_function, unpack_function
from repro.encoding.encoder import EncodedFunction, setlr_payload
from repro.fuzz.checker import check_allocation_semantics
from repro.ir.function import Function
from repro.ir.instr import Reg
from repro.ir.interp import InterpError, Interpreter
from repro.parallel import derive_seed
from repro.regalloc.pipeline import AllocatedProgram

__all__ = ["Mutation", "MUTATION_KINDS", "GateResult", "enumerate_mutations",
           "is_miscompile", "run_mutation_gate", "strip_setlr",
           "reattach_uids"]

MUTATION_KINDS = ("use-swap", "def-swap", "drop-reload", "drop-store",
                  "slot-shuffle", "move-corrupt", "setlr-corrupt")

_ARGS: Tuple[Tuple[int, ...], ...] = ((0,), (2,), (5,))


@dataclass
class Mutation:
    """One corrupted variant of an allocated function."""

    kind: str
    detail: str
    fn: Function
    #: for encoding-layer corruptions: the corrupted EncodedFunction the
    #: bits were packed from, so static verifiers can judge it too
    enc: "EncodedFunction | None" = None


@dataclass
class GateResult:
    """Outcome of one mutation-testing run."""

    total: int = 0
    armed: Dict[str, int] = field(default_factory=dict)
    caught: int = 0
    missed: List[str] = field(default_factory=list)
    #: encoding-layer mutants the dynamic checker caught, judged again by
    #: the static verifier (repro.encoding.static_verifier)
    static_armed: int = 0
    static_caught: int = 0
    static_missed: List[str] = field(default_factory=list)

    @property
    def n_armed(self) -> int:
        return sum(self.armed.values())

    @property
    def detection_rate(self) -> float:
        return self.caught / self.n_armed if self.n_armed else 1.0

    @property
    def static_detection_rate(self) -> float:
        """Fraction of dynamically-caught encoding mutants the static
        verifier also flags (the gate demands 1.0)."""
        return (self.static_caught / self.static_armed
                if self.static_armed else 1.0)


def strip_setlr(fn: Function) -> Function:
    """A copy of ``fn`` without ``setlr`` instructions — what the decoder
    hands the pipeline ("such instructions are removed after decoding")."""
    out = fn.copy()
    for b in out.blocks:
        b.instrs = [i for i in b.instrs if i.op != "setlr"]
    return out


def reattach_uids(decoded: Function, reference: Function) -> Function:
    """Give ``decoded`` (fresh uids from ``unpack_function``) the uids of
    the positionally corresponding instructions of ``reference``.

    Sound because pack/unpack preserve the opcode sequence per block —
    only register fields can decode differently — which is exactly the
    corruption the checker is then asked to find.
    """
    out = decoded.copy()
    for db, rb in zip(out.blocks, reference.blocks):
        if len(db.instrs) != len(rb.instrs):
            raise ValueError(
                f"block {db.name}: {len(db.instrs)} decoded instructions "
                f"vs {len(rb.instrs)} reference")
        for di, ri in zip(db.instrs, rb.instrs):
            di.uid = ri.uid
    return out


def is_miscompile(original: Function, mutant: Function,
                  args_list: Sequence[Tuple[int, ...]] = _ARGS,
                  max_steps: int = 200_000) -> bool:
    """Checker-independent evidence that ``mutant`` misbehaves: a wrong
    return value, a fault, or a runaway loop on any probe input."""
    for args in args_list:
        ref = Interpreter(max_steps=max_steps).run(original, args)
        try:
            got = Interpreter(max_steps=max_steps).run(mutant, args)
        except InterpError:
            return True
        if got.return_value != ref.return_value:
            return True
    return False


# ----------------------------------------------------------------------
# per-kind candidate enumeration
# ----------------------------------------------------------------------

def _reg_universe(fn: Function) -> List[Reg]:
    return sorted(fn.registers())


def _sites(fn: Function):
    for bi, block in enumerate(fn.blocks):
        for ii in range(len(block.instrs)):
            yield bi, ii


def _mutate_use_swap(fn: Function, rng: random.Random,
                     limit: int) -> List[Mutation]:
    regs = _reg_universe(fn)
    sites = [(bi, ii, si) for bi, ii in _sites(fn)
             for si in range(len(fn.blocks[bi].instrs[ii].srcs))
             if fn.blocks[bi].instrs[ii].op not in ("setlr", "nop")]
    out = []
    for bi, ii, si in _pick(rng, sites, limit):
        m = fn.copy()
        ins = m.blocks[bi].instrs[ii]
        old = ins.srcs[si]
        new = rng.choice([r for r in regs if r != old] or [old])
        if new == old:
            continue
        ins.srcs = ins.srcs[:si] + (new,) + ins.srcs[si + 1:]
        out.append(Mutation(
            "use-swap",
            f"{m.blocks[bi].name}#{ii}: src{si} {old} -> {new}", m))
    return out


def _mutate_def_swap(fn: Function, rng: random.Random,
                     limit: int) -> List[Mutation]:
    regs = _reg_universe(fn)
    sites = [(bi, ii) for bi, ii in _sites(fn)
             if fn.blocks[bi].instrs[ii].dst is not None]
    out = []
    for bi, ii in _pick(rng, sites, limit):
        m = fn.copy()
        ins = m.blocks[bi].instrs[ii]
        old = ins.dst
        new = rng.choice([r for r in regs if r != old] or [old])
        if new == old:
            continue
        ins.dst = new
        out.append(Mutation(
            "def-swap", f"{m.blocks[bi].name}#{ii}: dst {old} -> {new}", m))
    return out


def _mutate_drop(fn: Function, rng: random.Random, limit: int, op: str,
                 kind: str) -> List[Mutation]:
    sites = [(bi, ii) for bi, ii in _sites(fn)
             if fn.blocks[bi].instrs[ii].op == op]
    out = []
    for bi, ii in _pick(rng, sites, limit):
        m = fn.copy()
        dropped = m.blocks[bi].instrs.pop(ii)
        out.append(Mutation(
            kind, f"{m.blocks[bi].name}#{ii}: deleted {dropped.op} "
                  f"slot {dropped.imm}", m))
    return out


def _mutate_slot_shuffle(fn: Function, rng: random.Random,
                         limit: int) -> List[Mutation]:
    slots = sorted({int(i.imm) for i in fn.instructions()
                    if i.op in ("ldslot", "stslot")})
    sites = [(bi, ii) for bi, ii in _sites(fn)
             if fn.blocks[bi].instrs[ii].op == "ldslot"]
    out = []
    for bi, ii in _pick(rng, sites, limit):
        m = fn.copy()
        ins = m.blocks[bi].instrs[ii]
        old = int(ins.imm)
        others = [s for s in slots if s != old] or [old + 1]
        ins.imm = rng.choice(others)
        out.append(Mutation(
            "slot-shuffle",
            f"{m.blocks[bi].name}#{ii}: ldslot slot {old} -> {ins.imm}", m))
    return out


def _mutate_move_corrupt(fn: Function, rng: random.Random,
                         limit: int) -> List[Mutation]:
    """Corrupt one physical register copy the way a buggy parallel-move
    resolver would: drop it, duplicate it at a later offset, or reorder
    it with its successor (breaking the safe emission order)."""
    from repro.ir.instr import Instr

    sites = [(bi, ii) for bi, ii in _sites(fn)
             if fn.blocks[bi].instrs[ii].op == "mov"
             and fn.blocks[bi].instrs[ii].dst is not None
             and not fn.blocks[bi].instrs[ii].dst.virtual
             and fn.blocks[bi].instrs[ii].srcs
             and not fn.blocks[bi].instrs[ii].srcs[0].virtual]
    out: List[Mutation] = []
    for bi, ii in _pick(rng, sites, limit):
        for variant in ("drop", "duplicate", "reorder"):
            m = fn.copy()
            block = m.blocks[bi]
            ins = block.instrs[ii]
            if variant == "drop":
                block.instrs.pop(ii)
            elif variant == "duplicate":
                # fresh uid: the copy is *new* wrong code, not a replay
                dup = Instr("mov", dst=ins.dst, srcs=ins.srcs)
                pos = min(ii + 2, max(ii + 1, len(block.instrs) - 1))
                block.instrs.insert(pos, dup)
            else:  # reorder with the next instruction
                if ii + 1 >= len(block.instrs):
                    continue
                nxt = block.instrs[ii + 1]
                if nxt.info.is_branch:
                    continue
                block.instrs[ii], block.instrs[ii + 1] = nxt, ins
            out.append(Mutation(
                "move-corrupt",
                f"{block.name}#{ii}: mov {ins.dst} <- {ins.srcs[0]} "
                f"{variant}", m))
    return out


def _mutate_setlr(enc: EncodedFunction, rng: random.Random,
                  limit: int) -> List[Mutation]:
    """Corrupt ``setlr`` payloads / placement, then re-decode the binary."""
    reference = strip_setlr(enc.fn)
    sites = [(bi, ii) for bi, b in enumerate(enc.fn.blocks)
             for ii, ins in enumerate(b.instrs) if ins.op == "setlr"]
    out: List[Mutation] = []
    for bi, ii in _pick(rng, sites, limit):
        for variant in ("value", "delay", "move"):
            m = enc.fn.copy()
            block = m.blocks[bi]
            ins = block.instrs[ii]
            value, delay, cls = setlr_payload(ins)
            if variant == "value":
                ins.imm = ((value + 1) % enc.config.reg_n, delay, cls)
            elif variant == "delay":
                ins.imm = (value, delay + 1 if delay < 15 else delay - 1,
                           cls)
            else:  # move: push the setlr one instruction later
                if ii + 1 >= len(block.instrs):
                    continue
                nxt = block.instrs[ii + 1]
                if nxt.info.is_branch or nxt.op == "setlr":
                    continue
                block.instrs[ii], block.instrs[ii + 1] = nxt, ins
            corrupted = replace(enc, fn=m)
            try:
                packed = pack_function(corrupted)
                decoded = unpack_function(packed)
                decoded_uids = reattach_uids(decoded, reference)
            except (PackError, ValueError):
                continue
            out.append(Mutation(
                "setlr-corrupt",
                f"{block.name}#{ii}: setlr {variant} corrupted",
                decoded_uids, enc=corrupted))
    return out


def _pick(rng: random.Random, sites: List, limit: int) -> List:
    if len(sites) <= limit:
        return list(sites)
    return rng.sample(sites, limit)


def enumerate_mutations(prog: AllocatedProgram, base_seed: int = 0,
                        per_kind: int = 4) -> List[Mutation]:
    """Deterministically draw up to ``per_kind`` candidate corruptions of
    every catalogue class that applies to ``prog``.

    Spill classes need spill code, ``setlr-corrupt`` needs an encoded
    (differential) setup; classes without a site simply contribute no
    candidates — the gate's corpus is chosen so every class fires
    somewhere.
    """
    fn = prog.final_fn
    muts: List[Mutation] = []
    for kind in MUTATION_KINDS:
        rng = random.Random(derive_seed(base_seed, "mutate", prog.name,
                                        prog.setup, kind))
        if kind == "use-swap":
            muts.extend(_mutate_use_swap(fn, rng, per_kind))
        elif kind == "def-swap":
            muts.extend(_mutate_def_swap(fn, rng, per_kind))
        elif kind == "drop-reload":
            muts.extend(_mutate_drop(fn, rng, per_kind, "ldslot",
                                     "drop-reload"))
        elif kind == "drop-store":
            muts.extend(_mutate_drop(fn, rng, per_kind, "stslot",
                                     "drop-store"))
        elif kind == "slot-shuffle":
            muts.extend(_mutate_slot_shuffle(fn, rng, per_kind))
        elif kind == "move-corrupt":
            muts.extend(_mutate_move_corrupt(fn, rng, per_kind))
        elif kind == "setlr-corrupt" and prog.encoded is not None:
            muts.extend(_mutate_setlr(prog.encoded, rng, per_kind))
    return muts


def run_mutation_gate(original: Function, prog: AllocatedProgram,
                      base_seed: int = 0, per_kind: int = 4,
                      args_list: Sequence[Tuple[int, ...]] = _ARGS
                      ) -> GateResult:
    """Inject the catalogue into ``prog``, arm each mutation against the
    interpreter, and demand the checker catch every armed one.

    Encoding-layer mutants (``setlr-corrupt``) the dynamic checker catches
    are additionally judged by the static verifier
    (:func:`repro.encoding.static_verifier.verify_encoding_static` on the
    corrupted pre-decode encoding); ``static_detection_rate`` must stay
    1.0 for the static proof layer to be trusted.

    ``move-corrupt`` mutants are judged by the union of the symbolic
    checker and the L010 allocation-interference lint — the two layers
    that guard the parallel-move resolver's output — and the gate demands
    100% detection on the armed set just like every other class."""
    from repro.encoding.static_verifier import verify_encoding_static

    result = GateResult()
    for mut in enumerate_mutations(prog, base_seed, per_kind):
        result.total += 1
        if not is_miscompile(original, mut.fn, args_list):
            continue
        result.armed[mut.kind] = result.armed.get(mut.kind, 0) + 1
        report = check_allocation_semantics(original, mut.fn)
        caught = not report.ok
        if not caught and mut.kind == "move-corrupt":
            from repro.lint import LintOptions, run_lint

            lint = run_lint(
                mut.fn,
                LintOptions(allocated=True,
                            coloring=prog.allocation.coloring,
                            original=prog.allocation.colored_fn),
                only=("L010",))
            caught = bool(lint.errors)
        if not caught:
            result.missed.append(f"{mut.kind}: {mut.detail}")
        else:
            result.caught += 1
            if mut.enc is not None:
                result.static_armed += 1
                if verify_encoding_static(mut.enc).ok:
                    result.static_missed.append(
                        f"{mut.kind}: {mut.detail}")
                else:
                    result.static_caught += 1
    return result
