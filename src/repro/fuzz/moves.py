"""Targeted fuzzing of the parallel-move resolver (regalloc2's ``moves``).

regalloc2 fuzzes its parallel-move lowering with a dedicated target that
feeds random partial permutations through the resolver and checks the
emitted sequence against a simulation oracle; this module is the same idea
for :mod:`repro.regalloc.moves`.  One *case* is a seed-derived
:class:`MovesCase` — a random partial register permutation (optionally a
fan-out), a liveness environment that may or may not provide a scratch
register, and the ``permi`` machine-feature coin — judged by five oracles:

* **abstract-apply** — replaying the emitted ops over a symbolic register
  file yields exactly the target mapping, everything else untouched;
* **closed-form** — for injective mappings the emitted length equals
  :func:`repro.regalloc.moves.minimal_instruction_count`'s cycle-structure
  closed form;
* **exhaustive-minimality** — for small files (``RegN <= 5``) the length
  equals the true optimum found by Dijkstra over register-file states;
* **lowered-interp** — the lowering (xor-swap triples, one ``permi``
  instruction) runs through both interpreter engines and produces the
  mapped register file, and the strict lint accepts the lowered function;
* **binary-roundtrip** — when a ``permi`` was emitted, the lowered
  function survives differential encode → pack → unpack bit-exactly.

Failing cases shrink greedily — drop mapping pairs, then the scratch, then
the ``permi`` flag — while the failure persists, and the report ends with
a ``repro fuzz moves --replay SEED`` line that replays the original case.
Seeds derive via :func:`repro.parallel.derive_seed`, so campaigns are
bit-identical for any ``--jobs`` value.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.parallel import derive_seed, parallel_map
from repro.regalloc.moves import (apply_ops, lower_ops,
                                  minimal_instruction_count,
                                  resolve_parallel_move, search_minimal_cost)

__all__ = [
    "MovesCase",
    "MovesFuzzReport",
    "generate_moves_case",
    "run_moves_case",
    "run_moves_fuzz",
    "shrink_moves_case",
    "moves_repro_command",
    "format_moves_failure",
]

#: exhaustive minimality is checked up to this register-file size; the
#: Dijkstra state space is RegN! * RegN and 5 is instant, 8 is minutes
_SEARCH_REG_N = 5


@dataclass(frozen=True)
class MovesCase:
    """One resolver input: mapping, liveness environment, machine flag."""

    reg_n: int
    mapping: Tuple[Tuple[int, int], ...]   # sorted (dst, src) pairs
    scratch: Optional[int] = None
    has_permi: bool = False

    def mapping_dict(self) -> Dict[int, int]:
        """The mapping as the ``{dst: src}`` dict the resolver takes."""
        return dict(self.mapping)

    def describe(self) -> str:
        """Compact one-line rendering for reports."""
        pairs = ", ".join(f"r{d}<-r{s}" for d, s in self.mapping)
        return (f"reg_n={self.reg_n} {{{pairs}}} scratch="
                f"{self.scratch} permi={self.has_permi}")


def generate_moves_case(seed: int) -> MovesCase:
    """Derive one case from a seed: a random partial permutation over
    ``RegN in [2, 16]`` (sometimes widened to a fan-out), plus a liveness
    environment that offers a scratch register about half the time."""
    rng = random.Random(seed)
    reg_n = rng.randrange(2, 17)
    size = rng.randrange(1, reg_n + 1)
    dsts = sorted(rng.sample(range(reg_n), size))
    if rng.random() < 0.75:
        srcs = rng.sample(range(reg_n), size)        # partial permutation
    else:
        srcs = [rng.randrange(reg_n) for _ in dsts]  # fan-out allowed
    mapping = tuple(sorted((d, s) for d, s in zip(dsts, srcs) if d != s))
    involved = {r for pair in mapping for r in pair}
    free = [r for r in range(reg_n) if r not in involved]
    scratch = rng.choice(free) if free and rng.random() < 0.5 else None
    return MovesCase(reg_n=reg_n, mapping=mapping, scratch=scratch,
                     has_permi=rng.random() < 0.5)


def _fail(failures: List[Dict[str, str]], oracle: str, message: str) -> None:
    failures.append({"oracle": oracle, "setup": "moves", "message": message})


def _lowered_function(case: MovesCase, ops) -> "object":
    """Build a runnable function: seed every register with a distinct
    constant, run the lowered sequence, return r0."""
    from repro.ir.parser import parse_function
    from repro.ir.printer import format_instr

    lines = [f"    li r{i}, {101 + i}" for i in range(case.reg_n)]
    lines += [f"    {format_instr(ins)}" for ins in lower_ops(ops)]
    lines.append("    ret r0")
    return parse_function("func moves_case():\nentry:\n" + "\n".join(lines))


def run_moves_case(seed: int) -> Dict[str, object]:
    """One case through every oracle; pure in ``seed`` and picklable."""
    case = generate_moves_case(seed)
    return run_explicit_case(seed, case)


def run_explicit_case(seed: int, case: MovesCase) -> Dict[str, object]:
    """Judge an explicit :class:`MovesCase` (shrinking re-enters here)."""
    from repro.diagnostics import Severity
    from repro.encoding.binary import pack_function, unpack_function
    from repro.encoding.config import EncodingConfig
    from repro.encoding.encoder import encode_function
    from repro.fuzz.mutate import strip_setlr
    from repro.ir.interp import InterpError, Interpreter
    from repro.ir.printer import format_function
    from repro.lint import LintOptions, run_lint

    failures: List[Dict[str, str]] = []
    outcome: Dict[str, object] = {
        "seed": seed, "case": case, "failures": failures,
    }
    mapping = case.mapping_dict()
    try:
        resolved = resolve_parallel_move(mapping, scratch=case.scratch,
                                         has_permi=case.has_permi,
                                         reg_n=case.reg_n)
    except Exception as exc:
        _fail(failures, "resolver-crash", f"{type(exc).__name__}: {exc}")
        return outcome

    # oracle: abstract semantic equality over a symbolic register file
    state = apply_ops(resolved.ops, {i: ("v", i) for i in range(case.reg_n)})
    for i in range(case.reg_n):
        if i == case.scratch:
            continue
        want = ("v", mapping.get(i, i))
        if state[i] != want:
            _fail(failures, "abstract-apply",
                  f"r{i} ends as {state[i]}, want {want} "
                  f"(ops {resolved.ops})")

    srcs = list(mapping.values())
    injective = len(set(srcs)) == len(srcs)
    if injective:
        want_len = minimal_instruction_count(
            mapping, scratch_available=case.scratch is not None,
            has_permi=case.has_permi)
        if resolved.n_instructions != want_len:
            _fail(failures, "closed-form",
                  f"emitted {resolved.n_instructions} instructions, "
                  f"closed form says {want_len} (ops {resolved.ops})")

    if case.reg_n <= _SEARCH_REG_N:
        opt = search_minimal_cost(mapping, case.reg_n, scratch=case.scratch,
                                  has_permi=case.has_permi)
        bad = (resolved.n_instructions != opt if injective
               else resolved.n_instructions < opt)
        if bad:
            _fail(failures, "exhaustive-minimality",
                  f"emitted {resolved.n_instructions} instructions, "
                  f"optimum is {opt} (ops {resolved.ops})")

    # oracle: the lowering runs, both engines agree, and the final
    # register file is the mapped one
    fn = _lowered_function(case, resolved.ops)
    try:
        fast = Interpreter().run(fn, ())
        ref = Interpreter(engine="reference").run(fn, ())
    except InterpError as exc:
        _fail(failures, "lowered-interp", f"fault: {exc}")
        return outcome
    if (fast.return_value, fast.steps) != (ref.return_value, ref.steps):
        _fail(failures, "lowered-interp",
              f"engines disagree: fast ({fast.return_value}, {fast.steps}) "
              f"vs reference ({ref.return_value}, {ref.steps})")
    from repro.ir.instr import Reg
    for i in range(case.reg_n):
        if i == case.scratch:
            continue
        want = 101 + mapping.get(i, i)
        got = fast.regs.get(Reg(i, virtual=False))
        if got != want:
            _fail(failures, "lowered-interp",
                  f"r{i} ends as {got}, want {want} (ops {resolved.ops})")

    lint = run_lint(fn, LintOptions(allocated=True))
    if lint.at_least(Severity.WARNING):
        _fail(failures, "strict-lint", lint.render_text())

    if resolved.used_permi:
        config = EncodingConfig(reg_n=case.reg_n,
                                diff_n=max(2, case.reg_n // 2))
        try:
            encoded = encode_function(fn, config)
            packed = pack_function(encoded)
            decoded = unpack_function(packed)
        except Exception as exc:
            _fail(failures, "binary-roundtrip",
                  f"{type(exc).__name__}: {exc}")
            return outcome
        if format_function(decoded) != format_function(strip_setlr(fn)):
            _fail(failures, "binary-roundtrip",
                  "decode does not reproduce the lowered function")
    return outcome


@dataclass
class MovesFuzzReport:
    """Outcome of a whole ``moves`` campaign."""

    base_seed: int
    cases: List[Dict[str, object]] = field(default_factory=list)

    @property
    def failures(self) -> List[Dict[str, object]]:
        """The outcomes whose oracle list is non-empty."""
        return [c for c in self.cases if c["failures"]]

    @property
    def ok(self) -> bool:
        """True when every case passed every oracle."""
        return not self.failures

    def summary(self) -> str:
        """One-line human summary, also the CLI's success output."""
        return (f"{len(self.cases)} moves case(s), "
                f"{len(self.failures)} with discrepancies")


def moves_case_seed(base_seed: int, index: int) -> int:
    """The derived seed of campaign case ``index``."""
    return derive_seed(base_seed, "fuzz-moves", index)


def run_moves_fuzz(base_seed: int, n_cases: int,
                   jobs: int = 1) -> MovesFuzzReport:
    """Run ``n_cases`` derived cases; bit-identical for any ``jobs``."""
    seeds = [moves_case_seed(base_seed, i) for i in range(n_cases)]
    return MovesFuzzReport(base_seed=base_seed,
                           cases=parallel_map(run_moves_case, seeds, jobs))


def shrink_moves_case(seed: int, case: MovesCase) -> MovesCase:
    """Greedily minimise a failing case while it keeps failing.

    Drops mapping pairs one at a time, then the scratch register, then
    the ``permi`` flag; repeats until a full pass makes no progress.  The
    result is re-judged at every step, so it is a genuine reproducer.
    """
    def failing(candidate: MovesCase) -> bool:
        return bool(run_explicit_case(seed, candidate)["failures"])

    current = case
    progressed = True
    while progressed:
        progressed = False
        for pair in list(current.mapping):
            smaller = replace(current, mapping=tuple(
                p for p in current.mapping if p != pair))
            if smaller.mapping and failing(smaller):
                current = smaller
                progressed = True
        if current.scratch is not None:
            dropped = replace(current, scratch=None)
            if failing(dropped):
                current = dropped
                progressed = True
        if current.has_permi:
            dropped = replace(current, has_permi=False)
            if failing(dropped):
                current = dropped
                progressed = True
    return current


def moves_repro_command(seed: int) -> str:
    """The exact CLI invocation that replays one case."""
    return f"python -m repro fuzz moves --replay {seed}"


def format_moves_failure(outcome: Dict[str, object],
                         shrunk: Optional[MovesCase] = None) -> str:
    """A self-contained failure report ending in a replay command."""
    seed = int(outcome["seed"])  # type: ignore[arg-type]
    case: MovesCase = outcome["case"]  # type: ignore[assignment]
    lines = [f"moves case seed={seed}", f"case: {case.describe()}"]
    if shrunk is not None and shrunk != case:
        lines.append(f"shrunk to: {shrunk.describe()}")
    lines.append("")
    for f in outcome["failures"]:  # type: ignore[union-attr]
        lines.append(f"[{f['oracle']}] {f['message']}")
    lines.append("")
    lines.append("reproduce with:")
    lines.append(f"    {moves_repro_command(seed)}")
    return "\n".join(lines)
