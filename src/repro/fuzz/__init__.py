"""Differential fuzzing: adversarial inputs for the allocation pipeline.

Three layers, mirroring the fuzzing stack regalloc2 built around its
``ion_checker``:

* :mod:`repro.fuzz.gen` — a seeded random IR generator whose output is
  lint-clean (L001-L009) *by construction*, with knobs for control-flow
  shape, register pressure, call density and memory traffic;
* :mod:`repro.fuzz.checker` — a symbolic allocation checker that proves,
  without executing anything, that every use in an allocated function
  reads the value of the correct original def;
* :mod:`repro.fuzz.harness` — the differential oracle harness: every
  generated program through every setup, cross-checked against the
  interpreters, the encoder round trip and the symbolic checker, with
  failing cases shrunk to minimal reproducers;
* :mod:`repro.fuzz.mutate` — a bug injector that corrupts allocations in
  known-miscompiling ways, used to prove the checker actually catches
  real bugs (mutation testing).
"""

from repro.fuzz.checker import check_allocation_semantics
from repro.fuzz.gen import (
    FuzzConfig,
    generate_fuzz_function,
    generate_loop_ddg,
    generate_pressure_function,
    knob_matrix,
)
from repro.fuzz.harness import (
    FuzzReport,
    repro_command,
    run_case,
    run_fuzz,
    shrink_config,
)
from repro.fuzz.mutate import (
    MUTATION_KINDS,
    GateResult,
    Mutation,
    enumerate_mutations,
    is_miscompile,
    run_mutation_gate,
)

__all__ = [
    "FuzzConfig",
    "generate_fuzz_function",
    "generate_pressure_function",
    "generate_loop_ddg",
    "knob_matrix",
    "check_allocation_semantics",
    "run_case",
    "run_fuzz",
    "FuzzReport",
    "shrink_config",
    "repro_command",
    "Mutation",
    "MUTATION_KINDS",
    "GateResult",
    "enumerate_mutations",
    "is_miscompile",
    "run_mutation_gate",
]
