"""Symbolic allocation checker (after regalloc2's ``ion_checker``).

Given the *pre-allocation* function and *any* allocator's output, prove —
without executing anything — that every use reads the value of the correct
def.  The abstract state maps each storage location (an allocated register,
or a spill slot ``("slot", n)``) to the set of original registers whose
*current value* it holds.  Symbols are the original (virtual) registers
themselves: "location L holds symbol v" means "L holds whatever value v
has at this program point in the original program".

The walk is anchored on instruction identity: every rewrite in the
allocation pipeline goes through ``dataclasses.replace`` and therefore
preserves ``Instr.uid``, so an allocated instruction is matched back to
its original by uid and checked field-by-field.  Instructions the
allocators *insert* (spill ``ldslot``/``stslot``, compensation ``mov``/
``xor``-swap triples, coalescing copies, ``setlr``) have fresh uids and
well-known value-transport semantics; instructions the allocators *delete*
(coalesced self-moves) are replayed as phantom copies on the symbol level.

Dataflow runs to a fixpoint over the CFG with set-intersection meet — at a
join a location only keeps a symbol it holds on *every* incoming path,
exactly the condition under which allocated code may read it there.

Next to symbols, every location tracks one more fact — *initializedness*
(a ``_DEFINED`` marker in its set, written by any def, intersected at
joins like everything else).  An allocator-inserted instruction that reads
a location no path has written is flagged even when the garbage it moves
never reaches a matched use: the interpreter faults on exactly that read,
so a value-flow-only checker would pass mutants the machine rejects.

Diagnostics reuse the shared :mod:`repro.diagnostics` objects:

========= ================ ==============================================
rule      name             meaning
========= ================ ==============================================
C001      shape-mismatch   block structure / params differ; cannot check
C002      wrong-value      a use reads a location not holding its def
C003      instr-mismatch   a uid-matched instruction changed shape
C004      undefined-read   an inserted instruction reads a location that
                           is uninitialized on some path
========= ================ ==============================================
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Hashable, List, Optional, Tuple

from repro.diagnostics import Diagnostic, DiagnosticReport, Location, Severity
from repro.ir.function import Function
from repro.ir.instr import Instr, Reg

__all__ = ["check_allocation_semantics"]

# a storage location: an allocated register, or ("slot", n)
LocKey = Hashable
# a location's facts: original registers whose value it holds, plus the
# _DEFINED marker once any def has written it on every incoming path
State = Dict[LocKey, FrozenSet[object]]

_EMPTY: FrozenSet[object] = frozenset()
_DEFINED = "<defined>"  # marker; original symbols are Reg objects


def _slot(instr: Instr) -> LocKey:
    return ("slot", int(instr.imm))


def _kill(state: State, sym: Reg) -> None:
    """The original program redefined ``sym``: its old value exists
    nowhere any more."""
    for loc in list(state):
        if sym in state[loc]:
            state[loc] = state[loc] - {sym}
            if not state[loc]:
                del state[loc]


def _bind(state: State, loc: LocKey, sym: Reg) -> None:
    _kill(state, sym)
    state[loc] = frozenset((sym, _DEFINED))


def _phantom(orig: Instr, state: State) -> None:
    """Replay an original instruction the allocator deleted.

    The only deletion in the pipeline is the coalescer dropping a ``mov``
    whose operands got the same color; on the symbol level the copied
    register becomes an alias for the source's current value.  Any other
    deleted def is conservatively treated as "value exists nowhere".
    """
    if orig.op == "mov":
        src, dst = orig.srcs[0], orig.dst
        _kill(state, dst)
        for loc in list(state):
            if src in state[loc]:
                state[loc] = state[loc] | {dst}
        return
    for d in orig.defs():
        _kill(state, d)


def _is_xor_swap(instrs: List[Instr], i: int) -> bool:
    """Detect the callconv repair's 3-xor register swap at ``instrs[i]``."""
    if i + 2 >= len(instrs):
        return False
    a_i, b_i, c_i = instrs[i], instrs[i + 1], instrs[i + 2]
    if not (a_i.op == b_i.op == c_i.op == "xor"):
        return False
    a, b = a_i.dst, b_i.dst
    return (a is not None and b is not None and a != b
            and a_i.srcs == (a, b) and b_i.srcs == (b, a)
            and c_i.dst == a and c_i.srcs == (a, b))


def _unknown_transfer(instrs: List[Instr], i: int, state: State,
                      emit: Optional[Callable[[Instr, str, str], None]]
                      ) -> int:
    """Transfer for an allocator-inserted instruction; returns the next
    index (xor-swap triples consume three instructions).

    Inserted instructions move values, they never compute them, so the
    only check they need is that what they read was written at all —
    reading an uninitialized location is the fault the interpreter raises.
    """
    ins = instrs[i]

    def read(loc: LocKey, what: str) -> FrozenSet[object]:
        held = state.get(loc, _EMPTY)
        if _DEFINED not in held and emit is not None:
            emit(ins, "C004",
                 f"inserted {ins.op} reads {what}, which is uninitialized "
                 f"on some path")
        return held

    if ins.op == "xor" and _is_xor_swap(instrs, i):
        a, b = ins.dst, instrs[i + 1].dst
        held_a = read(a, str(a))
        held_b = read(b, str(b))
        state[a], state[b] = held_b | {_DEFINED}, held_a | {_DEFINED}
        return i + 3
    if ins.op == "mov":
        state[ins.dst] = read(ins.srcs[0], str(ins.srcs[0])) | {_DEFINED}
    elif ins.op == "ldslot":
        state[ins.dst] = read(_slot(ins), f"slot {ins.imm}") | {_DEFINED}
    elif ins.op == "stslot":
        state[_slot(ins)] = (read(ins.srcs[0], str(ins.srcs[0]))
                             | {_DEFINED})
    elif ins.op == "permi":
        # one permutation instruction: gather every non-fixed position's
        # held set from its source position, simultaneously
        perm = ins.imm
        old = {i: read(Reg(p, virtual=False), f"r{p}")
               for i, p in enumerate(perm) if p != i}
        for i, p in enumerate(perm):
            if p != i:
                state[Reg(i, virtual=False)] = old[i] | {_DEFINED}
    elif ins.op in ("setlr", "nop"):
        pass  # decode bookkeeping / padding: no value movement
    else:
        # an inserted instruction with unknown semantics: whatever it
        # writes is initialized but holds no tracked value
        for s in ins.uses():
            read(s, str(s))
        for d in ins.defs():
            state[d] = frozenset((_DEFINED,))
    return i + 1


def _matched_transfer(orig: Instr, alloc: Instr, state: State,
                      emit: Optional[Callable[[Instr, str, str], None]],
                      clobbers: Tuple[Reg, ...]) -> None:
    """Check + transfer for an allocated instruction matched to its
    original by uid."""
    shape_ok = (orig.op == alloc.op
                and orig.imm == alloc.imm
                and orig.label == alloc.label
                and len(orig.srcs) == len(alloc.srcs)
                and (orig.dst is None) == (alloc.dst is None)
                and len(orig.call_uses) == len(alloc.call_uses)
                and len(orig.call_defs) == len(alloc.call_defs))
    if not shape_ok:
        if emit is not None:
            emit(alloc, "C003",
                 f"instruction changed shape under allocation: "
                 f"{orig.op} (imm={orig.imm!r}) became "
                 f"{alloc.op} (imm={alloc.imm!r})")
        for d in alloc.defs():
            state[d] = frozenset((_DEFINED,))
        return
    for pos, (sym, loc) in enumerate(zip(orig.uses(), alloc.uses())):
        if sym not in state.get(loc, _EMPTY):
            if emit is not None:
                emit(alloc, "C002",
                     f"use #{pos} of {alloc.op} reads {loc}, which does "
                     f"not hold the value of {sym}")
    if orig.op == "call":
        for c in clobbers:
            if c not in alloc.call_defs:
                state[c] = frozenset((_DEFINED,))
    for sym, loc in zip(orig.defs(), alloc.defs()):
        _bind(state, loc, sym)


def _meet(a: State, b: State) -> State:
    """Per-location set intersection; a symbol survives a join only if
    every incoming path agrees the location holds it."""
    out: State = {}
    for loc in a.keys() & b.keys():
        held = a[loc] & b[loc]
        if held:
            out[loc] = held
    return out


def check_allocation_semantics(original: Function, allocated: Function,
                               clobbers: Tuple[Reg, ...] = ()
                               ) -> DiagnosticReport:
    """Statically verify that ``allocated`` computes what ``original`` does.

    ``original`` is the pre-allocation function; ``allocated`` is any
    pipeline output derived from it — colored, spilled, remapped, encoded
    (with ``setlr``), coalesced, or any combination.  ``clobbers`` lists
    caller-saved physical registers a ``call`` destroys (empty for the
    default pipeline, where call effects are explicit ``call_defs``).

    Returns a :class:`DiagnosticReport`; ``report.ok`` means every use in
    ``allocated`` provably reads the value of the right original def on
    every path.
    """
    report = DiagnosticReport()

    def structural(msg: str) -> DiagnosticReport:
        report.add(Diagnostic(
            rule="C001", name="shape-mismatch", severity=Severity.ERROR,
            message=msg, location=Location(function=allocated.name),
            hint="the checker needs the allocated function to keep the "
                 "original block structure",
        ))
        return report

    orig_names = [b.name for b in original.blocks]
    alloc_names = [b.name for b in allocated.blocks]
    if orig_names != alloc_names:
        return structural(
            f"block layout changed: {orig_names} became {alloc_names}")
    if len(original.params) != len(allocated.params):
        return structural(
            f"parameter count changed: {len(original.params)} became "
            f"{len(allocated.params)}")

    # per-block uid -> position map over the original function
    uid_pos: Dict[str, Dict[int, int]] = {
        b.name: {ins.uid: j for j, ins in enumerate(b.instrs)}
        for b in original.blocks
    }
    orig_instrs = {b.name: b.instrs for b in original.blocks}

    def walk(block_name: str, instrs: List[Instr], state: State,
             emit: Optional[Callable[[Instr, str, str], None]]) -> State:
        positions = uid_pos[block_name]
        originals = orig_instrs[block_name]
        cursor = 0
        i = 0
        while i < len(instrs):
            ins = instrs[i]
            pos = positions.get(ins.uid)
            if pos is not None and pos >= cursor:
                for j in range(cursor, pos):
                    _phantom(originals[j], state)
                cursor = pos + 1
                _matched_transfer(originals[pos], ins, state, emit,
                                  clobbers)
                i += 1
            else:
                i = _unknown_transfer(instrs, i, state, emit)
        for j in range(cursor, len(originals)):
            _phantom(originals[j], state)
        return state

    # entry state: parameters arrive by position
    entry: State = {}
    for sym, loc in zip(original.params, allocated.params):
        entry[loc] = entry.get(loc, _EMPTY) | {sym, _DEFINED}

    succs, _ = allocated.cfg()
    in_states: Dict[str, Optional[State]] = {name: None
                                             for name in alloc_names}
    in_states[alloc_names[0]] = entry
    alloc_blocks = {b.name: b.instrs for b in allocated.blocks}

    worklist = [alloc_names[0]]
    while worklist:
        name = worklist.pop()
        state = dict(in_states[name])  # type: ignore[arg-type]
        out = walk(name, alloc_blocks[name], state, emit=None)
        for s in succs[name]:
            prev = in_states[s]
            new = dict(out) if prev is None else _meet(prev, out)
            if prev is None or new != prev:
                in_states[s] = new
                if s not in worklist:
                    worklist.append(s)

    # reporting pass: one deterministic sweep in layout order
    for block in allocated.blocks:
        start = in_states[block.name]
        if start is None:
            continue  # unreachable in the allocated CFG; nothing executes

        def emit(ins: Instr, rule: str, msg: str,
                 _block: str = block.name) -> None:
            idx = next((k for k, x in enumerate(alloc_blocks[_block])
                        if x is ins), None)
            report.add(Diagnostic(
                rule=rule,
                name={"C002": "wrong-value",
                      "C003": "instr-mismatch",
                      "C004": "undefined-read"}[rule],
                severity=Severity.ERROR, message=msg,
                location=Location(function=allocated.name, block=_block,
                                  instr_index=idx, uid=ins.uid),
                hint="the allocated function does not preserve the "
                     "original def-use semantics here",
            ))

        walk(block.name, alloc_blocks[block.name], dict(start), emit)
    return report
