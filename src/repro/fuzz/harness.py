"""Differential oracle harness: generated programs vs every oracle pair.

One *case* is a ``(seed, FuzzConfig)`` pair.  For each case the harness
generates a program and cross-checks, per allocator setup:

* **symbolic checker** — :func:`check_allocation_semantics` proves the
  allocated output reads the right values without running it;
* **allocator semantics** — the allocated function returns what the
  original does, on several probe inputs;
* **engine agreement** — the fast (pre-decoded) interpreter engine, the
  columnar-recording run and the reference dispatch loop agree on return
  value and step count, for both the original and the allocated function;
* **binary round trip** — for differential setups, ``pack_function`` →
  ``unpack_function`` reproduces the allocated function exactly (modulo
  the decode-discarded ``setlr``), and re-encoding the decoded function
  yields the *identical bitstream* (encode is deterministic);
* **serial/parallel parity** — falls out of the seeding discipline: every
  case's entropy comes from :func:`repro.parallel.derive_seed`, so
  ``run_fuzz(jobs=N)`` is bit-identical to ``run_fuzz(jobs=1)`` (asserted
  in the test suite).

Failures shrink greedily in config space — each knob is walked down while
the failure persists — and render as a self-contained report that ends in
a ``repro fuzz repro --seed N ...`` command line.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.fuzz.checker import check_allocation_semantics
from repro.fuzz.gen import FuzzConfig, generate_fuzz_function
from repro.parallel import derive_seed, parallel_map

__all__ = ["FuzzReport", "default_config", "run_case", "run_fuzz",
           "shrink_config", "shrink_case", "repro_command",
           "format_failure"]

PROBE_ARGS: Tuple[Tuple[int, ...], ...] = ((0,), (2,), (5,))
_MAX_STEPS = 500_000


# ----------------------------------------------------------------------
# case derivation
# ----------------------------------------------------------------------

def default_config(base_seed: int, index: int) -> FuzzConfig:
    """Draw one case's knobs from the base seed — never from global or
    worker-local randomness, so any process reproduces any case."""
    rng = random.Random(derive_seed(base_seed, "fuzz-knobs", index))
    return FuzzConfig(
        n_regions=rng.randrange(1, 5),
        loop_depth=rng.randrange(0, 3),
        base_values=rng.randrange(3, 11),
        ops_per_block=rng.randrange(3, 7),
        loop_trip=rng.randrange(1, 4),
        fresh_bias=rng.choice((0.0, 0.25, 0.5)),
        call_density=rng.choice((0.0, 0.0, 0.3)),
        mem_density=rng.choice((0.0, 0.4)),
    )


def case_seed(base_seed: int, index: int) -> int:
    """The generator seed of case ``index``."""
    return derive_seed(base_seed, "fuzz-case", index)


# ----------------------------------------------------------------------
# one case through every oracle
# ----------------------------------------------------------------------

def _fail(failures: List[Dict[str, str]], oracle: str, setup: str,
          message: str) -> None:
    failures.append({"oracle": oracle, "setup": setup, "message": message})


def run_case(seed: int, config: FuzzConfig,
             setups: Optional[Sequence[str]] = None,
             restarts: int = 2) -> Dict[str, object]:
    """Run one generated program through every oracle pair.

    Returns a picklable outcome dict: ``{"seed", "config", "failures"}``
    with an empty failure list meaning all oracles agreed.  Pure function
    of its arguments — the parallel fan-out depends on it.
    """
    from repro.encoding.binary import pack_function, unpack_function
    from repro.encoding.encoder import encode_function
    from repro.encoding.setlr_elim import eliminate_redundant_setlr
    from repro.encoding.static_verifier import verify_encoding_static
    from repro.fuzz.mutate import strip_setlr
    from repro.ir.interp import InterpError, Interpreter
    from repro.ir.printer import format_function
    from repro.lint import LintOptions, run_lint
    from repro.regalloc.pipeline import SETUPS, run_setup
    from repro.regalloc.zoo import get_allocator

    setups = tuple(setups) if setups is not None else SETUPS
    failures: List[Dict[str, str]] = []
    outcome: Dict[str, object] = {
        "seed": seed, "config": config.to_dict(), "failures": failures,
    }

    fn = generate_fuzz_function(seed, config)
    has_calls = any(i.op == "call" for i in fn.instructions())

    # oracle 0: the generator's own contract — lint-clean by construction
    from repro.diagnostics import Severity
    lint = run_lint(fn, LintOptions())
    if lint.at_least(Severity.WARNING):
        _fail(failures, "gen-lint", "-", lint.render_text())
        return outcome

    # oracle 1: engine agreement on the input program
    refs: Dict[Tuple[int, ...], int] = {}
    for args in PROBE_ARGS:
        try:
            ref = Interpreter(max_steps=_MAX_STEPS,
                              engine="reference").run(fn, args)
            fast = Interpreter(max_steps=_MAX_STEPS).run(fn, args)
            col = Interpreter(max_steps=_MAX_STEPS,
                              trace_format="columnar").run(fn, args)
        except InterpError as exc:
            _fail(failures, "gen-interp", "-", f"args {args}: {exc}")
            return outcome
        refs[args] = ref.return_value
        if not (fast.return_value == col.return_value == ref.return_value
                and fast.steps == col.steps == ref.steps):
            _fail(failures, "engine-agreement", "-",
                  f"args {args}: reference ({ref.return_value}, "
                  f"{ref.steps} steps) vs fast ({fast.return_value}, "
                  f"{fast.steps}) vs columnar ({col.return_value}, "
                  f"{col.steps})")

    for setup in setups:
        try:
            prog = run_setup(fn, setup, remap_restarts=restarts,
                             remap_seed=derive_seed(seed, "remap", setup),
                             verify=True)
        except Exception as exc:  # any pipeline crash is a finding
            _fail(failures, "pipeline", setup,
                  f"{type(exc).__name__}: {exc}")
            continue

        # SSA backends legitimately change the block layout (critical-edge
        # splits from phi destruction), which the checker's C001 shape gate
        # rejects; for those, prove the physical program implements its own
        # spill-extended virtual function (identical layout — the same
        # reference L010 colors against below), and leave the original-to-
        # SSA link to the interpreter probes
        checker_original = (prog.allocation.colored_fn
                            if get_allocator(setup).info.needs_ssa else fn)
        report = check_allocation_semantics(checker_original, prog.final_fn)
        if not report.ok:
            _fail(failures, "symbolic-checker", setup, report.render_text())

        # oracle: the allocation-interference lint (L010) must accept the
        # coloring the symbolic checker just proved semantics-preserving
        alloc_lint = run_lint(
            prog.final_fn,
            LintOptions(allocated=True,
                        coloring=prog.allocation.coloring,
                        original=prog.allocation.colored_fn),
            only=("L010",))
        if alloc_lint.errors:
            _fail(failures, "lint-interference", setup,
                  alloc_lint.render_text())

        for args, expect in refs.items():
            try:
                got = Interpreter(max_steps=_MAX_STEPS).run(
                    prog.final_fn, args)
            except InterpError as exc:
                _fail(failures, "alloc-semantics", setup,
                      f"args {args}: fault {exc}")
                continue
            if got.return_value != expect:
                _fail(failures, "alloc-semantics", setup,
                      f"args {args}: {got.return_value} != {expect}")
        try:
            refrun = Interpreter(max_steps=_MAX_STEPS,
                                 engine="reference").run(
                prog.final_fn, PROBE_ARGS[-1])
            if refrun.return_value != refs[PROBE_ARGS[-1]]:
                _fail(failures, "engine-agreement", setup,
                      f"reference engine on allocated fn: "
                      f"{refrun.return_value} != {refs[PROBE_ARGS[-1]]}")
        except InterpError as exc:
            _fail(failures, "engine-agreement", setup,
                  f"reference engine fault on allocated fn: {exc}")

        if prog.encoded is not None:
            # oracle: the static verifier must agree with the decode
            # replay that run_setup already passed
            sv = verify_encoding_static(prog.encoded)
            if not sv.ok:
                _fail(failures, "static-verifier", setup,
                      "static verifier rejects a replay-verified "
                      "encoding:\n" + sv.report.render_text())
            # setlr_elim ran in the pipeline, so nothing may remain
            # provably redundant or dead
            if any(f.removable for f in sv.analysis.setlr_facts):
                _fail(failures, "static-verifier", setup,
                      "setlr_elim left a removable set_last_reg behind")
            # oracle: the redundant-setlr lint (L011) sees the same facts
            # through the rule catalogue — post-elim it must be silent
            setlr_lint = run_lint(
                prog.final_fn,
                LintOptions(allocated=True, encoding=prog.encoded.config,
                            access_order=prog.encoded.config.access_order),
                only=("L011",))
            if setlr_lint.at_least(Severity.WARNING):
                _fail(failures, "lint-setlr", setup,
                      setlr_lint.render_text())

        if prog.encoded is not None and not has_calls:
            stripped = strip_setlr(prog.final_fn)
            try:
                packed = pack_function(prog.encoded)
                decoded = unpack_function(packed)
            except Exception as exc:
                _fail(failures, "binary-roundtrip", setup,
                      f"{type(exc).__name__}: {exc}")
                continue
            if format_function(decoded) != format_function(stripped):
                _fail(failures, "binary-roundtrip", setup,
                      "decode does not reproduce the allocated function")
                continue
            try:
                re_enc = encode_function(decoded, prog.encoded.config)
                # the pipeline ran setlr_elim on the original encoding;
                # determinism of encode + elim makes the bitstreams match
                eliminate_redundant_setlr(re_enc, verify=False)
                re_packed = pack_function(re_enc)
            except Exception as exc:
                _fail(failures, "re-encode", setup,
                      f"{type(exc).__name__}: {exc}")
                continue
            if (re_packed.data, re_packed.n_bits) != (packed.data,
                                                      packed.n_bits):
                _fail(failures, "re-encode", setup,
                      "re-encoded bitstream differs from the original")
    return outcome


def _case_worker(payload: Tuple[int, Dict[str, object],
                                Optional[Tuple[str, ...]], int]
                 ) -> Dict[str, object]:
    """Module-level (picklable) worker for :func:`parallel_map`."""
    seed, config_dict, setups, restarts = payload
    return run_case(seed, FuzzConfig.from_dict(dict(config_dict)),
                    setups, restarts)


# ----------------------------------------------------------------------
# fuzz runs
# ----------------------------------------------------------------------

@dataclass
class FuzzReport:
    """Outcome of a whole fuzz run."""

    base_seed: int
    cases: List[Dict[str, object]] = field(default_factory=list)

    @property
    def failures(self) -> List[Dict[str, object]]:
        return [c for c in self.cases if c["failures"]]

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        """One-line human summary, also the CLI's success output."""
        return (f"{len(self.cases)} case(s), "
                f"{len(self.failures)} with discrepancies")


def run_fuzz(base_seed: int, n_cases: int, jobs: int = 1,
             setups: Optional[Sequence[str]] = None,
             restarts: int = 2) -> FuzzReport:
    """Run ``n_cases`` derived cases; bit-identical for any ``jobs``."""
    tasks = [
        (case_seed(base_seed, i),
         default_config(base_seed, i).to_dict(),
         tuple(setups) if setups is not None else None,
         restarts)
        for i in range(n_cases)
    ]
    return FuzzReport(base_seed=base_seed,
                      cases=parallel_map(_case_worker, tasks, jobs))


# ----------------------------------------------------------------------
# shrinking and reproduction
# ----------------------------------------------------------------------

_SHRINK_ORDER = ("call_density", "mem_density", "fresh_bias", "loop_depth",
                 "n_regions", "ops_per_block", "loop_trip", "base_values")
_FLOORS = {"n_regions": 1, "loop_depth": 0, "base_values": 2,
           "ops_per_block": 2, "loop_trip": 1, "fresh_bias": 0.0,
           "call_density": 0.0, "mem_density": 0.0}


def _lower(knob: str, value) -> Optional[object]:
    """The next smaller candidate for a knob, or None at its floor."""
    floor = _FLOORS[knob]
    if value <= floor:
        return None
    if isinstance(value, float):
        return floor if value - 0.25 <= floor else round(value - 0.25, 3)
    return value - 1


def shrink_config(failing: Callable[[FuzzConfig], bool],
                  config: FuzzConfig, max_attempts: int = 200) -> FuzzConfig:
    """Greedily minimise ``config`` while ``failing`` stays true.

    Walks each knob toward its floor, repeating until a full pass makes no
    progress.  ``failing`` is re-evaluated on every candidate, so the
    result is a genuine reproducer, not an extrapolation.
    """
    from dataclasses import replace

    current = config
    attempts = 0
    progressed = True
    while progressed and attempts < max_attempts:
        progressed = False
        for knob in _SHRINK_ORDER:
            while attempts < max_attempts:
                lower = _lower(knob, getattr(current, knob))
                if lower is None:
                    break
                candidate = replace(current, **{knob: lower})
                attempts += 1
                if failing(candidate):
                    current = candidate
                    progressed = True
                else:
                    break
    return current


def shrink_case(seed: int, config: FuzzConfig,
                setups: Optional[Sequence[str]] = None,
                restarts: int = 2) -> FuzzConfig:
    """Minimise a failing case's config; the seed is part of its identity
    and never changes (the knobs steer the same deterministic stream)."""
    def failing(candidate: FuzzConfig) -> bool:
        return bool(run_case(seed, candidate, setups, restarts)["failures"])

    return shrink_config(failing, config)


def repro_command(seed: int, config: FuzzConfig) -> str:
    """The exact CLI invocation that replays one case."""
    return f"python -m repro fuzz repro --seed {seed} {config.cli_args()}"


def format_failure(outcome: Dict[str, object],
                   shrunk: Optional[FuzzConfig] = None) -> str:
    """A self-contained failure report: program, findings, repro command."""
    from repro.ir.printer import format_function

    seed = outcome["seed"]  # type: ignore[assignment]
    config = FuzzConfig.from_dict(dict(outcome["config"]))  # type: ignore
    shown = shrunk or config
    lines = [f"fuzz case seed={seed}", f"config: {shown.to_dict()}"]
    if shrunk is not None and shrunk != config:
        lines.append(f"(shrunk from: {config.to_dict()})")
    lines.append("")
    lines.append(format_function(generate_fuzz_function(int(seed), shown)))
    lines.append("")
    for f in outcome["failures"]:  # type: ignore[union-attr]
        lines.append(f"[{f['oracle']}/{f['setup']}] {f['message']}")
    lines.append("")
    lines.append("reproduce with:")
    lines.append(f"    {repro_command(int(seed), shown)}")
    return "\n".join(lines)
