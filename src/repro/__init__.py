"""repro — a reproduction of "Differential Register Allocation"
(Zhuang & Pande, PLDI 2005).

The package is organised bottom-up:

* :mod:`repro.ir` — a three-address RISC IR with builder, parser, printer,
  and an executable interpreter.
* :mod:`repro.analysis` — liveness, interference, dominators/loops, static
  and profile-guided block frequencies, and the paper's adjacency graph.
* :mod:`repro.encoding` — differential register encoding: modular
  difference arithmetic, the function encoder with ``set_last_reg``
  repairs, a decode-replay verifier, and the code-size model.
* :mod:`repro.regalloc` — Chaitin-Briggs, iterated register coalescing,
  Appel-George optimal spilling, and the paper's three differential
  schemes (remapping / select / coalesce) plus the five-setup pipeline.
* :mod:`repro.swp` — modulo scheduling, kernel register allocation with
  spilling, and differential encoding of software-pipelined kernels.
* :mod:`repro.machine` — cache and low-end/VLIW machine models.
* :mod:`repro.workloads` — MiBench-like kernels, a random program
  generator, and the synthetic SPEC-loop population.
* :mod:`repro.experiments` — harnesses regenerating every table and figure
  of the paper's Section 10.
* :mod:`repro.lint` — a static IR verifier: dataflow-backed well-formedness
  rules, a shared diagnostic core (:mod:`repro.diagnostics`), and
  pass-pipeline instrumentation (``--verify-each-pass``).

Quick start::

    from repro.ir import parse_function
    from repro.encoding import EncodingConfig, encode_function, verify_encoding

    fn = parse_function('''
    func f():
    entry:
        add r1, r0, r1
        add r2, r1, r2
        ret r2
    ''')
    enc = encode_function(fn, EncodingConfig(reg_n=12, diff_n=8))
    verify_encoding(enc)

See README.md and EXPERIMENTS.md for the experiment walkthrough.
"""

__version__ = "1.0.0"

from repro.diagnostics import Diagnostic, DiagnosticReport, LintError, Severity
from repro.encoding import EncodingConfig, encode_function, verify_encoding
from repro.lint import LintOptions, PassVerifier, run_lint
from repro.regalloc import SETUPS, run_setup

__all__ = [
    "Diagnostic",
    "DiagnosticReport",
    "EncodingConfig",
    "LintError",
    "LintOptions",
    "PassVerifier",
    "Severity",
    "encode_function",
    "run_lint",
    "run_setup",
    "SETUPS",
    "verify_encoding",
    "__version__",
]
