"""Interference-graph construction (Chaitin-style).

A node per register (virtual = live range, physical = precolored).  Edges are
added at each definition point between the defined register and everything
live immediately after it; the source of a ``mov`` is exempted so that moves
stay coalescible.  Move-related pairs are collected with static weights so
the coalescing allocators can prioritise them.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.analysis.liveness import LivenessInfo, compute_liveness
from repro.ir.function import Function
from repro.ir.instr import Instr, Reg

__all__ = ["InterferenceGraph", "build_interference"]


class InterferenceGraph:
    """Undirected interference graph with move annotations."""

    def __init__(self) -> None:
        self._adj: Dict[Reg, Set[Reg]] = {}
        self.moves: Dict[Tuple[Reg, Reg], float] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def add_node(self, r: Reg) -> None:
        """Ensure ``r`` exists as a node (idempotent)."""
        self._adj.setdefault(r, set())

    def add_edge(self, a: Reg, b: Reg) -> None:
        """Record that ``a`` and ``b`` interfere (self edges ignored)."""
        if a == b:
            return
        self.add_node(a)
        self.add_node(b)
        self._adj[a].add(b)
        self._adj[b].add(a)

    def add_move(self, dst: Reg, src: Reg, weight: float = 1.0) -> None:
        """Record a move between two registers (for coalescing)."""
        if dst == src:
            return
        key = (min(dst, src), max(dst, src))
        self.moves[key] = self.moves.get(key, 0.0) + weight
        self.add_node(dst)
        self.add_node(src)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def nodes(self) -> List[Reg]:
        """All nodes, sorted for determinism."""
        return sorted(self._adj)

    def __contains__(self, r: Reg) -> bool:
        return r in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def neighbors(self, r: Reg) -> Set[Reg]:
        """Registers interfering with ``r`` (live view, do not mutate)."""
        return self._adj[r]

    def degree(self, r: Reg) -> int:
        """Number of interference neighbours of ``r``."""
        return len(self._adj[r])

    def interferes(self, a: Reg, b: Reg) -> bool:
        """Whether ``a`` and ``b`` may not share a register."""
        return b in self._adj.get(a, ())

    def move_partners(self, r: Reg) -> Set[Reg]:
        """Registers move-related to ``r`` (coalescing candidates)."""
        partners: Set[Reg] = set()
        for a, b in self.moves:
            if a == r:
                partners.add(b)
            elif b == r:
                partners.add(a)
        return partners

    # ------------------------------------------------------------------
    # transformation
    # ------------------------------------------------------------------

    def copy(self) -> "InterferenceGraph":
        """Deep copy (independent adjacency sets and move table)."""
        g = InterferenceGraph()
        g._adj = {r: set(ns) for r, ns in self._adj.items()}
        g.moves = dict(self.moves)
        return g

    def remove_node(self, r: Reg) -> None:
        """Delete ``r`` and its edges (simplify-stack style)."""
        for n in self._adj.pop(r, ()):  # pragma: no branch
            self._adj[n].discard(r)
        self.moves = {k: w for k, w in self.moves.items() if r not in k}

    def merge(self, keep: Reg, drop: Reg) -> None:
        """Coalesce ``drop`` into ``keep``: union neighbours, drop the node."""
        if keep == drop:
            return
        for n in list(self._adj.get(drop, ())):
            self._adj[n].discard(drop)
            self.add_edge(keep, n)
        self._adj.pop(drop, None)
        new_moves: Dict[Tuple[Reg, Reg], float] = {}
        for (a, b), w in self.moves.items():
            a2 = keep if a == drop else a
            b2 = keep if b == drop else b
            if a2 == b2:
                continue
            key = (min(a2, b2), max(a2, b2))
            new_moves[key] = new_moves.get(key, 0.0) + w
        self.moves = new_moves

    def check_coloring(self, coloring: Dict[Reg, int]) -> Optional[Tuple[Reg, Reg]]:
        """Return a violated edge, or ``None`` if the coloring is proper."""
        for a in self._adj:
            ca = coloring.get(a)
            if ca is None:
                continue
            for b in self._adj[a]:
                cb = coloring.get(b)
                if cb is not None and ca == cb:
                    return (a, b)
        return None


def build_interference(fn: Function,
                       liveness: Optional[LivenessInfo] = None,
                       freq: Optional[Dict[str, float]] = None,
                       cls: str = "int") -> InterferenceGraph:
    """Build the interference graph for register class ``cls``.

    ``freq`` (block name -> execution frequency estimate) weights the
    move-coalescing candidates; defaults to weight 1 per move.

    Built graphs are memoized on the function's structural fingerprint
    plus ``(cls, freq)`` — the iterated allocator rebuilds the same graph
    after every spill round that changed nothing else, and sweeps repeat
    whole allocations.  Each call returns a private
    :meth:`InterferenceGraph.copy`, because simplify/coalesce mutate the
    graph via :meth:`remove_node`/:meth:`merge`.  A caller-supplied
    ``liveness`` other than the canonical memoized one bypasses the memo
    (and the vectorized kernel, which derives liveness itself).
    """
    from repro.analysis.cache import (MISSING, fingerprint_function,
                                      memoize_analysis, peek_analysis)

    fp = fingerprint_function(fn)
    if liveness is not None and liveness is not peek_analysis(("liveness",
                                                               fp)):
        return _build_interference_ref(fn, liveness, freq, cls)
    freq_key = None if freq is None else tuple(sorted(freq.items()))
    key = ("interference", cls, freq_key, fp)
    graph = memoize_analysis(
        key, lambda: _build_interference_impl(fn, freq, cls, fp))
    return graph.copy()


def _build_interference_impl(fn: Function, freq: Optional[Dict[str, float]],
                             cls: str, fp=None) -> InterferenceGraph:
    from repro.analysis import batched

    if batched.vectors_enabled():
        g = batched.interference_one(fn, freq, cls, fp)
        if g is not None:
            return g
    return _build_interference_ref(fn, None, freq, cls)


def _build_interference_ref(fn: Function,
                            liveness: Optional[LivenessInfo],
                            freq: Optional[Dict[str, float]],
                            cls: str) -> InterferenceGraph:
    """Object-walking reference builder (the vectorized kernel in
    :mod:`repro.analysis.batched` must match it exactly)."""
    if liveness is None:
        liveness = compute_liveness(fn)
    g = InterferenceGraph()
    for r in fn.registers():
        if r.cls == cls:
            g.add_node(r)
    for block in fn.blocks:
        w = freq.get(block.name, 1.0) if freq else 1.0
        for instr in block.instrs:
            live_after = liveness.instr_live_out[instr.uid]
            move_src = instr.srcs[0] if instr.is_move() else None
            for d in instr.defs():
                if d.cls != cls:
                    continue
                for l in live_after:
                    if l.cls != cls or l == d or l is None:
                        continue
                    if move_src is not None and l == move_src:
                        continue  # keep the move coalescible
                    g.add_edge(d, l)
            defs = [d for d in instr.defs() if d.cls == cls]
            for i in range(len(defs)):
                for j in range(i + 1, len(defs)):
                    g.add_edge(defs[i], defs[j])
            if instr.is_move() and instr.dst.cls == cls and instr.srcs[0].cls == cls:
                g.add_move(instr.dst, instr.srcs[0], w)
    return g
