"""Profile-guided block frequencies.

Section 4 of the paper: "profile information could be incorporated to
improve the cost estimation.  Different adjacent access pairs have different
execution frequencies."  The paper's own evaluation uses static estimates
(and attributes irregular per-benchmark results to that); this module
provides the profile-guided alternative by running the program once through
the interpreter and counting how often each basic block executes.

Block names survive every pass in this library (spilling, splitting,
remapping, encoding), so one profile of the original function weights all
downstream decisions.  The fast interpreter engine reports per-block
executed-instruction counts directly (``ExecutionResult.
block_instr_counts``), so profiling normally records no trace at all;
:func:`block_frequencies_from_counts` turns such counts — from a profile
run or from a recorded run the trace-reuse layer already paid for — into
frequencies with arithmetic identical to the original trace walk
(accumulating ``k`` ones in a float gives exactly ``float(k)``).
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

from repro.ir.function import Function
from repro.ir.interp import Interpreter

__all__ = ["profile_block_frequencies", "block_frequencies_from_counts"]


def block_frequencies_from_counts(fn: Function,
                                  block_instr_counts: Mapping[str, int]
                                  ) -> Dict[str, float]:
    """Per-block frequencies from executed-instruction counts.

    ``block_instr_counts`` maps block name to the number of instructions
    dynamically executed in that block (missing blocks count as zero).
    The frequency is that count divided by the block's length, normalised
    so the entry block has frequency 1.
    """
    counts: Dict[str, float] = {
        b.name: float(block_instr_counts.get(b.name, 0)) for b in fn.blocks
    }
    sizes = {b.name: max(1, len(b.instrs)) for b in fn.blocks}
    freqs = {name: counts[name] / sizes[name] for name in counts}
    entry_freq = max(freqs.get(fn.entry.name, 1.0), 1.0)
    return {name: max(f / entry_freq, 0.0) for name, f in freqs.items()}


def profile_block_frequencies(fn: Function, args: Tuple[int, ...] = (),
                              max_steps: int = 2_000_000) -> Dict[str, float]:
    """Run ``fn`` on ``args`` and return per-block execution counts.

    The count is the number of *instructions* executed per block divided by
    the block's length — i.e. how many times the block ran — normalised so
    the entry block has frequency 1.
    """
    result = Interpreter(max_steps=max_steps, record_trace=False).run(fn, args)
    if result.block_instr_counts:
        return block_frequencies_from_counts(fn, result.block_instr_counts)

    # reference engine (or a fast-engine fallback): count from the trace
    index_to_block: Dict[int, str] = {}
    idx = 0
    for block in fn.blocks:
        for _ in block.instrs:
            index_to_block[idx] = block.name
            idx += 1
    result = Interpreter(max_steps=max_steps).run(fn, args)
    counts: Dict[str, int] = {b.name: 0 for b in fn.blocks}
    for entry in result.trace:
        counts[index_to_block[entry.static_index]] += 1
    return block_frequencies_from_counts(fn, counts)
