"""Profile-guided block frequencies.

Section 4 of the paper: "profile information could be incorporated to
improve the cost estimation.  Different adjacent access pairs have different
execution frequencies."  The paper's own evaluation uses static estimates
(and attributes irregular per-benchmark results to that); this module
provides the profile-guided alternative by running the program once through
the interpreter and counting how often each basic block executes.

Block names survive every pass in this library (spilling, splitting,
remapping, encoding), so one profile of the original function weights all
downstream decisions.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.ir.function import Function
from repro.ir.interp import Interpreter

__all__ = ["profile_block_frequencies"]


def profile_block_frequencies(fn: Function, args: Tuple[int, ...] = (),
                              max_steps: int = 2_000_000) -> Dict[str, float]:
    """Run ``fn`` on ``args`` and return per-block execution counts.

    The count is the number of *instructions* executed per block divided by
    the block's length — i.e. how many times the block ran — normalised so
    the entry block has frequency 1.
    """
    index_to_block: Dict[int, str] = {}
    idx = 0
    sizes: Dict[str, int] = {}
    for block in fn.blocks:
        sizes[block.name] = max(1, len(block.instrs))
        for _ in block.instrs:
            index_to_block[idx] = block.name
            idx += 1

    result = Interpreter(max_steps=max_steps).run(fn, args)
    counts: Dict[str, float] = {b.name: 0.0 for b in fn.blocks}
    for entry in result.trace:
        counts[index_to_block[entry.static_index]] += 1.0
    freqs = {name: counts[name] / sizes[name] for name in counts}
    entry_freq = max(freqs.get(fn.entry.name, 1.0), 1.0)
    return {name: max(f / entry_freq, 0.0) for name, f in freqs.items()}
