"""Dataflow and graph analyses over the IR.

These are the inputs the paper's algorithms consume: liveness and the
interference graph for traditional register allocation, and the *adjacency
graph* (paper Definition 2) that drives all three differential schemes.
"""

from repro.analysis.dataflow import (
    DataflowProblem,
    DataflowResult,
    reverse_postorder,
    solve,
    union_join,
    intersection_join,
)
from repro.analysis.liveness import LivenessInfo, compute_liveness
from repro.analysis.interference import InterferenceGraph, build_interference
from repro.analysis.dominators import (compute_dominators,
                                       dominance_frontiers, dominator_tree,
                                       immediate_dominators)
from repro.analysis.loops import NaturalLoop, find_natural_loops, loop_depths
from repro.analysis.frequency import estimate_block_frequencies
from repro.analysis.profile import (block_frequencies_from_counts,
                                    profile_block_frequencies)
from repro.analysis.pressure import (
    PressureRegion,
    block_pressure,
    loop_pressure_regions,
)
from repro.analysis.adjacency import AdjacencyGraph, build_adjacency
from repro.analysis.batched import batched_liveness, prewarm_corpus
from repro.analysis.cache import (
    analysis_cache_stats,
    clear_analysis_cache,
    set_analysis_cache_enabled,
)
from repro.analysis.ssa import Phi, SSAForm, construct_ssa, destruct_ssa
from repro.analysis.webs import split_webs

__all__ = [
    "DataflowProblem",
    "DataflowResult",
    "reverse_postorder",
    "solve",
    "union_join",
    "intersection_join",
    "profile_block_frequencies",
    "block_frequencies_from_counts",
    "PressureRegion",
    "block_pressure",
    "loop_pressure_regions",
    "LivenessInfo",
    "compute_liveness",
    "InterferenceGraph",
    "build_interference",
    "compute_dominators",
    "immediate_dominators",
    "dominator_tree",
    "dominance_frontiers",
    "Phi",
    "SSAForm",
    "construct_ssa",
    "destruct_ssa",
    "NaturalLoop",
    "find_natural_loops",
    "loop_depths",
    "estimate_block_frequencies",
    "AdjacencyGraph",
    "build_adjacency",
    "batched_liveness",
    "prewarm_corpus",
    "split_webs",
    "analysis_cache_stats",
    "clear_analysis_cache",
    "set_analysis_cache_enabled",
]
