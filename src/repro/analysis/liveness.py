"""Classic backward liveness analysis.

Produces block-level ``live_in``/``live_out`` sets and, on demand,
per-instruction live-out sets keyed by instruction ``uid``.

The fixed-point iteration is an instance of the generic worklist
framework (:mod:`repro.analysis.dataflow`): a backward may-analysis with
set-union join and the textbook ``use ∪ (out − def)`` transfer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Set

from repro.analysis.dataflow import DataflowProblem, solve, union_join
from repro.ir.function import Function
from repro.ir.instr import Reg

__all__ = ["LivenessInfo", "compute_liveness"]


@dataclass
class LivenessInfo:
    """Result of :func:`compute_liveness`."""

    live_in: Dict[str, FrozenSet[Reg]]
    live_out: Dict[str, FrozenSet[Reg]]
    use: Dict[str, FrozenSet[Reg]]
    defs: Dict[str, FrozenSet[Reg]]
    instr_live_out: Dict[int, FrozenSet[Reg]]
    instr_live_in: Dict[int, FrozenSet[Reg]]

    def max_pressure(self, cls: str = "int") -> int:
        """Maximum number of simultaneously live registers (MaxLive)."""
        best = 0
        for live in self.instr_live_in.values():
            best = max(best, sum(1 for r in live if r.cls == cls))
        for live in self.instr_live_out.values():
            best = max(best, sum(1 for r in live if r.cls == cls))
        return best


def _block_use_def(block) -> tuple:
    use: Set[Reg] = set()
    defs: Set[Reg] = set()
    for instr in block.instrs:
        for r in instr.uses():
            if r not in defs:
                use.add(r)
        defs.update(instr.defs())
    return frozenset(use), frozenset(defs)


def compute_liveness(fn: Function) -> LivenessInfo:
    """Iterative backward may-liveness to a fixed point.

    Results are memoized on the function's structural fingerprint (see
    :mod:`repro.analysis.cache`): the pipeline asks for liveness of the
    same function at several stages, and sweeps re-analyse identical
    copies.  The returned object is shared between hits — treat it as
    read-only (every set in it is frozen).

    When numpy is available the result is produced by the vectorized
    bitset kernel (:mod:`repro.analysis.batched`), which is exactly
    equivalent; set ``REPRO_NO_ANALYSIS_VECTOR=1`` to force the
    object-walking reference below.  Whole corpora should go through
    :func:`repro.analysis.batched.batched_liveness`, which stacks every
    function into one fixed point and warms this memo.
    """
    from repro.analysis.cache import fingerprint_function, memoize_analysis

    fp = fingerprint_function(fn)
    return memoize_analysis(("liveness", fp), lambda: _liveness_impl(fn, fp))


def _liveness_impl(fn: Function, fp=None) -> LivenessInfo:
    from repro.analysis import batched

    if batched.vectors_enabled():
        info = batched.liveness_one(fn, fp)
        if info is not None:
            return info
    return _compute_liveness(fn)


def _compute_liveness(fn: Function) -> LivenessInfo:
    use: Dict[str, FrozenSet[Reg]] = {}
    defs: Dict[str, FrozenSet[Reg]] = {}
    for b in fn.blocks:
        use[b.name], defs[b.name] = _block_use_def(b)

    problem: DataflowProblem[FrozenSet[Reg]] = DataflowProblem(
        direction="backward",
        boundary=frozenset(),
        init=frozenset(),
        join=union_join,
        transfer=lambda block, out: use[block.name] | (out - defs[block.name]),
    )
    result = solve(fn, problem)
    live_in = result.in_facts
    live_out = result.out_facts

    instr_live_out: Dict[int, FrozenSet[Reg]] = {}
    instr_live_in: Dict[int, FrozenSet[Reg]] = {}
    for b in fn.blocks:
        live: Set[Reg] = set(live_out[b.name])
        for instr in reversed(b.instrs):
            instr_live_out[instr.uid] = frozenset(live)
            live.difference_update(instr.defs())
            live.update(instr.uses())
            instr_live_in[instr.uid] = frozenset(live)

    return LivenessInfo(live_in, live_out, use, defs, instr_live_out, instr_live_in)
