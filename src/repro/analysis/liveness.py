"""Classic backward liveness analysis.

Produces block-level ``live_in``/``live_out`` sets and, on demand,
per-instruction live-out sets keyed by instruction ``uid``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Set

from repro.ir.function import Function
from repro.ir.instr import Reg

__all__ = ["LivenessInfo", "compute_liveness"]


@dataclass
class LivenessInfo:
    """Result of :func:`compute_liveness`."""

    live_in: Dict[str, FrozenSet[Reg]]
    live_out: Dict[str, FrozenSet[Reg]]
    use: Dict[str, FrozenSet[Reg]]
    defs: Dict[str, FrozenSet[Reg]]
    instr_live_out: Dict[int, FrozenSet[Reg]]
    instr_live_in: Dict[int, FrozenSet[Reg]]

    def max_pressure(self, cls: str = "int") -> int:
        """Maximum number of simultaneously live registers (MaxLive)."""
        best = 0
        for live in self.instr_live_in.values():
            best = max(best, sum(1 for r in live if r.cls == cls))
        for live in self.instr_live_out.values():
            best = max(best, sum(1 for r in live if r.cls == cls))
        return best


def _block_use_def(block) -> tuple:
    use: Set[Reg] = set()
    defs: Set[Reg] = set()
    for instr in block.instrs:
        for r in instr.uses():
            if r not in defs:
                use.add(r)
        defs.update(instr.defs())
    return frozenset(use), frozenset(defs)


def compute_liveness(fn: Function) -> LivenessInfo:
    """Iterative backward may-liveness to a fixed point.

    Results are memoized on the function's structural fingerprint (see
    :mod:`repro.analysis.cache`): the pipeline asks for liveness of the
    same function at several stages, and sweeps re-analyse identical
    copies.  The returned object is shared between hits — treat it as
    read-only (every set in it is frozen).
    """
    from repro.analysis.cache import fingerprint_function, memoize_analysis

    key = ("liveness", fingerprint_function(fn))
    return memoize_analysis(key, lambda: _compute_liveness(fn))


def _compute_liveness(fn: Function) -> LivenessInfo:
    succs, _ = fn.cfg()
    use: Dict[str, FrozenSet[Reg]] = {}
    defs: Dict[str, FrozenSet[Reg]] = {}
    for b in fn.blocks:
        use[b.name], defs[b.name] = _block_use_def(b)

    live_in: Dict[str, FrozenSet[Reg]] = {b.name: frozenset() for b in fn.blocks}
    live_out: Dict[str, FrozenSet[Reg]] = {b.name: frozenset() for b in fn.blocks}

    changed = True
    order = [b.name for b in reversed(fn.blocks)]  # reverse layout ≈ postorder
    while changed:
        changed = False
        for name in order:
            out: Set[Reg] = set()
            for s in succs[name]:
                out.update(live_in[s])
            new_out = frozenset(out)
            new_in = frozenset(use[name] | (new_out - defs[name]))
            if new_out != live_out[name] or new_in != live_in[name]:
                live_out[name] = new_out
                live_in[name] = new_in
                changed = True

    instr_live_out: Dict[int, FrozenSet[Reg]] = {}
    instr_live_in: Dict[int, FrozenSet[Reg]] = {}
    for b in fn.blocks:
        live: Set[Reg] = set(live_out[b.name])
        for instr in reversed(b.instrs):
            instr_live_out[instr.uid] = frozenset(live)
            live.difference_update(instr.defs())
            live.update(instr.uses())
            instr_live_in[instr.uid] = frozenset(live)

    return LivenessInfo(live_in, live_out, use, defs, instr_live_out, instr_live_in)
