"""The adjacency graph (paper Definition 2) and differential cost model.

A directed weighted graph over live ranges (virtual registers) or, post
allocation, over physical registers.  An edge ``vi -> vj`` with weight ``w``
records that an access to ``vj`` immediately follows an access to ``vi`` in
the access sequence ``w`` times (weighted by estimated block frequency when
available).

Given a register-number assignment, an edge is *satisfied* when condition (3)
of the paper holds::

    0 <= (reg_no(vj) - reg_no(vi)) mod RegN < DiffN

Unsatisfied edges each cost their weight — one ``set_last_reg`` per dynamic
occurrence.  All three differential allocation schemes minimise this cost.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.encoding.access_order import access_fields, block_access_sequence
from repro.ir.function import Function
from repro.ir.instr import Reg

__all__ = ["AdjacencyGraph", "build_adjacency", "edge_satisfied"]


def edge_satisfied(n_from: int, n_to: int, reg_n: int, diff_n: int) -> bool:
    """Paper condition (3) for one adjacent access pair."""
    return (n_to - n_from) % reg_n < diff_n


class AdjacencyGraph:
    """Directed weighted multigraph collapsed to summed edge weights."""

    def __init__(self) -> None:
        self._out: Dict[Reg, Dict[Reg, float]] = {}
        self._in: Dict[Reg, Dict[Reg, float]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def add_node(self, r: Reg) -> None:
        """Ensure ``r`` exists as a node (idempotent)."""
        self._out.setdefault(r, {})
        self._in.setdefault(r, {})

    def add_edge(self, u: Reg, v: Reg, weight: float = 1.0) -> None:
        """Accumulate weight on ``u -> v``.  Self edges are always satisfied
        (difference 0) and are not stored, matching the paper."""
        if u == v:
            return
        self.add_node(u)
        self.add_node(v)
        self._out[u][v] = self._out[u].get(v, 0.0) + weight
        self._in[v][u] = self._in[v].get(u, 0.0) + weight

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def nodes(self) -> List[Reg]:
        """All nodes, sorted for determinism."""
        return sorted(self._out)

    def __contains__(self, r: Reg) -> bool:
        return r in self._out

    def edges(self) -> List[Tuple[Reg, Reg, float]]:
        """All edges as ``(from, to, weight)``, deterministically ordered."""
        return [
            (u, v, w)
            for u in sorted(self._out)
            for v, w in sorted(self._out[u].items())
        ]

    def weight(self, u: Reg, v: Reg) -> float:
        """Accumulated weight on ``u -> v`` (0 when absent)."""
        return self._out.get(u, {}).get(v, 0.0)

    def out_edges(self, u: Reg) -> Dict[Reg, float]:
        """Successors of ``u`` with weights (a copy)."""
        return dict(self._out.get(u, {}))

    def in_edges(self, v: Reg) -> Dict[Reg, float]:
        """Predecessors of ``v`` with weights (a copy)."""
        return dict(self._in.get(v, {}))

    def total_weight(self) -> float:
        """Sum of all edge weights."""
        return sum(w for _, _, w in self.edges())

    # ------------------------------------------------------------------
    # cost model
    # ------------------------------------------------------------------

    def cost(self, assignment: Mapping[Reg, int], reg_n: int, diff_n: int) -> float:
        """Total weight of edges violating condition (3).

        Edges with an endpoint missing from ``assignment`` (e.g. spilled or
        not-yet-selected live ranges) contribute nothing.
        """
        total = 0.0
        for u, targets in self._out.items():
            nu = assignment.get(u)
            if nu is None:
                continue
            for v, w in targets.items():
                nv = assignment.get(v)
                if nv is None:
                    continue
                if not edge_satisfied(nu, nv, reg_n, diff_n):
                    total += w
        return total

    def node_cost(self, r: Reg, number: int, assignment: Mapping[Reg, int],
                  reg_n: int, diff_n: int) -> float:
        """Cost of the edges incident to ``r`` if ``r`` gets ``number``.

        Only edges whose other endpoint is already assigned are counted —
        this is the quantity differential select minimises when coloring one
        node (Section 6).
        """
        total = 0.0
        for v, w in self._out.get(r, {}).items():
            nv = number if v == r else assignment.get(v)
            if nv is not None and not edge_satisfied(number, nv, reg_n, diff_n):
                total += w
        for u, w in self._in.get(r, {}).items():
            if u == r:
                continue  # already counted above
            nu = assignment.get(u)
            if nu is not None and not edge_satisfied(nu, number, reg_n, diff_n):
                total += w
        return total

    # ------------------------------------------------------------------
    # transformation
    # ------------------------------------------------------------------

    def copy(self) -> "AdjacencyGraph":
        """Deep copy (independent edge maps)."""
        g = AdjacencyGraph()
        g._out = {u: dict(ts) for u, ts in self._out.items()}
        g._in = {v: dict(ss) for v, ss in self._in.items()}
        return g

    def merge(self, keep: Reg, drop: Reg) -> None:
        """Redirect ``drop``'s edges onto ``keep`` (used by coalescing).

        Edges that become self loops disappear: after coalescing, those
        adjacent accesses hit the same register and encode as difference 0.
        """
        if keep == drop:
            return
        self.add_node(keep)
        for v, w in list(self._out.get(drop, {}).items()):
            self._in[v].pop(drop, None)
            self.add_edge(keep, v, w)
        for u, w in list(self._in.get(drop, {}).items()):
            self._out[u].pop(drop, None)
            self.add_edge(u, keep, w)
        self._out.pop(drop, None)
        self._in.pop(drop, None)


def build_adjacency(fn: Function, order: str = "src_first", cls: str = "int",
                    freq: Optional[Mapping[str, float]] = None) -> AdjacencyGraph:
    """Build the adjacency graph of ``fn`` (paper Section 4).

    Within a block, consecutive accesses add the block's frequency to the
    edge.  Across a CFG edge ``P -> B`` the pair (last access of ``P``,
    first access of ``B``) is added with weight ``freq(B) / #preds(B)``:
    however many predecessors disagree, at most one ``set_last_reg`` at the
    head of ``B`` repairs them all, so the expected cost is divided.
    Predecessors with no register accesses contribute nothing.

    Built graphs are memoized on the function's structural fingerprint
    plus ``(order, cls, freq)`` — remapping and selection build the same
    graph for the same allocation repeatedly.  Each call returns a private
    :meth:`AdjacencyGraph.copy`, because coalescing mutates its graph via
    :meth:`AdjacencyGraph.merge`.
    """
    from repro.analysis.cache import fingerprint_function, memoize_analysis

    freq_key = None if freq is None else tuple(sorted(freq.items()))
    fp = fingerprint_function(fn)
    key = ("adjacency", order, cls, freq_key, fp)
    graph = memoize_analysis(
        key, lambda: _build_adjacency(fn, order, cls, freq, fp))
    return graph.copy()


def _build_adjacency(fn: Function, order: str, cls: str,
                     freq: Optional[Mapping[str, float]],
                     fp=None) -> AdjacencyGraph:
    from repro.analysis import batched

    if batched.vectors_enabled():
        g = batched.adjacency_one(fn, order, cls, freq, fp)
        if g is not None:
            return g
    return _build_adjacency_ref(fn, order, cls, freq)


def _build_adjacency_ref(fn: Function, order: str, cls: str,
                         freq: Optional[Mapping[str, float]]
                         ) -> AdjacencyGraph:
    """Object-walking reference builder (the vectorized kernel in
    :mod:`repro.analysis.batched` must match it exactly, floats
    included)."""
    g = AdjacencyGraph()
    _, preds = fn.cfg()
    block_seqs: Dict[str, List[Reg]] = {
        b.name: block_access_sequence(b, order, cls) for b in fn.blocks
    }

    def f(name: str) -> float:
        return freq.get(name, 1.0) if freq else 1.0

    for b in fn.blocks:
        seq = block_seqs[b.name]
        for prev, cur in zip(seq, seq[1:]):
            g.add_edge(prev, cur, f(b.name))

    for b in fn.blocks:
        seq = block_seqs[b.name]
        if not seq:
            continue
        first = seq[0]
        ps = preds[b.name]
        if not ps:
            continue
        share = f(b.name) / len(ps)
        for p in ps:
            pseq = block_seqs[p]
            if pseq:
                g.add_edge(pseq[-1], first, share)
    return g
