"""Dominator computation (iterative dataflow formulation).

Used by natural-loop detection, which in turn drives the static block
frequency estimates weighting the adjacency graph (paper Section 4: "profile
information could be incorporated ... we rely on static weight estimation"),
and by SSA construction (:mod:`repro.analysis.ssa`), which places phis on
iterated dominance frontiers and renames along the dominator tree.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.ir.function import Function

__all__ = [
    "compute_dominators",
    "immediate_dominators",
    "dominator_tree",
    "dominance_frontiers",
]


def compute_dominators(fn: Function) -> Dict[str, Set[str]]:
    """Map each block name to the set of block names dominating it.

    Unreachable blocks are reported as dominated by every block (the
    conventional lattice top), which natural-loop detection treats as
    "no loops through unreachable code".
    """
    names = [b.name for b in fn.blocks]
    succs, preds = fn.cfg()
    entry = fn.entry.name
    dom: Dict[str, Set[str]] = {n: set(names) for n in names}
    dom[entry] = {entry}
    changed = True
    while changed:
        changed = False
        for n in names:
            if n == entry:
                continue
            pred_doms = [dom[p] for p in preds[n]]
            new = set.intersection(*pred_doms) if pred_doms else set(names)
            new = new | {n}
            if new != dom[n]:
                dom[n] = new
                changed = True
    return dom


def immediate_dominators(fn: Function) -> Dict[str, Optional[str]]:
    """Immediate dominator of each block (``None`` for the entry)."""
    dom = compute_dominators(fn)
    idom: Dict[str, Optional[str]] = {}
    for n, ds in dom.items():
        if n == fn.entry.name:
            idom[n] = None
            continue
        strict = ds - {n}
        # the idom is the strict dominator dominated by all other strict doms
        best = None
        for c in strict:
            if all(o in dom[c] or o == c for o in strict):
                best = c
        idom[n] = best
    return idom


def dominator_tree(fn: Function) -> Dict[str, List[str]]:
    """Children lists of the dominator tree, keyed by block name.

    Children appear in layout order, so tree walks are deterministic.
    Unreachable blocks have no immediate dominator and show up as
    childless, parentless leaves.
    """
    idom = immediate_dominators(fn)
    children: Dict[str, List[str]] = {b.name: [] for b in fn.blocks}
    for b in fn.blocks:
        parent = idom.get(b.name)
        if parent is not None:
            children[parent].append(b.name)
    return children


def dominance_frontiers(fn: Function) -> Dict[str, Set[str]]:
    """The dominance frontier of each block (Cytron et al.'s ``DF``).

    ``Y`` is in ``DF(X)`` when ``X`` dominates a predecessor of ``Y`` but
    does not strictly dominate ``Y`` itself — the classic per-edge walk:
    for each CFG edge ``P -> Y``, every block from ``P`` up the dominator
    tree to (but excluding) ``idom(Y)`` gains ``Y``.  Edges out of
    unreachable predecessors are skipped (they have no idom chain).
    """
    idom = immediate_dominators(fn)
    frontiers: Dict[str, Set[str]] = {b.name: set() for b in fn.blocks}
    _, preds = fn.cfg()
    entry = fn.entry.name
    for b in fn.blocks:
        y = b.name
        if len(preds[y]) < 2:
            continue
        for p in preds[y]:
            if p != entry and idom.get(p) is None:
                continue  # unreachable predecessor
            runner: Optional[str] = p
            while runner is not None and runner != idom.get(y):
                frontiers[runner].add(y)
                runner = idom.get(runner)
    return frontiers
