"""Dominator computation (iterative dataflow formulation).

Used by natural-loop detection, which in turn drives the static block
frequency estimates weighting the adjacency graph (paper Section 4: "profile
information could be incorporated ... we rely on static weight estimation").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.ir.function import Function

__all__ = ["compute_dominators", "immediate_dominators"]


def compute_dominators(fn: Function) -> Dict[str, Set[str]]:
    """Map each block name to the set of block names dominating it.

    Unreachable blocks are reported as dominated by every block (the
    conventional lattice top), which natural-loop detection treats as
    "no loops through unreachable code".
    """
    names = [b.name for b in fn.blocks]
    succs, preds = fn.cfg()
    entry = fn.entry.name
    dom: Dict[str, Set[str]] = {n: set(names) for n in names}
    dom[entry] = {entry}
    changed = True
    while changed:
        changed = False
        for n in names:
            if n == entry:
                continue
            pred_doms = [dom[p] for p in preds[n]]
            new = set.intersection(*pred_doms) if pred_doms else set(names)
            new = new | {n}
            if new != dom[n]:
                dom[n] = new
                changed = True
    return dom


def immediate_dominators(fn: Function) -> Dict[str, Optional[str]]:
    """Immediate dominator of each block (``None`` for the entry)."""
    dom = compute_dominators(fn)
    idom: Dict[str, Optional[str]] = {}
    for n, ds in dom.items():
        if n == fn.entry.name:
            idom[n] = None
            continue
        strict = ds - {n}
        # the idom is the strict dominator dominated by all other strict doms
        best = None
        for c in strict:
            if all(c in dom[o] or o == c for o in strict):
                best = c
        idom[n] = best
    return idom
