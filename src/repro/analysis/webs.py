"""Live-range webs: split unrelated reuses of a virtual register.

A *web* (Muchnick) is a maximal set of definitions and uses of one register
connected through reaching definitions — two disjoint def-use regions of
the same virtual register are independent values that merely share a name.
Renaming each web to a fresh register gives the allocator strictly more
freedom: the webs can live in different physical registers (or one can
spill without the other), and the differential selector can place them
independently on the register circle.

The paper allocates "live ranges" (§4 footnote: "sometimes they are called
virtual registers"); web splitting is the standard pass that makes virtual
registers coincide with proper live ranges.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.ir.function import Function
from repro.ir.instr import Instr, Reg

__all__ = ["split_webs"]


class _UnionFind:
    def __init__(self) -> None:
        self.parent: Dict[object, object] = {}

    def find(self, x: object) -> object:
        self.parent.setdefault(x, x)
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: object, b: object) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


def _reaching_definitions(fn: Function):
    """Per-use reaching definition sites for virtual registers.

    A definition site is ``(block, index)``; parameters define at the
    virtual site ``("@param", reg)``.  Standard forward may-reach dataflow
    at block granularity, refined inside blocks.
    """
    # gen/kill per block, keyed by register
    defs_of: Dict[Reg, Set[Tuple]] = {}
    block_out: Dict[str, Dict[Reg, Set[Tuple]]] = {}
    for p in fn.params:
        if p.virtual:
            defs_of.setdefault(p, set()).add(("@param", p))
    for b in fn.blocks:
        for i, instr in enumerate(b.instrs):
            for d in instr.defs():
                if d.virtual:
                    defs_of.setdefault(d, set()).add((b.name, i))

    succs, preds = fn.cfg()
    entry_out: Dict[str, Dict[Reg, Set[Tuple]]] = {
        b.name: {} for b in fn.blocks
    }
    # block transfer: last def per register wins
    def transfer(block, inp):
        out = {r: set(sites) for r, sites in inp.items()}
        for i, instr in enumerate(block.instrs):
            for d in instr.defs():
                if d.virtual:
                    out[d] = {(block.name, i)}
        return out

    entry_in: Dict[str, Dict[Reg, Set[Tuple]]] = {
        b.name: {} for b in fn.blocks
    }
    entry_in[fn.entry.name] = {
        p: {("@param", p)} for p in fn.params if p.virtual
    }
    out_maps = {b.name: transfer(b, entry_in[b.name]) for b in fn.blocks}
    changed = True
    while changed:
        changed = False
        for b in fn.blocks:
            if b.name == fn.entry.name:
                inp = entry_in[b.name]
            else:
                inp = {}
                for p in preds[b.name]:
                    for r, sites in out_maps[p].items():
                        inp.setdefault(r, set()).update(sites)
            new_out = transfer(b, inp)
            if new_out != out_maps[b.name] or inp != entry_in[b.name]:
                out_maps[b.name] = new_out
                entry_in[b.name] = inp
                changed = True

    # per-use reaching sites
    use_sites: List[Tuple[Reg, Tuple, Set[Tuple]]] = []
    for b in fn.blocks:
        current = {r: set(s) for r, s in entry_in[b.name].items()}
        for i, instr in enumerate(b.instrs):
            for u in instr.uses():
                if u.virtual:
                    use_sites.append((u, (b.name, i), set(current.get(u, ()))))
            for d in instr.defs():
                if d.virtual:
                    current[d] = {(b.name, i)}
    return defs_of, use_sites


def split_webs(fn: Function) -> Tuple[Function, int]:
    """Rename each def-use web of every virtual register to a fresh name.

    Returns ``(new_fn, webs created beyond the originals)``.  Registers
    whose defs and uses all connect stay untouched (web count 1).
    Parameters keep their original name (their web contains the entry
    definition).
    """
    defs_of, use_sites = _reaching_definitions(fn)
    uf = _UnionFind()
    # connect each use to every def reaching it
    for reg, use_at, reaching in use_sites:
        anchor = None
        for site in reaching:
            key = (reg, site)
            if anchor is None:
                anchor = key
            else:
                uf.union(anchor, key)
        if anchor is not None:
            uf.union(anchor, (reg, "use", use_at))

    next_vreg = fn.max_vreg_id() + 1
    web_reg: Dict[object, Reg] = {}
    n_extra = 0

    def web_name(reg: Reg, key) -> Reg:
        nonlocal next_vreg, n_extra
        root = uf.find(key)
        if root not in web_reg:
            roots_of_reg = {
                uf.find((reg, site)) for site in defs_of.get(reg, ())
            }
            param_root = (uf.find((reg, ("@param", reg)))
                          if ("@param", reg) in defs_of.get(reg, ())
                          else None)
            # exactly one web keeps the original name: the parameter's web
            # when the register is a parameter, else a deterministic pick
            keep = param_root if param_root is not None else (
                min(roots_of_reg, key=str) if roots_of_reg else root
            )
            if len(roots_of_reg) <= 1 or root == keep:
                web_reg[root] = reg  # keep the original name for one web
            else:
                web_reg[root] = Reg(next_vreg, virtual=True, cls=reg.cls)
                next_vreg += 1
                n_extra += 1
        return web_reg[root]

    out = fn.copy()
    for b in out.blocks:
        new_instrs: List[Instr] = []
        for i, instr in enumerate(b.instrs):
            use_map = {
                u: web_name(u, (u, "use", (b.name, i)))
                for u in instr.uses() if u.virtual
            }
            rewritten = instr.rewrite(use_map) if use_map else instr
            if instr.dst is not None and instr.dst.virtual:
                dst_name = web_name(instr.dst, (instr.dst, (b.name, i)))
                if dst_name != rewritten.dst:
                    rewritten = rewritten.copy()
                    rewritten.dst = dst_name
            new_instrs.append(rewritten)
        b.instrs = new_instrs
    out.params = fn.params
    return out, n_extra
