"""Graphviz DOT export for the library's graphs.

Renders control-flow graphs, interference graphs and adjacency graphs for
inspection (``dot -Tpng out.dot``).  Adjacency-graph edges violating the
paper's condition (3) under a given assignment are highlighted — the visual
version of the Figure 5/6 examples.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.analysis.adjacency import AdjacencyGraph, edge_satisfied
from repro.analysis.interference import InterferenceGraph
from repro.ir.function import Function

__all__ = ["cfg_to_dot", "interference_to_dot", "adjacency_to_dot"]


def _quote(s: str) -> str:
    return '"' + s.replace('"', r'\"') + '"'


def cfg_to_dot(fn: Function, freq: Optional[Mapping[str, float]] = None) -> str:
    """The function's CFG; block bodies as record labels."""
    lines = [f"digraph {_quote(fn.name)} {{", "  node [shape=box, fontname=monospace];"]
    succs, _ = fn.cfg()
    for block in fn.blocks:
        body = "\\l".join(str(i) for i in block.instrs) + "\\l"
        note = f" ({freq[block.name]:.0f}x)" if freq and block.name in freq else ""
        lines.append(
            f"  {_quote(block.name)} "
            f"[label={_quote(block.name + note + chr(92) + 'n' + body)}];"
        )
    for name, targets in succs.items():
        for t in targets:
            lines.append(f"  {_quote(name)} -> {_quote(t)};")
    lines.append("}")
    return "\n".join(lines)


def interference_to_dot(graph: InterferenceGraph,
                        coloring: Optional[Mapping] = None) -> str:
    """The interference graph; colored by assignment when given.

    Move-related pairs render as dashed edges, interference as solid.
    """
    palette = ["lightblue", "lightyellow", "lightpink", "lightgreen",
               "lavender", "mistyrose", "honeydew", "aliceblue"]
    lines = ["graph interference {", "  node [style=filled];"]
    for node in graph.nodes():
        fill = "white"
        label = str(node)
        if coloring and node in coloring:
            c = coloring[node]
            fill = palette[c % len(palette)]
            label = f"{node}=r{c}"
        lines.append(f"  {_quote(str(node))} "
                     f"[label={_quote(label)}, fillcolor={fill}];")
    seen = set()
    for a in graph.nodes():
        for b in graph.neighbors(a):
            key = (min(a, b), max(a, b))
            if key in seen:
                continue
            seen.add(key)
            lines.append(f"  {_quote(str(a))} -- {_quote(str(b))};")
    for (a, b), w in sorted(graph.moves.items()):
        lines.append(f"  {_quote(str(a))} -- {_quote(str(b))} "
                     f"[style=dashed, label={_quote(f'{w:g}')}];")
    lines.append("}")
    return "\n".join(lines)


def adjacency_to_dot(graph: AdjacencyGraph,
                     assignment: Optional[Mapping] = None,
                     reg_n: int = 0, diff_n: int = 0) -> str:
    """The paper's adjacency graph (Definition 2).

    With an assignment and RegN/DiffN, edges violating condition (3) —
    each costing a ``set_last_reg`` per occurrence — are drawn red and
    bold; satisfied edges green.
    """
    lines = ["digraph adjacency {", "  node [shape=circle];"]
    for node in graph.nodes():
        label = str(node)
        if assignment and node in assignment:
            label = f"{node}=r{assignment[node]}"
        lines.append(f"  {_quote(str(node))} [label={_quote(label)}];")
    for u, v, w in graph.edges():
        attrs = [f"label={_quote(f'{w:g}')}"]
        if assignment and reg_n and u in assignment and v in assignment:
            ok = edge_satisfied(assignment[u], assignment[v], reg_n, diff_n)
            attrs.append("color=green" if ok
                         else "color=red, penwidth=2.0")
        lines.append(f"  {_quote(str(u))} -> {_quote(str(v))} "
                     f"[{', '.join(attrs)}];")
    lines.append("}")
    return "\n".join(lines)
