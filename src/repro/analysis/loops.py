"""Natural-loop detection from back edges."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set

from repro.analysis.dominators import compute_dominators
from repro.ir.function import Function

__all__ = ["NaturalLoop", "find_natural_loops", "loop_depths"]


@dataclass(frozen=True)
class NaturalLoop:
    """A natural loop: ``header`` plus the body reached from the back edge."""

    header: str
    body: FrozenSet[str]  # includes the header

    def __contains__(self, name: str) -> bool:
        return name in self.body


def find_natural_loops(fn: Function) -> List[NaturalLoop]:
    """All natural loops, one per back edge (loops sharing a header merged)."""
    dom = compute_dominators(fn)
    succs, preds = fn.cfg()
    loops: Dict[str, Set[str]] = {}
    for b in fn.blocks:
        for s in succs[b.name]:
            if s in dom[b.name]:  # back edge b -> s
                body = {s}
                stack = [b.name]
                while stack:
                    n = stack.pop()
                    if n in body:
                        continue
                    body.add(n)
                    stack.extend(preds[n])
                loops.setdefault(s, set()).update(body)
    return [
        NaturalLoop(header, frozenset(body))
        for header, body in sorted(loops.items())
    ]


def loop_depths(fn: Function) -> Dict[str, int]:
    """Loop-nesting depth of each block (0 = not in any loop)."""
    depths = {b.name: 0 for b in fn.blocks}
    for loop in find_natural_loops(fn):
        for name in loop.body:
            depths[name] += 1
    return depths
