"""Static block-frequency estimation.

The paper weights adjacency-graph edges by execution frequency but uses
"static weight estimation instead of profile information" (Section 10.1).
We use the classic estimate: frequency multiplies by ``loop_factor`` per
nesting level.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.loops import loop_depths
from repro.ir.function import Function

__all__ = ["estimate_block_frequencies"]


def estimate_block_frequencies(fn: Function, loop_factor: float = 10.0) -> Dict[str, float]:
    """Block name -> estimated relative execution frequency.

    Memoized on the CFG shape only (block layout + terminators): register
    allocation and encoding rewrite straight-line code without moving
    branches, so every stage of a pipeline hits the entry its predecessor
    warmed.  Callers get a fresh dict — mutating it cannot poison the
    cache.
    """
    from repro.analysis.cache import fingerprint_cfg, memoize_analysis

    key = ("freq", loop_factor, fn.name, fingerprint_cfg(fn))
    return dict(memoize_analysis(key, lambda: {
        name: loop_factor ** depth
        for name, depth in loop_depths(fn).items()
    }))
