"""Generic iterative dataflow framework (worklist solver).

Every dataflow computation in the repo — liveness, the spill-slot
initialization checks, the static decode-stage verifier's ``last_reg``
abstraction — is an instance of the same schema: per-block facts from a
join-semilattice, a per-block transfer function, propagation along CFG
edges (forward or backward) to a fixed point.  This module factors that
schema out once so clients only supply the lattice and the transfer.

A :class:`DataflowProblem` packages the schema:

* ``direction`` — ``"forward"`` (facts flow entry → exit along edges) or
  ``"backward"`` (exit → entry against edges);
* ``boundary`` — the fact at the CFG boundary: the entry block's input
  for forward problems, every exit block's output for backward ones;
* ``init`` — the optimistic initial fact (the lattice bottom) given to
  every interior block before iteration;
* ``join(a, b)`` — the lattice join, combining facts that reach a block
  along different edges (must be commutative, associative, idempotent);
* ``transfer(block, fact)`` — the block's effect: input fact in, output
  fact out.  Must be monotone in ``fact`` or iteration may not converge.

:func:`solve` runs the worklist to a fixed point and returns per-block
input/output facts.  Blocks are processed in reverse postorder for
forward problems and postorder for backward ones — the order the
dominator tree induces on reducible CFGs — so loop nests (see
:mod:`repro.analysis.loops`) converge in loop-depth + 2 sweeps instead
of rediscovering the same facts block by block.  Unreachable blocks keep
their ``init`` fact: no edge ever delivers information to them, which
clients treat as "no claim" (the conventional unreachable-⊥).

The first in-tree client is :func:`repro.analysis.liveness.
compute_liveness` (backward, set union, use/def transfer); the decode
abstract interpreter (:mod:`repro.encoding.static_verifier`) layers a
``last_reg`` lattice on the same solver.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generic, List, Tuple, TypeVar

from repro.ir.function import BasicBlock, Function

__all__ = [
    "DataflowProblem",
    "DataflowResult",
    "reverse_postorder",
    "solve",
    "union_join",
    "intersection_join",
]

T = TypeVar("T")


def _structural_equal(a: T, b: T) -> bool:
    """Default convergence test: structural ``==`` on the facts."""
    return a == b


@dataclass(frozen=True)
class DataflowProblem(Generic[T]):
    """One dataflow analysis: lattice + transfer + direction.

    Attributes:
        direction: ``"forward"`` or ``"backward"``.
        boundary: fact entering the CFG (forward: the entry block's
            input; backward: every exit/fall-off block's output).
        init: optimistic initial fact for interior block inputs — the
            lattice bottom.  Also the final fact of unreachable blocks.
        join: lattice join for facts meeting at a block.
        transfer: per-block transfer function ``(block, fact) -> fact``.
        equal: fact equality used for the convergence test; defaults to
            ``==``, override for facts whose ``==`` is not semantic.
    """

    direction: str
    boundary: T
    init: T
    join: Callable[[T, T], T]
    transfer: Callable[[BasicBlock, T], T]
    equal: Callable[[T, T], bool] = field(default=_structural_equal)

    def __post_init__(self) -> None:
        if self.direction not in ("forward", "backward"):
            raise ValueError(
                f"unknown dataflow direction {self.direction!r}; "
                "expected 'forward' or 'backward'")


@dataclass
class DataflowResult(Generic[T]):
    """Fixed-point facts of one :func:`solve` run.

    ``in_facts``/``out_facts`` are always oriented in *execution* order:
    ``in_facts[b]`` is the fact at block entry and ``out_facts[b]`` the
    fact at block exit, for both directions.
    """

    in_facts: Dict[str, T]
    out_facts: Dict[str, T]
    iterations: int  # transfer-function applications until the fixpoint


def union_join(a: frozenset, b: frozenset) -> frozenset:
    """May-analysis join: set union."""
    return a | b


def intersection_join(a: frozenset, b: frozenset) -> frozenset:
    """Must-analysis join: set intersection."""
    return a & b


def reverse_postorder(fn: Function) -> List[str]:
    """Block names in reverse postorder of a DFS from the entry.

    Every block appears before its (non-back-edge) successors — the
    iteration order under which forward problems on reducible CFGs
    stabilise fastest.  Unreachable blocks are appended afterwards in
    layout order so every block has a position.
    """
    if not fn.blocks:
        return []
    succs, _ = fn.cfg()
    seen = set()
    post: List[str] = []
    # iterative DFS with an explicit successor cursor (no recursion limit)
    stack: List[Tuple[str, int]] = [(fn.entry.name, 0)]
    seen.add(fn.entry.name)
    while stack:
        name, i = stack[-1]
        if i < len(succs[name]):
            stack[-1] = (name, i + 1)
            s = succs[name][i]
            if s not in seen:
                seen.add(s)
                stack.append((s, 0))
        else:
            stack.pop()
            post.append(name)
    order = list(reversed(post))
    order.extend(b.name for b in fn.blocks if b.name not in seen)
    return order


def solve(fn: Function, problem: DataflowProblem[T]) -> DataflowResult[T]:
    """Run ``problem`` over ``fn``'s CFG to a fixed point.

    The worklist is a priority queue keyed by the block's position in
    reverse postorder (forward) or postorder (backward), so facts reach
    a fixpoint in near-topological sweeps even when the initial worklist
    seeds everything at once.
    """
    forward = problem.direction == "forward"
    succs, preds = fn.cfg()
    rpo = reverse_postorder(fn)
    priority = {name: i for i, name in enumerate(rpo)}
    if not forward:
        priority = {name: len(rpo) - 1 - i for name, i in priority.items()}

    # edges facts flow along, oriented as (source fact holder -> target)
    flow_in = preds if forward else succs    # blocks a target reads from
    flow_out = succs if forward else preds   # blocks to requeue on change

    entry = fn.entry.name if fn.blocks else None

    def is_boundary(name: str) -> bool:
        if forward:
            return name == entry
        return not succs[name]  # exit blocks: no successors

    # read_facts[b]: fact at the reading edge of b (entry for forward,
    # exit for backward); written_facts[b]: the transferred result
    read_facts: Dict[str, T] = {}
    written_facts: Dict[str, T] = {}
    for b in fn.blocks:
        read_facts[b.name] = problem.boundary if is_boundary(b.name) \
            else problem.init
        written_facts[b.name] = problem.init

    heap: List[Tuple[int, str]] = []
    queued = set()
    for name in rpo:
        heapq.heappush(heap, (priority[name], name))
        queued.add(name)

    iterations = 0
    while heap:
        _, name = heapq.heappop(heap)
        queued.discard(name)
        incoming = read_facts[name]
        sources = flow_in[name]
        if sources:
            fact = problem.boundary if is_boundary(name) else problem.init
            for s in sources:
                fact = problem.join(fact, written_facts[s])
            incoming = fact
        read_facts[name] = incoming
        new_out = problem.transfer(fn.block(name), incoming)
        iterations += 1
        if not problem.equal(new_out, written_facts[name]):
            written_facts[name] = new_out
            for t in flow_out[name]:
                if t not in queued:
                    queued.add(t)
                    heapq.heappush(heap, (priority[t], t))

    if forward:
        in_facts, out_facts = read_facts, written_facts
    else:
        in_facts, out_facts = written_facts, read_facts
    return DataflowResult(in_facts=in_facts, out_facts=out_facts,
                          iterations=iterations)
