"""Corpus-batched, vectorized CFG analyses over the columnar IR view.

The object-walking analyses (:mod:`repro.analysis.liveness`,
:mod:`repro.analysis.interference`, :mod:`repro.analysis.adjacency`) pay
Python per instruction: attribute lookups, ``Reg`` hashing, small-set
churn.  This module re-implements all three on the flat columns of
:mod:`repro.ir.columnar` and — the actual point — runs them for a
*whole corpus at once*: every function's blocks are stacked into shared
bitset matrices, one fixed point analyses hundreds of functions
together, and interference/adjacency extraction is one numpy pass over
the concatenated columns.  Functions never share CFG edges or register
tables, so stacking is safe: the batched result is the product of the
per-function results, and the per-function overhead that dominates
micro-batches (numpy call dispatch, repeated fingerprints) is paid once
per corpus instead of once per function.

Liveness representation: one ``uint64`` bitset row per block (``W``
words, ``W = ceil(max_regs/64)`` over the batch), function-local dense
register numbering from the view's register table.  The fixed point is
whole-matrix Jacobi: each sweep ORs every function's ``live_in`` rows
across the stacked CFG edge list (one grouped ``reduceat`` — the
outgoing edges of a block are contiguous) and applies the
``use ∪ (out − def)`` transfer to all blocks at once, iterating to
stability (bounded by the block count).  May-liveness is monotone
increasing under OR, so iteration converges to the same least fixed
point the worklist solver in :mod:`repro.analysis.dataflow` computes.

Exactness is the contract: every result is *identical* to the reference
engines — the same frozensets, the same dict insertion orders, the same
floating-point accumulation order for move and adjacency weights
(per-key left-to-right, reproduced positionally rather than with
``reduceat``, whose pairwise summation would drift in the last ulp).
The equivalence is enforced on mibench, a 200-function fuzz corpus and
hypothesis-generated programs by ``tests/test_batched_analysis.py``,
and re-checked (with the speedup floor) by
``benchmarks/test_analysis_speed.py``.

Set ``REPRO_NO_ANALYSIS_VECTOR=1`` to force the reference engines (the
same escape hatch shape as ``REPRO_NO_SIM_VECTOR``); without numpy the
reference engines are used automatically.
"""

from __future__ import annotations

import os
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.ir.columnar import ColumnarFunction, columnar_view
from repro.ir.function import Function
from repro.ir.trace import numpy_or_none

__all__ = [
    "vectors_enabled",
    "batched_liveness",
    "liveness_one",
    "interference_one",
    "adjacency_one",
    "prewarm_corpus",
]


def vectors_enabled() -> bool:
    """Whether the vectorized analysis path is active.

    Checked at call time (like the sim layer's ``REPRO_NO_SIM_VECTOR``)
    so tests and benchmarks can flip the environment variable without
    re-importing anything.
    """
    return (os.environ.get("REPRO_NO_ANALYSIS_VECTOR") != "1"
            and numpy_or_none() is not None)


def _bases(sizes: List[int]) -> List[int]:
    base = [0] * len(sizes)
    for i in range(1, len(sizes)):
        base[i] = base[i - 1] + sizes[i - 1]
    return base


# bit positions set in each byte value, for bitset decoding
_BITS = [tuple(b for b in range(8) if v >> b & 1) for v in range(256)]

# the adjacency value shared by every edgeless interference node.  A
# module-level singleton (rather than one per kernel run) lets views
# memoize their per-class node seed dicts (:meth:`ColumnarFunction.
# cls_seed`) across runs.  Never mutated: memoized graphs are only read
# or deep-copied, and ``copy()`` rebuilds every set.
_EMPTY_NODE_SET: set = set()


def _intern_rows(words, fid_row, np):
    """Group equal ``(fid, bitset row)`` pairs.

    Returns ``(inverse, rep_idx)``: ``words[rep_idx]`` are the distinct
    rows and ``inverse[i]`` maps row ``i`` to its representative.  Done
    as chained 1D uniques (one per word column), compressing the running
    key after each column so it stays small — much faster than a
    lexicographic ``axis=0`` unique.
    """
    if not len(words):
        z = np.zeros(0, dtype=np.int64)
        return z, z
    key = fid_row
    rep_idx = None
    for c in range(words.shape[1]):
        _, wid = np.unique(words[:, c], return_inverse=True)
        _, rep_idx, key = np.unique(key * (int(wid.max()) + 1) + wid,
                                    return_index=True,
                                    return_inverse=True)
    return key.reshape(-1), rep_idx


def _decode_rows(uniq_words, ufid, views, np, frozen=True):
    """Decode distinct bitset rows into sets of ``Reg`` objects.

    Returns a list aligned with ``uniq_words``; ``ufid`` names each
    row's function (register bits are function-local).  Rows decompose
    into ``(function, byte column, byte value)`` keys; each distinct
    byte pattern becomes a frozenset once — unioned from the view's
    singleton :attr:`~repro.ir.columnar.ColumnarFunction.reg_sets`, so
    ``Reg.__hash__`` runs once per register per view — and row sets
    union the byte sets on stored hashes.  ``frozen=False`` yields
    mutable sets instead; rows sharing a pattern share one set object,
    so callers must treat the results as read-only until copied.
    """
    n_u, W = uniq_words.shape
    WB = 8 * W
    u64 = np.uint64
    bmat = ((uniq_words[:, :, None] >> (np.arange(8, dtype=u64)
                                        * np.uint64(8)))
            & np.uint64(0xFF)).reshape(n_u, WB).astype(np.int64)
    nzr, nzc = np.nonzero(bmat)
    bkeys = (ufid[nzr] * WB + nzc) * 256 + bmat[nzr, nzc]
    ukeys, inv2 = np.unique(bkeys, return_inverse=True)
    # inline the per-view byte-set cache: patterns are nonzero, so their
    # sets are never falsy and ``or`` can supply the build-on-miss path
    span = WB * 256
    tabs = [v._byte_sets for v in views]
    byte_sets = [tabs[k // span].get(k % span)
                 or views[k // span].byte_set(k % span)
                 for k in ukeys.tolist()]
    counts = np.bincount(nzr, minlength=n_u)
    starts = (np.cumsum(counts) - counts).tolist()
    counts = counts.tolist()
    inv2 = inv2.reshape(-1).tolist()
    bg = byte_sets.__getitem__
    if frozen:
        empty = frozenset()
        union = empty.union
        return [empty if c == 0 else
                byte_sets[inv2[s]] if c == 1 else
                union(*map(bg, inv2[s:s + c]))
                for s, c in zip(starts, counts)]
    mt_empty = set()
    return [mt_empty if c == 0 else
            set(byte_sets[inv2[s]]) if c == 1 else
            set().union(*map(bg, inv2[s:s + c]))
            for s, c in zip(starts, counts)]


def _catter(np):
    """Concatenation that tolerates empty part lists and skips the copy
    when only one part is non-empty."""
    def cat(parts, dtype=np.int64):
        parts = [p for p in parts if len(p)]
        if not parts:
            return np.zeros(0, dtype=dtype)
        if len(parts) == 1:
            return parts[0]
        return np.concatenate(parts)
    return cat


# ----------------------------------------------------------------------
# stacked bitset liveness
# ----------------------------------------------------------------------

def _liveness_kernel(views: Sequence[ColumnarFunction], np,
                     fps: Optional[Sequence[Tuple]] = None):
    """Fixed-point liveness for a stack of views in shared matrices.

    Returns ``(infos, instr_live_out_slices)`` aligned with ``views``.
    When ``fps`` (per-view structural fingerprints) is given, each
    function's per-instruction live-out bitsets are memoized under
    ``("livebits", fp)`` so the interference kernel can reuse them
    without re-running the fixed point.
    """
    from repro.analysis.cache import memoize_analysis
    from repro.analysis.liveness import LivenessInfo

    n_fns = len(views)
    if n_fns == 0:
        return [], []
    nb = [v.n_blocks for v in views]
    ni = [v.n_instrs for v in views]
    block_base = _bases(nb)
    instr_base = _bases(ni)
    B = block_base[-1] + nb[-1]
    I = instr_base[-1] + ni[-1]
    max_regs = max((v.n_regs for v in views), default=0)
    W = max(1, (max_regs + 63) // 64)
    u64, one = np.uint64, np.uint64(1)

    cat = _catter(np)
    nb_arr = np.asarray(nb)
    ni_arr = np.asarray(ni)
    ib_arr = np.asarray(instr_base)
    bb_arr = np.asarray(block_base)

    # global columns: concatenate per-function columns once, then shift
    # ids by per-function bases with a single repeat — instruction and
    # block numbering become corpus-global, register bits stay
    # function-local (rows never mix functions)
    blen = cat([v.block_len for v in views])
    bstart = cat([v.block_start for v in views]) + np.repeat(ib_arr,
                                                             nb_arr)
    es = np.repeat(np.arange(B), cat([v.succ_cnt for v in views]))
    ed = cat([v.succ for v in views]) + np.repeat(
        bb_arr, np.asarray([len(v.succ) for v in views]))

    # per-instruction use/def bitsets
    U = np.zeros((I, W), dtype=u64)
    D = np.zeros((I, W), dtype=u64)
    for mat, cnts, regs in (
            (U, cat([v.use_cnt for v in views]),
             cat([v.use_reg for v in views])),
            (D, cat([v.def_cnt for v in views]),
             cat([v.def_reg for v in views]))):
        if len(regs):
            rows = np.repeat(np.arange(I), cnts)
            np.bitwise_or.at(
                mat, (rows, regs // 64),
                one << (regs % 64).astype(u64))

    # The instruction transfer ``f(x) = U | (x & ~D)`` is an affine
    # kill/gen function; such functions compose elementwise
    # (``(f∘h)(x) = x & (Kf&Kh) | ((Gh&Kf)|Gf)``), so the per-block
    # backward walk becomes a segmented suffix scan with log-doubling:
    # after the loop, ``(K[p], G[p])`` is the composition of instruction
    # ``p`` through the end of its block, in ``ceil(log2(max_len))``
    # full-matrix steps instead of one step per instruction.  ``K``
    # carries garbage bits above each function's register count (from
    # ``~D``); they are harmless because ``K`` is only ever ANDed
    # against clean rows.
    seg = cat([v.block_of_instr for v in views]) + np.repeat(bb_arr,
                                                             ni_arr)
    max_len = int(blen.max()) if B else 0
    K = ~D
    G = U.copy()
    d = 1
    while d < max_len:
        valid = (seg[d:] == seg[:-d])[:, None]
        kf, gf = K[:-d], G[:-d]
        kc = kf & K[d:]
        gc = (G[d:] & kf) | gf
        K[:I - d] = np.where(valid, kc, kf)
        G[:I - d] = np.where(valid, gc, gf)
        d *= 2

    # block summaries fall out of the scan: the composition rooted at a
    # block's first instruction IS the block transfer, so its gen part
    # is the upward-exposed use set.
    use_blk = np.zeros((B, W), dtype=u64)
    nonempty = blen > 0
    use_blk[nonempty] = G[bstart[nonempty]]
    def_blk = np.zeros((B, W), dtype=u64)
    if I:
        np.bitwise_or.at(def_blk, seg, D)

    # Jacobi fixed point over whole matrices: every sweep propagates all
    # edges and applies all transfers in ~6 numpy calls, needing
    # longest-chain sweeps instead of loop-depth — fewer total
    # dispatches than rank-ordered Gauss-Seidel at any corpus shape.
    # May-liveness is monotone under OR, so ``live_out`` accumulates
    # without ever being cleared and the iteration reaches the least
    # fixed point; when ``live_in`` stops changing the last scatter saw
    # the same inputs, so ``live_out`` is stable too.
    live_in = use_blk.copy()
    live_out = np.zeros((B, W), dtype=u64)
    ndef = ~def_blk
    if len(es):
        # ``es`` ascends (a repeat of arange), so each block's outgoing
        # edges are one contiguous group: a grouped ``reduceat`` OR plus
        # one fancy-indexed merge beats the unbuffered ``bitwise_or.at``
        # scatter every sweep
        ue, estarts = np.unique(es, return_index=True)
        for _ in range(B + 2):
            live_out[ue] |= np.bitwise_or.reduceat(live_in[ed], estarts,
                                                   axis=0)
            new_in = use_blk | (live_out & ndef)
            if np.array_equal(new_in, live_in):
                break
            live_in = new_in

    # per-instruction rows: live-in of p = suffix composition applied to
    # the block's live-out; live-out of p = live-in of its successor
    # instruction (or the block's live-out at the block tail)
    if I:
        LO = live_out[seg]
        LI = (LO & K) | G
        follows = seg[1:] == seg[:-1]
        LO[:-1][follows] = LI[1:][follows]
    else:
        LI = np.zeros((0, W), dtype=u64)
        LO = np.zeros((0, W), dtype=u64)

    # decode to frozensets: bit rows repeat massively (a block's
    # live-out is its last instruction's, straight-line runs share
    # sets), so intern rows first and decode each distinct one once.
    # Identical patterns from different functions decode differently, so
    # the function id is part of the interning key.  Decoding goes
    # through interned per-byte frozensets: hashing a ``Reg`` costs a
    # Python-level ``__hash__`` call, but ``frozenset.union`` merges
    # entries on stored hashes, so building each distinct byte pattern
    # once and unioning cuts the hash count to the distinct-byte tail.
    fid_row = np.concatenate(
        [np.repeat(np.arange(n_fns), nb)] * 2
        + [np.repeat(np.arange(n_fns), ni)] * 2)
    words = np.concatenate([live_in, live_out, LI, LO])
    inverse, rep_idx = _intern_rows(words, fid_row, np)
    sets = _decode_rows(words[rep_idx], fid_row[rep_idx], views, np)

    # the block use/def dicts are syntactic summaries — no dataflow in
    # them — so like the view's other derived structural tables they are
    # memoized per view; only views seen for the first time decode them
    need = [f for f, v in enumerate(views) if v._use_defs is None]
    if need:
        nbn = [nb[f] for f in need]
        sel = np.concatenate(
            [np.arange(block_base[f], block_base[f] + nb[f])
             for f in need])
        fid2 = np.repeat(np.asarray(need), np.asarray(nbn))
        words2 = np.concatenate([use_blk[sel], def_blk[sel]])
        fid_row2 = np.concatenate([fid2, fid2])
        inv2, rep2 = _intern_rows(words2, fid_row2, np)
        sets2 = _decode_rows(words2[rep2], fid_row2[rep2], views, np)
        inv2_list = inv2.tolist()
        gs2 = sets2.__getitem__
        off, L2 = 0, len(sel)
        for f, nbf in zip(need, nbn):
            names2 = views[f].block_names
            views[f]._use_defs = (
                dict(zip(names2, map(gs2, inv2_list[off:off + nbf]))),
                dict(zip(names2,
                         map(gs2, inv2_list[L2 + off:L2 + off + nbf]))),
            )
            off += nbf

    # per-instruction dicts use the reference's insertion order (blocks
    # in layout order, instructions reversed within each block):
    # consumers may iterate them, and a cache hit must be
    # indistinguishable.  ``rev[p]`` is the function-local index of the
    # instruction occupying position ``p`` of that walk.
    if I:
        local_start = bstart - np.repeat(ib_arr, nb_arr)
        rev = (np.repeat(2 * local_start + blen - 1, blen)
               - (np.arange(I) - np.repeat(ib_arr, ni_arr))).tolist()
    else:
        rev = []
    inv_list = inverse.tolist()
    getset = sets.__getitem__

    infos = []
    lo_slices = []
    o_lout, o_ili, o_ilo = B, 2 * B, 2 * B + I
    for f, v in enumerate(views):
        b0, i0 = block_base[f], instr_base[f]
        names = v.block_names
        n = nb[f]

        def blk_dict(off, b0=b0, n=n, names=names):
            return dict(zip(names,
                            map(getset, inv_list[off + b0:off + b0 + n])))

        use, defs = v._use_defs
        lin = blk_dict(0)
        lout = blk_dict(o_lout)
        nf = ni[f]
        revf = rev[i0:i0 + nf]
        uids = v.uid.tolist()
        ili_inv = inv_list[o_ili + i0:o_ili + i0 + nf]
        ilo_inv = inv_list[o_ilo + i0:o_ilo + i0 + nf]
        uid_rev = list(map(uids.__getitem__, revf))
        ilo = dict(zip(uid_rev,
                       map(getset, map(ilo_inv.__getitem__, revf))))
        ili = dict(zip(uid_rev,
                       map(getset, map(ili_inv.__getitem__, revf))))
        infos.append(LivenessInfo(lin, lout, use, defs, ilo, ili))
        bits = np.ascontiguousarray(LO[i0:i0 + nf])
        lo_slices.append(bits)
        if fps is not None:
            memoize_analysis(("livebits", fps[f]), lambda bits=bits: bits)
    return infos, lo_slices


def liveness_one(fn: Function, fp: Optional[Tuple] = None):
    """Vectorized :class:`LivenessInfo` of one function (a corpus of
    one), or ``None`` when numpy is unavailable.  Callers memoize."""
    np = numpy_or_none()
    if np is None:
        return None
    from repro.analysis.cache import fingerprint_function

    if fp is None:
        fp = fingerprint_function(fn)
    infos, _ = _liveness_kernel([columnar_view(fn, fp)], np, [fp])
    return infos[0]


def batched_liveness(fns: Sequence[Function]) -> List:
    """Liveness for a whole corpus in one stacked fixed point.

    Returns :class:`LivenessInfo` objects aligned with ``fns`` and
    populates the analysis cache, so subsequent ``compute_liveness``
    calls on the same functions hit.  Functions already cached keep
    their cached result and are excluded from the stack.  Falls back to
    per-function :func:`compute_liveness` when the vector path is off.
    """
    from repro.analysis.cache import fingerprint_function
    from repro.analysis.liveness import compute_liveness

    fns = list(fns)
    np = numpy_or_none()
    if np is None or not vectors_enabled():
        return [compute_liveness(fn) for fn in fns]
    return _batched_liveness(fns, [fingerprint_function(fn) for fn in fns],
                             np)


def _batched_liveness(fns: List[Function], fps: List[Tuple], np) -> List:
    from repro.analysis.cache import MISSING, memoize_analysis, peek_analysis

    keys = [("liveness", fp) for fp in fps]
    out = [peek_analysis(k) for k in keys]
    todo = [i for i, v in enumerate(out) if v is MISSING]
    if todo:
        infos, _ = _liveness_kernel(
            [columnar_view(fns[i], fps[i]) for i in todo], np,
            [fps[i] for i in todo])
        for i, info in zip(todo, infos):
            out[i] = memoize_analysis(keys[i], lambda info=info: info)
    return out


def _live_bits(fn: Function, view: ColumnarFunction, fp: Tuple, np):
    """Per-instruction live-out bitset rows for ``fn`` (``(n_instrs, W)``
    uint64), reusing the memoized rows from a previous liveness run when
    available."""
    from repro.analysis.cache import MISSING, peek_analysis

    bits = peek_analysis(("livebits", fp))
    if bits is MISSING:
        _, slices = _liveness_kernel([view], np, [fp])
        bits = slices[0]
    return bits


# ----------------------------------------------------------------------
# interference
# ----------------------------------------------------------------------

def _interference_kernel(views: Sequence[ColumnarFunction],
                         bits: Sequence, freqs: Sequence, cls: str, np
                         ) -> List:
    """Interference graphs for a corpus in one numpy pass.

    ``bits[f]`` holds function ``f``'s per-instruction live-out bitset
    rows (word width may vary per slice — high words are zero).  The
    graphs are structurally *identical* to the reference builder,
    including dict insertion orders: nodes enter in ``fn.registers()``
    order (the reference adds every class register up front, and every
    edge endpoint is one of them) and move weights accumulate per
    ``mov`` in block layout order, so float sums match bit for bit.
    """
    from repro.analysis.interference import InterferenceGraph

    n_fns = len(views)
    nr = [v.n_regs for v in views]
    ni = [v.n_instrs for v in views]
    reg_base = _bases(nr)
    instr_base = _bases(ni)
    Rtot = reg_base[-1] + nr[-1] if n_fns else 0
    all_regs: List = []
    for v in views:
        all_regs.extend(v.regs)
    codes = [v.cls_code(cls) for v in views]
    W = max((b.shape[1] for b in bits if b is not None and len(b)),
            default=1)

    cat = _catter(np)
    I = instr_base[-1] + ni[-1] if n_fns else 0
    codes_arr = np.asarray([c if c is not None else -1 for c in codes])
    rb_arr = np.asarray(reg_base)
    ib_arr = np.asarray(instr_base)
    def_tot = np.asarray([len(v.def_reg) for v in views])
    regcls = cat([v.reg_cls for v in views]) if n_fns else None
    mv_rows = mv_fid = None
    if I:
        is_mv_all = cat([v.is_move for v in views], dtype=bool)
        mv_rows = np.nonzero(is_mv_all)[0]
        mv_fid = np.searchsorted(np.append(ib_arr[1:], I), mv_rows,
                                 side="right")

    # (Rtot, max_regs) block-diagonal boolean adjacency: corpus-global
    # register rows, function-local columns
    M = None
    if I and int(def_tot.sum()):
        # one live-out matrix for the whole corpus (narrower
        # per-function slices pad with zero high words)
        LOg = np.zeros((I, W), dtype=np.uint64)
        for f, v in enumerate(views):
            bf = bits[f]
            if bf is not None and len(bf):
                LOg[instr_base[f]:instr_base[f] + ni[f],
                    :bf.shape[1]] = bf
        # class-filtered def occurrences, corpus-global instruction ids,
        # function-local register ids
        iod = np.repeat(np.arange(I), cat([v.def_cnt for v in views]))
        drl = cat([v.def_reg for v in views])
        fid = np.repeat(np.arange(n_fns), def_tot)
        drg = drl + rb_arr[fid]
        m = regcls[drg] == codes_arr[fid]
        if m.any():
            iod, drl, fid, drg = iod[m], drl[m], fid[m], drg[m]
            P = len(iod)
            # expand live-after rows to booleans over function-local
            # register columns, keep same-class columns, drop the
            # defined register itself and the source of a mov (kept
            # coalescible)
            bd = LOg[iod]
            shifts = np.arange(64, dtype=np.uint64)
            bb = ((bd[:, :, None] >> shifts) & np.uint64(1)).astype(bool)
            bb = bb.reshape(P, -1)
            clsmask = np.zeros((n_fns, bb.shape[1]), dtype=bool)
            fid_of_reg = np.repeat(np.arange(n_fns), np.asarray(nr))
            if Rtot:
                clsmask[fid_of_reg,
                        np.arange(Rtot) - rb_arr[fid_of_reg]] = (
                    regcls == codes_arr[fid_of_reg])
            bb &= clsmask[fid]
            bb[np.arange(P), drl] = False
            mv_src = cat([v.move_src for v in views])
            mv = is_mv_all[iod]
            rows = np.nonzero(mv)[0]
            if len(rows):
                bb[rows, mv_src[iod[rows]]] = False
            # accumulate the def->live rows into one boolean adjacency
            # matrix (corpus-global register rows, function-local
            # columns — a block diagonal laid out flat); the reverse
            # edges then cost one small per-function transpose instead
            # of materialising, sorting and re-scattering a pair stream
            M = np.zeros((Rtot, bb.shape[1]), dtype=bool)
            np.logical_or.at(M, drg, bb)
            # pairwise edges among one instruction's defs (call
            # clobbers); one direction suffices before the symmetrize
            multi = np.nonzero(np.bincount(iod, minlength=I) >= 2)[0]
            if len(multi):
                s = np.searchsorted(iod, multi, side="left").tolist()
                e = np.searchsorted(iod, multi, side="right").tolist()
                gdr = drg.tolist()
                ldr = drl.tolist()
                for t in range(len(multi)):
                    ds = ldr[s[t]:e[t]]
                    gs = gdr[s[t]:e[t]]
                    for x in range(len(ds)):
                        for y in range(x + 1, len(ds)):
                            if ds[x] != ds[y]:
                                M[gs[x], ds[y]] = True
            for f in range(n_fns):
                sq = M[reg_base[f]:reg_base[f] + nr[f], :nr[f]]
                sq |= sq.T.copy()

    # node dicts cloned from the view's memoized per-class seed —
    # ``dict(seed)`` reuses the stored key hashes, so seeding costs no
    # ``Reg.__hash__`` calls after the first run.  Nodes that keep no
    # edges share the module-level empty set, which is safe because the
    # kernel's graphs are only ever read or deep-copied:
    # ``build_interference`` memoizes them and hands each caller a
    # private ``copy()`` (which rebuilds every set), and the mutating
    # methods run on those copies.
    geti = all_regs.__getitem__
    shared_empty = _EMPTY_NODE_SET
    graphs = []
    for v in views:
        g = InterferenceGraph()
        g._adj = dict(v.cls_seed(cls, shared_empty))
        graphs.append(g)

    if M is not None:
        # rows with any edge, ascending global id (function ids come out
        # non-decreasing).  Packing the boolean rows into uint64 words
        # feeds the usual intern-and-decode path: interference
        # neighbourhoods overlap heavily (cliques), so interning rows
        # and decoding through shared byte sets hashes each register
        # once per view instead of once per edge.  Nodes with equal
        # neighbourhoods share one set object — see the copy() note
        # above.
        unodes = np.nonzero(M.any(axis=1))[0]
        if len(unodes):
            ufid = np.searchsorted(np.append(rb_arr[1:], Rtot), unodes,
                                   side="right")
            NB = np.packbits(M[unodes], axis=-1,
                             bitorder="little").view(np.uint64)
            inv_rows, rep_idx = _intern_rows(NB, ufid, np)
            row_sets = _decode_rows(NB[rep_idx], ufid[rep_idx], views, np,
                                    frozen=False)
            objs = list(map(geti, unodes.tolist()))
            node_sets = list(map(row_sets.__getitem__, inv_rows.tolist()))
            # fill each graph's nodes with one C-level dict update
            bounds_f = np.searchsorted(ufid, np.arange(n_fns + 1)).tolist()
            for f in range(n_fns):
                s, e = bounds_f[f], bounds_f[f + 1]
                if s < e:
                    graphs[f]._adj.update(zip(objs[s:e], node_sets[s:e]))

    # moves: group by canonical (Reg-ordered) endpoint pair.  The dict
    # gets its keys in first-occurrence layout order and each weight
    # accumulates left to right over that pair's ``mov``s, exactly like
    # repeated ``add_move`` calls; with no frequencies every term is 1.0
    # and the sum is the exact float count.
    if mv_rows is not None and len(mv_rows):
        mlo = cat([v.move_canon()[0] for v in views])
        mhi = cat([v.move_canon()[1] for v in views])
        glo = mlo.clip(min=0) + rb_arr[mv_fid]
        ghi = mhi.clip(min=0) + rb_arr[mv_fid]
        ok = ((mlo >= 0) & (regcls[glo] == codes_arr[mv_fid])
              & (regcls[ghi] == codes_arr[mv_fid]))
        if ok.any():
            glo, ghi = glo[ok], ghi[ok]
            keys = glo * Rtot + ghi
            korder = np.argsort(keys, kind="stable")
            ks = keys[korder]
            ukm, gstart, gcount = np.unique(ks, return_index=True,
                                            return_counts=True)
            if all(f is None for f in freqs):
                acc = gcount.astype(float)
            else:
                rows_ok = mv_rows[ok]
                fid_ok = mv_fid[ok].tolist()
                li_ok = (rows_ok - ib_arr[mv_fid[ok]]).tolist()
                wl = []
                for f, li in zip(fid_ok, li_ok):
                    freq = freqs[f]
                    if freq:
                        v = views[f]
                        wl.append(freq.get(
                            v.block_names[int(v.block_of_instr[li])], 1.0))
                    else:
                        wl.append(1.0)
                wss = np.asarray(wl)[korder]
                acc = np.zeros(len(ukm), dtype=float)
                for j in range(int(gcount.max())):
                    sel = gcount > j
                    acc[sel] += wss[gstart[sel] + j]
            stream = np.argsort(korder[gstart], kind="stable")
            pfid = np.searchsorted(np.append(rb_arr[1:], Rtot),
                                   ukm[stream] // Rtot,
                                   side="right").tolist()
            for k_, w_, f_ in zip(ukm[stream].tolist(),
                                  acc[stream].tolist(), pfid):
                graphs[f_].moves[(geti(k_ // Rtot), geti(k_ % Rtot))] = w_
    return graphs


def interference_one(fn: Function, freq: Optional[Dict[str, float]],
                     cls: str, fp: Optional[Tuple] = None):
    """Vectorized interference graph of one function, or ``None``
    without numpy."""
    np = numpy_or_none()
    if np is None:
        return None
    from repro.analysis.cache import fingerprint_function

    if fp is None:
        fp = fingerprint_function(fn)
    v = columnar_view(fn, fp)
    bits = _live_bits(fn, v, fp, np)
    return _interference_kernel([v], [bits], [freq], cls, np)[0]


# ----------------------------------------------------------------------
# adjacency
# ----------------------------------------------------------------------

def _adjacency_kernel(views: Sequence[ColumnarFunction], order: str,
                      cls: str, freqs: Sequence, np) -> List:
    """Adjacency graphs for a corpus in one numpy pass.

    Edge weights are accumulated per key in the reference's exact
    occurrence order — all in-block pairs in layout order, then
    cross-CFG pairs in (block layout, predecessor) order — via a
    positional j-loop over stable-sorted groups, never a pairwise
    reduction, so float sums are bit-identical.  Edge/node dict
    insertion follows first-occurrence order for the same reason.
    Register ids are offset per function, so keys never collide across
    the corpus and one grouping pass serves every graph.
    """
    from repro.analysis.adjacency import AdjacencyGraph

    n_fns = len(views)
    nr = [v.n_regs for v in views]
    nb = [v.n_blocks for v in views]
    reg_base = _bases(nr)
    block_base = _bases(nb)
    Rtot = reg_base[-1] + nr[-1] if n_fns else 0
    Btot = block_base[-1] + nb[-1] if n_fns else 0
    all_regs: List = []
    for v in views:
        all_regs.extend(v.regs)
    graphs = [AdjacencyGraph() for _ in views]

    cat = _catter(np)
    if all(f is None for f in freqs):
        fvals = np.ones(Btot, dtype=float)
    else:
        fvals = cat([np.array([freqs[f].get(nm, 1.0)
                               for nm in v.block_names], dtype=float)
                     if freqs[f] else np.ones(nb[f], dtype=float)
                     for f, v in enumerate(views)], dtype=float)

    # one globally-shifted access stream for the whole corpus: fields of
    # every selected view concatenated once, register/block/instruction
    # ids offset per function with a single repeat each
    use_f = [f for f, v in enumerate(views)
             if v.n_instrs and v.cls_code(cls) is not None]
    if not use_f:
        return graphs
    flats = [views[f].access_fields(order) for f in use_f]
    lens = np.asarray([len(t[0]) for t in flats])
    rb_arr = np.asarray(reg_base)
    bb_arr = np.asarray(block_base)
    ib_arr = np.asarray(_bases([v.n_instrs for v in views]))
    fof = np.repeat(np.asarray(use_f), lens)
    gflat = cat([t[0] for t in flats]) + rb_arr[fof]
    giof = cat([t[1] for t in flats]) + ib_arr[fof]
    regcls = cat([v.reg_cls for v in views])
    boi = cat([v.block_of_instr for v in views])
    codes_arr = np.asarray([c if c is not None else -1 for c in
                            (v.cls_code(cls) for v in views)])
    m = regcls[gflat] == codes_arr[fof]
    if not m.any():
        return graphs
    seq = gflat[m]
    blk = boi[giof[m]] + bb_arr[fof[m]]

    # consecutive accesses within one block (block ids are globally
    # unique, so function boundaries never pair)
    same = blk[1:] == blk[:-1]
    u_in, v_in = seq[:-1][same], seq[1:][same]
    w_in = fvals[blk[1:][same]]

    # cross-CFG pairs: (last access of pred, first access of block),
    # weight f(block)/#preds — all preds count in the divisor, only
    # preds with accesses contribute an edge
    counts_b = np.bincount(blk, minlength=Btot)
    starts_b = np.searchsorted(blk, np.arange(Btot))
    have = counts_b > 0
    first_f = np.full(Btot, -1, dtype=np.int64)
    last_f = np.full(Btot, -1, dtype=np.int64)
    hb = np.nonzero(have)[0]
    first_f[hb] = seq[starts_b[hb]]
    last_f[hb] = seq[starts_b[hb] + counts_b[hb] - 1]
    pc = np.concatenate([np.diff(v.pred_off) for v in views]) \
        if n_fns else np.zeros(0, dtype=np.int64)
    b_of_p = np.repeat(np.arange(Btot), pc)
    preds = np.concatenate([v.pred + block_base[f]
                            for f, v in enumerate(views)
                            if len(v.pred)] or
                           [np.zeros(0, dtype=np.int64)])
    ok = have[b_of_p] & have[preds]
    bb, pp = b_of_p[ok], preds[ok]
    u_x, v_x = last_f[pp], first_f[bb]
    w_x = fvals[bb] / pc[bb]

    us = np.concatenate([u_in, u_x])
    vs = np.concatenate([v_in, v_x])
    ws = np.concatenate([w_in, w_x])
    keep = us != vs  # self edges are never stored
    us, vs, ws = us[keep], vs[keep], ws[keep]
    if not len(us):
        return graphs
    keys = us * Rtot + vs
    korder = np.argsort(keys, kind="stable")
    ks, wss = keys[korder], ws[korder]
    uk, gstart, gcount = np.unique(ks, return_index=True,
                                   return_counts=True)
    acc = np.zeros(len(uk), dtype=float)
    for j in range(int(gcount.max())):
        sel = gcount > j
        acc[sel] += wss[gstart[sel] + j]
    # emit in first-occurrence order so node/edge dict insertion matches
    # the reference's add_edge stream exactly.  Nodes first (their dict
    # position is their first appearance in the u-then-v edge stream),
    # then out-edges grouped by source and in-edges grouped by target —
    # stable grouping keeps stream order within each group, which is
    # exactly each inner dict's insertion order, while hashing every
    # endpoint once per pass instead of once per edge side.
    stream = np.argsort(korder[gstart], kind="stable")
    su = uk[stream] // Rtot
    sv = uk[stream] % Rtot
    acc_s = acc[stream]
    rb_bounds = np.asarray(reg_base[1:] + [Rtot])
    geti = all_regs.__getitem__
    il = np.empty(2 * len(su), dtype=np.int64)
    il[0::2] = su
    il[1::2] = sv
    _, nfirst = np.unique(il, return_index=True)
    node_ids = il[np.sort(nfirst)]
    node_fid = np.searchsorted(rb_bounds, node_ids, side="right")
    # group the edge stream by endpoint and build every inner dict at C
    # speed first, then install each node's pair of dicts with a single
    # store per side, in first-appearance order (their dict position).
    # Nodes with no out- (or in-) edges share one empty dict — safe
    # because callers only see deep copies (``build_adjacency`` returns
    # ``copy()``, which rebuilds every inner dict) and the mutating
    # methods run on those copies.
    packs = []
    for keys_arr, others in ((su, sv), (sv, su)):
        gorder = np.argsort(keys_arr, kind="stable")
        uo, first = np.unique(keys_arr[gorder], return_index=True)
        bounds = np.append(first, len(gorder)).tolist()
        os_objs = list(map(geti, others[gorder].tolist()))
        ws = acc_s[gorder].tolist()
        dicts = [dict(zip(os_objs[bounds[t]:bounds[t + 1]],
                          ws[bounds[t]:bounds[t + 1]]))
                 for t in range(len(uo))]
        pos = np.searchsorted(uo, node_ids)
        has = (pos < len(uo))
        pos = pos.clip(max=max(len(uo) - 1, 0))
        has &= uo[pos] == node_ids
        packs.append((np.where(has, pos, -1).tolist(), dicts))
    shared_empty: Dict = {}
    (sel_out, dicts_out), (sel_in, dicts_in) = packs
    for r, f, po, pi in zip(map(geti, node_ids.tolist()),
                            node_fid.tolist(), sel_out, sel_in):
        g = graphs[f]
        g._out[r] = dicts_out[po] if po >= 0 else shared_empty
        g._in[r] = dicts_in[pi] if pi >= 0 else shared_empty
    return graphs


def adjacency_one(fn: Function, order: str, cls: str,
                  freq: Optional[Mapping[str, float]],
                  fp: Optional[Tuple] = None):
    """Vectorized adjacency graph of one function, or ``None`` without
    numpy."""
    np = numpy_or_none()
    if np is None:
        return None
    from repro.analysis.cache import fingerprint_function

    if fp is None:
        fp = fingerprint_function(fn)
    return _adjacency_kernel([columnar_view(fn, fp)], order, cls, [freq],
                             np)[0]


# ----------------------------------------------------------------------
# corpus prewarm
# ----------------------------------------------------------------------

def prewarm_corpus(fns: Sequence[Function], cls: str = "int",
                   interference: bool = True) -> int:
    """Analyze a corpus in one vectorized pass, warming the analysis
    cache so the per-function pipelines that follow hit instead of
    recomputing.  Returns the number of functions analyzed.

    Liveness runs as one stacked fixed point over the whole batch;
    interference (``freq=None`` — the graph the allocator's first
    iteration asks for) reuses each function's live-out bitsets in a
    second corpus pass.  A no-op when the vector path is disabled: the
    reference engines fill the same cache lazily.
    """
    from repro.analysis.cache import (MISSING, fingerprint_function,
                                      memoize_analysis, peek_analysis)

    fns = list(fns)
    np = numpy_or_none()
    if not fns or np is None or not vectors_enabled():
        return 0
    fps = [fingerprint_function(fn) for fn in fns]
    _batched_liveness(fns, fps, np)
    if interference:
        todo = [i for i in range(len(fns))
                if peek_analysis(("interference", cls, None, fps[i]))
                is MISSING]
        if todo:
            views = [columnar_view(fns[i], fps[i]) for i in todo]
            bits = [_live_bits(fns[i], v, fps[i], np)
                    for i, v in zip(todo, views)]
            graphs = _interference_kernel(views, bits,
                                          [None] * len(todo), cls, np)
            for i, g in zip(todo, graphs):
                memoize_analysis(("interference", cls, None, fps[i]),
                                 lambda g=g: g)
    return len(fns)
