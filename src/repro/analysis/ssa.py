"""SSA construction and destruction over the phi-free IR.

The IR deliberately has no phi opcode — encoded programs never contain
one — so SSA form lives in a *side table*: :class:`SSAForm` pairs the
renamed :class:`~repro.ir.function.Function` with per-block
:class:`Phi` records.  Construction is the textbook Cytron et al.
pipeline on top of :mod:`repro.analysis.dominators`:

* **pruned phi placement** — iterated dominance frontiers per variable,
  filtered by block liveness so only merges of genuinely live values get
  a phi (minimal SSA would also materialise dead merges, whose arguments
  can lack a reaching definition);
* **renaming** — one dominator-tree walk with a version stack per
  original variable.  The first version of a parameter *is* the
  parameter, so ``fn.params`` survives construction unchanged.

Destruction (:func:`destruct_ssa`) lowers every phi to explicit copies
on its incoming edges, treating the copies of one edge as a single
*parallel move*: all phi destinations of a block simultaneously receive
the values their sources held before any copy ran.  Sequentialising that
naively miscompiles the classic swap/lost-copy cases (loop-header phis
that permute each other's operands), so the edge copies go through
:func:`repro.regalloc.moves.decompose_parallel_move` and residual cycles
are broken with one fresh virtual temporary.  Critical edges — a
predecessor with several successors feeding a block with several
predecessors — are split so edge copies execute exactly when the edge is
taken.

Everything here is deterministic: variables are visited in sorted
order, dominator-tree children in layout order, and fresh names come
from a single counter — the same input always yields the same SSA form
and the same lowered function, which the fuzz harness and the service
cache both rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.dominators import dominance_frontiers, dominator_tree
from repro.analysis.liveness import compute_liveness
from repro.ir.function import BasicBlock, Function
from repro.ir.instr import Instr, Reg

__all__ = ["Phi", "SSAForm", "construct_ssa", "destruct_ssa"]


@dataclass(frozen=True)
class Phi:
    """One phi: ``dst`` receives, per incoming edge, the named value.

    ``args`` maps predecessor block name to the SSA value flowing in
    along that edge; ``var`` remembers the pre-SSA variable the phi
    merges (stats, tests and debugging — never semantics).
    """

    dst: Reg
    args: Tuple[Tuple[str, Reg], ...]
    var: Reg

    def arg_for(self, pred: str) -> Reg:
        """The value flowing in along the edge from block ``pred``."""
        for name, value in self.args:
            if name == pred:
                return value
        raise KeyError(f"phi {self.dst} has no argument for edge {pred!r}")


@dataclass
class SSAForm:
    """A function in SSA form: renamed body plus the phi side table."""

    fn: Function
    phis: Dict[str, List[Phi]] = field(default_factory=dict)
    next_vreg: int = 0
    #: versions handed out per original variable (1 def = no renaming)
    versions: Dict[Reg, int] = field(default_factory=dict)

    @property
    def n_phis(self) -> int:
        return sum(len(ps) for ps in self.phis.values())


def _reachable(fn: Function) -> Set[str]:
    succs, _ = fn.cfg()
    seen = {fn.entry.name}
    work = [fn.entry.name]
    while work:
        for s in succs[work.pop()]:
            if s not in seen:
                seen.add(s)
                work.append(s)
    return seen


def _fresh_block_name(fn: Function, base: str) -> str:
    names = {b.name for b in fn.blocks}
    if base not in names:
        return base
    i = 0
    while f"{base}{i}" in names:
        i += 1
    return f"{base}{i}"


def _normalize_entry(fn: Function) -> Function:
    """Give the entry block no predecessors.

    A function whose first block is also a loop header has an implicit
    incoming edge "from outside" that the CFG does not show; phi
    placement and renaming both assume the entry is pred-free, so such
    functions get an empty pre-entry block that falls through.
    """
    _, preds = fn.cfg()
    if not preds[fn.entry.name]:
        return fn
    pre = BasicBlock(_fresh_block_name(fn, "ssa_pre"))
    return Function(fn.name, [pre] + list(fn.blocks), fn.params)


def construct_ssa(fn: Function) -> SSAForm:
    """Build pruned SSA for ``fn`` (the input is left untouched).

    Virtual registers of every class are renamed; physical registers
    pass through (they are ISA state, not dataflow values).  Unreachable
    blocks are left verbatim — they execute never and dominate nothing.
    """
    fn = _normalize_entry(fn.copy())
    reachable = _reachable(fn)
    liveness = compute_liveness(fn)
    children = dominator_tree(fn)
    frontiers = dominance_frontiers(fn)
    succs, preds = fn.cfg()
    blocks = {b.name: b for b in fn.blocks}

    # definition sites per variable (params are defined at entry)
    defsites: Dict[Reg, Set[str]] = {p: {fn.entry.name} for p in fn.params
                                     if p.virtual}
    for b in fn.blocks:
        if b.name not in reachable:
            continue
        for instr in b.instrs:
            for r in instr.defs():
                if r.virtual:
                    defsites.setdefault(r, set()).add(b.name)

    # pruned phi placement: iterated dominance frontier, gated on live-in
    phi_vars: Dict[str, List[Reg]] = {name: [] for name in blocks}
    for var in sorted(defsites):
        placed: Set[str] = set()
        work = sorted(defsites[var])
        while work:
            d = work.pop()
            for y in sorted(frontiers.get(d, ())):
                if y in placed or y not in reachable:
                    continue
                if var not in liveness.live_in[y]:
                    continue  # pruned: the merge would be dead
                placed.add(y)
                phi_vars[y].append(var)
                if y not in defsites[var]:
                    defsites[var].add(y)
                    work.append(y)

    # renaming along the dominator tree
    next_vreg = [fn.max_vreg_id() + 1]
    versions: Dict[Reg, int] = {}
    stacks: Dict[Reg, List[Reg]] = {p: [p] for p in fn.params if p.virtual}

    def new_version(var: Reg) -> Reg:
        versions[var] = versions.get(var, 0) + 1
        r = Reg(next_vreg[0], virtual=True, cls=var.cls)
        next_vreg[0] += 1
        stacks.setdefault(var, []).append(r)
        return r

    def current(var: Reg) -> Reg:
        stack = stacks.get(var)
        return stack[-1] if stack else var

    # phi records are assembled in two passes over the tree walk: dsts
    # when a block is entered, args when each predecessor is processed
    phi_dst: Dict[Tuple[str, Reg], Reg] = {}
    phi_args: Dict[Tuple[str, Reg], Dict[str, Reg]] = {}
    for name, variables in phi_vars.items():
        for var in variables:
            phi_args[(name, var)] = {}

    def rename_block(name: str) -> List[Tuple[Reg, int]]:
        pushed: List[Tuple[Reg, int]] = []
        block = blocks[name]
        for var in phi_vars[name]:
            phi_dst[(name, var)] = new_version(var)
            pushed.append((var, 1))
        new_instrs: List[Instr] = []
        for instr in block.instrs:
            use_map = {r: current(r) for r in set(instr.uses()) if r.virtual}
            srcs = tuple(use_map.get(s, s) for s in instr.srcs)
            call_uses = tuple(use_map.get(s, s) for s in instr.call_uses)
            dst = instr.dst
            if dst is not None and dst.virtual:
                dst = new_version(instr.dst)
                pushed.append((instr.dst, 1))
            call_defs = []
            for r in instr.call_defs:
                if r.virtual:
                    call_defs.append(new_version(r))
                    pushed.append((r, 1))
                else:
                    call_defs.append(r)
            new_instrs.append(replace(instr, dst=dst, srcs=srcs,
                                      call_uses=call_uses,
                                      call_defs=tuple(call_defs)))
        block.instrs = new_instrs
        for s in succs[name]:
            for var in phi_vars.get(s, ()):
                phi_args[(s, var)][name] = current(var)
        return pushed

    # iterative preorder walk (explicit stack: deep loop nests would
    # otherwise hit the recursion limit)
    walk: List[Tuple[str, Optional[List[Tuple[Reg, int]]]]] = \
        [(fn.entry.name, None)]
    while walk:
        name, pushed = walk.pop()
        if pushed is not None:  # post-visit: pop this block's versions
            for var, n in pushed:
                for _ in range(n):
                    stacks[var].pop()
            continue
        walk.append((name, rename_block(name)))
        for child in reversed(children.get(name, ())):
            if child in reachable:
                walk.append((child, None))

    phis: Dict[str, List[Phi]] = {}
    for name, variables in phi_vars.items():
        if not variables:
            continue
        phis[name] = [
            Phi(dst=phi_dst[(name, var)],
                args=tuple(sorted(phi_args[(name, var)].items())),
                var=var)
            for var in variables
        ]
    return SSAForm(fn=fn, phis=phis, next_vreg=next_vreg[0],
                   versions=versions)


# ----------------------------------------------------------------------
# destruction
# ----------------------------------------------------------------------

def _edge_copies(ssa: SSAForm, block: str, pred: str,
                 next_vreg: List[int]) -> List[Instr]:
    """The instructions realising the parallel copy on edge pred->block.

    Phi destinations within one block are distinct, but a destination
    may feed another phi of the same block along a back edge — the swap
    problem — so the copies are ordered via the move-graph decomposition
    and each residual cycle is broken with a fresh temporary.
    """
    from repro.regalloc.moves import decompose_parallel_move

    by_cls: Dict[str, Dict[int, int]] = {}
    regs: Dict[Tuple[str, int], Reg] = {}
    for phi in ssa.phis[block]:
        src = dict(phi.args).get(pred)
        if src is None:
            continue  # unreachable predecessor: the edge never executes
        if src == phi.dst:
            continue
        regs[(phi.dst.cls, phi.dst.id)] = phi.dst
        regs[(src.cls, src.id)] = src
        by_cls.setdefault(phi.dst.cls, {})[phi.dst.id] = src.id

    out: List[Instr] = []
    for cls in sorted(by_cls):
        mapping = by_cls[cls]
        reg = lambda rid: regs[(cls, rid)]  # noqa: E731 - tiny helper
        tree, cycles = decompose_parallel_move(mapping)
        for d, s in tree:
            out.append(Instr("mov", dst=reg(d), srcs=(reg(s),)))
        for cyc in cycles:
            # save c0's old value, shift backwards, read the save last
            tmp = Reg(next_vreg[0], virtual=True, cls=cls)
            next_vreg[0] += 1
            out.append(Instr("mov", dst=tmp, srcs=(reg(cyc[0]),)))
            k = len(cyc)
            for i in range(k - 1):
                out.append(Instr("mov", dst=reg(cyc[-i % k]),
                                 srcs=(reg(cyc[(-i - 1) % k]),)))
            out.append(Instr("mov", dst=reg(cyc[1 % k]), srcs=(tmp,)))
    return out


def destruct_ssa(ssa: SSAForm) -> Function:
    """Lower ``ssa`` back to a phi-free function (out-of-SSA).

    Each phi block's incoming edges get their parallel copies placed at
    the end of the predecessor when the edge is its only way out, or on
    a freshly split block when the edge is critical.  The result
    validates and is semantically equivalent to the construction input.
    """
    fn = ssa.fn.copy()
    next_vreg = [max(ssa.next_vreg, fn.max_vreg_id() + 1)]
    succs, preds = fn.cfg()

    appended: List[BasicBlock] = []
    inserts: List[Tuple[str, BasicBlock]] = []  # fall-through splits
    for block in sorted(ssa.phis):
        for pred in preds[block]:
            copies = _edge_copies(ssa, block, pred, next_vreg)
            if not copies:
                continue
            pred_block = fn.block(pred)
            term = pred_block.terminator()
            if len(succs[pred]) == 1:
                if term is None or not term.uses():
                    # fall-through or unconditional br: copies go at the
                    # end of the predecessor, before the terminator
                    at = len(pred_block.instrs) - (1 if term else 0)
                    pred_block.instrs[at:at] = copies
                else:
                    # degenerate cond branch with both edges into the phi
                    # block: its condition may read a copy destination, so
                    # the copies live in a block of their own after it
                    name = _fresh_block_name(fn, f"{pred}.{block}.crit")
                    pred_block.instrs[-1] = replace(term, label=name)
                    inserts.append((pred, BasicBlock(name, copies)))
                continue
            # critical edge: split it
            assert term is not None  # >1 successor implies a terminator
            name = _fresh_block_name(
                fn, f"{pred}.{block}.crit")
            if term.label == block:
                # the branch-taken edge: new block jumps on to the target
                split = BasicBlock(name, copies + [Instr("br", label=block)])
                pred_block.instrs[-1] = replace(term, label=name)
                appended.append(split)
            else:
                # the fall-through edge: new block slots into the layout
                # right after the predecessor and keeps falling through
                inserts.append((pred, BasicBlock(name, copies)))

    for pred, split in inserts:
        fn.blocks.insert(fn.block_index(pred) + 1, split)
    fn.blocks.extend(appended)
    fn.validate()
    return fn
