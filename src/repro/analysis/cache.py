"""Structural memoization for CFG analyses.

The pipeline recomputes the same analyses many times: every setup of every
sweep point rebuilds liveness for the same input function, the remapper
re-estimates block frequencies the selector already estimated, and the
encoder candidates share one adjacency graph shape.  Functions are mutable
and freely copied (``Function.copy`` preserves instruction ``uid``\\ s), so
caching by object identity would be both unsafe (in-place mutation) and
ineffective (copies miss).  Instead every entry is keyed by a **structural
fingerprint** — a hashable tuple of the blocks, instructions (including
``uid``, which analysis results reference) and parameters.

Correctness rule: a cache hit must be indistinguishable from a recompute.

* The fingerprint covers everything the analysis reads, so in-place
  mutation changes the key and simply misses.
* Results that callers mutate are copied on the way out — the adjacency
  graph (coalescing calls ``merge``) and the frequency dict.  Liveness is
  shared; its contract is read-only (all sets are frozen).

The cache is per-process (each pool worker warms its own) and bounded LRU.
Set ``REPRO_NO_ANALYSIS_CACHE=1`` to disable it when bisecting.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Callable, Dict, Hashable, Tuple, TypeVar

from repro.ir.function import Function

__all__ = [
    "fingerprint_function",
    "fingerprint_cfg",
    "fingerprint_digest",
    "memoize_analysis",
    "peek_analysis",
    "MISSING",
    "clear_analysis_cache",
    "analysis_cache_stats",
    "set_analysis_cache_enabled",
]

V = TypeVar("V")

_MAX_ENTRIES = 256
_cache: "OrderedDict[Hashable, object]" = OrderedDict()
_stats: Dict[str, int] = {"hits": 0, "misses": 0}
_enabled = os.environ.get("REPRO_NO_ANALYSIS_CACHE") != "1"


def fingerprint_function(fn: Function) -> Tuple:
    """Structural identity of a function.

    Includes instruction ``uid``\\ s because analysis results
    (``instr_live_out`` etc.) are keyed by them: two functions that differ
    only in uids must not share a liveness entry.
    """
    return (
        fn.name,
        fn.params,
        tuple(
            (
                b.name,
                tuple(
                    (i.uid, i.op, i.dst, i.srcs, i.imm, i.label,
                     i.call_uses, i.call_defs)
                    for i in b.instrs
                ),
            )
            for b in fn.blocks
        ),
    )


def fingerprint_digest(fn: Function) -> str:
    """Hex content digest of a function for durable, cross-process caches.

    Unlike :func:`fingerprint_function` this *excludes* instruction
    ``uid``\\ s: uids are process-local allocation order, so two builds of
    the same workload (or two parses of the same text) would never share
    a digest, defeating a store that outlives the process.  Everything an
    allocation result can depend on — names, params, block layout,
    opcodes, registers, immediates, labels, call effects — is digested
    via ``repr``, never a salted ``hash()``, so the digest is stable
    across processes and Python versions.
    """
    import hashlib

    canon = (
        fn.name,
        fn.params,
        tuple(
            (
                b.name,
                tuple(
                    (i.op, i.dst, i.srcs, i.imm, i.label,
                     i.call_uses, i.call_defs)
                    for i in b.instrs
                ),
            )
            for b in fn.blocks
        ),
    )
    return hashlib.sha256(repr(canon).encode()).hexdigest()


def fingerprint_cfg(fn: Function) -> Tuple:
    """Identity of the control-flow shape only (block layout + terminators).

    Enough for analyses that never look at non-branch instructions, such
    as loop nesting / static frequency estimation — register renaming and
    straight-line edits keep hitting the same entry.
    """
    shape = []
    for b in fn.blocks:
        term = b.terminator()
        shape.append((b.name, (term.op, term.label) if term else None))
    return tuple(shape)


def memoize_analysis(key: Hashable, compute: Callable[[], V]) -> V:
    """Return the cached value for ``key``, computing it on a miss.

    Unhashable keys (exotic ``imm`` payloads) silently bypass the cache —
    correctness first, speed second.
    """
    if not _enabled:
        return compute()
    try:
        hit = _cache[key]
    except TypeError:
        return compute()
    except KeyError:
        _stats["misses"] += 1
        value = compute()
        _cache[key] = value
        if len(_cache) > _MAX_ENTRIES:
            _cache.popitem(last=False)
        return value
    _cache.move_to_end(key)
    _stats["hits"] += 1
    return hit  # type: ignore[return-value]


#: sentinel returned by :func:`peek_analysis` for absent entries (``None``
#: is a legitimate cached value)
MISSING = object()


def peek_analysis(key: Hashable):
    """The cached value for ``key`` without computing on a miss.

    Returns :data:`MISSING` when the entry is absent, the key is
    unhashable, or the cache is disabled.  Does not count as a hit and
    does not refresh LRU order — this is how the corpus-batched analyses
    (:mod:`repro.analysis.batched`) decide which functions still need a
    slot in the stacked computation.
    """
    if not _enabled:
        return MISSING
    try:
        return _cache[key]
    except (KeyError, TypeError):
        return MISSING


def clear_analysis_cache() -> None:
    """Drop every entry and reset the hit/miss counters."""
    _cache.clear()
    _stats["hits"] = _stats["misses"] = 0


def analysis_cache_stats() -> Dict[str, int]:
    """A snapshot of ``{"hits": ..., "misses": ..., "entries": ...}``."""
    return {"hits": _stats["hits"], "misses": _stats["misses"],
            "entries": len(_cache)}


def set_analysis_cache_enabled(enabled: bool) -> bool:
    """Toggle the cache (used by tests and A/B timing); returns the old
    setting.  Disabling does not clear existing entries."""
    global _enabled
    old, _enabled = _enabled, bool(enabled)
    return old
