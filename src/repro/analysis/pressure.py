"""Register-pressure analysis by block and by loop region.

Selective enabling (paper Section 8.2) needs to know *where* pressure
exceeds the directly encodable registers: "it is likely that in some
regions register pressure is very high, typically those frequently executed
and heavily optimized code segments".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.liveness import compute_liveness
from repro.analysis.loops import find_natural_loops
from repro.ir.function import Function

__all__ = ["PressureRegion", "block_pressure", "loop_pressure_regions"]


@dataclass(frozen=True)
class PressureRegion:
    """A natural loop annotated with its register pressure."""

    header: str
    blocks: Tuple[str, ...]
    max_pressure: int

    def exceeds(self, k: int) -> bool:
        """Whether this region needs more than ``k`` registers."""
        return self.max_pressure > k


def block_pressure(fn: Function, cls: str = "int") -> Dict[str, int]:
    """Maximum number of simultaneously live registers per block."""
    liveness = compute_liveness(fn)
    out: Dict[str, int] = {}
    for block in fn.blocks:
        best = sum(1 for r in liveness.live_out[block.name] if r.cls == cls)
        for instr in block.instrs:
            live = liveness.instr_live_in[instr.uid]
            best = max(best, sum(1 for r in live if r.cls == cls))
        out[block.name] = best
    return out


def loop_pressure_regions(fn: Function, cls: str = "int") -> List[PressureRegion]:
    """Every natural loop with its MaxLive — the paper's high-pressure
    region candidates, sorted hottest-first by pressure."""
    pressures = block_pressure(fn, cls)
    regions = [
        PressureRegion(
            header=loop.header,
            blocks=tuple(sorted(loop.body)),
            max_pressure=max(pressures[b] for b in loop.body),
        )
        for loop in find_natural_loops(fn)
    ]
    return sorted(regions, key=lambda r: (-r.max_pressure, r.header))
