"""Command-line interface: ``python -m repro <command>``.

Commands regenerate the paper's tables and figures, run single benchmarks,
or encode standalone assembly files:

.. code-block:: console

    $ python -m repro lowend            # Table 1 + Figures 11-14
    $ python -m repro fig11             # just one figure
    $ python -m repro swp --loops 400   # Tables 2-3
    $ python -m repro alternatives      # the Section 1 width study
    $ python -m repro bench sha         # one kernel through all setups
    $ python -m repro list              # available workloads
    $ python -m repro encode prog.s --reg-n 12 --diff-n 8
    $ python -m repro lint prog.s       # static IR checks on a file
    $ python -m repro lint all          # ... on every bundled workload
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main"]


def _resolve_cli_jobs(args) -> Optional[int]:
    """Validate ``--jobs``, rendering failures through the shared
    diagnostics machinery.  Returns the worker count, or ``None`` after
    printing the finding (the caller exits 2)."""
    from repro.parallel import resolve_jobs

    try:
        return resolve_jobs(args.jobs)
    except ValueError as exc:
        from repro.diagnostics import Diagnostic, Location, Severity

        print(Diagnostic(
            rule="CLI01", name="bad-jobs", severity=Severity.ERROR,
            message=str(exc),
            location=Location(file="--jobs"),
            hint="pass a non-negative integer; 0 means one worker per core",
        ).render(), file=sys.stderr)
        return None


def _add_parallel_args(p, with_seed: bool = True) -> None:
    """The shared ``--jobs``/``--seed`` experiment flags."""
    p.add_argument("--jobs", type=int, default=1,
                   help="process-pool workers for the experiment grid "
                        "(0 = all cores; results are identical for any "
                        "value)")
    if with_seed:
        p.add_argument("--seed", type=int, default=0,
                       help="seed for the remapping search's random "
                            "restarts")


def _cmd_lowend(args) -> int:
    from repro.experiments import run_lowend_experiment

    jobs = _resolve_cli_jobs(args)
    if jobs is None:
        return 2
    exp = run_lowend_experiment(remap_restarts=args.restarts,
                                profile=not args.static_weights,
                                verify_each_pass=args.verify_each_pass,
                                lint_mode=args.lint_mode,
                                jobs=jobs, seed=args.seed)
    if exp.pass_verifier is not None and not exp.pass_verifier.clean:
        print(exp.pass_verifier.attribution(), file=sys.stderr)
    figures = {
        "lowend": exp.render_all,
        "table1": lambda: exp.table1().render(),
        "fig11": lambda: exp.fig11_spills().render(),
        "fig12": lambda: exp.fig12_cost().render(),
        "fig13": lambda: exp.fig13_codesize().render(),
        "fig14": lambda: exp.fig14_speedup().render(),
    }
    print(figures[args.command]())
    return 0


def _cmd_swp(args) -> int:
    from repro.experiments import run_swp_experiment

    jobs = _resolve_cli_jobs(args)
    if jobs is None:
        return 2
    exp = run_swp_experiment(n_loops=args.loops, seed=args.seed, jobs=jobs)
    print(f"population: {len(exp.loops)} loops; "
          f"{100 * exp.fraction_needing_more_than_32:.1f}% need >32 registers")
    print()
    print(exp.render_all())
    return 0


def _cmd_alternatives(args) -> int:
    from repro.experiments.alternatives import run_alternatives_study

    jobs = _resolve_cli_jobs(args)
    if jobs is None:
        return 2
    study = run_alternatives_study(remap_restarts=args.restarts, jobs=jobs)
    print(study.table().render())
    return 0


def _cmd_bench(args) -> int:
    from repro.analysis.profile import (block_frequencies_from_counts,
                                        profile_block_frequencies)
    from repro.experiments.reporting import Table
    from repro.machine import (LowEndTimingModel, interpret_or_derive,
                               record_reference_run)
    from repro.regalloc import SETUPS, run_setup
    from repro.workloads import get_workload

    try:
        workload = get_workload(args.name)
    except KeyError:
        print(f"unknown benchmark {args.name!r}; try `python -m repro list`",
              file=sys.stderr)
        return 1
    fn = workload.function()
    run_args = workload.default_args
    recorded = record_reference_run(fn, run_args)
    if recorded is not None and recorded.block_instr_counts:
        freq = block_frequencies_from_counts(fn, recorded.block_instr_counts)
    else:
        freq = profile_block_frequencies(fn, run_args)
    timing = LowEndTimingModel()
    verifier = None
    if args.verify_each_pass:
        from repro.lint import PassVerifier

        verifier = PassVerifier(mode=args.lint_mode)
        verifier.prefix = args.name
    jobs = _resolve_cli_jobs(args)
    if jobs is None:
        return 2
    table = Table(f"{args.name}: all {len(SETUPS)} registered setups",
                  ["setup", "instrs", "spills", "setlr", "cycles"])
    for setup in SETUPS:
        prog = run_setup(fn, setup, freq=freq, remap_restarts=args.restarts,
                         pass_verifier=verifier,
                         remap_seed=args.seed, remap_jobs=jobs)
        result = interpret_or_derive(prog.final_fn, run_args, recorded)
        report = timing.time(result.columnar if result.columnar is not None
                             else result.trace)
        table.add_row(setup, prog.n_instructions, prog.n_spills,
                      prog.n_setlr, report.cycles)
    print(table.render())
    if verifier is not None and not verifier.clean:
        print(verifier.attribution(), file=sys.stderr)
        return 1
    return 0


def _cmd_list(args) -> int:
    from repro.workloads import MIBENCH

    for w in MIBENCH:
        print(f"{w.name:14} {w.description}")
    return 0


def _parse_file(path: str):
    """Parse an assembly file, rendering failures like lint findings."""
    from repro.ir import ParseError, parse_function

    try:
        with open(path) as f:
            text = f.read()
    except OSError as exc:
        raise ParseError(f"cannot read {path}: {exc.strerror}", file=path)
    return parse_function(text, filename=path)


def _cmd_encode(args) -> int:
    from repro.encoding import EncodingConfig, encode_function, verify_encoding

    fn = _parse_file(args.file)
    config = EncodingConfig(reg_n=args.reg_n, diff_n=args.diff_n,
                            access_order=args.access_order)
    enc = encode_function(fn, config)
    verify_encoding(enc)
    print(enc.fn)
    print(f"# RegN={args.reg_n} DiffN={args.diff_n} "
          f"field width {config.field_bits} bits "
          f"(direct would need {config.direct_field_bits})")
    print(f"# set_last_reg: {enc.n_setlr_inline} out-of-range + "
          f"{enc.n_setlr_join} join repairs "
          f"({100 * enc.overhead_fraction:.1f}% of instructions)")
    return 0


def _cmd_disasm(args) -> int:
    from repro.encoding import EncodingConfig, encode_function, pack_function
    from repro.encoding.objdump import disassemble

    fn = _parse_file(args.file)
    config = EncodingConfig(reg_n=args.reg_n, diff_n=args.diff_n)
    packed = pack_function(encode_function(fn, config))
    print(disassemble(packed))
    return 0


def _cmd_report(args) -> int:
    from repro.experiments.reporting import generate_report

    jobs = _resolve_cli_jobs(args)
    if jobs is None:
        return 2
    text = generate_report(n_loops=args.loops,
                           remap_restarts=args.restarts,
                           jobs=jobs)
    if args.out:
        with open(args.out, "w") as f:
            f.write(text + "\n")
        print(f"report written to {args.out}")
    else:
        print(text)
    return 0


def _cmd_lint(args) -> int:
    import json
    import os

    from repro.encoding import EncodingConfig
    from repro.lint import LintOptions, Severity, run_lint
    from repro.workloads import MIBENCH, get_workload

    encoding = None
    if args.reg_n is not None:
        try:
            encoding = EncodingConfig(reg_n=args.reg_n,
                                      diff_n=args.diff_n or args.reg_n,
                                      access_order=args.access_order)
        except ValueError as exc:
            print(f"bad encoding parameters: {exc}", file=sys.stderr)
            return 2
    options = LintOptions(
        allocated=True if args.allocated else None,
        k=args.k,
        encoding=encoding,
        access_order=args.access_order,
        disabled=frozenset(args.disable or ()),
    )

    targets = []  # (display name, Function)
    for target in args.targets:
        if target == "all":
            targets.extend((w.name, w.function()) for w in MIBENCH)
        elif os.path.exists(target):
            targets.append((target, _parse_file(target)))
        else:
            try:
                targets.append((target, get_workload(target).function()))
            except KeyError:
                print(f"lint target {target!r} is neither a file nor a "
                      "workload; try `python -m repro list`",
                      file=sys.stderr)
                return 2

    # exit-code contract (documented in docs/lint_rules.md): 1 only on
    # error-severity findings — warnings alone pass, unless --strict
    # escalates them or --max-warnings bounds their total; 2 on bad usage
    threshold = Severity.WARNING if args.strict else Severity.ERROR
    as_json = args.json or args.format == "json"
    failed = False
    n_warnings = 0
    json_out = {}
    envelope = []
    for display, fn in targets:
        report = run_lint(fn, options)
        if report.at_least(threshold):
            failed = True
        n_warnings += len(report.warnings)
        if args.json:
            json_out[display] = json.loads(report.render_json())
        elif args.format == "json":
            # field names shared with the compile service's error envelope
            # (repro.service.protocol.error_response): name, message,
            # diagnostics, ok — tooling can parse both with one schema
            envelope.append({
                "name": display,
                "ok": report.ok,
                "errors": len(report.errors),
                "warnings": len(report.warnings),
                "diagnostics": [d.to_dict() for d in report.diagnostics],
            })
        elif report.diagnostics:
            print(f"== {display}")
            print(report.render_text())
        else:
            print(f"== {display}: clean")
    if args.max_warnings is not None and n_warnings > args.max_warnings:
        failed = True
        if not as_json:
            print(f"{n_warnings} warning(s) exceed the "
                  f"--max-warnings {args.max_warnings} budget",
                  file=sys.stderr)
    if args.json:
        print(json.dumps(json_out, indent=2))
    elif args.format == "json":
        print(json.dumps({"ok": not failed, "targets": envelope}, indent=2))
    return 1 if failed else 0


def _fmt_abstract(state):
    """JSON-friendly abstract last_reg state: class -> value, TOP -> 'T',
    whole-state None (unreachable block) -> None."""
    from repro.encoding.static_verifier import TOP

    if state is None:
        return None
    return {cls: ("T" if v is TOP else v) for cls, v in sorted(state.items())}


def _cmd_analyze(args) -> int:
    import json
    import os

    from repro.encoding.static_verifier import verify_encoding_static
    from repro.regalloc.pipeline import SETUPS, run_setup
    from repro.workloads import MIBENCH, get_workload

    setups = tuple(args.setup) if args.setup else \
        tuple(s for s in SETUPS if s not in ("baseline", "ospill"))

    targets = []  # (display name, factory) — fresh Function per setup
    for target in args.targets:
        if target == "all":
            targets.extend((w.name, w.function) for w in MIBENCH)
        elif os.path.exists(target):
            targets.append((target, lambda t=target: _parse_file(t)))
        else:
            try:
                targets.append((target, get_workload(target).function))
            except KeyError:
                print(f"analyze target {target!r} is neither a file nor a "
                      "workload; try `python -m repro list`",
                      file=sys.stderr)
                return 2

    failed = False
    results = []
    for display, factory in targets:
        for setup in setups:
            prog = run_setup(factory(), setup,
                             remap_restarts=args.restarts,
                             setlr_elim=not args.no_elim)
            entry = {"name": display, "setup": setup}
            if prog.encoded is None:
                entry["encoded"] = False
                results.append(entry)
                continue
            enc = prog.encoded
            sv = verify_encoding_static(enc)
            analysis = sv.analysis
            if not sv.ok:
                failed = True
            entry.update({
                "encoded": True,
                "ok": sv.ok,
                "iterations": analysis.iterations,
                "blocks": {
                    b.name: {
                        "entry": _fmt_abstract(analysis.entry_states[b.name]),
                        "exit": _fmt_abstract(analysis.exit_states[b.name]),
                    }
                    for b in enc.fn.blocks
                },
                "setlr": {
                    "inline": enc.n_setlr_inline,
                    "join": enc.n_setlr_join,
                    "removed": enc.n_setlr_removed,
                    "final": enc.n_setlr,
                    "redundant_remaining": analysis.n_redundant,
                    "dead_remaining": analysis.n_dead,
                },
                "errors": len(sv.report.errors),
                "warnings": len(sv.report.warnings),
                "diagnostics": [d.to_dict() for d in sv.report.diagnostics],
            })
            results.append(entry)

    if args.format == "json":
        print(json.dumps({"ok": not failed, "results": results}, indent=2))
        return 1 if failed else 0

    for entry in results:
        head = f"== {entry['name']}/{entry['setup']}"
        if not entry["encoded"]:
            print(f"{head}: direct encoding (nothing to analyze)")
            continue
        s = entry["setlr"]
        verdict = "ok" if entry["ok"] else f"{entry['errors']} error(s)"
        print(f"{head}: {verdict}, {entry['iterations']} fixpoint "
              "iteration(s)")
        print(f"   set_last_reg: {s['inline']} out-of-range + {s['join']} "
              f"join - {s['removed']} eliminated = {s['final']} "
              f"({s['redundant_remaining']} redundant, "
              f"{s['dead_remaining']} dead remaining)")
        for bname, states in entry["blocks"].items():
            if states["entry"] is None:
                print(f"   {bname:12} unreachable")
                continue
            ein = " ".join(f"{c}={v}" for c, v in states["entry"].items())
            eout = " ".join(f"{c}={v}" for c, v in states["exit"].items())
            print(f"   {bname:12} entry[{ein}] exit[{eout}]")
        for d in entry["diagnostics"]:
            print(f"   {d['severity']}: {d['message']} [{d['rule']}]")
    return 1 if failed else 0


def _cmd_sweep(args) -> int:
    from repro.experiments import run_regn_sweep

    jobs = _resolve_cli_jobs(args)
    if jobs is None:
        return 2
    sweep = run_regn_sweep(remap_restarts=args.restarts, jobs=jobs,
                           seed=args.seed)
    print(sweep.table().render())
    print(f"\nbest RegN on this suite: {sweep.best_reg_n()}")
    return 0


def _cmd_bench_remap(args) -> int:
    from repro.benchtrack import write_bench_json

    jobs = _resolve_cli_jobs(args)
    if jobs is None:
        return 2
    doc = write_bench_json(args.out, remap_restarts=args.restarts,
                           sweep_jobs=jobs, workload=args.workload,
                           reg_n=args.reg_n)
    remap, sweep, wire = doc["remap"], doc["sweep"], doc["wire"]
    print(f"remap descent ({remap['workload']}, RegN={remap['reg_n']}, "
          f"{remap['restarts']} restarts, {remap['engine']}): "
          f"{remap['speedup']:.1f}x vs reference "
          f"(identical={remap['identical_results']})")
    print(f"RegN sweep ({len(sweep['workloads'])} workloads, "
          f"{sweep['cpus']} cpus, {sweep['effective_workers']} effective "
          f"workers at jobs={sweep['jobs']}): jobs " + "  ".join(
              f"{e['jobs']}={e['speedup']:.2f}x"
              for e in sweep["jobs_sweep"]) +
          f" vs serial (identical={sweep['identical_results']})")
    print(f"wire codec ({wire['instructions']} instrs): "
          f"{wire['bytes_ratio']:.1f}x smaller than pickle "
          f"({wire['wire_bytes']} vs {wire['pickle_bytes']} bytes)")
    print(f"written to {args.out}")
    return 0 if remap["identical_results"] and sweep["identical_results"] \
        else 1


def _cmd_bench_sim(args) -> int:
    from repro.benchtrack import collect_sim_benchmarks, write_bench_json

    doc = write_bench_json(args.out, doc=collect_sim_benchmarks(
        n_workloads=args.workloads, remap_restarts=args.restarts))
    sim = doc["sim"]
    print(f"simulation layer ({len(sim['workloads'])} workloads x "
          f"{len(sim['setups'])} setups, "
          f"{sim['dynamic_instructions']} dynamic instructions): "
          f"{sim['speedup']:.1f}x vs reference "
          f"(identical={sim['identical_results']})")
    print(f"written to {args.out}")
    return 0 if sim["identical_results"] else 1


def _cmd_bench_analysis(args) -> int:
    from repro.benchtrack import (collect_analysis_benchmarks,
                                  write_bench_json)

    doc = write_bench_json(args.out, doc=collect_analysis_benchmarks(
        n_workloads=args.workloads, repeats=args.repeats))
    ana = doc["analysis"]
    stages = ana["stages"]
    print(f"analysis kernels ({ana['functions']} functions, "
          f"{ana['instructions']} instructions, corpus-batched): "
          f"{ana['speedup']:.2f}x vs reference "
          f"(identical={ana['identical_results']})")
    print("  " + "  ".join(f"{name}={s['speedup']:.2f}x"
                           for name, s in stages.items()) +
          f"  views={1e3 * ana['views_seconds']:.2f}ms "
          f"(cold {ana['cold_speedup']:.2f}x)")
    print(f"written to {args.out}")
    return 0 if ana["identical_results"] else 1


def _cmd_bench_moves(args) -> int:
    from repro.benchtrack import collect_moves_benchmarks, write_bench_json

    doc = write_bench_json(args.out, doc=collect_moves_benchmarks(
        n_workloads=args.workloads, remap_restarts=args.restarts,
        gap_workloads=args.gap_workloads, gap_restarts=args.gap_restarts))
    moves = doc["moves"]
    totals, dec = moves["totals"], moves["decoder"]
    print(f"move resolver ({len(moves['workloads'])} workloads x "
          f"{len(moves['setups'])} setups): "
          f"{totals['runs_rewritten']:.0f} runs rewritten, "
          f"{totals['instructions_saved']:.0f} instructions saved, "
          f"{totals['permis']:.0f} permis; cycles "
          f"{totals['cycles_off']:.0f} -> {totals['cycles_on']:.0f} "
          f"(permi {totals['cycles_permi']:.0f}, "
          f"identical-or-better={moves['identical_results']})")
    print(f"remap optimality gap (RegN={moves['remap_gap'][0]['reg_n']}, "
          f"{len(moves['remap_gap'])} workloads): "
          f"max gap {moves['max_gap']:.0f}  " + "  ".join(
              f"{g['workload']}={g['gap']:.0f}"
              for g in moves["remap_gap"]))
    print(f"decoder envelope: differential "
          f"{dec['differential']['gate_count']} gates / "
          f"{dec['differential']['delay_ns']:.2f}ns, permi crossbar "
          f"{dec['permi_crossbar']['gate_count']} gates / "
          f"{dec['permi_crossbar']['delay_ns']:.2f}ns")
    print(f"written to {args.out}")
    return 0 if moves["identical_results"] else 1


def _cmd_allocators(args) -> int:
    import json

    from repro.experiments.reporting import Table
    from repro.regalloc.zoo import list_allocators

    infos = list_allocators()
    if args.json:
        print(json.dumps({"allocators": [i.to_dict() for i in infos]},
                         indent=2, sort_keys=True))
        return 0
    table = Table(f"allocator zoo: {len(infos)} registered backends",
                  ["name", "spill style", "diff", "ssa", "classes",
                   "description"])
    for info in infos:
        table.add_row(info.name, info.spill_style,
                      "yes" if info.differential else "no",
                      "yes" if info.needs_ssa else "no",
                      ",".join(info.reg_classes), info.description)
    print(table.render())
    return 0


def _cmd_bench_allocators(args) -> int:
    from repro.benchtrack import collect_allocator_benchmarks, write_bench_json

    doc = write_bench_json(args.out, doc=collect_allocator_benchmarks(
        n_workloads=args.workloads, remap_restarts=args.restarts))
    zoo = doc["allocators"]
    print(f"allocator zoo ({len(zoo['workloads'])} workloads x "
          f"{len(zoo['setups'])} backends): "
          f"equivalent={zoo['identical_results']}")
    for name in zoo["setups"]:
        s = zoo["totals"][name]
        print(f"  {name:<10} instrs {s['instructions']:>6.0f}  "
              f"spills {s['spills']:>4.0f}  setlr {s['setlr']:>4.0f}  "
              f"cycles {s['cycles']:>9.0f}")
    print(f"written to {args.out}")
    return 0 if zoo["identical_results"] else 1


def _fuzz_config_from_args(args):
    from repro.fuzz import FuzzConfig

    try:
        return FuzzConfig(
            n_regions=args.regions, loop_depth=args.loop_depth,
            base_values=args.values, ops_per_block=args.ops,
            loop_trip=args.trip, fresh_bias=args.fresh_bias,
            call_density=args.calls, mem_density=args.mem,
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")


def _add_fuzz_knobs(p) -> None:
    """Generator knobs shared by ``fuzz repro`` and ``fuzz gen``; the
    defaults mirror :class:`repro.fuzz.FuzzConfig`."""
    p.add_argument("--regions", type=int, default=4,
                   help="sequential control-flow regions")
    p.add_argument("--loop-depth", type=int, default=1,
                   help="maximum loop nesting depth (0 = no loops)")
    p.add_argument("--values", type=int, default=8,
                   help="values initialised up front (pressure floor)")
    p.add_argument("--ops", type=int, default=5,
                   help="ALU instructions per straight run")
    p.add_argument("--trip", type=int, default=3,
                   help="maximum loop trip count")
    p.add_argument("--fresh-bias", type=float, default=0.25,
                   help="probability an ALU result starts a new live range")
    p.add_argument("--calls", type=float, default=0.0,
                   help="call density per region body")
    p.add_argument("--mem", type=float, default=0.0,
                   help="memory-op density per region body")


def _fuzz_setups(args):
    from repro.regalloc.pipeline import SETUPS

    if not args.setups:
        return None
    setups = tuple(s.strip() for s in args.setups.split(",") if s.strip())
    for s in setups:
        if s not in SETUPS:
            raise SystemExit(f"unknown setup {s!r}; expected one of {SETUPS}")
    return setups


def _cmd_fuzz_run(args) -> int:
    from repro.fuzz import run_fuzz
    from repro.fuzz.harness import format_failure, shrink_case
    from repro.fuzz.gen import FuzzConfig

    jobs = _resolve_cli_jobs(args)
    if jobs is None:
        return 2
    setups = _fuzz_setups(args)
    report = run_fuzz(args.seed, args.cases, jobs=jobs, setups=setups,
                      restarts=args.restarts)
    print(report.summary())
    if report.ok:
        return 0
    first = report.failures[0]
    config = FuzzConfig.from_dict(dict(first["config"]))
    shrunk = shrink_case(int(first["seed"]), config, setups, args.restarts)
    text = format_failure(first, shrunk)
    print(text)
    if args.repro_out:
        with open(args.repro_out, "w") as fh:
            fh.write(text + "\n")
        print(f"minimized reproducer written to {args.repro_out}")
    return 1


def _cmd_fuzz_repro(args) -> int:
    from repro.fuzz.harness import format_failure, run_case

    outcome = run_case(args.seed, _fuzz_config_from_args(args),
                       _fuzz_setups(args), args.restarts)
    if not outcome["failures"]:
        print(f"case seed={args.seed}: all oracles agree")
        return 0
    print(format_failure(outcome))
    return 1


def _cmd_fuzz_gen(args) -> int:
    from repro.fuzz import generate_fuzz_function
    from repro.ir import format_function

    print(format_function(
        generate_fuzz_function(args.seed, _fuzz_config_from_args(args))))
    return 0


def _cmd_fuzz_moves(args) -> int:
    from repro.fuzz.moves import (format_moves_failure, generate_moves_case,
                                  run_explicit_case, run_moves_fuzz,
                                  shrink_moves_case)

    if args.replay is not None:
        outcome = run_explicit_case(args.replay,
                                    generate_moves_case(args.replay))
        if not outcome["failures"]:
            print(f"moves case seed={args.replay}: all oracles agree")
            return 0
        print(format_moves_failure(outcome))
        return 1

    jobs = _resolve_cli_jobs(args)
    if jobs is None:
        return 2
    report = run_moves_fuzz(args.seed, args.cases, jobs=jobs)
    print(report.summary())
    if report.ok:
        return 0
    first = report.failures[0]
    shrunk = shrink_moves_case(int(first["seed"]), first["case"])
    text = format_moves_failure(first, shrunk)
    print(text)
    if args.repro_out:
        with open(args.repro_out, "w") as fh:
            fh.write(text + "\n")
        print(f"minimized reproducer written to {args.repro_out}")
    return 1


def _cmd_serve(args) -> int:
    from repro.service.server import ServiceServer
    from repro.service.store import open_store

    jobs = _resolve_cli_jobs(args)
    if jobs is None:
        return 2
    store = open_store(args.store or None, shards=args.store_shards,
                       max_bytes=args.cache_bytes,
                       hot_entries=args.hot_entries)
    server = ServiceServer(
        args.host, args.port, store=store, jobs=jobs,
        queue_limit=args.queue_limit, max_batch=args.max_batch,
        linger=args.linger, request_timeout=args.timeout,
        recycle_after=args.recycle_after or None,
        allow_debug=args.allow_debug, telemetry_path=args.telemetry,
        verbose=args.verbose,
    )

    def announce(host: str, port: int) -> None:
        print(f"repro service listening on {host}:{port} "
              f"(jobs={jobs}, store={store.root})", flush=True)
        if args.ready_file:
            with open(args.ready_file, "w") as fh:
                fh.write(f"{host}:{port}\n")

    server.serve_forever(ready_callback=announce)
    print("repro service drained and stopped", flush=True)
    return 0


def _cmd_request(args) -> int:
    import json
    import os

    from repro.service.client import ServiceClient, ServiceError
    from repro.service.protocol import build_compile_request

    if os.path.exists(args.target):
        with open(args.target) as fh:
            request = build_compile_request(
                text=fh.read(), setup=args.setup, **_request_options(args))
    else:
        request = build_compile_request(
            workload=args.target, setup=args.setup,
            **_request_options(args))

    client = ServiceClient(args.host, args.port, timeout=args.timeout)
    reply = client.compile_request(request)
    if args.json:
        print(reply.body.decode("ascii"))
        return 0 if reply.ok else 1
    try:
        result = reply.result()
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        envelope = exc.envelope.get("error") or {}
        for diag in envelope.get("diagnostics", ()):
            print(f"  {diag.get('rule')}/{diag.get('name')}: "
                  f"{diag.get('message')}", file=sys.stderr)
        return 1
    alloc = result["allocation"]
    print(f"{result['name']} via {result['setup']} "
          f"[cache {reply.cache or 'n/a'}]")
    print(f"  instructions {alloc['instructions']}  "
          f"spills {alloc['spills']}  setlr {alloc['setlr']}")
    if result.get("cycles"):
        cyc = result["cycles"]
        print(f"  cycles {cyc['cycles']}  cpi {cyc['cpi']:.2f}  "
              f"energy {cyc['energy']:.1f}  "
              f"checksum {result['checksum']}")
    return 0


def _request_options(args) -> dict:
    options = dict(base_k=args.base_k, reg_n=args.reg_n,
                   diff_n=args.diff_n, access_order=args.access_order,
                   restarts=args.restarts, seed=args.seed)
    out = dict(options, simulate=not args.no_simulate)
    if args.args is not None:
        out["args"] = [int(a) for a in args.args.split(",") if a.strip()]
    if args.profile:
        out["profile"] = True
    return out


def _cmd_cache(args) -> int:
    from repro.service.store import open_store

    store = open_store(args.store or None, shards=args.shards)
    if args.cache_command == "stats":
        stats = store.stats()
        print(f"store {stats['root']}: {stats['entries']} artifact(s), "
              f"{stats['bytes']} / {stats['max_bytes']} bytes")
        for shard in stats.get("shards", ()):
            print(f"  shard {shard['root']}: {shard['entries']} "
                  f"artifact(s), {shard['bytes']} bytes")
        return 0
    removed = store.clear()
    print(f"store {store.root}: removed {removed} artifact(s)")
    return 0


def _cmd_service_smoke(args) -> int:
    from repro.service.smoke import run_smoke

    return run_smoke(out_path=args.out, cases=args.cases, jobs=args.jobs,
                     request_timeout=args.timeout)


def _cmd_loadtest(args) -> int:
    from repro.service.loadtest import run_loadtest

    doc = run_loadtest(
        args.host, args.port, n_requests=args.requests,
        concurrency=args.concurrency, out_path=args.out,
        spawn=args.spawn, jobs=args.jobs, client_timeout=args.timeout,
    )
    lt = doc["loadtest"]
    print(f"loadtest: {lt['requests']} requests @ concurrency "
          f"{lt['concurrency']} in {lt['elapsed_seconds']:.2f}s "
          f"({lt['throughput_rps']:.1f} req/s)")
    print(f"  latency ms: p50 {lt['p50_ms']:.1f}  p90 {lt['p90_ms']:.1f}  "
          f"p99 {lt['p99_ms']:.1f}")
    print(f"  cache: {lt['hits']} hits / {lt['misses']} misses "
          f"(hit rate {100 * lt['hit_rate']:.0f}%)  errors {lt['errors']}")
    workers = lt.get("effective_workers")
    if workers is not None:
        print(f"  pool: {workers} effective worker(s) "
              f"(requested jobs={lt['jobs']})" if lt["jobs"] is not None
              else f"  pool: {workers} effective worker(s)")
    print(f"written to {args.out}")
    return 0 if lt["errors"] == 0 else 1


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser with all subcommands."""
    from repro.regalloc.zoo import allocator_names

    setup_choices = allocator_names()
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Differential Register Allocation' "
                    "(PLDI 2005): regenerate the paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, help_text in [
        ("lowend", "Table 1 and Figures 11-14 (the MiBench study)"),
        ("table1", "the low-end machine configuration"),
        ("fig11", "static spill percentage"),
        ("fig12", "set_last_reg cost percentage"),
        ("fig13", "code size relative to baseline"),
        ("fig14", "speedup over baseline"),
    ]:
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--restarts", type=int, default=50,
                       help="remapping restarts (paper uses 1000)")
        p.add_argument("--static-weights", action="store_true",
                       help="use static loop-nest frequency estimates "
                            "instead of interpreter profiles")
        p.add_argument("--verify-each-pass", action="store_true",
                       help="run the static IR checker between pipeline "
                            "stages and attribute the first violation")
        p.add_argument("--lint-mode", default="strict",
                       choices=("strict", "warn"),
                       help="strict: stop at the offending pass; "
                            "warn: record and continue")
        _add_parallel_args(p)
        p.set_defaults(func=_cmd_lowend)

    p = sub.add_parser("swp", help="Tables 2-3 (the software-pipelining study)")
    p.add_argument("--loops", type=int, default=400,
                   help="population size (paper: 1928)")
    p.add_argument("--seed", type=int, default=2005,
                   help="loop-population seed")
    _add_parallel_args(p, with_seed=False)
    p.set_defaults(func=_cmd_swp)

    p = sub.add_parser("alternatives",
                       help="direct-8 vs direct-16 vs differential-12 "
                            "(the Section 1 motivation)")
    p.add_argument("--restarts", type=int, default=25)
    _add_parallel_args(p, with_seed=False)
    p.set_defaults(func=_cmd_alternatives)

    p = sub.add_parser("bench", help="run one benchmark through all setups")
    p.add_argument("name")
    p.add_argument("--restarts", type=int, default=50)
    p.add_argument("--verify-each-pass", action="store_true",
                   help="lint the IR after every pipeline stage")
    p.add_argument("--lint-mode", default="strict",
                   choices=("strict", "warn"))
    _add_parallel_args(p)
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser("list", help="list available benchmarks")
    p.set_defaults(func=_cmd_list)

    p = sub.add_parser("allocators",
                       help="list the registered allocator backends and "
                            "their capability metadata (the zoo)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable output")
    p.set_defaults(func=_cmd_allocators)

    p = sub.add_parser("encode",
                       help="differentially encode an assembly file")
    p.add_argument("file")
    p.add_argument("--reg-n", type=int, default=12)
    p.add_argument("--diff-n", type=int, default=8)
    p.add_argument("--access-order", default="src_first",
                   choices=("src_first", "dst_first", "two_address"))
    p.set_defaults(func=_cmd_encode)

    p = sub.add_parser("disasm",
                       help="encode an assembly file to bits and show the "
                            "annotated disassembly")
    p.add_argument("file")
    p.add_argument("--reg-n", type=int, default=12)
    p.add_argument("--diff-n", type=int, default=8)
    p.set_defaults(func=_cmd_disasm)

    p = sub.add_parser("lint",
                       help="static IR checks (rules L001-L011, see "
                            "docs/lint_rules.md) on assembly files or "
                            "bundled workloads")
    p.add_argument("targets", nargs="+",
                   help=".s file path, workload name, or 'all'")
    p.add_argument("--json", action="store_true",
                   help="machine-readable output (legacy per-target map; "
                        "prefer --format json)")
    p.add_argument("--format", choices=("text", "json"), default="text",
                   help="output format; json shares field names with the "
                        "compile-service error envelope")
    p.add_argument("--strict", action="store_true",
                   help="treat warnings as failures")
    p.add_argument("--max-warnings", type=int, default=None, metavar="N",
                   help="fail (exit 1) when more than N warnings accumulate "
                        "across all targets")
    p.add_argument("--allocated", action="store_true",
                   help="hold the input to post-allocation invariants")
    p.add_argument("--k", type=int,
                   help="physical register budget to enforce")
    p.add_argument("--reg-n", type=int,
                   help="RegN: enables differential-space and "
                        "set_last_reg range checks")
    p.add_argument("--diff-n", type=int,
                   help="DiffN (defaults to RegN when only RegN is given)")
    p.add_argument("--access-order", default="src_first",
                   choices=("src_first", "dst_first", "two_address"))
    p.add_argument("--disable", action="append", metavar="RULE",
                   help="rule id or name to skip (repeatable)")
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser("analyze",
                       help="static decode-stage analysis: per-block "
                            "last_reg facts, E-series diagnostics and "
                            "set_last_reg reduction stats")
    p.add_argument("targets", nargs="+",
                   help=".s file path, workload name, or 'all'")
    p.add_argument("--setup", action="append", choices=setup_choices,
                   help="setup(s) to analyze (repeatable; default: the "
                        "differential setups)")
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.add_argument("--restarts", type=int, default=10,
                   help="remapping restarts (analysis is exact either way)")
    p.add_argument("--no-elim", action="store_true",
                   help="skip the setlr_elim post-pass, showing what it "
                        "would remove as redundant/dead facts")
    p.set_defaults(func=_cmd_analyze)

    p = sub.add_parser("report",
                       help="run every study and emit one combined report")
    p.add_argument("--out", help="write to a file instead of stdout")
    p.add_argument("--loops", type=int, default=400)
    p.add_argument("--restarts", type=int, default=50)
    _add_parallel_args(p, with_seed=False)
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("sweep",
                       help="RegN sweep at fixed field width (why RegN=12)")
    p.add_argument("--restarts", type=int, default=15)
    _add_parallel_args(p)
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser("bench-remap",
                       help="time the incremental remap engine against the "
                            "reference descent and the parallel sweep "
                            "against serial; write BENCH_remap.json")
    p.add_argument("--out", default="BENCH_remap.json",
                   help="output JSON path")
    p.add_argument("--workload", default="sha")
    p.add_argument("--reg-n", type=int, default=16)
    p.add_argument("--restarts", type=int, default=100)
    _add_parallel_args(p, with_seed=False)
    p.set_defaults(func=_cmd_bench_remap)

    p = sub.add_parser("fuzz",
                       help="differential fuzzing: random programs through "
                            "every allocator setup and oracle pair")
    fuzz_sub = p.add_subparsers(dest="fuzz_command", required=True)

    fp = fuzz_sub.add_parser("run", help="run a seeded fuzz campaign")
    fp.add_argument("--cases", type=int, default=50,
                    help="number of generated programs")
    fp.add_argument("--restarts", type=int, default=2,
                    help="remapping restarts per differential setup")
    fp.add_argument("--setups", default="",
                    help="comma-separated setup subset (default: all)")
    fp.add_argument("--repro-out", default="",
                    help="write the minimized reproducer of the first "
                         "failure to this file (CI artifact)")
    _add_parallel_args(fp)
    fp.set_defaults(func=_cmd_fuzz_run)

    fp = fuzz_sub.add_parser("repro",
                             help="replay one case from its seed and knobs")
    fp.add_argument("--seed", type=int, required=True,
                    help="generator seed of the case")
    fp.add_argument("--restarts", type=int, default=2)
    fp.add_argument("--setups", default="")
    _add_fuzz_knobs(fp)
    fp.set_defaults(func=_cmd_fuzz_repro)

    fp = fuzz_sub.add_parser("gen",
                             help="print the program one seed generates")
    fp.add_argument("--seed", type=int, required=True)
    _add_fuzz_knobs(fp)
    fp.set_defaults(func=_cmd_fuzz_gen)

    fp = fuzz_sub.add_parser("moves",
                             help="targeted fuzzing of the parallel-move "
                                  "resolver (random partial permutations "
                                  "through five oracles)")
    fp.add_argument("--cases", type=int, default=200,
                    help="number of generated move cases")
    fp.add_argument("--replay", type=int, default=None, metavar="SEED",
                    help="replay one case from its derived seed")
    fp.add_argument("--repro-out", default="",
                    help="write the minimized reproducer of the first "
                         "failure to this file (CI artifact)")
    _add_parallel_args(fp)
    fp.set_defaults(func=_cmd_fuzz_moves)

    p = sub.add_parser("serve",
                       help="run the allocation service: a batching "
                            "compile daemon with a content-addressed "
                            "artifact store (see docs/service.md)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8421,
                   help="TCP port (0 = pick a free one)")
    p.add_argument("--store", default="",
                   help="artifact store directory (default: "
                        "$REPRO_SERVICE_STORE or ~/.cache/repro/service)")
    p.add_argument("--store-shards", type=int, default=1,
                   help="split the store across N consistent-hash "
                        "sharded directories (1 = single flat store); "
                        "per-shard counters appear in /statsz")
    p.add_argument("--cache-bytes", type=int, default=64 * 1024 * 1024,
                   help="artifact store size cap; LRU-evicted beyond it")
    p.add_argument("--hot-entries", type=int, default=128,
                   help="in-memory hot-tier entry cap in front of the "
                        "store (0 disables it; hit/miss counters in "
                        "/statsz)")
    p.add_argument("--queue-limit", type=int, default=64,
                   help="bounded compile queue; beyond it requests get "
                        "429 + Retry-After")
    p.add_argument("--max-batch", type=int, default=8,
                   help="most requests per micro-batch fan-out")
    p.add_argument("--linger", type=float, default=0.02,
                   help="seconds to wait for co-batchable requests")
    p.add_argument("--timeout", type=float, default=60.0,
                   help="per-request compile deadline (expired waits "
                        "answer 504; the artifact is still cached)")
    p.add_argument("--recycle-after", type=int, default=0,
                   help="retire and respawn pool workers after ~N "
                        "dispatched tasks (0 = never); bounds worker "
                        "memory growth in long-lived daemons")
    p.add_argument("--telemetry", default="",
                   help="write a metrics snapshot here on shutdown")
    p.add_argument("--ready-file", default="",
                   help="write host:port here once listening (smoke/CI)")
    p.add_argument("--allow-debug", action="store_true",
                   help="honor debug_sleep in requests (testing only)")
    p.add_argument("--verbose", action="store_true",
                   help="log every HTTP request to stderr")
    _add_parallel_args(p, with_seed=False)
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("request",
                       help="send one compile request to a running "
                            "`repro serve` instance")
    p.add_argument("target", help="workload name or .s file path")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8421)
    p.add_argument("--timeout", type=float, default=120.0,
                   help="client-side HTTP timeout")
    p.add_argument("--setup", default="remapping", choices=setup_choices)
    p.add_argument("--base-k", type=int, default=8)
    p.add_argument("--reg-n", type=int, default=12)
    p.add_argument("--diff-n", type=int, default=8)
    p.add_argument("--access-order", default="src_first",
                   choices=("src_first", "dst_first", "two_address"))
    p.add_argument("--restarts", type=int, default=50)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--args", default=None,
                   help="comma-separated run arguments (default: the "
                        "workload's own)")
    p.add_argument("--no-simulate", action="store_true",
                   help="skip interpretation and cycle accounting")
    p.add_argument("--profile", action="store_true",
                   help="use interpreter profiles instead of static "
                        "frequency estimates")
    p.add_argument("--json", action="store_true",
                   help="print the raw response body")
    p.set_defaults(func=_cmd_request)

    p = sub.add_parser("cache",
                       help="inspect or clear the service artifact store")
    cache_sub = p.add_subparsers(dest="cache_command", required=True)
    for name, help_text in [("stats", "entry count and byte totals"),
                            ("clear", "delete every artifact")]:
        cp = cache_sub.add_parser(name, help=help_text)
        cp.add_argument("--store", default="",
                        help="store directory (default: "
                             "$REPRO_SERVICE_STORE or "
                             "~/.cache/repro/service)")
        cp.add_argument("--shards", type=int, default=1,
                        help="shard count the store was served with "
                             "(stats/clear then cover every shard "
                             "directory)")
        cp.set_defaults(func=_cmd_cache)

    p = sub.add_parser("service-smoke",
                       help="end-to-end service check: boot a daemon, "
                            "drive mixed traffic twice, verify hit-rate "
                            "and SIGTERM drain (the CI job)")
    p.add_argument("--out", default="TELEMETRY_service.json",
                   help="telemetry snapshot path (CI artifact)")
    p.add_argument("--cases", type=int, default=50)
    p.add_argument("--jobs", type=int, default=2)
    p.add_argument("--timeout", type=float, default=5.0,
                   help="server request deadline (the forced-timeout "
                        "case sleeps past it)")
    p.set_defaults(func=_cmd_service_smoke)

    p = sub.add_parser("loadtest",
                       help="replay N mixed compile requests against a "
                            "live `repro serve` instance (or --spawn "
                            "one) and write BENCH_service.json with "
                            "p50/p99 latency, throughput and hit rate")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8421)
    p.add_argument("--requests", type=int, default=100,
                   help="number of mixed compile requests to replay")
    p.add_argument("--concurrency", type=int, default=8,
                   help="client-side thread-pool width")
    p.add_argument("--spawn", action="store_true",
                   help="boot a hermetic in-process server with a "
                        "temporary store instead of targeting --host/"
                        "--port (what CI does)")
    p.add_argument("--jobs", type=int, default=2,
                   help="worker processes for the --spawn server")
    p.add_argument("--timeout", type=float, default=120.0,
                   help="client-side HTTP timeout per request")
    p.add_argument("--out", default="BENCH_service.json",
                   help="bench JSON path (CI artifact)")
    p.set_defaults(func=_cmd_loadtest)

    p = sub.add_parser("bench-sim",
                       help="time the columnar interpreter/trace-reuse/"
                            "vectorized-timing path against the reference "
                            "simulation path; write BENCH_sim.json")
    p.add_argument("--out", default="BENCH_sim.json",
                   help="output JSON path")
    p.add_argument("--workloads", type=int, default=15,
                   help="number of MIBENCH kernels to run")
    p.add_argument("--restarts", type=int, default=5,
                   help="remap restarts for the (untimed) allocations")
    p.set_defaults(func=_cmd_bench_sim)

    p = sub.add_parser("bench-analysis",
                       help="time the corpus-batched numpy analysis "
                            "kernels (liveness/interference/adjacency) "
                            "against the object-walking reference; write "
                            "BENCH_analysis.json")
    p.add_argument("--out", default="BENCH_analysis.json",
                   help="output JSON path")
    p.add_argument("--workloads", type=int, default=0,
                   help="number of MIBENCH kernels (0 = all)")
    p.add_argument("--repeats", type=int, default=30,
                   help="timing runs per stage (best-of)")
    p.set_defaults(func=_cmd_bench_analysis)

    p = sub.add_parser("bench-moves",
                       help="measure the parallel-move resolver "
                            "(resolver off/on/permi over mibench, "
                            "CycleReport parity), the exact-remap "
                            "optimality gap, and the permi decoder "
                            "envelope; write BENCH_moves.json")
    p.add_argument("--out", default="BENCH_moves.json",
                   help="output JSON path")
    p.add_argument("--workloads", type=int, default=8,
                   help="number of MIBENCH kernels")
    p.add_argument("--restarts", type=int, default=3,
                   help="remapping restarts per allocation")
    p.add_argument("--gap-workloads", type=int, default=3,
                   help="kernels in the optimality-gap calibration")
    p.add_argument("--gap-restarts", type=int, default=20,
                   help="greedy restarts in the gap calibration")
    p.set_defaults(func=_cmd_bench_moves)

    p = sub.add_parser("bench-allocators",
                       help="run every registered allocator backend over "
                            "mibench, cross-check interpreter results "
                            "against baseline, and write "
                            "BENCH_allocators.json with per-backend "
                            "spill/code-size/cycle stats")
    p.add_argument("--out", default="BENCH_allocators.json",
                   help="output JSON path")
    p.add_argument("--workloads", type=int, default=0,
                   help="number of MIBENCH kernels (0 = all)")
    p.add_argument("--restarts", type=int, default=3,
                   help="remapping restarts per allocation")
    p.set_defaults(func=_cmd_bench_allocators)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    from repro.diagnostics import LintError
    from repro.ir import ParseError

    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ParseError as exc:
        # shared diagnostic formatting: parse errors render like lint
        # findings, with file and line
        print(exc.diagnostic.render(), file=sys.stderr)
        return 1
    except LintError as exc:
        # strict-mode lint failures (encoder preconditions, per-pass
        # verification) render their report instead of a traceback
        print(exc, file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
