"""Command-line interface: ``python -m repro <command>``.

Commands regenerate the paper's tables and figures, run single benchmarks,
or encode standalone assembly files:

.. code-block:: console

    $ python -m repro lowend            # Table 1 + Figures 11-14
    $ python -m repro fig11             # just one figure
    $ python -m repro swp --loops 400   # Tables 2-3
    $ python -m repro alternatives      # the Section 1 width study
    $ python -m repro bench sha         # one kernel through all setups
    $ python -m repro list              # available workloads
    $ python -m repro encode prog.s --reg-n 12 --diff-n 8
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main"]


def _cmd_lowend(args) -> int:
    from repro.experiments import run_lowend_experiment

    exp = run_lowend_experiment(remap_restarts=args.restarts,
                                profile=not args.static_weights)
    figures = {
        "lowend": exp.render_all,
        "table1": lambda: exp.table1().render(),
        "fig11": lambda: exp.fig11_spills().render(),
        "fig12": lambda: exp.fig12_cost().render(),
        "fig13": lambda: exp.fig13_codesize().render(),
        "fig14": lambda: exp.fig14_speedup().render(),
    }
    print(figures[args.command]())
    return 0


def _cmd_swp(args) -> int:
    from repro.experiments import run_swp_experiment

    exp = run_swp_experiment(n_loops=args.loops, seed=args.seed)
    print(f"population: {len(exp.loops)} loops; "
          f"{100 * exp.fraction_needing_more_than_32:.1f}% need >32 registers")
    print()
    print(exp.render_all())
    return 0


def _cmd_alternatives(args) -> int:
    from repro.experiments.alternatives import run_alternatives_study

    study = run_alternatives_study(remap_restarts=args.restarts)
    print(study.table().render())
    return 0


def _cmd_bench(args) -> int:
    from repro.analysis.profile import profile_block_frequencies
    from repro.experiments.reporting import Table
    from repro.ir import Interpreter
    from repro.machine import LowEndTimingModel
    from repro.regalloc import SETUPS, run_setup
    from repro.workloads import get_workload

    try:
        workload = get_workload(args.name)
    except KeyError:
        print(f"unknown benchmark {args.name!r}; try `python -m repro list`",
              file=sys.stderr)
        return 1
    fn = workload.function()
    run_args = workload.default_args
    freq = profile_block_frequencies(fn, run_args)
    timing = LowEndTimingModel()
    table = Table(f"{args.name}: the five Section 10.1 setups",
                  ["setup", "instrs", "spills", "setlr", "cycles"])
    for setup in SETUPS:
        prog = run_setup(fn, setup, freq=freq, remap_restarts=args.restarts)
        result = Interpreter().run(prog.final_fn, run_args)
        report = timing.time(result.trace)
        table.add_row(setup, prog.n_instructions, prog.n_spills,
                      prog.n_setlr, report.cycles)
    print(table.render())
    return 0


def _cmd_list(args) -> int:
    from repro.workloads import MIBENCH

    for w in MIBENCH:
        print(f"{w.name:14} {w.description}")
    return 0


def _cmd_encode(args) -> int:
    from repro.encoding import EncodingConfig, encode_function, verify_encoding
    from repro.ir import parse_function

    with open(args.file) as f:
        fn = parse_function(f.read())
    config = EncodingConfig(reg_n=args.reg_n, diff_n=args.diff_n,
                            access_order=args.access_order)
    enc = encode_function(fn, config)
    verify_encoding(enc)
    print(enc.fn)
    print(f"# RegN={args.reg_n} DiffN={args.diff_n} "
          f"field width {config.field_bits} bits "
          f"(direct would need {config.direct_field_bits})")
    print(f"# set_last_reg: {enc.n_setlr_inline} out-of-range + "
          f"{enc.n_setlr_join} join repairs "
          f"({100 * enc.overhead_fraction:.1f}% of instructions)")
    return 0


def _cmd_disasm(args) -> int:
    from repro.encoding import EncodingConfig, encode_function, pack_function
    from repro.encoding.objdump import disassemble
    from repro.ir import parse_function

    with open(args.file) as f:
        fn = parse_function(f.read())
    config = EncodingConfig(reg_n=args.reg_n, diff_n=args.diff_n)
    packed = pack_function(encode_function(fn, config))
    print(disassemble(packed))
    return 0


def _cmd_report(args) -> int:
    from repro.experiments.report import generate_report

    text = generate_report(n_loops=args.loops,
                           remap_restarts=args.restarts)
    if args.out:
        with open(args.out, "w") as f:
            f.write(text + "\n")
        print(f"report written to {args.out}")
    else:
        print(text)
    return 0


def _cmd_sweep(args) -> int:
    from repro.experiments import run_regn_sweep

    sweep = run_regn_sweep(remap_restarts=args.restarts)
    print(sweep.table().render())
    print(f"\nbest RegN on this suite: {sweep.best_reg_n()}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Differential Register Allocation' "
                    "(PLDI 2005): regenerate the paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, help_text in [
        ("lowend", "Table 1 and Figures 11-14 (the MiBench study)"),
        ("table1", "the low-end machine configuration"),
        ("fig11", "static spill percentage"),
        ("fig12", "set_last_reg cost percentage"),
        ("fig13", "code size relative to baseline"),
        ("fig14", "speedup over baseline"),
    ]:
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--restarts", type=int, default=50,
                       help="remapping restarts (paper uses 1000)")
        p.add_argument("--static-weights", action="store_true",
                       help="use static loop-nest frequency estimates "
                            "instead of interpreter profiles")
        p.set_defaults(func=_cmd_lowend)

    p = sub.add_parser("swp", help="Tables 2-3 (the software-pipelining study)")
    p.add_argument("--loops", type=int, default=400,
                   help="population size (paper: 1928)")
    p.add_argument("--seed", type=int, default=2005)
    p.set_defaults(func=_cmd_swp)

    p = sub.add_parser("alternatives",
                       help="direct-8 vs direct-16 vs differential-12 "
                            "(the Section 1 motivation)")
    p.add_argument("--restarts", type=int, default=25)
    p.set_defaults(func=_cmd_alternatives)

    p = sub.add_parser("bench", help="run one benchmark through all setups")
    p.add_argument("name")
    p.add_argument("--restarts", type=int, default=50)
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser("list", help="list available benchmarks")
    p.set_defaults(func=_cmd_list)

    p = sub.add_parser("encode",
                       help="differentially encode an assembly file")
    p.add_argument("file")
    p.add_argument("--reg-n", type=int, default=12)
    p.add_argument("--diff-n", type=int, default=8)
    p.add_argument("--access-order", default="src_first",
                   choices=("src_first", "dst_first", "two_address"))
    p.set_defaults(func=_cmd_encode)

    p = sub.add_parser("disasm",
                       help="encode an assembly file to bits and show the "
                            "annotated disassembly")
    p.add_argument("file")
    p.add_argument("--reg-n", type=int, default=12)
    p.add_argument("--diff-n", type=int, default=8)
    p.set_defaults(func=_cmd_disasm)

    p = sub.add_parser("report",
                       help="run every study and emit one combined report")
    p.add_argument("--out", help="write to a file instead of stdout")
    p.add_argument("--loops", type=int, default=400)
    p.add_argument("--restarts", type=int, default=50)
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("sweep",
                       help="RegN sweep at fixed field width (why RegN=12)")
    p.add_argument("--restarts", type=int, default=15)
    p.set_defaults(func=_cmd_sweep)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
