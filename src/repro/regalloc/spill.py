"""Spill-code insertion.

A spilled virtual register lives in an abstract frame slot.  Every use gets a
fresh temporary loaded immediately before it (``ldslot``); every def gets a
fresh temporary stored immediately after it (``stslot``).  The temporaries
have tiny live ranges, so spilling strictly lowers register pressure.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro.ir.function import Function
from repro.ir.instr import Instr, Reg

__all__ = ["insert_spill_code", "SpillSlotAllocator", "first_free_slot"]


def first_free_slot(fn: Function) -> int:
    """The lowest frame slot not already used by spill code in ``fn``.

    Allocators that run after a pass which already inserted ``ldslot`` /
    ``stslot`` (e.g. optimal-spill splitting) must start their slot numbering
    here, or two live values would share a slot.
    """
    used = [
        int(i.imm) for i in fn.instructions() if i.op in ("ldslot", "stslot")
    ]
    return max(used) + 1 if used else 0


class SpillSlotAllocator:
    """Hands out frame slot numbers, one per spilled live range."""

    def __init__(self, first_slot: int = 0) -> None:
        self._next = first_slot
        self._slots: Dict[Reg, int] = {}

    def slot_for(self, r: Reg) -> int:
        """The (stable) frame slot of a spilled register."""
        if r not in self._slots:
            self._slots[r] = self._next
            self._next += 1
        return self._slots[r]

    @property
    def n_slots(self) -> int:
        return self._next


def insert_spill_code(fn: Function, spilled: Iterable[Reg],
                      slots: SpillSlotAllocator,
                      next_vreg: int) -> Tuple[Function, int, Set[Reg]]:
    """Rewrite ``fn`` so every register in ``spilled`` lives in memory.

    Returns ``(new_fn, next_vreg, new_temps)`` where ``new_temps`` are the
    short-lived reload/store temporaries created (they must not be chosen for
    spilling again — their live ranges cannot shrink further).
    """
    spill_set = set(spilled)
    if not spill_set:
        return fn, next_vreg, set()
    new_fn = fn.copy()
    new_temps: Set[Reg] = set()

    for block in new_fn.blocks:
        new_instrs: List[Instr] = []
        for instr in block.instrs:
            mapping: Dict[Reg, Reg] = {}
            pre: List[Instr] = []
            post: List[Instr] = []
            for r in instr.uses():
                if r in spill_set and r not in mapping:
                    tmp = Reg(next_vreg, virtual=True, cls=r.cls)
                    next_vreg += 1
                    new_temps.add(tmp)
                    mapping[r] = tmp
                    pre.append(Instr("ldslot", dst=tmp, imm=slots.slot_for(r)))
            for r in instr.defs():
                if r in spill_set:
                    tmp = mapping.get(r)
                    if tmp is None:
                        tmp = Reg(next_vreg, virtual=True, cls=r.cls)
                        next_vreg += 1
                        new_temps.add(tmp)
                        mapping[r] = tmp
                    post.append(Instr("stslot", srcs=(tmp,), imm=slots.slot_for(r)))
            new_instrs.extend(pre)
            new_instrs.append(instr.rewrite(mapping) if mapping else instr)
            new_instrs.extend(post)
        block.instrs = new_instrs

    # spilled parameters arrive in registers: store them once on entry.
    # (Inserted after the rewrite loop so the store itself, which reads the
    # incoming parameter register, is not rewritten into a reload.)
    entry_stores = [
        Instr("stslot", srcs=(p,), imm=slots.slot_for(p))
        for p in new_fn.params
        if p in spill_set
    ]
    new_fn.entry.instrs[:0] = entry_stores

    # spill code after a terminator is illegal; defs by terminators do not
    # exist in this ISA (branches only read), so only verify.
    new_fn.validate()
    return new_fn, next_vreg, new_temps
