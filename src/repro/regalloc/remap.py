"""Differential remapping — approach 1 (paper Section 5).

A post-pass over already-allocated code: permute the physical register
numbers to minimise the adjacency-graph cost of condition (3).  Permuting
never changes which live ranges share a register, so any allocator's output
remains valid; only the *numbers* change, and with differential encoding the
numbers matter.

Two searches are provided, matching the paper:

* :func:`exhaustive_remap` — all ``RegN!`` permutations,
  O(RegN^2 * RegN!), "tractable for small RegN".
* :func:`differential_remap` — the polynomial greedy heuristic of Figure 7:
  steepest-descent over pairwise swaps of the register vector, restarted from
  a number of random initial vectors (the paper uses 1000) and keeping the
  best local minimum.

The descent evaluates swap candidates **incrementally**: swapping registers
``a`` and ``b`` only changes the satisfaction of edges incident to ``a`` or
``b``, so a candidate swap costs O(deg(a) + deg(b)) against per-register
incident-edge buckets instead of a full O(E) cost re-evaluation, and a
maintained table of candidate deltas is invalidated only for pairs whose
incident edges reach the registers a step actually moved.  Edge weights are
scaled to exact integers (see :data:`_WEIGHT_SCALE`), which makes every
delta bit-identical to a full :func:`_perm_cost` recomputation no matter
how — or on which engine — it is computed; the vectorised
:class:`_NumpyDeltaEngine` and the pure-Python :class:`_PyDeltaEngine`
return the same permutations, costs and restart counts as the
O(E)-per-candidate :func:`_greedy_descent_reference` they replace.
Restarts are independent, so ``jobs > 1`` fans them out over
:func:`repro.parallel.parallel_map`, again with bit-identical results.
"""

from __future__ import annotations

import itertools
import os
import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.analysis.adjacency import build_adjacency
from repro.analysis.frequency import estimate_block_frequencies
from repro.ir.function import Function
from repro.ir.instr import Reg

__all__ = [
    "RemapResult",
    "ExactRemapResult",
    "differential_remap",
    "exhaustive_remap",
    "exact_remap",
    "remap_optimality_gap",
    "apply_permutation",
]

Edge = Tuple[int, int, int]

#: Edge weights enter as floats — block frequencies plus predecessor shares
#: ``freq / len(preds)`` — and are scaled by lcm(1..16) = 720720 into exact
#: integers.  Exact weights make the swap search deterministic: a delta is
#: the same number whether it is computed incrementally over two registers'
#: buckets, vectorised over all candidate pairs, or by differencing two
#: full-cost evaluations, so every engine (and every ``jobs`` setting)
#: picks the same swap at every step.  Reported costs are divided back.
_WEIGHT_SCALE = 720720

#: Weights at or above this bound fall back to the pure-Python engine,
#: whose arbitrary-precision integers cannot overflow int64 accumulation.
_NUMPY_WEIGHT_LIMIT = 1 << 40


@dataclass
class RemapResult:
    """Outcome of a remapping search."""

    fn: Function
    permutation: Tuple[int, ...]  # old register number -> new register number
    cost_before: float
    cost_after: float
    restarts: int = 1

    @property
    def improvement(self) -> float:
        return self.cost_before - self.cost_after


def _edge_list(fn: Function, reg_n: int, order: str,
               freq: Optional[Mapping[str, float]]) -> List[Edge]:
    """The adjacency edges inside the differential space, as id triples.

    Parallel ``(u, v)`` edges are collapsed into one summed weight so both
    searches iterate a minimal edge set (and the incremental buckets stay
    small); first-seen order is preserved.  Weights are scaled to exact
    integers (:data:`_WEIGHT_SCALE`); with integer block frequencies the
    scaling is lossless, anything else is quantised to ~1e-6 of a unit
    weight.
    """
    graph = build_adjacency(fn, order=order, freq=freq)
    weights: Dict[Tuple[int, int], float] = {}
    for u, v, w in graph.edges():
        if u.virtual or v.virtual:
            raise ValueError("remapping requires allocated (physical) code")
        if u.id < reg_n and v.id < reg_n and u.cls == "int" and v.cls == "int":
            key = (u.id, v.id)
            weights[key] = weights.get(key, 0.0) + w
    return [(u, v, round(w * _WEIGHT_SCALE)) for (u, v), w in weights.items()]


def _perm_cost(perm: Sequence[int], edges: Sequence[Tuple[int, int, float]],
               reg_n: int, diff_n: int) -> float:
    total = 0
    for u, v, w in edges:
        if (perm[v] - perm[u]) % reg_n >= diff_n:
            total += w
    return total


def apply_permutation(fn: Function, perm: Sequence[int], reg_n: int) -> Function:
    """Renumber physical int registers below ``reg_n`` through ``perm``."""
    mapping: Dict[Reg, Reg] = {}
    for r in fn.registers():
        if not r.virtual and r.cls == "int" and r.id < reg_n:
            mapping[r] = Reg(perm[r.id], virtual=False, cls="int")
    return fn.rewrite_registers(mapping)


def exhaustive_remap(fn: Function, reg_n: int, diff_n: int,
                     order: str = "src_first",
                     freq: Optional[Mapping[str, float]] = None,
                     pinned: Sequence[int] = ()) -> RemapResult:
    """Try every permutation.  Only sensible for small ``reg_n`` (≤ 8)."""
    if freq is None:
        freq = estimate_block_frequencies(fn)
    edges = _edge_list(fn, reg_n, order, freq)
    identity = tuple(range(reg_n))
    base_cost = _perm_cost(identity, edges, reg_n, diff_n)
    free = [i for i in range(reg_n) if i not in set(pinned)]
    best_perm, best_cost = identity, base_cost
    for images in itertools.permutations(free):
        perm = list(identity)
        for slot, image in zip(free, images):
            perm[slot] = image
        cost = _perm_cost(perm, edges, reg_n, diff_n)
        if cost < best_cost:
            best_perm, best_cost = tuple(perm), cost
            if cost == 0:
                break
    return RemapResult(
        fn=apply_permutation(fn, best_perm, reg_n),
        permutation=best_perm,
        cost_before=base_cost / _WEIGHT_SCALE,
        cost_after=best_cost / _WEIGHT_SCALE,
    )


class _ExactEngine:
    """Branch-and-bound over register→number assignments, provably exact.

    Numbers are assigned in order ``0, 1, ..., reg_n - 1``; at depth ``k``
    the engine chooses which still-unplaced register receives number ``k``.
    Three devices keep the tree far below ``RegN!`` leaves:

    * **rotation pinning** — condition (3) only reads differences
      ``(perm[v] - perm[u]) mod RegN``, which a rotation of all numbers
      leaves untouched, so with no ``pinned`` constraint the first free
      register can be fixed at number 0 (a factor-``RegN`` reduction);
    * **forced cross-edge violations** — an edge from a placed register
      whose partner cannot reach any remaining number within ``DiffN``
      contributes its full weight to the bound already;
    * **a memoized subproblem table** ``h(mask)`` — the exact minimum
      violation weight of the edges internal to the unplaced set ``mask``,
      placed into any contiguous number block.  Because the remaining
      numbers ``{k..RegN-1}`` are always a translate of ``{0..m-1}`` and
      translation preserves differences mod ``RegN``, ``h`` depends only
      on the *set* of unplaced registers: at most ``2^RegN`` entries, each
      solved once.  ``memo`` is exposed for the DP-table unit tests.

    The admissible bound is ``g + forced_cross + h(mask)``; ``nodes`` and
    ``pruned`` count explored and cut subtrees for the calibration report.
    """

    def __init__(self, edges: Sequence[Edge], reg_n: int, diff_n: int,
                 pinned: Sequence[int] = ()) -> None:
        self.edges = list(edges)
        self.reg_n = reg_n
        self.diff_n = diff_n
        self.pinned_set = set(pinned)
        self.memo: Dict[int, int] = {}
        self.nodes = 0
        self.pruned = 0

    def _violates(self, nu: int, nv: int) -> bool:
        return (nv - nu) % self.reg_n >= self.diff_n

    def h(self, mask: int) -> int:
        """Exact minimum violation weight of the edges internal to the
        register set ``mask``, placed into a contiguous number block."""
        cached = self.memo.get(mask)
        if cached is not None:
            return cached
        regs = [r for r in range(self.reg_n) if mask >> r & 1]
        internal = [(u, v, w) for u, v, w in self.edges
                    if u != v and (mask >> u & 1) and (mask >> v & 1)]
        best = 0
        if internal:
            best = None
            for images in itertools.permutations(range(len(regs))):
                num = dict(zip(regs, images))
                c = sum(w for u, v, w in internal
                        if self._violates(num[u], num[v]))
                if best is None or c < best:
                    best = c
                    if best == 0:
                        break
        self.memo[mask] = best
        return best

    def _forced_cross(self, num: List[int], mask: int, k: int) -> int:
        """Weight of cross edges violated under every remaining number."""
        remaining = range(k, self.reg_n)
        total = 0
        for u, v, w in self.edges:
            u_placed = not (mask >> u & 1)
            v_placed = not (mask >> v & 1)
            if u_placed == v_placed:
                continue
            if u_placed:
                if all(self._violates(num[u], q) for q in remaining):
                    total += w
            else:
                if all(self._violates(q, num[v]) for q in remaining):
                    total += w
        return total

    def solve(self) -> Tuple[int, Tuple[int, ...]]:
        """The minimum scaled cost and a permutation achieving it."""
        n = self.reg_n
        num = [-1] * n
        best_cost: Optional[int] = None
        best_perm: Optional[Tuple[int, ...]] = None

        def place(k: int, mask: int, g: int) -> None:
            nonlocal best_cost, best_perm
            self.nodes += 1
            if mask == 0:
                if best_cost is None or g < best_cost:
                    best_cost, best_perm = g, tuple(num)
                return
            if best_cost is not None:
                bound = g + self._forced_cross(num, mask, k) + self.h(mask)
                if bound >= best_cost:
                    self.pruned += 1
                    return
            if k in self.pinned_set:
                candidates = [k]
            elif k == 0 and not self.pinned_set:
                # rotation pinning: fix the lowest register at number 0
                candidates = [min(r for r in range(n) if mask >> r & 1)]
            else:
                candidates = [r for r in range(n)
                              if (mask >> r & 1) and r not in self.pinned_set]
            for r in candidates:
                num[r] = k
                nm = mask & ~(1 << r)
                dg = 0
                for u, v, w in self.edges:
                    if u == r and v != r and not (nm >> v & 1):
                        if self._violates(k, num[v]):
                            dg += w
                    elif v == r and u != r and not (nm >> u & 1):
                        if self._violates(num[u], k):
                            dg += w
                place(k + 1, nm, g + dg)
                num[r] = -1

        place(0, (1 << n) - 1, 0)
        assert best_cost is not None and best_perm is not None
        return best_cost, best_perm


@dataclass
class ExactRemapResult:
    """Outcome of the exact branch-and-bound remapping search."""

    fn: Function
    permutation: Tuple[int, ...]
    cost_before: float
    cost_after: float
    nodes: int = 0          # branch-and-bound tree nodes explored
    pruned: int = 0         # subtrees cut by the admissible bound
    memo_size: int = 0      # distinct h(mask) subproblems solved

    @property
    def improvement(self) -> float:
        """Cost removed relative to the incoming register numbering."""
        return self.cost_before - self.cost_after


def exact_remap(fn: Function, reg_n: int, diff_n: int,
                order: str = "src_first",
                freq: Optional[Mapping[str, float]] = None,
                pinned: Sequence[int] = ()) -> ExactRemapResult:
    """Provably optimal remapping via branch-and-bound (``RegN <= 8``).

    Same contract as :func:`differential_remap`, but the returned cost is
    the true minimum of condition (3)'s adjacency objective — the engine
    exists to *calibrate* the greedy descent's optimality gap
    (``repro bench-moves``), not to replace it: the tree is exponential
    in ``RegN`` even with the :class:`_ExactEngine` bounds.
    """
    if reg_n > 8:
        raise ValueError(f"exact remap is exponential; RegN={reg_n} > 8")
    if freq is None:
        freq = estimate_block_frequencies(fn)
    edges = _edge_list(fn, reg_n, order, freq)
    identity = tuple(range(reg_n))
    base_cost = _perm_cost(identity, edges, reg_n, diff_n)
    engine = _ExactEngine(edges, reg_n, diff_n, pinned)
    best_cost, best_perm = engine.solve()
    return ExactRemapResult(
        fn=apply_permutation(fn, best_perm, reg_n),
        permutation=best_perm,
        cost_before=base_cost / _WEIGHT_SCALE,
        cost_after=best_cost / _WEIGHT_SCALE,
        nodes=engine.nodes,
        pruned=engine.pruned,
        memo_size=len(engine.memo),
    )


def remap_optimality_gap(fn: Function, reg_n: int, diff_n: int,
                         order: str = "src_first",
                         freq: Optional[Mapping[str, float]] = None,
                         restarts: int = 100,
                         seed: int = 0,
                         pinned: Sequence[int] = ()) -> Dict[str, float]:
    """Calibrate the greedy descent against the exact optimum.

    Runs :func:`differential_remap` and :func:`exact_remap` on the same
    adjacency problem and reports both costs plus their gap — by
    construction ``gap >= 0``, and the regression suite ratchets it
    non-increasing per corpus function.  Keys: ``greedy_cost``,
    ``exact_cost``, ``gap``, ``nodes``, ``pruned``, ``memo_size``.
    """
    if freq is None:
        freq = estimate_block_frequencies(fn)
    greedy = differential_remap(fn, reg_n, diff_n, order=order, freq=freq,
                                restarts=restarts, seed=seed, pinned=pinned)
    exact = exact_remap(fn, reg_n, diff_n, order=order, freq=freq,
                        pinned=pinned)
    return {
        "greedy_cost": greedy.cost_after,
        "exact_cost": exact.cost_after,
        "gap": greedy.cost_after - exact.cost_after,
        "nodes": float(exact.nodes),
        "pruned": float(exact.pruned),
        "memo_size": float(exact.memo_size),
    }


class _PyDeltaEngine:
    """Per-register incident-edge buckets for O(deg) swap evaluation.

    ``buckets[r]`` holds every edge with an endpoint at original register
    ``r``; an edge between two distinct registers appears in both buckets.
    Cost terms depend only on the permutation's values at an edge's
    endpoints, so the cost change of swapping ``perm[a], perm[b]`` is
    confined to ``buckets[a] ∪ buckets[b]``.  One engine serves every
    restart of a search (it never holds permutation state).
    """

    def __init__(self, edges: Sequence[Edge], reg_n: int, diff_n: int,
                 free: Sequence[int]) -> None:
        self.reg_n = reg_n
        self.diff_n = diff_n
        self.free = list(free)
        buckets: List[List[Edge]] = [[] for _ in range(reg_n)]
        neighbors: List[Set[int]] = [set() for _ in range(reg_n)]
        for edge in edges:
            u, v, _ = edge
            buckets[u].append(edge)
            neighbors[u].add(v)
            if v != u:
                buckets[v].append(edge)
                neighbors[v].add(u)
        self.edges = list(edges)
        self.buckets = buckets
        self.neighbors = neighbors

    def _incident_cost(self, perm: Sequence[int], a: int, b: int) -> int:
        """Violation weight of the edges touching ``a`` or ``b`` under
        ``perm`` (edges in both buckets counted once)."""
        reg_n, diff_n = self.reg_n, self.diff_n
        total = 0
        for u, v, w in self.buckets[a]:
            if (perm[v] - perm[u]) % reg_n >= diff_n:
                total += w
        for u, v, w in self.buckets[b]:
            if u == a or v == a:
                continue  # already counted via a's bucket
            if (perm[v] - perm[u]) % reg_n >= diff_n:
                total += w
        return total

    def swap_delta(self, perm: List[int], a: int, b: int) -> int:
        """Cost decrease of swapping ``perm[a]`` and ``perm[b]``.

        Positive means the swap improves.  O(deg(a) + deg(b)): only the
        incident edges are evaluated, before and after the swap.
        """
        before = self._incident_cost(perm, a, b)
        perm[a], perm[b] = perm[b], perm[a]
        after = self._incident_cost(perm, a, b)
        perm[a], perm[b] = perm[b], perm[a]
        return before - after

    def descend(self, perm: List[int]) -> int:
        """Steepest-descent to a local minimum; mutates ``perm``.

        The delta table survives across descent rounds: applying swap
        ``(a, b)`` changes permutation values only at ``a`` and ``b``, so
        a cached candidate ``(x, y)`` stays valid unless one of its
        incident edges reaches a moved register — that is, unless ``x`` or
        ``y`` lies in ``{a, b} ∪ N(a) ∪ N(b)``.
        """
        free = self.free
        n = len(free)
        cost = _perm_cost(perm, self.edges, self.reg_n, self.diff_n)
        deltas: Dict[Tuple[int, int], int] = {}
        while True:
            best_delta = 0
            best_swap: Optional[Tuple[int, int]] = None
            for ai in range(n):
                a = free[ai]
                for bi in range(ai + 1, n):
                    pair = (ai, bi)
                    delta = deltas.get(pair)
                    if delta is None:
                        delta = self.swap_delta(perm, a, free[bi])
                        deltas[pair] = delta
                    if delta > best_delta:
                        best_delta, best_swap = delta, (a, free[bi])
            if best_swap is None:
                return cost
            a, b = best_swap
            perm[a], perm[b] = perm[b], perm[a]
            cost -= best_delta
            stale = {a, b} | self.neighbors[a] | self.neighbors[b]
            for ai, bi in list(deltas):
                if free[ai] in stale or free[bi] in stale:
                    del deltas[(ai, bi)]


class _NumpyDeltaEngine:
    """Vectorised twin of :class:`_PyDeltaEngine`.

    The incident-edge buckets of every candidate pair are flattened into
    one entry array grouped by pair, so recomputing the invalidated slice
    of the delta table is a single masked gather + segmented int64 sum per
    descent round.  All arithmetic is integer, so results are
    bit-identical to the pure-Python engine; ``np.argmax`` returns the
    first maximum, matching the scan order of the reference loops.
    """

    def __init__(self, edges: Sequence[Edge], reg_n: int, diff_n: int,
                 free: Sequence[int], np_module) -> None:
        np = np_module
        self.np = np
        self.reg_n = reg_n
        self.diff_n = diff_n
        self.edges = list(edges)
        self.free = list(free)
        self.U = np.array([e[0] for e in edges], dtype=np.int64)
        self.V = np.array([e[1] for e in edges], dtype=np.int64)
        self.W = np.array([e[2] for e in edges], dtype=np.int64)

        incident: List[List[int]] = [[] for _ in range(reg_n)]
        adj = np.zeros((reg_n, reg_n), dtype=bool)
        for idx, (u, v, _) in enumerate(edges):
            incident[u].append(idx)
            if v != u:
                incident[v].append(idx)
            adj[u, v] = adj[v, u] = True
        for r in range(reg_n):
            adj[r, r] = True
        self.adj = adj

        pairs = [(free[ai], free[bi])
                 for ai in range(len(free))
                 for bi in range(ai + 1, len(free))]
        self.PA = np.array([p[0] for p in pairs], dtype=np.int64)
        self.PB = np.array([p[1] for p in pairs], dtype=np.int64)
        self.n_pairs = len(pairs)

        # The buckets of every candidate pair, flattened into one entry
        # array grouped by pair.  Pairs with no incident edges get one
        # zero-weight sentinel entry so reduceat segments are never empty.
        eid: List[int] = []
        pid: List[int] = []
        starts: List[int] = []
        for k, (a, b) in enumerate(pairs):
            both = incident[a] + [i for i in incident[b]
                                  if self.U[i] != a and self.V[i] != a]
            starts.append(len(eid))
            eid.extend(both or [-1])
            pid.extend([k] * (len(both) or 1))
        eid_arr = np.array(eid, dtype=np.int64)
        sentinel = eid_arr < 0
        eid_arr[sentinel] = 0
        self.PID = np.array(pid, dtype=np.int64)
        self.SEG_STARTS = np.array(starts, dtype=np.int64)
        n = len(eid_arr)
        self.EU = self.U[eid_arr] if len(edges) else np.zeros(n, np.int64)
        self.EV = self.V[eid_arr] if len(edges) else np.zeros(n, np.int64)
        self.EW = self.W[eid_arr] if len(edges) else np.zeros(n, np.int64)
        self.EW[sentinel] = 0
        EA = self.PA[self.PID]
        EB = self.PB[self.PID]
        self.EA, self.EB = EA, EB
        # static: which entries' endpoints are the entry's own pair
        self.EU_IS_A = self.EU == EA
        self.EU_IS_B = self.EU == EB
        self.EV_IS_A = self.EV == EA
        self.EV_IS_B = self.EV == EB
        # rounds invalidating less than this fraction of the table use the
        # masked subset path; denser rounds recompute every segment, which
        # costs fewer (and no gather-heavy) vector ops
        self.subset_threshold = 0.25 * self.n_pairs

    def _deltas_full(self, P):
        """Every pair's delta in one segmented pass."""
        np = self.np
        pu, pv = P[self.EU], P[self.EV]
        pa, pb = P[self.EA], P[self.EB]
        nu = np.where(self.EU_IS_A, pb, np.where(self.EU_IS_B, pa, pu))
        nv = np.where(self.EV_IS_A, pb, np.where(self.EV_IS_B, pa, pv))
        before = (pv - pu) % self.reg_n >= self.diff_n
        after = (nv - nu) % self.reg_n >= self.diff_n
        contrib = self.EW * np.subtract(before, after, dtype=np.int64)
        return np.add.reduceat(contrib, self.SEG_STARTS)

    def _deltas_subset(self, P, deltas, pair_dirty):
        """Recompute only the invalidated pairs' deltas, in place."""
        np = self.np
        sel = pair_dirty[self.PID]
        eu, ev = self.EU[sel], self.EV[sel]
        pu, pv = P[eu], P[ev]
        pa, pb = P[self.EA[sel]], P[self.EB[sel]]
        nu = np.where(self.EU_IS_A[sel], pb, np.where(self.EU_IS_B[sel], pa, pu))
        nv = np.where(self.EV_IS_A[sel], pb, np.where(self.EV_IS_B[sel], pa, pv))
        before = (pv - pu) % self.reg_n >= self.diff_n
        after = (nv - nu) % self.reg_n >= self.diff_n
        contrib = self.EW[sel] * np.subtract(before, after, dtype=np.int64)
        fresh = np.zeros(self.n_pairs, dtype=np.int64)
        np.add.at(fresh, self.PID[sel], contrib)
        deltas[pair_dirty] = fresh[pair_dirty]

    def descend(self, perm: List[int]) -> int:
        np = self.np
        reg_n, diff_n = self.reg_n, self.diff_n
        P = np.array(perm, dtype=np.int64)
        if not self.n_pairs or not len(self.edges):
            return int(self.W[(P[self.V] - P[self.U]) % reg_n
                              >= diff_n].sum())
        cost = int(self.W[(P[self.V] - P[self.U]) % reg_n >= diff_n].sum())
        deltas = self._deltas_full(P)
        while True:
            k = int(np.argmax(deltas))
            best_delta = int(deltas[k])
            if best_delta <= 0:
                break
            a, b = int(self.PA[k]), int(self.PB[k])
            P[a], P[b] = int(P[b]), int(P[a])
            cost -= best_delta
            dirty_regs = self.adj[a] | self.adj[b]
            pair_dirty = dirty_regs[self.PA] | dirty_regs[self.PB]
            n_dirty = int(pair_dirty.sum())
            if n_dirty > self.subset_threshold:
                # recomputing clean pairs is harmless — exact arithmetic
                # reproduces the cached values — and the full segmented
                # pass is cheaper than gathering a large subset
                deltas = self._deltas_full(P)
            elif n_dirty:
                self._deltas_subset(P, deltas, pair_dirty)
        perm[:] = P.tolist()
        return cost


def _numpy_or_none():
    """The numpy module when present and not disabled, else ``None``."""
    if os.environ.get("REPRO_NO_NUMPY") == "1":
        return None
    try:
        import numpy
    except ImportError:  # numpy is optional: the pure engine is complete
        return None
    return numpy


def _make_engine(edges: Sequence[Edge], reg_n: int, diff_n: int,
                 free: Sequence[int]):
    """The fastest available exact engine for this edge set."""
    np = _numpy_or_none()
    if np is not None and all(abs(w) < _NUMPY_WEIGHT_LIMIT for _, _, w in edges):
        return _NumpyDeltaEngine(edges, reg_n, diff_n, free, np)
    return _PyDeltaEngine(edges, reg_n, diff_n, free)


def _greedy_descent(perm: List[int], edges: Sequence[Edge],
                    reg_n: int, diff_n: int, free: Sequence[int],
                    engine=None) -> int:
    """Steepest-descent over element swaps (the paper's Figure 7 loop),
    via the incremental delta engines.  Mutates and returns through
    ``perm``; the return value is the (scaled, integer) local-minimum
    cost."""
    if engine is None:
        engine = _make_engine(edges, reg_n, diff_n, free)
    return engine.descend(perm)


def _greedy_descent_reference(perm: List[int], edges: Sequence[Edge],
                              reg_n: int, diff_n: int,
                              free: Sequence[int]) -> int:
    """The original O(E)-per-candidate descent, kept as the ground truth
    for equivalence tests and the before/after benchmark."""
    cost = _perm_cost(perm, edges, reg_n, diff_n)
    while True:
        best_delta = 0
        best_swap: Optional[Tuple[int, int]] = None
        for ai in range(len(free)):
            for bi in range(ai + 1, len(free)):
                a, b = free[ai], free[bi]
                perm[a], perm[b] = perm[b], perm[a]
                new_cost = _perm_cost(perm, edges, reg_n, diff_n)
                perm[a], perm[b] = perm[b], perm[a]
                delta = cost - new_cost
                if delta > best_delta:
                    best_delta, best_swap = delta, (a, b)
        if best_swap is None:
            return cost
        a, b = best_swap
        perm[a], perm[b] = perm[b], perm[a]
        cost -= best_delta


def _start_perms(identity: Sequence[int], free: Sequence[int],
                 restarts: int, seed: int) -> List[List[int]]:
    """The descent starting points: identity, then ``restarts - 1``
    seeded shuffles of the free registers (the paper's random restarts)."""
    rng = random.Random(seed)
    starts = [list(identity)]
    for _ in range(max(0, restarts - 1)):
        images = list(free)
        rng.shuffle(images)
        perm = list(identity)
        for slot, image in zip(free, images):
            perm[slot] = image
        starts.append(perm)
    return starts


def _descent_batch(payload: Tuple[Tuple[Edge, ...], int, int,
                                  Tuple[int, ...], List[List[int]]]
                   ) -> List[Tuple[int, List[int]]]:
    """Worker task: run the descent on a batch of starting permutations.

    Module-level and pure so it pickles into a process pool; one engine is
    shared across the batch.
    """
    edges, reg_n, diff_n, free, starts = payload
    engine = _make_engine(edges, reg_n, diff_n, free)
    return [(engine.descend(perm), perm) for perm in starts]


def differential_remap(fn: Function, reg_n: int, diff_n: int,
                       order: str = "src_first",
                       freq: Optional[Mapping[str, float]] = None,
                       restarts: int = 100,
                       seed: int = 0,
                       pinned: Sequence[int] = (),
                       jobs: int = 1) -> RemapResult:
    """Greedy remapping with random restarts (paper Section 5, Figure 7).

    ``pinned`` register numbers keep their identity mapping — used to respect
    calling conventions without the store-repair of Section 9.3 (parameter
    and return registers stay put).

    ``jobs`` fans the restarts out over a process pool (``0`` = all
    cores).  Starting permutations are drawn serially from one seeded RNG
    and results are folded in restart order under the same early-exit rule
    as the serial loop, so every ``jobs`` value returns the identical
    :class:`RemapResult` — parallelism only buys wall-clock time, at the
    price of descents past an early zero-cost hit being discarded.
    """
    if freq is None:
        freq = estimate_block_frequencies(fn)
    edges = _edge_list(fn, reg_n, order, freq)
    pinned_set = set(pinned)
    free = [i for i in range(reg_n) if i not in pinned_set]
    identity = list(range(reg_n))
    base_cost = _perm_cost(identity, edges, reg_n, diff_n)

    starts = _start_perms(identity, free, restarts, seed)

    from repro.parallel import chunked, parallel_map, resolve_jobs

    n_jobs = resolve_jobs(jobs)
    if n_jobs > 1 and len(starts) > 1:
        payloads = [
            (tuple(edges), reg_n, diff_n, tuple(free), batch)
            for batch in chunked(starts, n_jobs)
        ]
        outcomes = [
            result
            for batch_result in parallel_map(_descent_batch, payloads,
                                             jobs=n_jobs)
            for result in batch_result
        ]
        results = iter(outcomes)

        def next_descent() -> Tuple[int, List[int]]:
            return next(results)
    else:
        engine = _make_engine(edges, reg_n, diff_n, free)
        starts_iter = iter(starts)

        def next_descent() -> Tuple[int, List[int]]:
            perm = next(starts_iter)
            return engine.descend(perm), perm

    best_cost, best_perm = next_descent()
    used = 1
    for _ in range(max(0, restarts - 1)):
        if best_cost == 0:
            break
        cost, perm = next_descent()
        used += 1
        if cost < best_cost:
            best_perm, best_cost = perm, cost
    return RemapResult(
        fn=apply_permutation(fn, best_perm, reg_n),
        permutation=tuple(best_perm),
        cost_before=base_cost / _WEIGHT_SCALE,
        cost_after=best_cost / _WEIGHT_SCALE,
        restarts=used,
    )
