"""Differential remapping — approach 1 (paper Section 5).

A post-pass over already-allocated code: permute the physical register
numbers to minimise the adjacency-graph cost of condition (3).  Permuting
never changes which live ranges share a register, so any allocator's output
remains valid; only the *numbers* change, and with differential encoding the
numbers matter.

Two searches are provided, matching the paper:

* :func:`exhaustive_remap` — all ``RegN!`` permutations,
  O(RegN^2 * RegN!), "tractable for small RegN".
* :func:`differential_remap` — the polynomial greedy heuristic of Figure 7:
  steepest-descent over pairwise swaps of the register vector, restarted from
  a number of random initial vectors (the paper uses 1000) and keeping the
  best local minimum.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.analysis.adjacency import build_adjacency
from repro.analysis.frequency import estimate_block_frequencies
from repro.ir.function import Function
from repro.ir.instr import Reg

__all__ = ["RemapResult", "differential_remap", "exhaustive_remap", "apply_permutation"]


@dataclass
class RemapResult:
    """Outcome of a remapping search."""

    fn: Function
    permutation: Tuple[int, ...]  # old register number -> new register number
    cost_before: float
    cost_after: float
    restarts: int = 1

    @property
    def improvement(self) -> float:
        return self.cost_before - self.cost_after


def _edge_list(fn: Function, reg_n: int, order: str,
               freq: Optional[Mapping[str, float]]) -> List[Tuple[int, int, float]]:
    graph = build_adjacency(fn, order=order, freq=freq)
    edges: List[Tuple[int, int, float]] = []
    for u, v, w in graph.edges():
        if u.virtual or v.virtual:
            raise ValueError("remapping requires allocated (physical) code")
        if u.id < reg_n and v.id < reg_n and u.cls == "int" and v.cls == "int":
            edges.append((u.id, v.id, w))
    return edges


def _perm_cost(perm: Sequence[int], edges: Sequence[Tuple[int, int, float]],
               reg_n: int, diff_n: int) -> float:
    total = 0.0
    for u, v, w in edges:
        if (perm[v] - perm[u]) % reg_n >= diff_n:
            total += w
    return total


def apply_permutation(fn: Function, perm: Sequence[int], reg_n: int) -> Function:
    """Renumber physical int registers below ``reg_n`` through ``perm``."""
    mapping: Dict[Reg, Reg] = {}
    for r in fn.registers():
        if not r.virtual and r.cls == "int" and r.id < reg_n:
            mapping[r] = Reg(perm[r.id], virtual=False, cls="int")
    return fn.rewrite_registers(mapping)


def exhaustive_remap(fn: Function, reg_n: int, diff_n: int,
                     order: str = "src_first",
                     freq: Optional[Mapping[str, float]] = None,
                     pinned: Sequence[int] = ()) -> RemapResult:
    """Try every permutation.  Only sensible for small ``reg_n`` (≤ 8)."""
    if freq is None:
        freq = estimate_block_frequencies(fn)
    edges = _edge_list(fn, reg_n, order, freq)
    identity = tuple(range(reg_n))
    base_cost = _perm_cost(identity, edges, reg_n, diff_n)
    free = [i for i in range(reg_n) if i not in set(pinned)]
    best_perm, best_cost = identity, base_cost
    for images in itertools.permutations(free):
        perm = list(identity)
        for slot, image in zip(free, images):
            perm[slot] = image
        cost = _perm_cost(perm, edges, reg_n, diff_n)
        if cost < best_cost:
            best_perm, best_cost = tuple(perm), cost
            if cost == 0:
                break
    return RemapResult(
        fn=apply_permutation(fn, best_perm, reg_n),
        permutation=best_perm,
        cost_before=base_cost,
        cost_after=best_cost,
    )


def _greedy_descent(perm: List[int], edges: Sequence[Tuple[int, int, float]],
                    reg_n: int, diff_n: int, free: Sequence[int]) -> float:
    """Steepest-descent over element swaps (the paper's Figure 7 loop)."""
    cost = _perm_cost(perm, edges, reg_n, diff_n)
    while True:
        best_delta = 0.0
        best_swap: Optional[Tuple[int, int]] = None
        for ai in range(len(free)):
            for bi in range(ai + 1, len(free)):
                a, b = free[ai], free[bi]
                perm[a], perm[b] = perm[b], perm[a]
                new_cost = _perm_cost(perm, edges, reg_n, diff_n)
                perm[a], perm[b] = perm[b], perm[a]
                delta = cost - new_cost
                if delta > best_delta:
                    best_delta, best_swap = delta, (a, b)
        if best_swap is None:
            return cost
        a, b = best_swap
        perm[a], perm[b] = perm[b], perm[a]
        cost -= best_delta


def differential_remap(fn: Function, reg_n: int, diff_n: int,
                       order: str = "src_first",
                       freq: Optional[Mapping[str, float]] = None,
                       restarts: int = 100,
                       seed: int = 0,
                       pinned: Sequence[int] = ()) -> RemapResult:
    """Greedy remapping with random restarts (paper Section 5, Figure 7).

    ``pinned`` register numbers keep their identity mapping — used to respect
    calling conventions without the store-repair of Section 9.3 (parameter
    and return registers stay put).
    """
    if freq is None:
        freq = estimate_block_frequencies(fn)
    edges = _edge_list(fn, reg_n, order, freq)
    pinned_set = set(pinned)
    free = [i for i in range(reg_n) if i not in pinned_set]
    identity = list(range(reg_n))
    base_cost = _perm_cost(identity, edges, reg_n, diff_n)

    rng = random.Random(seed)
    best_perm = list(identity)
    best_cost = _greedy_descent(best_perm, edges, reg_n, diff_n, free)
    used = 1
    for _ in range(max(0, restarts - 1)):
        if best_cost == 0:
            break
        images = free[:]
        rng.shuffle(images)
        perm = list(identity)
        for slot, image in zip(free, images):
            perm[slot] = image
        cost = _greedy_descent(perm, edges, reg_n, diff_n, free)
        used += 1
        if cost < best_cost:
            best_perm, best_cost = perm, cost
    return RemapResult(
        fn=apply_permutation(fn, best_perm, reg_n),
        permutation=tuple(best_perm),
        cost_before=base_cost,
        cost_after=best_cost,
        restarts=used,
    )
