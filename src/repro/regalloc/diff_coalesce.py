"""Differential coalesce — approach 3 (paper Section 7, Figure 9).

Runs on top of the optimal-spill substrate: after residence decisions and
live-range splitting, a best-first coalescing loop repeatedly picks the move
whose elimination yields the largest combined cost reduction, where cost
counts *both* move instructions and ``set_last_reg`` instructions (the paper
treats them as equally expensive).  Each candidate must keep the graph
conservatively colorable (Briggs test) — our stand-in for the paper's
"try, check colorability, undo" loop, which avoids re-running
rebuild&simplify per trial while rejecting exactly the coalescences that
could force new spills.  Coloring then uses differential select
(Section 7: "differential select is invoked during the select stage").

The differential gain of merging ``a`` and ``b`` is the adjacency-graph
weight between them: after the merge those adjacent accesses hit one
register and encode as difference 0, so their ``set_last_reg`` risk
disappears regardless of the final numbering.  Cross effects on other edges
depend on numbers not yet assigned and are left to differential select.

An optional pre-pass (:func:`split_at_joins`) inserts copies for values
flowing into join blocks where register pressure allows, recreating the
"large number of moves" the Appel-George splitting produces and giving the
coalescer real choices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.adjacency import AdjacencyGraph, build_adjacency
from repro.analysis.frequency import estimate_block_frequencies
from repro.analysis.interference import InterferenceGraph, build_interference
from repro.analysis.liveness import compute_liveness
from repro.ir.function import Function
from repro.ir.instr import Instr, Reg
from repro.regalloc.base import AllocationResult
from repro.regalloc.diff_select import DifferentialSelector
from repro.regalloc.iterated import iterated_allocate
from repro.regalloc.optimal_spill import apply_residence, decide_residence

__all__ = ["differential_coalesce_allocate", "split_at_joins", "coalesce_pass"]


def split_at_joins(fn: Function, k: int) -> Tuple[Function, int]:
    """Insert pred-end copies for values entering join blocks.

    For each block with two or more predecessors and each virtual register
    live into it, create a fresh name, copy into it at the end of every
    predecessor, and rename uses inside the join block up to the first
    redefinition.  Splits are skipped when they would push register pressure
    past ``k`` at any affected point.  Returns ``(new_fn, n_splits)``.
    """
    fn = fn.copy()
    next_vreg = fn.max_vreg_id() + 1
    n_splits = 0
    _, preds = fn.cfg()
    for b in list(fn.blocks):
        ps = preds[b.name]
        if len(ps) < 2:
            continue
        liveness = compute_liveness(fn)
        live_in = sorted(
            r for r in liveness.live_in[b.name] if r.virtual and r.cls == "int"
        )
        pressure_in = len(liveness.live_in[b.name])
        for v in live_in:
            # headroom: the new name is live through the start of the block
            # and briefly at every predecessor end
            if pressure_in + 1 > k:
                break
            pred_ok = all(
                len(liveness.live_out[p]) + 1 <= k for p in ps
            )
            if not pred_ok:
                continue
            # splitting a value that stays live past this block (and is not
            # redefined in it) makes copy and original coexist throughout —
            # never coalescible, pure bloat
            redefined = any(v in i.defs() for i in b.instrs)
            if v in liveness.live_out[b.name] and not redefined:
                continue
            fresh = Reg(next_vreg, virtual=True, cls="int")
            next_vreg += 1
            for p in ps:
                pblock = fn.block(p)
                copy = Instr("mov", dst=fresh, srcs=(v,))
                if pblock.terminator() is None:
                    pblock.instrs.append(copy)
                else:
                    pblock.instrs.insert(len(pblock.instrs) - 1, copy)
            # rename uses of v in b until its first redefinition
            for i, instr in enumerate(b.instrs):
                if v in instr.uses():
                    b.instrs[i] = instr.rewrite({v: fresh})
                    # rewrite() also renames a def of v; restore it
                    if v in instr.defs():
                        restored = b.instrs[i]
                        restored.dst = v if restored.dst == fresh else restored.dst
                if v in instr.defs():
                    break
            n_splits += 1
            pressure_in += 1
    fn.validate()
    return fn, n_splits


@dataclass
class CoalesceStats:
    committed: int = 0
    rejected_interfere: int = 0
    rejected_colorability: int = 0
    move_weight_removed: float = 0.0
    diff_weight_removed: float = 0.0


def _briggs_ok(graph: InterferenceGraph, a: Reg, b: Reg, k: int) -> bool:
    """Conservative colorability test for merging ``a`` and ``b``."""
    merged_neighbors = graph.neighbors(a) | graph.neighbors(b)
    merged_neighbors.discard(a)
    merged_neighbors.discard(b)
    significant = 0
    for n in merged_neighbors:
        degree = len(graph.neighbors(n) | {a, b}) - 1  # after the merge
        if not n.virtual or degree >= k:
            significant += 1
    return significant < k


def coalesce_pass(fn: Function, k: int, reg_n: int, diff_n: int,
                  order: str = "src_first",
                  freq: Optional[Dict[str, float]] = None
                  ) -> Tuple[Function, Dict[Reg, Reg], CoalesceStats]:
    """Best-first cost-driven coalescing (the Figure 9 loop).

    Returns the rewritten function, the alias map applied, and statistics.
    """
    if freq is None:
        freq = estimate_block_frequencies(fn)
    graph = build_interference(fn, freq=freq)
    adj = build_adjacency(fn, order=order, freq=freq)
    alias: Dict[Reg, Reg] = {}
    stats = CoalesceStats()
    rejected: Set[Tuple[Reg, Reg]] = set()

    while True:
        best: Optional[Tuple[Reg, Reg]] = None
        best_gain = 0.0
        for (a, b), w in sorted(graph.moves.items()):
            if (a, b) in rejected:
                continue
            if a == b or graph.interferes(a, b):
                continue
            # gain: the move instructions removed plus the adjacency weight
            # between the pair that becomes difference-0 after merging
            gain = w + adj.weight(a, b) + adj.weight(b, a)
            if gain > best_gain or (gain == best_gain and best is None):
                if not _briggs_ok(graph, a, b, k):
                    rejected.add((a, b))
                    stats.rejected_colorability += 1
                    continue
                best, best_gain = (a, b), gain
        if best is None:
            break
        a, b = best
        # keep the physical register if one is precolored
        if not a.virtual:
            keep, drop = a, b
        elif not b.virtual:
            keep, drop = b, a
        else:
            keep, drop = min(a, b), max(a, b)
        stats.committed += 1
        stats.move_weight_removed += graph.moves.get((min(a, b), max(a, b)), 0.0)
        stats.diff_weight_removed += adj.weight(a, b) + adj.weight(b, a)
        graph.merge(keep, drop)
        adj.merge(keep, drop)
        alias[drop] = keep
        rejected = set()  # degrees changed; retry everything

    # resolve alias chains and rewrite
    def resolve(r: Reg) -> Reg:
        seen = []
        while r in alias:
            seen.append(r)
            r = alias[r]
        for s in seen:
            alias[s] = r
        return r

    mapping = {r: resolve(r) for r in list(alias)}
    out = fn.rewrite_registers(mapping)
    for block in out.blocks:
        block.instrs = [
            i for i in block.instrs
            if not (i.is_move() and i.dst == i.srcs[0])
        ]
    return out, mapping, stats


def differential_coalesce_allocate(fn: Function, k: int, diff_n: int,
                                   order: str = "src_first",
                                   use_ilp: bool = True,
                                   join_splitting: bool = False,
                                   has_permi: bool = False,
                                   freq: Optional[Dict[str, float]] = None
                                   ) -> AllocationResult:
    """The full approach-3 pipeline (paper Section 7).

    ``k`` doubles as RegN — the allocator colors with all differentially
    addressable registers; ``diff_n`` shapes the cost model.  ``freq``
    overrides the static block-frequency estimate throughout.

    The residence/join moves that survive coloring are re-emitted
    minimally by :func:`repro.regalloc.moves.resolve_move_runs`
    (``REPRO_NO_MOVE_RESOLVER=1`` opts out); ``has_permi`` lets it fold
    register cycles into one ``permi`` permutation instruction.
    """
    from repro.regalloc.moves import resolve_move_runs

    plan = decide_residence(fn, k, freq=freq, use_ilp=use_ilp)
    split_fn, _ = apply_residence(fn, plan)
    n_splits = 0
    if join_splitting:
        split_fn, n_splits = split_at_joins(split_fn, k)
    coalesced_fn, mapping, stats = coalesce_pass(
        split_fn, k, k, diff_n, order, freq=dict(freq) if freq else None
    )
    selector = DifferentialSelector(k, diff_n, order=order)
    result = iterated_allocate(coalesced_fn, k, selector=selector,
                               freq=dict(freq) if freq else None)
    move_stats = resolve_move_runs(result.fn, k, has_permi=has_permi)
    result.stats.update(move_stats.as_stats())
    result.stats.update({
        "coalesce_committed": float(stats.committed),
        "coalesce_move_weight": stats.move_weight_removed,
        "coalesce_diff_weight": stats.diff_weight_removed,
        "join_splits": float(n_splits),
        "ospill_objective": plan.objective,
        "ospill_solver": 1.0 if plan.solver == "ilp" else 0.0,
    })
    return result
