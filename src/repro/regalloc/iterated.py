"""Iterated register coalescing (George & Appel, TOPLAS 1996).

This is the paper's baseline allocator: Section 10.1 replaces gcc's
register-allocation phase with "iterated register allocation [5]".  The
implementation follows the classic worklist formulation: build, simplify,
coalesce (Briggs + George conservative tests), freeze, potential/actual
spill, select — iterated until no actual spills remain.

The select stage exposes a hook (``selector``) through which the paper's
*differential select* (Section 6) chooses among the legal colors; the default
selector picks the lowest-numbered color, which is the conventional
"arbitrary" choice the paper contrasts against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.frequency import estimate_block_frequencies
from repro.analysis.interference import build_interference
from repro.analysis.liveness import compute_liveness
from repro.ir.function import Function
from repro.ir.instr import Instr, Reg
from repro.regalloc.base import (
    AllocationError,
    AllocationResult,
    spill_cost_estimates,
)
from repro.regalloc.spill import (
    SpillSlotAllocator,
    first_free_slot,
    insert_spill_code,
)

__all__ = ["iterated_allocate", "ColorSelector"]


class ColorSelector:
    """Color-choice hook for the select stage.

    Subclasses see every coalesce (to keep member sets) and choose a color
    for each node from the legal set.  The default implements the
    conventional lowest-number choice.
    """

    def begin_round(self, fn: Function, members: Dict[Reg, Set[Reg]],
                    freq: Optional[Dict[str, float]] = None) -> None:
        """Called at the start of each allocation round.  ``freq`` carries
        the block-frequency estimate the allocator is optimising with."""

    def on_coalesce(self, kept: Reg, dropped: Reg) -> None:
        """Called when ``dropped`` is coalesced into ``kept``."""

    def on_color(self, members: Set[Reg], color: int) -> None:
        """Called when a node (all its member vregs) receives ``color``."""

    def choose(self, node: Reg, members: Set[Reg], ok_colors: Set[int]) -> int:
        """Pick a color for ``node``; default is the lowest legal number."""
        return min(ok_colors)


@dataclass
class _IRCState:
    """One round of iterated register coalescing over one function."""

    fn: Function
    k: int
    costs: Dict[Reg, float]
    no_spill: Set[Reg]
    selector: ColorSelector
    freq: Optional[Dict[str, float]] = None
    cls: str = "int"

    # node sets
    precolored: Set[Reg] = field(default_factory=set)
    initial: Set[Reg] = field(default_factory=set)
    simplify_wl: Set[Reg] = field(default_factory=set)
    freeze_wl: Set[Reg] = field(default_factory=set)
    spill_wl: Set[Reg] = field(default_factory=set)
    spilled: Set[Reg] = field(default_factory=set)
    coalesced: Set[Reg] = field(default_factory=set)
    colored: Set[Reg] = field(default_factory=set)
    stack: List[Reg] = field(default_factory=list)

    # move sets (moves are (dst, src) pairs)
    coalesced_moves: Set[Tuple[Reg, Reg]] = field(default_factory=set)
    constrained_moves: Set[Tuple[Reg, Reg]] = field(default_factory=set)
    frozen_moves: Set[Tuple[Reg, Reg]] = field(default_factory=set)
    worklist_moves: Set[Tuple[Reg, Reg]] = field(default_factory=set)
    active_moves: Set[Tuple[Reg, Reg]] = field(default_factory=set)

    # graph
    adj_set: Set[Tuple[Reg, Reg]] = field(default_factory=set)
    adj_list: Dict[Reg, Set[Reg]] = field(default_factory=dict)
    degree: Dict[Reg, int] = field(default_factory=dict)
    move_list: Dict[Reg, Set[Tuple[Reg, Reg]]] = field(default_factory=dict)
    alias: Dict[Reg, Reg] = field(default_factory=dict)
    color: Dict[Reg, int] = field(default_factory=dict)
    members: Dict[Reg, Set[Reg]] = field(default_factory=dict)

    _INF = 1 << 30

    # ------------------------------------------------------------------
    # build
    # ------------------------------------------------------------------

    def build(self) -> None:
        graph = build_interference(self.fn, cls=self.cls)
        for r in self.fn.registers():
            if r.cls != self.cls:
                continue
            self.members[r] = {r}
            if r.virtual:
                self.initial.add(r)
                self.degree[r] = 0
                self.adj_list[r] = set()
                self.move_list[r] = set()
            else:
                self.precolored.add(r)
                self.color[r] = r.id
                self.degree[r] = self._INF
                self.adj_list[r] = set()
                self.move_list[r] = set()
        for a in graph.nodes():
            # sorted: the insertion order of adj_list/worklist entries
            # must not depend on the neighbor sets' iteration order
            for b in sorted(graph.neighbors(a)):
                self.add_edge(a, b)
        for instr in self.fn.instructions():
            if instr.is_move() and instr.dst.cls == self.cls \
                    and instr.srcs[0].cls == self.cls:
                m = (instr.dst, instr.srcs[0])
                if m[0] == m[1]:
                    continue
                self.move_list.setdefault(m[0], set()).add(m)
                self.move_list.setdefault(m[1], set()).add(m)
                self.worklist_moves.add(m)
        self.selector.begin_round(self.fn, self.members, self.freq)

    def add_edge(self, u: Reg, v: Reg) -> None:
        if u == v or (u, v) in self.adj_set:
            return
        self.adj_set.add((u, v))
        self.adj_set.add((v, u))
        if u not in self.precolored:
            self.adj_list[u].add(v)
            self.degree[u] = self.degree.get(u, 0) + 1
        if v not in self.precolored:
            self.adj_list[v].add(u)
            self.degree[v] = self.degree.get(v, 0) + 1

    # ------------------------------------------------------------------
    # worklist management
    # ------------------------------------------------------------------

    def make_worklists(self) -> None:
        for n in sorted(self.initial):
            if self.degree[n] >= self.k:
                self.spill_wl.add(n)
            elif self.move_related(n):
                self.freeze_wl.add(n)
            else:
                self.simplify_wl.add(n)
        self.initial.clear()

    def adjacent(self, n: Reg) -> Set[Reg]:
        return self.adj_list.get(n, set()) - set(self.stack) - self.coalesced

    def node_moves(self, n: Reg) -> Set[Tuple[Reg, Reg]]:
        return self.move_list.get(n, set()) & (self.active_moves | self.worklist_moves)

    def move_related(self, n: Reg) -> bool:
        return bool(self.node_moves(n))

    def decrement_degree(self, m: Reg) -> None:
        d = self.degree[m]
        self.degree[m] = d - 1
        if d == self.k and m not in self.precolored:
            self.enable_moves({m} | self.adjacent(m))
            self.spill_wl.discard(m)
            if self.move_related(m):
                self.freeze_wl.add(m)
            else:
                self.simplify_wl.add(m)

    def enable_moves(self, nodes: Set[Reg]) -> None:
        for n in nodes:
            for m in self.node_moves(n):
                if m in self.active_moves:
                    self.active_moves.discard(m)
                    self.worklist_moves.add(m)

    # ------------------------------------------------------------------
    # simplify
    # ------------------------------------------------------------------

    def simplify(self) -> None:
        n = min(self.simplify_wl)  # deterministic order
        self.simplify_wl.discard(n)
        self.stack.append(n)
        for m in self.adjacent(n):
            self.decrement_degree(m)

    # ------------------------------------------------------------------
    # coalesce
    # ------------------------------------------------------------------

    def get_alias(self, n: Reg) -> Reg:
        while n in self.coalesced:
            n = self.alias[n]
        return n

    def add_worklist(self, u: Reg) -> None:
        if (u not in self.precolored and not self.move_related(u)
                and self.degree[u] < self.k):
            self.freeze_wl.discard(u)
            self.simplify_wl.add(u)

    def ok(self, t: Reg, r: Reg) -> bool:
        """George test for one neighbour ``t`` of the virtual node."""
        return (self.degree[t] < self.k or t in self.precolored
                or (t, r) in self.adj_set)

    def conservative(self, nodes: Set[Reg]) -> bool:
        """Briggs test: fewer than k significant-degree neighbours."""
        return sum(1 for n in nodes if self.degree[n] >= self.k) < self.k

    def coalesce(self) -> None:
        m = min(self.worklist_moves)
        self.worklist_moves.discard(m)
        x, y = self.get_alias(m[0]), self.get_alias(m[1])
        u, v = (y, x) if y in self.precolored else (x, y)
        if u == v:
            self.coalesced_moves.add(m)
            self.add_worklist(u)
        elif v in self.precolored or (u, v) in self.adj_set:
            self.constrained_moves.add(m)
            self.add_worklist(u)
            self.add_worklist(v)
        elif ((u in self.precolored
               and all(self.ok(t, u) for t in self.adjacent(v)))
              or (u not in self.precolored
                  and self.conservative(self.adjacent(u) | self.adjacent(v)))):
            self.coalesced_moves.add(m)
            self.combine(u, v)
            self.add_worklist(u)
        else:
            self.active_moves.add(m)

    def combine(self, u: Reg, v: Reg) -> None:
        if v in self.freeze_wl:
            self.freeze_wl.discard(v)
        else:
            self.spill_wl.discard(v)
        self.coalesced.add(v)
        self.alias[v] = u
        self.members[u] |= self.members[v]
        self.move_list[u] |= self.move_list[v]
        self.enable_moves({v})
        self.selector.on_coalesce(u, v)
        for t in self.adjacent(v):
            self.add_edge(t, u)
            self.decrement_degree(t)
        if self.degree[u] >= self.k and u in self.freeze_wl:
            self.freeze_wl.discard(u)
            self.spill_wl.add(u)

    # ------------------------------------------------------------------
    # freeze
    # ------------------------------------------------------------------

    def freeze(self) -> None:
        u = min(self.freeze_wl)
        self.freeze_wl.discard(u)
        self.simplify_wl.add(u)
        self.freeze_moves(u)

    def freeze_moves(self, u: Reg) -> None:
        for m in list(self.node_moves(u)):
            x, y = m
            if self.get_alias(y) == self.get_alias(u):
                v = self.get_alias(x)
            else:
                v = self.get_alias(y)
            self.active_moves.discard(m)
            self.frozen_moves.add(m)
            if not self.node_moves(v) and self.degree.get(v, 0) < self.k \
                    and v not in self.precolored:
                self.freeze_wl.discard(v)
                self.simplify_wl.add(v)

    # ------------------------------------------------------------------
    # spill
    # ------------------------------------------------------------------

    def select_spill(self) -> None:
        candidates = [n for n in self.spill_wl if n not in self.no_spill]
        pool = candidates or list(self.spill_wl)
        m = min(
            pool,
            key=lambda n: (self.costs.get(n, 1.0) / max(1, self.degree[n]), n),
        )
        self.spill_wl.discard(m)
        self.simplify_wl.add(m)
        self.freeze_moves(m)

    # ------------------------------------------------------------------
    # select
    # ------------------------------------------------------------------

    def assign_colors(self) -> None:
        while self.stack:
            n = self.stack.pop()
            ok = set(range(self.k))
            for w in self.adj_list[n]:
                wa = self.get_alias(w)
                if wa in self.colored or wa in self.precolored:
                    ok.discard(self.color[wa])
            if not ok:
                self.spilled.add(n)
            else:
                self.colored.add(n)
                c = self.selector.choose(n, self.members[n], ok)
                if c not in ok:
                    raise AllocationError(
                        f"selector chose illegal color {c} for {n}"
                    )
                self.color[n] = c
                self.selector.on_color(self.members[n], c)
        for n in self.coalesced:
            a = self.get_alias(n)
            if a in self.color:
                self.color[n] = self.color[a]

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------

    def run(self) -> None:
        self.build()
        self.make_worklists()
        while (self.simplify_wl or self.worklist_moves or self.freeze_wl
               or self.spill_wl):
            if self.simplify_wl:
                self.simplify()
            elif self.worklist_moves:
                self.coalesce()
            elif self.freeze_wl:
                self.freeze()
            else:
                self.select_spill()
        self.assign_colors()


def _rewrite_with_colors(fn: Function, color: Dict[Reg, int]) -> Tuple[Function, int]:
    """Substitute physical registers and drop self-moves."""
    mapping = {
        r: Reg(c, virtual=False, cls=r.cls) for r, c in color.items() if r.virtual
    }
    out = fn.rewrite_registers(mapping)
    removed = 0
    for block in out.blocks:
        kept: List[Instr] = []
        for instr in block.instrs:
            if instr.is_move() and instr.dst == instr.srcs[0]:
                removed += 1
                continue
            kept.append(instr)
        block.instrs = kept
    return out, removed


def iterated_allocate(fn: Function, k: int,
                      selector: Optional[ColorSelector] = None,
                      max_rounds: int = 64,
                      freq: Optional[Dict[str, float]] = None,
                      cls: str = "int") -> AllocationResult:
    """Allocate ``fn`` onto ``k`` registers with iterated register coalescing.

    ``selector`` customises the select stage's color choice (differential
    select plugs in here).  Spills iterate: spill code is inserted and the
    whole allocation re-runs until the graph colors.  ``freq`` overrides the
    static block-frequency estimate (e.g. with profile data).  ``cls``
    selects the register class being allocated (Section 9.1: classes are
    independent); registers of other classes pass through untouched.
    """
    if k < 1:
        raise ValueError("k must be positive")
    selector = selector or ColorSelector()
    current = fn
    slots = SpillSlotAllocator(first_free_slot(fn))
    next_vreg = fn.max_vreg_id() + 1
    no_spill: Set[Reg] = set()
    all_spilled: Set[Reg] = set()
    if freq is None:
        freq = estimate_block_frequencies(fn)

    for round_no in range(1, max_rounds + 1):
        costs = spill_cost_estimates(current, freq)
        state = _IRCState(
            fn=current, k=k, costs=costs, no_spill=no_spill,
            selector=selector, freq=freq, cls=cls,
        )
        state.run()
        if not state.spilled:
            allocated, removed = _rewrite_with_colors(current, state.color)
            result = AllocationResult(
                fn=allocated,
                coloring=dict(state.color),
                spilled=frozenset(all_spilled),
                k=k,
                rounds=round_no,
                moves_removed=removed,
                stats={"coalesced_moves": float(len(state.coalesced_moves))},
                colored_fn=current,
            )
            result.stats["colored_fn_instrs"] = float(current.num_instructions())
            return result
        all_spilled |= state.spilled
        current, next_vreg, temps = insert_spill_code(
            current, state.spilled, slots, next_vreg
        )
        no_spill |= temps
    raise AllocationError(
        f"{fn.name}: no coloring with k={k} after {max_rounds} rounds"
    )
