"""SSA-based spill-everywhere allocation (decoupled spill then color).

Bouchez, Darte and Rastello ("On the complexity of spill everywhere
under SSA form", PAPERS.md) observe that under SSA the spilling and
coloring problems decouple: lower register pressure to the budget
first, then color.  This backend follows that shape on top of the
repo's SSA machinery:

1. **SSA round trip** — :func:`repro.analysis.ssa.construct_ssa` then
   :func:`~repro.analysis.ssa.destruct_ssa`.  Construction splits every
   variable into single-definition values (live ranges shrink to their
   minimal extents); destruction lowers the phis through the
   parallel-move decomposition, so the function this backend colors is
   an ordinary phi-free IR function and the emitted
   :class:`~repro.regalloc.base.AllocationResult` is checkable by L010
   and :func:`~repro.regalloc.base.check_allocation` unchanged.
2. **Furthest-next-use spill everywhere** — while ``MaxLive`` exceeds
   the budget, find the first program point over pressure and evict the
   live value whose next use (in layout order) is furthest away —
   Belady's rule, the heuristic the paper analyses — spilling it
   *everywhere*: a store after every definition, a reload before every
   use (:func:`~repro.regalloc.spill.insert_spill_code`).
3. **Greedy coloring** — color values in first-occurrence order with
   the lowest free register.  ``MaxLive <= k`` no longer guarantees
   colorability once destruction has left SSA form, so a failed round
   spills the uncolorable values and retries, exactly like the iterated
   allocator's loop.

The backend is deliberately structurally unlike the iterated/briggs
allocator — no coalescing, no interference-driven spill costs — which
is the point: it produces genuinely different allocation shapes for the
differential encoder and fuzz oracles to chew on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.interference import build_interference
from repro.analysis.liveness import compute_liveness
from repro.analysis.ssa import construct_ssa, destruct_ssa
from repro.ir.function import Function
from repro.ir.instr import Instr, Reg
from repro.regalloc.base import AllocationError, AllocationResult
from repro.regalloc.spill import (SpillSlotAllocator, first_free_slot,
                                  insert_spill_code)

__all__ = ["ssa_spill_allocate"]

_MAX_ROUNDS = 64


def _pressure_point(fn: Function, k: int,
                    cls: str) -> Optional[Tuple[int, Set[Reg]]]:
    """First instruction index where ``cls`` pressure exceeds ``k``.

    Returns ``(layout_index, live_set_at_that_point)`` or ``None`` when
    every point is within budget.  Pressure is checked on both sides of
    each instruction, mirroring ``LivenessInfo.max_pressure``.
    """
    liveness = compute_liveness(fn)
    idx = 0
    for block in fn.blocks:
        for instr in block.instrs:
            for live in (liveness.instr_live_in[instr.uid],
                         liveness.instr_live_out[instr.uid]):
                at = {r for r in live if r.cls == cls}
                if len(at) > k:
                    return idx, at
            idx += 1
    return None


def _furthest_use_victim(fn: Function, point: int, live: Set[Reg],
                         no_spill: Set[Reg]) -> Optional[Reg]:
    """Belady's choice: the live value whose next use is furthest away.

    Values touched by the instruction at ``point`` are excluded —
    spilling them re-materialises a reload at the very same point, so
    pressure there would not drop.  Ties break toward the smaller
    register id for determinism.
    """
    positions: Dict[Reg, List[int]] = {}
    here: Set[Reg] = set()
    for idx, instr in enumerate(fn.instructions()):
        if idx == point:
            here = set(instr.uses()) | set(instr.defs())
        for r in instr.uses():
            positions.setdefault(r, []).append(idx)

    best: Optional[Reg] = None
    best_dist = -1
    for r in sorted(live):
        if not r.virtual or r in no_spill or r in here:
            continue
        later = [p for p in positions.get(r, ()) if p > point]
        dist = min(later) - point if later else 1 << 30
        if dist > best_dist:
            best, best_dist = r, dist
    return best


def _greedy_color(
    fn: Function, k: int, cls: str,
) -> Tuple[Dict[Reg, int], List[Reg], "object"]:
    """Simplify/select coloring with Briggs optimism.

    Values of degree below ``k`` are removed first (they always find a
    color); when only high-degree values remain, the highest-degree one
    is removed optimistically.  Selection pops the stack assigning the
    lowest free color.  Returns ``(coloring, failed, graph)`` — the
    physical registers are pre-colored with their own ids and included
    in the map; ``failed`` are optimistic values that found no color.
    """
    graph = build_interference(fn, cls=cls)
    virtuals: Set[Reg] = {
        r for r in graph.nodes() if r.virtual and r.cls == cls
    }
    # values never mentioned in an interference-relevant position still
    # need a register: unused parameters are live on entry
    for r in fn.params:
        if r.cls == cls and r.virtual:
            virtuals.add(r)

    def degree(r: Reg, remaining: Set[Reg]) -> int:
        if r not in graph:
            return 0
        return sum(1 for n in graph.neighbors(r)
                   if n in remaining or (not n.virtual and n.cls == cls))

    stack: List[Reg] = []
    remaining = set(virtuals)
    while remaining:
        pick = next((r for r in sorted(remaining)
                     if degree(r, remaining) < k), None)
        if pick is None:  # Briggs: push the worst node and hope
            pick = max(sorted(remaining), key=lambda r: degree(r, remaining))
        stack.append(pick)
        remaining.discard(pick)

    coloring: Dict[Reg, int] = {
        r: r.id for r in graph.nodes() if not r.virtual
    }
    failed: List[Reg] = []
    for r in reversed(stack):
        used = set()
        if r in graph:
            used = {coloring[n] for n in graph.neighbors(r)
                    if n in coloring}
        color = next((c for c in range(k) if c not in used), None)
        if color is None:
            failed.append(r)
        else:
            coloring[r] = color
    return coloring, failed, graph


def _rewrite_physical(fn: Function, coloring: Dict[Reg, int],
                      cls: str) -> Tuple[Function, int]:
    """Substitute physical registers and drop now-trivial self-moves."""
    mapping = {
        r: Reg(c, virtual=False, cls=r.cls)
        for r, c in coloring.items() if r.virtual and r.cls == cls
    }
    out = fn.rewrite_registers(mapping)
    removed = 0
    for block in out.blocks:
        new_instrs: List[Instr] = []
        for instr in block.instrs:
            if (instr.op == "mov" and instr.srcs
                    and instr.dst == instr.srcs[0]):
                removed += 1
                continue
            new_instrs.append(instr)
        block.instrs = new_instrs
    return out, removed


def ssa_spill_allocate(fn: Function, k: int,
                       freq: Optional[Dict[str, float]] = None,
                       cls: str = "int") -> AllocationResult:
    """Allocate ``fn`` with the SSA spill-everywhere scheme.

    ``freq`` is accepted for signature parity with the other backends;
    Belady's rule is frequency-oblivious by design.  Raises
    :class:`AllocationError` if spilling cannot reach a colorable state
    within the round budget.
    """
    ssa = construct_ssa(fn)
    current = destruct_ssa(ssa)

    slots = SpillSlotAllocator(first_free_slot(current))
    next_vreg = current.max_vreg_id() + 1
    no_spill: Set[Reg] = set()
    spilled: Set[Reg] = set()

    # phase 1: Belady pressure lowering
    rounds = 0
    while True:
        over = _pressure_point(current, k, cls)
        if over is None:
            break
        point, live = over
        victim = _furthest_use_victim(current, point, live, no_spill)
        if victim is None:
            break  # only untouchable values left; leave it to phase 2
        current, next_vreg, temps = insert_spill_code(
            current, {victim}, slots, next_vreg)
        no_spill |= temps
        spilled.add(victim)
        rounds += 1
        if rounds > _MAX_ROUNDS * 8:
            raise AllocationError(
                f"{fn.name}: pressure lowering did not converge")

    # phase 2: greedy coloring with spill-on-failure retry
    for round_no in range(1, _MAX_ROUNDS + 1):
        coloring, failed, graph = _greedy_color(current, k, cls)
        if not failed:
            allocated, removed = _rewrite_physical(current, coloring, cls)
            result = AllocationResult(
                fn=allocated,
                coloring=coloring,
                spilled=frozenset(spilled),
                k=k,
                rounds=round_no,
                moves_removed=removed,
                stats={
                    "ssa_phis": float(ssa.n_phis),
                    "ssa_versions": float(sum(ssa.versions.values())),
                    "ssa_split_blocks": float(
                        len(current.blocks) - len(ssa.fn.blocks)),
                    "spilled_everywhere": float(len(spilled)),
                    "spill_slots": float(slots.n_slots),
                    "self_moves_removed": float(removed),
                },
                colored_fn=current,
            )
            result.stats["colored_fn_instrs"] = float(
                current.num_instructions())
            return result
        candidates = {r for r in failed if r not in no_spill}
        if not candidates:
            # every failed value is a reload temporary whose range is
            # already minimal — re-spilling it would only clone it, so
            # spill its most-constrained real neighbor instead
            for f in failed:
                real = [n for n in graph.neighbors(f)
                        if n.virtual and n.cls == cls and n not in no_spill]
                if real:
                    candidates.add(max(
                        sorted(real),
                        key=lambda n: len(graph.neighbors(n))))
        if not candidates:
            raise AllocationError(
                f"{fn.name}: only unspillable temporaries left "
                f"uncolored at k={k}")
        current, next_vreg, temps = insert_spill_code(
            current, candidates, slots, next_vreg)
        no_spill |= temps
        spilled.update(candidates)

    raise AllocationError(
        f"{fn.name}: no {k}-coloring after {_MAX_ROUNDS} spill rounds")
