"""Per-class register allocation (paper Section 9.1).

"Normally, registers belong to multiple classes such as integer registers,
floating point registers etc. ... all register allocation algorithms can be
applied accordingly to each class of registers."  Classes are independent:
each has its own register file, its own interference graph, its own access
sequence and — under differential encoding — its own ``last_reg``.

:func:`allocate_classes` runs iterated register coalescing once per class,
feeding each round's output into the next, and merges the results.  The
encoder (`EncodingConfig(classes=(...))`) then encodes every class it is
told about with separate decoder state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional

from repro.ir.function import Function
from repro.regalloc.base import AllocationResult
from repro.regalloc.iterated import ColorSelector, iterated_allocate

__all__ = ["MultiClassResult", "allocate_classes"]


@dataclass
class MultiClassResult:
    """Allocations for every register class of one function."""

    fn: Function
    per_class: Dict[str, AllocationResult]

    @property
    def n_spill_instructions(self) -> int:
        return sum(
            1 for i in self.fn.instructions() if i.op in ("ldslot", "stslot")
        )

    def coloring(self, cls: str) -> Dict:
        """The register assignment of one class."""
        return self.per_class[cls].coloring


def allocate_classes(fn: Function, budgets: Mapping[str, int],
                     selector_factory: Optional[
                         Callable[[str], Optional[ColorSelector]]] = None,
                     freq: Optional[Dict[str, float]] = None
                     ) -> MultiClassResult:
    """Allocate every register class of ``fn``.

    Args:
        budgets: register count per class name, e.g.
            ``{"int": 8, "float": 16}``.  Every class appearing in the
            function must have a budget.
        selector_factory: optional ``cls -> ColorSelector`` hook so each
            class can get its own differential selector (classes may have
            different RegN/DiffN).

    Classes are allocated in sorted name order; each allocation rewrites
    only its own class's registers, so the passes compose.
    """
    present = {r.cls for r in fn.registers() if r.virtual}
    missing = present - set(budgets)
    if missing:
        raise ValueError(f"no register budget for classes {sorted(missing)}")

    current = fn
    per_class: Dict[str, AllocationResult] = {}
    for cls in sorted(present):
        selector = selector_factory(cls) if selector_factory else None
        result = iterated_allocate(
            current, budgets[cls], selector=selector, freq=freq, cls=cls
        )
        per_class[cls] = result
        current = result.fn
    return MultiClassResult(fn=current, per_class=per_class)
