"""Spill-slot coalescing: non-overlapping spilled values share frame slots.

The allocators hand every spilled live range its own abstract slot, which
is correct but wasteful — two values spilled in disjoint program regions
can reuse the same stack word.  On the paper's machine class the frame
competes with everything else for a small D-cache, so frame compaction is
a real win (fewer distinct addresses → fewer conflict misses).

Slot liveness is computed like register liveness, with ``stslot`` as the
definition and ``ldslot`` as the use; interfering slots get different
colors, the rest merge.  Purely a post-pass: it only rewrites slot
numbers.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from repro.ir.function import Function
from repro.ir.instr import Instr

__all__ = ["coalesce_spill_slots"]


def _slot_liveness(fn: Function) -> Dict[str, Set[int]]:
    """Backward may-liveness over slot numbers (block-level live-in)."""
    succs, _ = fn.cfg()
    use: Dict[str, Set[int]] = {}
    defs: Dict[str, Set[int]] = {}
    for b in fn.blocks:
        u: Set[int] = set()
        d: Set[int] = set()
        for instr in b.instrs:
            if instr.op == "ldslot" and instr.imm not in d:
                u.add(int(instr.imm))
            elif instr.op == "stslot":
                d.add(int(instr.imm))
        use[b.name], defs[b.name] = u, d

    live_in: Dict[str, Set[int]] = {b.name: set() for b in fn.blocks}
    live_out: Dict[str, Set[int]] = {b.name: set() for b in fn.blocks}
    changed = True
    while changed:
        changed = False
        for b in reversed(fn.blocks):
            out: Set[int] = set()
            for s in succs[b.name]:
                out |= live_in[s]
            new_in = use[b.name] | (out - defs[b.name])
            if out != live_out[b.name] or new_in != live_in[b.name]:
                live_out[b.name], live_in[b.name] = out, new_in
                changed = True
    return live_out


def coalesce_spill_slots(fn: Function) -> Tuple[Function, int, int]:
    """Renumber spill slots so disjoint lifetimes share.

    Returns ``(new_fn, slots_before, slots_after)``.  Functions without
    spill code come back unchanged.
    """
    slots = sorted({
        int(i.imm) for i in fn.instructions()
        if i.op in ("ldslot", "stslot")
    })
    if not slots:
        return fn, 0, 0

    live_out = _slot_liveness(fn)
    interference: Dict[int, Set[int]] = {s: set() for s in slots}
    for b in fn.blocks:
        live = set(live_out[b.name])
        for instr in reversed(b.instrs):
            if instr.op == "stslot":
                s = int(instr.imm)
                for other in live:
                    if other != s:
                        interference[s].add(other)
                        interference[other].add(s)
                live.discard(s)
            elif instr.op == "ldslot":
                live.add(int(instr.imm))

    # greedy coloring in slot order
    color: Dict[int, int] = {}
    for s in slots:
        taken = {color[o] for o in interference[s] if o in color}
        c = 0
        while c in taken:
            c += 1
        color[s] = c

    out = fn.copy()
    for b in out.blocks:
        new_instrs: List[Instr] = []
        for instr in b.instrs:
            if instr.op in ("ldslot", "stslot"):
                instr = instr.copy()
                instr.imm = color[int(instr.imm)]
            new_instrs.append(instr)
        b.instrs = new_instrs
    return out, len(slots), len(set(color.values()))
