"""Optimal spilling (Appel & George, PLDI 2001) — the *O-spill* allocator.

The paper's third scheme builds on an allocator that first decides spills
*optimally* with an ILP solver, then coalesces the resulting moves and colors
the graph.  We reproduce that structure:

1. **Residence decisions** (:func:`decide_residence`): for every virtual
   register and every program point where it is live, a binary variable says
   whether the value sits in a register or in its spill slot.  Constraints:
   at most ``k`` values in registers at any point; operands of an
   instruction must be in registers at it; definitions write to registers;
   residence agrees across CFG edges.  The objective minimises frequency
   weighted loads (memory→register transitions) plus stores
   (register→memory transitions of dirty values).  Solved exactly with
   ``scipy.optimize.milp`` (HiGHS) — the authors used CPLEX — with a greedy
   spill-everywhere fallback when scipy is unavailable or the instance
   exceeds ``max_ilp_vars``.

   One deliberate simplification versus Appel-George: residence may not
   change on a CFG *edge* (no edge splitting), so loads/stores live inside
   blocks only.  This loses a little optimality but keeps codegen simple;
   DESIGN.md records the substitution.

2. **Live-range splitting** (:func:`apply_residence`): every maximal
   in-register interval of a spilled value becomes a fresh virtual register
   connected through the spill slot (``ldslot``/``stslot``).  Clean values
   (no definition since the last load) skip the write-back.

3. Coloring happens downstream — :func:`optimal_spill_allocate` feeds the
   split function to iterated register coalescing, and
   :mod:`repro.regalloc.diff_coalesce` runs the paper's cost-driven
   coalescing loop instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.analysis.frequency import estimate_block_frequencies
from repro.analysis.liveness import LivenessInfo, compute_liveness
from repro.ir.function import Function
from repro.ir.instr import Instr, Reg
from repro.regalloc.base import AllocationResult
from repro.regalloc.iterated import ColorSelector, iterated_allocate
from repro.regalloc.spill import SpillSlotAllocator

__all__ = [
    "ResidencePlan",
    "decide_residence",
    "apply_residence",
    "optimal_spill_allocate",
]


@dataclass
class ResidencePlan:
    """Residence vectors: ``residence[v][block][j]`` is True when ``v`` is in
    a register at point ``j`` of the block (point ``j`` precedes instruction
    ``j``; the final point is the block exit)."""

    residence: Dict[Reg, Dict[str, List[bool]]]
    spilled: Set[Reg]
    objective: float
    solver: str

    def is_resident(self, v: Reg, block: str, point: int) -> bool:
        """Whether ``v`` sits in a register at the given point.

        Values never spilled are always resident; for spilled values, points
        where the value is dead read as non-resident.
        """
        if v not in self.residence:
            return True
        vec = self.residence[v].get(block)
        return bool(vec and vec[point])


# ----------------------------------------------------------------------
# problem extraction shared by the ILP and the greedy fallback
# ----------------------------------------------------------------------


@dataclass
class _Points:
    """Liveness per program point for every block."""

    fn: Function
    liveness: LivenessInfo
    live_at: Dict[Tuple[str, int], Set[Reg]] = field(default_factory=dict)

    @classmethod
    def build(cls, fn: Function, liveness: LivenessInfo) -> "_Points":
        pts = cls(fn, liveness)
        for b in fn.blocks:
            n = len(b.instrs)
            for j in range(n):
                live = liveness.instr_live_in[b.instrs[j].uid]
                pts.live_at[(b.name, j)] = {
                    r for r in live if r.virtual and r.cls == "int"
                }
            pts.live_at[(b.name, n)] = {
                r for r in liveness.live_out[b.name]
                if r.virtual and r.cls == "int"
            }
        return pts

    def phys_pressure(self, block: str, j: int) -> int:
        b = self.fn.block(block)
        n = len(b.instrs)
        if j < n:
            live = self.liveness.instr_live_in[b.instrs[j].uid]
        else:
            live = self.liveness.live_out[block]
        return sum(1 for r in live if not r.virtual and r.cls == "int")


def _forced_points(fn: Function) -> Set[Tuple[Reg, str, int]]:
    """Points where residence is forced to 1: operand uses, definition
    results, and parameters at function entry."""
    forced: Set[Tuple[Reg, str, int]] = set()
    for b in fn.blocks:
        for j, instr in enumerate(b.instrs):
            for r in instr.uses():
                if r.virtual and r.cls == "int":
                    forced.add((r, b.name, j))
            for r in instr.defs():
                if r.virtual and r.cls == "int":
                    forced.add((r, b.name, j + 1))
    entry = fn.entry.name
    for p in fn.params:
        if p.virtual and p.cls == "int":
            forced.add((p, entry, 0))
    return forced


# ----------------------------------------------------------------------
# exact solution via scipy.optimize.milp
# ----------------------------------------------------------------------


def _solve_ilp(fn: Function, k: int, pts: _Points,
               freq: Mapping[str, float],
               forced: Set[Tuple[Reg, str, int]],
               load_cost: float, store_cost: float,
               max_ilp_vars: int) -> Optional[ResidencePlan]:
    try:
        import numpy as np
        from scipy import sparse
        from scipy.optimize import Bounds, LinearConstraint, milp
    except ImportError:
        return None

    # variable layout: x vars first (binary), then transition cost vars
    x_index: Dict[Tuple[Reg, str, int], int] = {}
    for (block, j), live in sorted(
            pts.live_at.items(), key=lambda it: (it[0][0], it[0][1])):
        for v in sorted(live):
            x_index[(v, block, j)] = len(x_index)
    n_x = len(x_index)
    if n_x == 0:
        return ResidencePlan({}, set(), 0.0, "ilp")

    cost_terms: List[Tuple[int, int, float]] = []  # (x_pre, x_post, weight), load
    store_terms: List[Tuple[int, int, float]] = []
    for b in fn.blocks:
        w = freq.get(b.name, 1.0)
        for j, instr in enumerate(b.instrs):
            defs = set(instr.defs())
            # sorted: variable/constraint order must not depend on set
            # iteration order, or the solver's tie-breaks vary with the
            # process hash seed
            for v in sorted(pts.live_at[(b.name, j)]):
                if v not in pts.live_at[(b.name, j + 1)]:
                    continue  # value dies: no transition cost
                if v in defs:
                    continue  # def transitions are free (writes a register)
                pre = x_index[(v, b.name, j)]
                post = x_index[(v, b.name, j + 1)]
                cost_terms.append((pre, post, w * load_cost))
                store_terms.append((pre, post, w * store_cost))

    n_l = len(cost_terms)
    n_s = len(store_terms)
    n_vars = n_x + n_l + n_s
    if n_vars > max_ilp_vars:
        return None

    c = np.zeros(n_vars)
    for t, (_, _, w) in enumerate(cost_terms):
        c[n_x + t] = w
    for t, (_, _, w) in enumerate(store_terms):
        c[n_x + n_l + t] = w

    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    lb: List[float] = []
    ub: List[float] = []
    row = 0

    def add_entry(r: int, col: int, val: float) -> None:
        rows.append(r)
        cols.append(col)
        vals.append(val)

    # capacity per point
    for (block, j), live in pts.live_at.items():
        if not live:
            continue
        for v in sorted(live):
            add_entry(row, x_index[(v, block, j)], 1.0)
        lb.append(-np.inf)
        ub.append(float(k - pts.phys_pressure(block, j)))
        row += 1

    # load: x_post - x_pre - l <= 0
    for t, (pre, post, _) in enumerate(cost_terms):
        add_entry(row, post, 1.0)
        add_entry(row, pre, -1.0)
        add_entry(row, n_x + t, -1.0)
        lb.append(-np.inf)
        ub.append(0.0)
        row += 1

    # store: x_pre - x_post - s <= 0
    for t, (pre, post, _) in enumerate(store_terms):
        add_entry(row, pre, 1.0)
        add_entry(row, post, -1.0)
        add_entry(row, n_x + n_l + t, -1.0)
        lb.append(-np.inf)
        ub.append(0.0)
        row += 1

    # edge equality: x[v, exit(P)] == x[v, entry(B)]
    succs, _ = fn.cfg()
    for p in fn.blocks:
        np_ = len(p.instrs)
        for s in succs[p.name]:
            for v in sorted(pts.live_at[(s, 0)]):
                kp = (v, p.name, np_)
                ks = (v, s, 0)
                if kp not in x_index or ks not in x_index:
                    continue
                add_entry(row, x_index[kp], 1.0)
                add_entry(row, x_index[ks], -1.0)
                lb.append(0.0)
                ub.append(0.0)
                row += 1

    var_lb = np.zeros(n_vars)
    var_ub = np.ones(n_vars)
    for key in forced:
        if key in x_index:
            var_lb[x_index[key]] = 1.0

    integrality = np.zeros(n_vars)
    integrality[:n_x] = 1

    constraints = LinearConstraint(
        sparse.csr_matrix(
            (vals, (rows, cols)), shape=(row, n_vars)
        ),
        np.array(lb), np.array(ub),
    )
    res = milp(
        c=c,
        constraints=constraints,
        bounds=Bounds(var_lb, var_ub),
        integrality=integrality,
        options={"time_limit": 60.0},
    )
    if not res.success or res.x is None:
        return None

    # vectors default to False; True only at live points where the value is
    # resident.  Dead points read as non-resident so segment walking starts
    # a fresh segment at every definition after a liveness gap.
    residence: Dict[Reg, Dict[str, List[bool]]] = {}
    spilled: Set[Reg] = set()
    for b in fn.blocks:
        n = len(b.instrs)
        for j in range(n + 1):
            for v in sorted(pts.live_at[(b.name, j)]):
                vec = residence.setdefault(v, {}).setdefault(
                    b.name, [False] * (n + 1)
                )
                resident = res.x[x_index[(v, b.name, j)]] > 0.5
                vec[j] = resident
                if not resident:
                    spilled.add(v)
    residence = {v: blocks for v, blocks in residence.items() if v in spilled}
    return ResidencePlan(residence, spilled, float(res.fun), "ilp")


# ----------------------------------------------------------------------
# greedy fallback: spill-everywhere victims until pressure fits
# ----------------------------------------------------------------------


def _solve_greedy(fn: Function, k: int, pts: _Points,
                  freq: Mapping[str, float],
                  forced: Set[Tuple[Reg, str, int]]) -> ResidencePlan:
    forced_by_reg: Dict[Reg, Set[Tuple[str, int]]] = {}
    for v, b, j in forced:
        forced_by_reg.setdefault(v, set()).add((b, j))

    spilled: Set[Reg] = set()

    def pressure(block: str, j: int) -> int:
        live = pts.live_at[(block, j)]
        count = pts.phys_pressure(block, j)
        for v in live:
            if v not in spilled:
                count += 1
            elif (block, j) in forced_by_reg.get(v, ()):  # transient reload
                count += 1
        return count

    from repro.regalloc.base import spill_cost_estimates

    costs = spill_cost_estimates(fn, freq)
    while True:
        worst: Optional[Tuple[str, int]] = None
        worst_excess = 0
        for (block, j) in pts.live_at:
            excess = pressure(block, j) - k
            if excess > worst_excess:
                worst_excess = excess
                worst = (block, j)
        if worst is None:
            break
        candidates = [
            v for v in pts.live_at[worst]
            if v not in spilled and worst not in forced_by_reg.get(v, ())
        ]
        if not candidates:
            break  # leave residual pressure for the coloring stage to spill
        victim = min(candidates, key=lambda v: (costs.get(v, 1.0), v))
        spilled.add(victim)

    residence: Dict[Reg, Dict[str, List[bool]]] = {}
    for v in sorted(spilled):
        vecs: Dict[str, List[bool]] = {}
        for b in fn.blocks:
            n = len(b.instrs)
            vec = [False] * (n + 1)
            for j in range(n + 1):
                if v in pts.live_at[(b.name, j)]:
                    vec[j] = (b.name, j) in forced_by_reg.get(v, set())
            vecs[b.name] = vec
        residence[v] = vecs
    plan = ResidencePlan(residence, spilled, 0.0, "greedy")
    # report the same weighted load/store objective the ILP minimises, so
    # exact and greedy plans are directly comparable
    plan.objective = residence_plan_cost(fn, plan, freq)
    return plan


def residence_plan_cost(fn: Function, plan: ResidencePlan,
                        freq: Optional[Mapping[str, float]] = None,
                        load_cost: float = 1.0,
                        store_cost: float = 1.0) -> float:
    """Weighted loads+stores a residence plan implies — the ILP's objective,
    evaluated on *any* plan so exact and greedy solutions are comparable.

    Counts memory→register transitions (loads) and register→memory
    transitions of still-live values (stores) across every instruction,
    plus the block-entry reloads plans with inconsistent edges need.
    """
    if freq is None:
        freq = estimate_block_frequencies(fn)
    liveness = compute_liveness(fn)
    pts = _Points.build(fn, liveness)
    _, preds = fn.cfg()
    total = 0.0
    for b in fn.blocks:
        w = freq.get(b.name, 1.0)
        n = len(b.instrs)
        for j, instr in enumerate(b.instrs):
            defs = set(instr.defs())
            # sorted: the objective is a float sum, and addition order
            # must not depend on set iteration order
            for v in sorted(pts.live_at[(b.name, j)]):
                if v not in pts.live_at[(b.name, j + 1)]:
                    continue
                pre = plan.is_resident(v, b.name, j)
                post = plan.is_resident(v, b.name, j + 1)
                if v in defs:
                    continue  # def transitions are free
                if post and not pre:
                    total += w * load_cost
                elif pre and not post:
                    total += w * store_cost
        # block-entry reloads when some predecessor leaves the value in memory
        for v in sorted(pts.live_at[(b.name, 0)]):
            if not plan.is_resident(v, b.name, 0) or v not in plan.spilled:
                continue
            ps = preds[b.name]
            if ps and any(
                not plan.is_resident(v, p, len(fn.block(p).instrs))
                for p in ps
            ):
                total += w * load_cost
    return total


def decide_residence(fn: Function, k: int,
                     freq: Optional[Mapping[str, float]] = None,
                     use_ilp: bool = True,
                     load_cost: float = 1.0,
                     store_cost: float = 1.0,
                     max_ilp_vars: int = 60_000) -> ResidencePlan:
    """Decide, for every live point of every virtual register, whether the
    value is in a register — the Appel-George step 1."""
    if freq is None:
        freq = estimate_block_frequencies(fn)
    liveness = compute_liveness(fn)
    pts = _Points.build(fn, liveness)
    forced = _forced_points(fn)
    if use_ilp:
        plan = _solve_ilp(fn, k, pts, freq, forced, load_cost, store_cost,
                          max_ilp_vars)
        if plan is not None:
            return plan
    return _solve_greedy(fn, k, pts, freq, forced)


# ----------------------------------------------------------------------
# live-range splitting codegen
# ----------------------------------------------------------------------


class _UnionFind:
    def __init__(self) -> None:
        self.parent: Dict[object, object] = {}

    def find(self, x: object) -> object:
        self.parent.setdefault(x, x)
        while self.parent[x] != x:
            self.parent[x] = self.parent[self.parent[x]]
            x = self.parent[x]
        return x

    def union(self, a: object, b: object) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


def _segment_walk(fn: Function, plan: ResidencePlan, v: Reg):
    """Yield, per block, the token active at every point of the block.

    Token identities: ``("e", v, block)`` for an entry segment,
    ``("m", v, block, j)`` for a segment starting after instruction ``j``
    (reload or defining instruction).  Returns ``{block: [token_or_None per
    point]}``.
    """
    out: Dict[str, List[Optional[tuple]]] = {}
    for b in fn.blocks:
        vecs = plan.residence[v].get(b.name)
        n = len(b.instrs)
        if vecs is None:
            out[b.name] = [None] * (n + 1)
            continue
        tokens: List[Optional[tuple]] = [None] * (n + 1)
        current: Optional[tuple] = ("e", v, b.name) if vecs[0] else None
        tokens[0] = current
        for j, instr in enumerate(b.instrs):
            pre, post = vecs[j], vecs[j + 1]
            if post and not pre:
                current = ("m", v, b.name, j)
            elif not post:
                current = None
            tokens[j + 1] = current
        out[b.name] = tokens
    return out


def apply_residence(fn: Function, plan: ResidencePlan,
                    slots: Optional[SpillSlotAllocator] = None,
                    next_vreg: Optional[int] = None) -> Tuple[Function, int]:
    """Split live ranges according to ``plan`` — the Appel-George step 2.

    Every in-register segment of a spilled value gets a fresh virtual
    register; transitions become ``ldslot`` (memory→register) and, for dirty
    segments, ``stslot`` (register→memory).  Returns the rewritten function
    and the next unused vreg id.
    """
    slots = slots or SpillSlotAllocator()
    if next_vreg is None:
        next_vreg = fn.max_vreg_id() + 1
    new_fn = fn.copy()
    if not plan.spilled:
        return new_fn, next_vreg

    liveness = compute_liveness(new_fn)
    pts = _Points.build(new_fn, liveness)

    # pass 1: token maps, cross-edge unions, dirty roots
    succs, preds_map = new_fn.cfg()
    uf = _UnionFind()
    token_maps: Dict[Reg, Dict[str, List[Optional[tuple]]]] = {}
    entry_loads: Dict[str, List[Tuple[Reg, tuple]]] = {}
    for v in sorted(plan.spilled):
        token_maps[v] = _segment_walk(new_fn, plan, v)
        for p in new_fn.blocks:
            n = len(p.instrs)
            exit_tok = token_maps[v][p.name][n]
            if exit_tok is None:
                continue
            for s in succs[p.name]:
                entry_tok = token_maps[v][s][0]
                if entry_tok is not None:
                    uf.union(exit_tok, entry_tok)
        # A block entered with the value nominally in a register, but with
        # some predecessor leaving it in memory, needs a reload at its head.
        # ILP plans never hit this (edge-equality constraints); greedy
        # spill-everywhere plans do, since their forced points are reloads.
        for b in new_fn.blocks:
            entry_tok = token_maps[v][b.name][0]
            if entry_tok is None:
                continue
            ps = preds_map[b.name]
            if ps and any(
                token_maps[v][p][len(new_fn.block(p).instrs)] is None
                for p in ps
            ):
                entry_loads.setdefault(b.name, []).append((v, entry_tok))

    dirty: Set[object] = set()
    for v in sorted(plan.spilled):
        for b in new_fn.blocks:
            toks = token_maps[v][b.name]
            for j, instr in enumerate(b.instrs):
                if v in instr.defs():
                    tok = toks[j + 1]
                    if tok is not None:
                        dirty.add(uf.find(tok))
    # parameters arrive in registers with no memory copy: their entry
    # segment is dirty by definition
    for p in new_fn.params:
        if p in plan.spilled:
            tok = token_maps[p][new_fn.entry.name][0]
            if tok is not None:
                dirty.add(uf.find(tok))

    seg_regs: Dict[object, Reg] = {}
    # a spilled parameter's entry segment *is* the parameter register —
    # the incoming value already lives there
    for p in new_fn.params:
        if p in plan.spilled:
            tok = token_maps[p][new_fn.entry.name][0]
            if tok is not None:
                seg_regs[uf.find(tok)] = p

    def reg_of(token: tuple) -> Reg:
        nonlocal next_vreg
        root = uf.find(token)
        if root not in seg_regs:
            seg_regs[root] = Reg(next_vreg, virtual=True, cls="int")
            next_vreg += 1
        return seg_regs[root]

    # pass 2: rewrite
    for b in new_fn.blocks:
        new_instrs: List[Instr] = [
            Instr("ldslot", dst=reg_of(tok), imm=slots.slot_for(v))
            for v, tok in entry_loads.get(b.name, ())
        ]
        n = len(b.instrs)
        for j, instr in enumerate(b.instrs):
            mapping: Dict[Reg, Reg] = {}
            def_overrides: Dict[Reg, Reg] = {}
            post_ops: List[Instr] = []
            for v in sorted(plan.spilled):
                toks = token_maps[v][b.name]
                pre_tok, post_tok = toks[j], toks[j + 1]
                used = v in instr.uses()
                defd = v in instr.defs()
                if used:
                    if pre_tok is None:
                        raise RuntimeError(
                            f"{fn.name}/{b.name}: plan leaves use of {v} "
                            f"at instr {j} in memory"
                        )
                    mapping[v] = reg_of(pre_tok)
                if defd:
                    if post_tok is None:
                        if v in pts.live_at[(b.name, j + 1)]:
                            raise RuntimeError(
                                f"{fn.name}/{b.name}: plan leaves def of {v} "
                                f"at instr {j} in memory"
                            )
                        # dead store: the value is never read again, but the
                        # instruction still writes a register — give it a
                        # fresh throwaway name (the use operands, if any,
                        # keep the mapping chosen above)
                        def_overrides[v] = Reg(next_vreg, virtual=True,
                                               cls="int")
                        next_vreg += 1
                    else:
                        def_overrides[v] = reg_of(post_tok)
                # transitions across this instruction
                if pre_tok is None and post_tok is not None and not defd:
                    post_ops.append(
                        Instr("ldslot", dst=reg_of(post_tok),
                              imm=slots.slot_for(v))
                    )
                if pre_tok is not None and post_tok is None:
                    still_live = v in pts.live_at[(b.name, j + 1)]
                    if still_live and uf.find(pre_tok) in dirty:
                        post_ops.append(
                            Instr("stslot", srcs=(reg_of(pre_tok),),
                                  imm=slots.slot_for(v))
                        )
            rewritten = instr.rewrite(mapping) if mapping else instr
            if def_overrides:
                rewritten = rewritten.copy()
                if rewritten.op == "call":
                    # call defs live in call_defs, not dst; resolve from the
                    # *original* operands — the use mapping above may already
                    # have renamed a use-and-def register to its pre-token
                    rewritten.call_defs = tuple(
                        def_overrides.get(r, mapping.get(r, r))
                        for r in instr.call_defs
                    )
                else:
                    rewritten.dst = next(iter(def_overrides.values()))
            if j == n - 1 and rewritten.op in ("br", "ret", "beq", "bne",
                                               "blt", "bge", "bgt", "ble"):
                new_instrs.extend(post_ops)  # before the terminator
                new_instrs.append(rewritten)
            else:
                new_instrs.append(rewritten)
                new_instrs.extend(post_ops)
        b.instrs = new_instrs

    new_fn.validate()
    return new_fn, next_vreg


def optimal_spill_allocate(fn: Function, k: int,
                           selector: Optional[ColorSelector] = None,
                           use_ilp: bool = True,
                           load_cost: float = 1.0,
                           store_cost: float = 1.0,
                           freq: Optional[Mapping[str, float]] = None
                           ) -> AllocationResult:
    """The full O-spill pipeline: optimal residence → splitting → coloring.

    Coloring uses iterated register coalescing, whose conservative
    coalescing stands in for Appel-George's aggressive-then-undo loop;
    :func:`repro.regalloc.diff_coalesce.differential_coalesce_allocate` runs
    the paper's cost-driven variant instead.
    """
    if freq is None:
        freq = estimate_block_frequencies(fn)

    def attempt(budget: int) -> AllocationResult:
        plan = decide_residence(fn, budget, freq, use_ilp=use_ilp,
                                load_cost=load_cost, store_cost=store_cost)
        split_fn, _ = apply_residence(fn, plan)
        result = iterated_allocate(split_fn, k, selector=selector,
                                   freq=dict(freq))
        result.stats["ospill_objective"] = plan.objective
        result.stats["ospill_solver"] = 1.0 if plan.solver == "ilp" else 0.0
        result.stats["ospill_spilled_ranges"] = float(len(plan.spilled))
        result.stats["ospill_budget"] = float(budget)
        return result

    def weighted_spill_cost(result: AllocationResult) -> float:
        f = freq
        return sum(
            f.get(block.name, 1.0)
            for block in result.fn.blocks
            for instr in block.instrs
            if instr.op in ("ldslot", "stslot")
        )

    best = attempt(k)
    # Residence plans bound MaxLive by k, but k-colorability is not implied
    # (Appel-George restore it with parallel copies at every block boundary,
    # which we deliberately avoid).  When the colorer had to add spills, a
    # plan with one register of slack sometimes colors cleanly; keep
    # whichever result executes less spill traffic.
    if best.rounds > 1 and k > 2:
        retry = attempt(k - 1)
        if weighted_spill_cost(retry) < weighted_spill_cost(best):
            best = retry
    return best
