"""Register allocators and the paper's three differential schemes.

Allocators
----------

* :mod:`repro.regalloc.chaitin` — classic Chaitin-Briggs coloring.
* :mod:`repro.regalloc.iterated` — George-Appel iterated register coalescing,
  the paper's *baseline* (Section 10.1 replaces gcc's allocator with it).
* :mod:`repro.regalloc.optimal_spill` — Appel-George optimal spilling
  (*O-spill*), ILP-based residence decisions with live-range splitting.

Differential schemes
--------------------

* :mod:`repro.regalloc.remap` — approach 1, post-pass register renumbering
  (Section 5).
* :mod:`repro.regalloc.diff_select` — approach 2, differential color choice
  in the select stage (Section 6).
* :mod:`repro.regalloc.diff_coalesce` — approach 3, cost-driven coalescing on
  top of optimal spilling (Section 7).

:mod:`repro.regalloc.pipeline` wires allocation, remapping and encoding into
the five experimental setups of Section 10.1, dispatching through the
allocator zoo (:mod:`repro.regalloc.zoo`) — the pluggable backend registry
that also hosts :mod:`repro.regalloc.ssa_spill`, the SSA-based
spill-everywhere allocator (``docs/allocators.md``).
"""

from repro.regalloc.base import (
    AllocationError,
    AllocationResult,
    check_allocation,
    spill_cost_estimates,
)
from repro.regalloc.spill import insert_spill_code
from repro.regalloc.chaitin import chaitin_allocate
from repro.regalloc.iterated import iterated_allocate
from repro.regalloc.linearscan import linear_scan_allocate
from repro.regalloc.remap import RemapResult, differential_remap, exhaustive_remap
from repro.regalloc.diff_select import DifferentialSelector
from repro.regalloc.optimal_spill import optimal_spill_allocate
from repro.regalloc.diff_coalesce import differential_coalesce_allocate
from repro.regalloc.pipeline import (AllocatedProgram, run_setup, SETUPS,
                                     PAPER_SETUPS)
from repro.regalloc.ssa_spill import ssa_spill_allocate
from repro.regalloc.zoo import (AllocatorContext, AllocatorInfo,
                                allocator_names, get_allocator,
                                list_allocators, register_allocator)
from repro.regalloc.selective import SelectiveResult, run_selective
from repro.regalloc.callconv import (
    CallingConvention,
    check_convention,
    remap_with_convention,
)
from repro.regalloc.multiclass import MultiClassResult, allocate_classes
from repro.regalloc.slotalloc import coalesce_spill_slots

__all__ = [
    "SelectiveResult",
    "run_selective",
    "CallingConvention",
    "check_convention",
    "remap_with_convention",
    "MultiClassResult",
    "allocate_classes",
    "coalesce_spill_slots",
    "AllocationError",
    "AllocationResult",
    "check_allocation",
    "spill_cost_estimates",
    "insert_spill_code",
    "chaitin_allocate",
    "iterated_allocate",
    "linear_scan_allocate",
    "RemapResult",
    "differential_remap",
    "exhaustive_remap",
    "DifferentialSelector",
    "optimal_spill_allocate",
    "differential_coalesce_allocate",
    "AllocatedProgram",
    "run_setup",
    "SETUPS",
    "PAPER_SETUPS",
    "ssa_spill_allocate",
    "AllocatorContext",
    "AllocatorInfo",
    "allocator_names",
    "get_allocator",
    "list_allocators",
    "register_allocator",
]
