"""Selective enabling of differential encoding (paper Section 8.2).

"Differential encoding can be easily turned on and off.  In other words, we
only need to enable differential encoding when the benefits of performance
improvements exceed the extra costs due to set_last_reg instructions."

This pass makes that decision per function: it produces both the direct
baseline (``base_k`` registers) and a differential configuration
(``reg_n``/``diff_n``), estimates each one's dynamic cost from the block
frequencies, and keeps the cheaper program.  Turning the decoder mode on
and off costs two instructions at the function boundary, which the
differential estimate pays.

The cost model weighs a spill memory operation at ``spill_cost`` times a
``set_last_reg`` (the paper: repairs are "much cheaper than spills" — a
spill is a D-cache access plus a load-use bubble, a repair dies at decode).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.frequency import estimate_block_frequencies
from repro.analysis.pressure import loop_pressure_regions
from repro.ir.function import Function
from repro.regalloc.pipeline import AllocatedProgram, run_setup

__all__ = ["SelectiveResult", "run_selective"]


@dataclass
class SelectiveResult:
    """Outcome of the Section 8.2 decision for one function."""

    program: AllocatedProgram
    mode: str                   # "direct" or "differential"
    direct_cost: float          # weighted dynamic cost estimates
    differential_cost: float
    toggle_instructions: int

    @property
    def chose_differential(self) -> bool:
        return self.mode == "differential"


def _weighted_cost(prog: AllocatedProgram, freq: Dict[str, float],
                   spill_cost: float, setlr_cost: float) -> float:
    total = 0.0
    for block in prog.final_fn.blocks:
        w = freq.get(block.name, 1.0)
        for instr in block.instrs:
            if instr.op in ("ldslot", "stslot"):
                total += w * spill_cost
            elif instr.op == "setlr":
                total += w * setlr_cost
    return total


def run_selective(fn: Function, setup: str = "select",
                  base_k: int = 8, reg_n: int = 12, diff_n: int = 8,
                  freq: Optional[Dict[str, float]] = None,
                  spill_cost: float = 3.0, setlr_cost: float = 1.0,
                  toggle_cost: int = 2,
                  **setup_kwargs) -> SelectiveResult:
    """Decide between direct and differential encoding for ``fn``.

    ``setup`` names the differential scheme to consider ("remapping",
    "select" or "coalesce").  Additional keyword arguments flow into
    :func:`repro.regalloc.pipeline.run_setup`.

    The decision is worth making exactly when the function has
    high-pressure regions (see
    :func:`repro.analysis.pressure.loop_pressure_regions`); functions whose
    loops fit ``base_k`` registers keep direct encoding for free.
    """
    if freq is None:
        freq = estimate_block_frequencies(fn)

    # cheap early-out: no loop exceeds the direct budget, and neither does
    # the function body overall -> differential can only add cost
    regions = loop_pressure_regions(fn)
    if regions and all(not r.exceeds(base_k) for r in regions):
        direct = run_setup(fn, "baseline", base_k=base_k, reg_n=reg_n,
                           diff_n=diff_n, freq=freq, **setup_kwargs)
        if direct.n_spills == 0:
            cost = _weighted_cost(direct, freq, spill_cost, setlr_cost)
            return SelectiveResult(direct, "direct", cost, float("inf"), 0)

    direct = run_setup(fn, "baseline", base_k=base_k, reg_n=reg_n,
                       diff_n=diff_n, freq=freq, **setup_kwargs)
    differential = run_setup(fn, setup, base_k=base_k, reg_n=reg_n,
                             diff_n=diff_n, freq=freq, **setup_kwargs)

    direct_cost = _weighted_cost(direct, freq, spill_cost, setlr_cost)
    diff_cost = _weighted_cost(differential, freq, spill_cost, setlr_cost)
    diff_cost += toggle_cost * setlr_cost  # mode switch at the boundary

    if diff_cost < direct_cost:
        return SelectiveResult(differential, "differential",
                               direct_cost, diff_cost, toggle_cost)
    return SelectiveResult(direct, "direct", direct_cost, diff_cost, 0)
