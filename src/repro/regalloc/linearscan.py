"""Linear-scan register allocation (Poletto & Sarkar, TOPLAS 1999).

A third allocator family beside graph coloring and optimal spilling —
included because Section 5 stresses that differential remapping "can follow
any register allocator": the ablation benches remap the output of all
three and the claim holds for each.

Live intervals are computed from the real liveness sets over the layout
linearisation (so loop-carried values span their whole loop, not just
def→use), then scanned in start order with the classic
furthest-end-spills heuristic.  Spilling rewrites with
:func:`repro.regalloc.spill.insert_spill_code` and rescans, mirroring the
other allocators' iteration structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.frequency import estimate_block_frequencies
from repro.analysis.liveness import compute_liveness
from repro.ir.function import Function
from repro.ir.instr import Reg
from repro.regalloc.base import (
    AllocationError,
    AllocationResult,
    spill_cost_estimates,
)
from repro.regalloc.iterated import _rewrite_with_colors
from repro.regalloc.spill import (
    SpillSlotAllocator,
    first_free_slot,
    insert_spill_code,
)

__all__ = ["linear_scan_allocate", "live_intervals"]


@dataclass(frozen=True)
class Interval:
    """One virtual register's live interval over the linearised function."""

    reg: Reg
    start: int
    end: int  # inclusive


def live_intervals(fn: Function, cls: str = "int") -> List[Interval]:
    """Conservative live intervals from instruction-level liveness.

    An interval covers every linear position where the register is live —
    for a loop-carried value that is the entire loop, which is what makes
    linear scan correct (if pessimistic) on cyclic control flow.
    """
    liveness = compute_liveness(fn)
    first: Dict[Reg, int] = {}
    last: Dict[Reg, int] = {}

    def touch(r: Reg, i: int) -> None:
        if r.virtual and r.cls == cls:
            first.setdefault(r, i)
            last[r] = i

    for i, instr in enumerate(fn.instructions()):
        for r in liveness.instr_live_in[instr.uid]:
            touch(r, i)
        for r in liveness.instr_live_out[instr.uid]:
            touch(r, i)
        for r in instr.uses() + instr.defs():
            touch(r, i)
    return sorted(
        (Interval(r, first[r], last[r]) for r in first),
        key=lambda iv: (iv.start, iv.end, iv.reg),
    )


def _scan(intervals: List[Interval], k: int, costs: Dict[Reg, float],
          no_spill: Set[Reg]) -> Tuple[Dict[Reg, int], Set[Reg]]:
    """One linear-scan pass; returns (coloring, spilled)."""
    color: Dict[Reg, int] = {}
    spilled: Set[Reg] = set()
    free = list(range(k - 1, -1, -1))  # pop() yields the lowest number
    active: List[Interval] = []        # sorted by end

    for iv in intervals:
        # expire intervals that ended before this one starts
        still_active = []
        for a in active:
            if a.end < iv.start:
                free.append(color[a.reg])
                free.sort(reverse=True)
            else:
                still_active.append(a)
        active = still_active

        if free:
            color[iv.reg] = free.pop()
            active.append(iv)
            active.sort(key=lambda a: a.end)
            continue

        # no register: spill the furthest-ending spillable interval.
        # reload/store temporaries (no_spill) must always receive a
        # register — their live ranges cannot shrink further, so spilling
        # them again would loop forever.
        candidates = [a for a in active if a.reg not in no_spill]
        victim = candidates[-1] if candidates else None
        if iv.reg in no_spill:
            if victim is None:
                raise AllocationError(
                    "linear scan: every active interval is an unspillable "
                    f"temporary at {iv.reg} (k too small)"
                )
            spilled.add(victim.reg)
            color[iv.reg] = color.pop(victim.reg)
            active.remove(victim)
            active.append(iv)
            active.sort(key=lambda a: a.end)
        elif victim is not None and victim.end > iv.end:
            spilled.add(victim.reg)
            color[iv.reg] = color.pop(victim.reg)
            active.remove(victim)
            active.append(iv)
            active.sort(key=lambda a: a.end)
        else:
            spilled.add(iv.reg)
    return color, spilled


def linear_scan_allocate(fn: Function, k: int,
                         max_rounds: int = 64,
                         freq: Optional[Dict[str, float]] = None
                         ) -> AllocationResult:
    """Allocate with linear scan; spill rounds iterate like the others."""
    if k < 1:
        raise ValueError("k must be positive")
    current = fn
    slots = SpillSlotAllocator(first_free_slot(fn))
    next_vreg = fn.max_vreg_id() + 1
    no_spill: Set[Reg] = set()
    all_spilled: Set[Reg] = set()
    if freq is None:
        freq = estimate_block_frequencies(fn)

    for round_no in range(1, max_rounds + 1):
        costs = spill_cost_estimates(current, freq)
        intervals = live_intervals(current)
        color, spilled = _scan(intervals, k, costs, no_spill)
        if not spilled:
            allocated, removed = _rewrite_with_colors(current, color)
            return AllocationResult(
                fn=allocated,
                coloring=color,
                spilled=frozenset(all_spilled),
                k=k,
                rounds=round_no,
                moves_removed=removed,
                colored_fn=current,
            )
        all_spilled |= spilled
        current, next_vreg, temps = insert_spill_code(
            current, spilled, slots, next_vreg
        )
        no_spill |= temps
    raise AllocationError(
        f"{fn.name}: linear scan found no fit with k={k} "
        f"after {max_rounds} rounds"
    )
