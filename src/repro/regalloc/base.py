"""Shared allocator types and validity checking."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping, Optional, Set

from repro.analysis.frequency import estimate_block_frequencies
from repro.analysis.interference import build_interference
from repro.analysis.liveness import compute_liveness
from repro.ir.function import Function
from repro.ir.instr import Reg

__all__ = [
    "AllocationError",
    "AllocationResult",
    "check_allocation",
    "spill_cost_estimates",
    "SPILL_OPS",
]

SPILL_OPS = frozenset({"ldslot", "stslot"})


class AllocationError(RuntimeError):
    """Raised when an allocator produces or detects an invalid state."""


@dataclass
class AllocationResult:
    """Outcome of register allocation on one function.

    ``fn`` holds physical registers only.  ``coloring`` maps the virtual
    registers of the (possibly spill-extended) input to register numbers.
    ``colored_fn`` retains that spill-extended virtual-register function,
    so the coloring stays checkable after the fact (lint rule L010,
    :func:`check_allocation`).
    """

    fn: Function
    coloring: Dict[Reg, int]
    spilled: FrozenSet[Reg] = frozenset()
    k: int = 0
    rounds: int = 1
    moves_removed: int = 0
    stats: Dict[str, float] = field(default_factory=dict)
    colored_fn: Optional[Function] = None

    @property
    def n_spill_instructions(self) -> int:
        """Static count of spill loads/stores in the allocated code."""
        return sum(1 for i in self.fn.instructions() if i.op in SPILL_OPS)

    @property
    def spill_fraction(self) -> float:
        """Spill instructions over all instructions (the Figure 11 metric)."""
        total = self.fn.num_instructions()
        return self.n_spill_instructions / total if total else 0.0

    def used_registers(self) -> Set[int]:
        """Distinct physical int register numbers in the allocated code."""
        return {
            r.id for r in self.fn.registers() if not r.virtual and r.cls == "int"
        }


def check_allocation(result: AllocationResult, k: Optional[int] = None,
                     colored_fn: Optional[Function] = None) -> None:
    """Validate an allocation.

    Checks that no virtual registers remain and every register number is
    within ``k``.  When ``colored_fn`` — the spill-extended virtual-register
    function the coloring was computed for — is supplied, additionally checks
    the coloring against that function's interference graph: no two
    interfering live ranges share a register number.

    Raises :class:`AllocationError` on the first violation.  Semantic
    preservation (same observable behaviour) is asserted separately by
    interpreter-equivalence tests, since distinct values sharing a register
    number collapse structurally in allocated code.
    """
    k = k if k is not None else result.k
    fn = result.fn
    for r in fn.registers():
        if r.virtual:
            raise AllocationError(f"{fn.name}: unallocated virtual register {r}")
        if r.cls == "int" and r.id >= k:
            raise AllocationError(
                f"{fn.name}: register r{r.id} exceeds k={k}"
            )
    if colored_fn is not None:
        graph = build_interference(colored_fn)
        for a in graph.nodes():
            ca = result.coloring.get(a)
            if ca is None:
                continue
            for b in graph.neighbors(a):
                cb = result.coloring.get(b)
                if cb is not None and ca == cb:
                    raise AllocationError(
                        f"{fn.name}: interfering live ranges {a} and {b} "
                        f"both assigned r{ca}"
                    )


def spill_cost_estimates(fn: Function,
                         freq: Optional[Mapping[str, float]] = None) -> Dict[Reg, float]:
    """Chaitin-style spill costs: frequency-weighted def+use counts.

    Used both to pick spill candidates (cheapest cost/degree first) and as
    the optimisation weights of the optimal-spill ILP.
    """
    if freq is None:
        freq = estimate_block_frequencies(fn)
    costs: Dict[Reg, float] = {}
    for block in fn.blocks:
        w = freq.get(block.name, 1.0)
        for instr in block.instrs:
            for r in instr.uses():
                if r.virtual:
                    costs[r] = costs.get(r, 0.0) + w
            for r in instr.defs():
                if r.virtual:
                    costs[r] = costs.get(r, 0.0) + w
    return costs
