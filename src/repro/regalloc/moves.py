"""Parallel-move resolution: provably minimal shuffle code for join repairs.

A location mismatch at a join edge is a *parallel move*: every destination
register must simultaneously receive the value another register held before
any of the moves ran.  Emitting it as a sequence of real instructions is the
classic shuffle-code problem (Buchwald et al., *Optimal Shuffle Code with
Permutation Instructions*): decompose the move graph into trees/chains and
cycles, emit one ``mov`` per tree edge in dependency-safe order, and resolve
each residual cycle with whichever mechanism the machine offers cheapest —

* a **free scratch register** (liveness provides one, or — for injective
  mappings — the terminal of any chain can be clobbered before its own final
  write): a length-``L`` cycle costs ``L + 1`` moves;
* a **fan-out copy**: when some tree edge already duplicates a cycle
  member's value, that copy doubles as the save and the cycle costs ``L``
  moves (non-injective mappings only);
* **xor-swap triples** when no scratch exists anywhere: ``3 (L - 1)``
  instructions per cycle, no temporary needed;
* a single ``permi`` **permutation instruction** when the machine feature
  flag (:class:`repro.machine.spec.LowEndConfig` ``has_permi``) is set:
  *all* cycles collapse into one instruction — and chains ride along too,
  each rotated through its tail inside the same permutation and repaired
  with one duplicating ``mov`` (the tail's value must survive in two
  places, which no bijective instruction can produce).  A parallel move
  with ``C`` chains and any cycle therefore costs exactly ``C + 1``
  instructions: permutations never duplicate values, so ``C`` moves is a
  hard floor and one more op is forced as soon as anything cyclic (or any
  chain longer than one move) remains.

Minimality is with respect to this instruction repertoire — sequences built
from register copies, register swaps (priced at their 3-instruction xor
lowering) and full-file permutation instructions — and is verified
exhaustively for small register files by :func:`search_minimal_cost`, a
Dijkstra search over abstract register-file states.  See ``docs/moves.md``
for the cost model and the optimality-gap methodology.

:func:`resolve_move_runs` applies the resolver to allocated functions: every
maximal run of consecutive register-to-register ``mov`` instructions is
collapsed to its composite parallel move and re-emitted minimally, but only
when that is *strictly shorter* — untouched runs keep their instructions
(and uids) bit-identical, which keeps mibench ``CycleReport``s
identical-or-better.  ``REPRO_NO_MOVE_RESOLVER=1`` disables the pass.
"""

from __future__ import annotations

import heapq
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.ir.function import Function
from repro.ir.instr import Instr, Reg

__all__ = [
    "MoveOp",
    "ResolvedMoves",
    "MoveRunStats",
    "decompose_parallel_move",
    "resolve_parallel_move",
    "lower_ops",
    "apply_ops",
    "minimal_instruction_count",
    "op_cost",
    "search_minimal_cost",
    "resolve_move_runs",
    "NO_RESOLVER_ENV",
]

NO_RESOLVER_ENV = "REPRO_NO_MOVE_RESOLVER"

#: abstract resolver operations: ``("mov", dst, src)``, ``("swap", a, b)``
#: (lowered to the 3-instruction xor triple) or ``("permi", perm)`` (one
#: permutation instruction whose tuple ``perm`` satisfies R'[i] = R[perm[i]]).
MoveOp = Tuple


def op_cost(op: MoveOp) -> int:
    """Instruction count of one abstract op under the lowering."""
    return 3 if op[0] == "swap" else 1


def _check_mapping(mapping: Dict[int, int]) -> Dict[int, int]:
    for d, s in mapping.items():
        if d < 0 or s < 0:
            raise ValueError(f"negative register in move {d} <- {s}")
    return {d: s for d, s in mapping.items() if d != s}


def decompose_parallel_move(mapping: Dict[int, int]
                            ) -> Tuple[List[Tuple[int, int]],
                                       List[Tuple[int, ...]]]:
    """Split ``{dst: src}`` into safe-ordered tree moves and cycles.

    Returns ``(tree, cycles)``: ``tree`` is a list of ``(dst, src)`` edges
    in an order that never clobbers a pending source (terminals first);
    ``cycles`` is a list of register tuples ``(c0, c1, ..., c_{L-1})``
    where each ``c_i`` must receive the old value of ``c_{i-1}`` (indices
    mod ``L``), each cycle canonically rotated to start at its smallest
    member and the list sorted by that member.  Self-moves are dropped.
    """
    edges = _check_mapping(mapping)
    # how many pending edges read each register
    src_count: Dict[int, int] = {}
    for s in edges.values():
        src_count[s] = src_count.get(s, 0) + 1

    tree: List[Tuple[int, int]] = []
    pending = dict(edges)
    # a dst is safe to write once nothing still reads its old value
    ready = [d for d in sorted(pending) if src_count.get(d, 0) == 0]
    heapq.heapify(ready)
    while ready:
        d = heapq.heappop(ready)
        s = pending.pop(d)
        tree.append((d, s))
        src_count[s] -= 1
        if src_count[s] == 0 and s in pending:
            heapq.heappush(ready, s)

    # everything left is cyclic: each remaining dst is read exactly once,
    # by another remaining dst
    cycles: List[Tuple[int, ...]] = []
    seen: Set[int] = set()
    for start in sorted(pending):
        if start in seen:
            continue
        cyc = [start]
        seen.add(start)
        cur = pending[start]
        while cur != start:
            cyc.append(cur)
            seen.add(cur)
            cur = pending[cur]
        # cyc currently walks src pointers: cyc[i+1] is the src of cyc[i],
        # i.e. cyc[i] receives old cyc[i+1].  Canonical form wants c_i to
        # receive old c_{i-1}: reverse the walk, keep the smallest first.
        cyc = [cyc[0]] + list(reversed(cyc[1:]))
        cycles.append(tuple(cyc))
    return tree, cycles


@dataclass(frozen=True)
class ResolvedMoves:
    """A parallel move compiled to an abstract op sequence."""

    mapping: Tuple[Tuple[int, int], ...]   # sorted (dst, src) pairs
    ops: Tuple[MoveOp, ...]
    scratch: Optional[int] = None          # external scratch actually used
    used_permi: bool = False
    strategy: str = "trivial"              # permi | scratch | chain | alias | swap | trivial

    @property
    def n_instructions(self) -> int:
        """Instruction count after lowering (swap = 3, everything else 1)."""
        return sum(op_cost(op) for op in self.ops)


def _cycle_with_save(cycle: Tuple[int, ...], save: int) -> List[MoveOp]:
    """Resolve a cycle whose member ``cycle[0]``'s old value sits in
    ``save``: shift backwards, reading the save last.  ``L`` moves."""
    k = len(cycle)
    ops: List[MoveOp] = []
    for i in range(0, k - 1):
        # c_{(0 - i) mod k} <- c_{(0 - i - 1) mod k}
        ops.append(("mov", cycle[-i % k], cycle[(-i - 1) % k]))
    ops.append(("mov", cycle[1 % k], save))
    return ops


def _cycle_with_swaps(cycle: Tuple[int, ...]) -> List[MoveOp]:
    """Resolve a cycle with pivot swaps: ``L - 1`` swaps on ``cycle[0]``."""
    return [("swap", cycle[0], cycle[i]) for i in range(1, len(cycle))]


def _chains(edges: Dict[int, int]) -> List[List[Tuple[int, int]]]:
    """The disjoint chains of an injective mapping.

    Each chain is a list of ``(dst, src)`` edges terminal-first; the last
    edge's source is the chain's *tail*, a register that is read but never
    written (its value must survive the move).  Cycle members never appear:
    they are all sources of other edges.
    """
    src_set = set(edges.values())
    chains: List[List[Tuple[int, int]]] = []
    for d in sorted(edges):
        if d in src_set:
            continue
        chain = []
        cur = d
        while cur in edges:
            chain.append((cur, edges[cur]))
            cur = edges[cur]
        chains.append(chain)
    return chains


def _permi_plan(edges: Dict[int, int],
                cycles: List[Tuple[int, ...]],
                reg_n: int) -> Optional[Tuple[MoveOp, ...]]:
    """The permutation-instruction plan for an injective mapping, if it pays.

    Cycles fold into one ``permi`` for free; a chain of ``k >= 2`` moves
    folds too, rotated through its tail, at the price of one repair ``mov``
    that duplicates the tail's value back (``permi`` is a bijection and
    cannot duplicate).  The plan is used when any cycle exists, or when the
    folded chains save strictly more than the ``permi`` itself costs —
    which makes the emitted length exactly ``1 + #chains``, the proven
    optimum (each chain's tail duplication forces one ``mov``, and any
    cycle or multi-move chain forces one more op on top).

    Returns ``None`` when some cycle leaves the ``permi`` window or plain
    moves are just as short (ties prefer the boring encoding).
    """
    if not all(c < reg_n for cyc in cycles for c in cyc):
        return None
    chains = _chains(edges)
    fold = [ch for ch in chains
            if len(ch) >= 2
            and all(d < reg_n for d, _ in ch) and ch[-1][1] < reg_n]
    savings = sum(len(ch) - 1 for ch in fold)
    if not cycles and savings <= 1:
        return None

    ops: List[MoveOp] = []
    folded = {id(ch) for ch in fold}
    for ch in chains:
        if id(ch) not in folded:
            ops.extend(("mov", d, s) for d, s in ch)
    perm = list(range(reg_n))
    for cyc in cycles:
        k = len(cyc)
        for i, c in enumerate(cyc):
            perm[c] = cyc[(i - 1) % k]       # R'[c_i] = R[c_{i-1}]
    for ch in fold:
        for d, s in ch:
            perm[d] = s
        perm[ch[-1][1]] = ch[0][0]           # tail takes the dead terminal
    ops.append(("permi", tuple(perm)))
    for ch in fold:
        # after the rotation the tail's old value sits in the last dst;
        # copy it home (the one unavoidable duplication per chain)
        ops.append(("mov", ch[-1][1], ch[-1][0]))
    return tuple(ops)


def resolve_parallel_move(mapping: Dict[int, int],
                          scratch: Optional[int] = None,
                          has_permi: bool = False,
                          reg_n: Optional[int] = None) -> ResolvedMoves:
    """Compile a parallel move to a minimal abstract op sequence.

    ``mapping`` maps destination register to source register; sources may
    repeat (a fan-out), destinations cannot.  ``scratch`` names a register
    liveness proved dead across the move (it may be clobbered freely).
    With ``has_permi``, cycles whose members all lie below ``reg_n`` are
    folded into one permutation instruction.

    For injective mappings (partial register permutations — the join-repair
    case) the emitted sequence is provably minimal for the mov/swap/permi
    cost model; :func:`minimal_instruction_count` is its closed form and
    :func:`search_minimal_cost` the exhaustive cross-check.
    """
    edges = _check_mapping(dict(mapping))
    if scratch is not None and (scratch in edges or scratch in edges.values()):
        raise ValueError(f"scratch r{scratch} participates in the move")
    if has_permi and reg_n is None:
        raise ValueError("has_permi needs reg_n for the permutation width")

    tree, cycles = decompose_parallel_move(edges)
    srcs = list(edges.values())
    injective = len(set(srcs)) == len(srcs)

    if has_permi and injective and edges:
        assert reg_n is not None
        plan = _permi_plan(edges, cycles, reg_n)
        if plan is not None:
            return ResolvedMoves(
                mapping=tuple(sorted(edges.items())),
                ops=plan,
                used_permi=True,
                strategy="permi",
            )

    if not cycles:
        return ResolvedMoves(
            mapping=tuple(sorted(edges.items())),
            ops=tuple(("mov", d, s) for d, s in tree),
            strategy="trivial" if tree else "trivial",
        )

    src_set = set(srcs)
    # fan-out saves: tree dsts that duplicate a cycle member's value
    cycle_members: Set[int] = set()
    for cyc in cycles:
        cycle_members.update(cyc)
    alias: Dict[int, int] = {}   # cycle member -> tree dst holding its value
    for d, s in tree:
        if s in cycle_members and s not in alias:
            alias[s] = d

    permi_cycles: List[Tuple[int, ...]] = []
    other_cycles: List[Tuple[int, ...]] = []
    for cyc in cycles:
        if has_permi and reg_n is not None and all(c < reg_n for c in cyc):
            permi_cycles.append(cyc)
        else:
            other_cycles.append(cyc)

    ops: List[MoveOp] = []
    strategies: List[str] = []

    # an injective mapping with any chain at all provides an internal
    # scratch: the chain terminal's old value is dead, so the whole chain
    # can be deferred until after the cycles, its terminal serving as the
    # temporary in the meantime
    deferred: List[Tuple[int, int]] = []
    internal_scratch: Optional[int] = None
    needs_scratch = bool(other_cycles) and scratch is None and not any(
        c in alias for cyc in other_cycles for c in cyc
    )
    if needs_scratch and injective and tree:
        # tree edges of an injective mapping form disjoint chains, emitted
        # terminal-first; the first edge's dst is a chain terminal.  Defer
        # that terminal's entire chain (a contiguous prefix-by-dependency:
        # exactly the edges reachable by following src pointers).
        term, s = tree[0]
        chain = [(term, s)]
        chain_dsts = {term}
        cur = s
        while cur in edges and cur not in cycle_members:
            chain.append((cur, edges[cur]))
            chain_dsts.add(cur)
            cur = edges[cur]
        deferred = chain
        internal_scratch = term
        tree = [e for e in tree if e[0] not in chain_dsts]

    for d, s in tree:
        ops.append(("mov", d, s))

    if permi_cycles:
        assert reg_n is not None
        perm = list(range(reg_n))
        for cyc in permi_cycles:
            k = len(cyc)
            for i, c in enumerate(cyc):
                perm[c] = cyc[(i - 1) % k]   # R'[c_i] = R[c_{i-1}]
        ops.append(("permi", tuple(perm)))
        strategies.append("permi")

    temp = scratch if scratch is not None else internal_scratch
    for cyc in other_cycles:
        saved = next((c for c in cyc if c in alias), None)
        if saved is not None:
            # rotate so the aliased member leads, then shift through it
            i = cyc.index(saved)
            rot = cyc[i:] + cyc[:i]
            ops.extend(_cycle_with_save(rot, alias[saved]))
            strategies.append("alias")
        elif temp is not None:
            ops.append(("mov", temp, cyc[0]))
            ops.extend(_cycle_with_save(cyc, temp))
            strategies.append("scratch" if scratch is not None else "chain")
        else:
            ops.extend(_cycle_with_swaps(cyc))
            strategies.append("swap")

    for d, s in deferred:
        ops.append(("mov", d, s))

    strategy = strategies[0] if len(set(strategies)) == 1 else "mixed"
    return ResolvedMoves(
        mapping=tuple(sorted(edges.items())),
        ops=tuple(ops),
        scratch=scratch if scratch is not None and any(
            s == "scratch" for s in strategies) else None,
        used_permi=bool(permi_cycles),
        strategy=strategy,
    )


def lower_ops(ops: Sequence[MoveOp], cls: str = "int") -> List[Instr]:
    """Lower abstract ops to instructions.

    ``swap`` becomes the exact 3-xor triple the symbolic checker
    recognises (``xor a,(a,b); xor b,(b,a); xor a,(a,b)``); ``permi``
    becomes one ``permi`` instruction carrying its permutation as the
    immediate.
    """
    out: List[Instr] = []
    for op in ops:
        if op[0] == "mov":
            _, d, s = op
            out.append(Instr("mov", dst=Reg(d, virtual=False, cls=cls),
                             srcs=(Reg(s, virtual=False, cls=cls),)))
        elif op[0] == "swap":
            _, a_id, b_id = op
            a = Reg(a_id, virtual=False, cls=cls)
            b = Reg(b_id, virtual=False, cls=cls)
            out.append(Instr("xor", dst=a, srcs=(a, b)))
            out.append(Instr("xor", dst=b, srcs=(b, a)))
            out.append(Instr("xor", dst=a, srcs=(a, b)))
        elif op[0] == "permi":
            out.append(Instr("permi", imm=tuple(op[1])))
        else:
            raise ValueError(f"unknown abstract op {op!r}")
    return out


def apply_ops(ops: Sequence[MoveOp], state: Dict[int, object]
              ) -> Dict[int, object]:
    """Execute abstract ops over a symbolic register file (for oracles)."""
    st = dict(state)
    for op in ops:
        if op[0] == "mov":
            _, d, s = op
            st[d] = st[s]
        elif op[0] == "swap":
            _, a, b = op
            st[a], st[b] = st[b], st[a]
        elif op[0] == "permi":
            perm = op[1]
            old = dict(st)
            for i, p in enumerate(perm):
                if p != i:
                    st[i] = old[p]
        else:
            raise ValueError(f"unknown abstract op {op!r}")
    return st


def minimal_instruction_count(mapping: Dict[int, int],
                              scratch_available: bool = False,
                              has_permi: bool = False) -> int:
    """Closed-form minimal instruction count of a parallel move.

    Exact for injective mappings (partial permutations): ``T`` tree moves
    plus, per length-``L`` cycle, ``L + 1`` moves with a scratch register
    (external, or internal whenever ``T >= 1``) and ``3 (L - 1)``
    instructions otherwise.  With ``permi`` (assumed wide enough to cover
    every involved register) the optimum is ``C + 1`` — one permutation
    plus one duplicating repair move per chain — whenever any cycle exists
    or folding chains into the permutation saves more than the ``permi``
    costs; plain ``T`` moves otherwise.  For fan-out mappings the fan-out
    save makes an aliased cycle cost ``L``; the value is then the
    resolver's emitted length (an upper bound on the true optimum).
    """
    edges = _check_mapping(dict(mapping))
    tree, cycles = decompose_parallel_move(edges)
    total = len(tree)
    srcs = list(edges.values())
    injective = len(set(srcs)) == len(srcs)
    if has_permi and injective:
        src_set = set(srcs)
        n_chains = sum(1 for d in edges if d not in src_set)
        if cycles or (total - n_chains) > 1:
            return n_chains + 1
        return total
    if not cycles:
        return total
    if has_permi:
        # tree moves + one permutation instruction for all cycles
        return total + 1
    aliased = set()
    members = {c for cyc in cycles for c in cyc}
    for d, s in tree:
        if s in members:
            aliased.add(s)
    internal = injective and len(tree) > 0
    for cyc in cycles:
        if any(c in aliased for c in cyc):
            total += len(cyc)
        elif scratch_available or internal:
            total += len(cyc) + 1
        else:
            total += 3 * (len(cyc) - 1)
    return total


# ----------------------------------------------------------------------
# exhaustive minimality search (small register files)
# ----------------------------------------------------------------------

def search_minimal_cost(mapping: Dict[int, int], reg_n: int,
                        scratch: Optional[int] = None,
                        has_permi: bool = False,
                        limit: Optional[int] = None) -> int:
    """Dijkstra over abstract register-file states: the true minimal
    instruction count for ``mapping`` within the mov (1) / swap (3) /
    permi (1) repertoire.

    State is "which original register's value each register holds".
    Registers outside the mapping must end holding their own value —
    except ``scratch``, which may end holding anything.  Exponential in
    ``reg_n``; intended for ``reg_n <= 5`` (plus scratch) as the
    minimality oracle in tests and the ``moves`` fuzz target.
    """
    from itertools import permutations

    edges = _check_mapping(dict(mapping))
    n = max([reg_n] + [r + 1 for r in edges] + [s + 1 for s in edges.values()]
            + ([scratch + 1] if scratch is not None else []))
    if n > 8:
        raise ValueError(f"search space too large for {n} registers")
    start = tuple(range(n))

    def is_goal(state: Tuple[int, ...]) -> bool:
        for r in range(n):
            if r == scratch:
                continue
            want = edges.get(r, r)
            if state[r] != want:
                return False
        return True

    perms = None
    if has_permi:
        perms = [p for p in permutations(range(reg_n))
                 if any(p[i] != i for i in range(reg_n))]

    best: Dict[Tuple[int, ...], int] = {start: 0}
    heap: List[Tuple[int, Tuple[int, ...]]] = [(0, start)]
    while heap:
        cost, state = heapq.heappop(heap)
        if cost > best.get(state, -1):
            continue
        if is_goal(state):
            return cost
        if limit is not None and cost >= limit:
            continue

        def push(nxt: Tuple[int, ...], c: int) -> None:
            if c < best.get(nxt, c + 1):
                best[nxt] = c
                heapq.heappush(heap, (c, nxt))

        lst = list(state)
        for d in range(n):
            for s in range(n):
                if d == s or state[d] == state[s]:
                    continue
                lst[d] = state[s]
                push(tuple(lst), cost + 1)
                lst[d] = state[d]
        for a in range(n):
            for b in range(a + 1, n):
                if state[a] == state[b]:
                    continue
                lst[a], lst[b] = state[b], state[a]
                push(tuple(lst), cost + 3)
                lst[a], lst[b] = state[a], state[b]
        if perms:
            for p in perms:
                nxt = tuple(state[p[i]] if i < reg_n else state[i]
                            for i in range(n))
                if nxt != state:
                    push(nxt, cost + 1)
    raise RuntimeError(f"no resolution found for {edges!r}")  # pragma: no cover


# ----------------------------------------------------------------------
# allocated-function integration
# ----------------------------------------------------------------------

@dataclass
class MoveRunStats:
    """Outcome of :func:`resolve_move_runs` on one function."""

    runs_seen: int = 0
    runs_rewritten: int = 0
    movs_before: int = 0
    instrs_after: int = 0
    permis: int = 0
    swaps: int = 0
    scratch_cycles: int = 0
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def instructions_saved(self) -> int:
        return self.movs_before - self.instrs_after

    def as_stats(self) -> Dict[str, float]:
        """The outcome as ``AllocationResult.stats``-style float entries."""
        return {
            "moves_runs_seen": float(self.runs_seen),
            "moves_runs_rewritten": float(self.runs_rewritten),
            "moves_instructions_saved": float(self.instructions_saved),
            "moves_permis": float(self.permis),
        }


def _is_plain_move(instr: Instr, cls: str) -> bool:
    return (instr.op == "mov"
            and instr.dst is not None and not instr.dst.virtual
            and not instr.srcs[0].virtual
            and instr.dst.cls == cls and instr.srcs[0].cls == cls)


def _composite_mapping(instrs: Sequence[Instr]) -> Dict[int, int]:
    """The net parallel move of a sequential run of copies."""
    state: Dict[int, int] = {}
    for ins in instrs:
        s = ins.srcs[0].id
        state[ins.dst.id] = state.get(s, s)
    return {d: s for d, s in state.items() if d != s}


def resolve_move_runs(fn: Function, reg_n: int,
                      has_permi: bool = False,
                      cls: str = "int") -> MoveRunStats:
    """Rewrite maximal runs of consecutive physical copies minimally.

    Mutates ``fn`` in place.  A run is replaced only when the resolved
    sequence is *strictly shorter* than the original; equal-length runs
    keep their instructions (and uids) untouched, so simulated
    ``CycleReport``s are bit-identical-or-better.  A scratch register is
    any physical register below ``reg_n`` that liveness proves dead
    across the run.  Honours ``REPRO_NO_MOVE_RESOLVER=1``.
    """
    stats = MoveRunStats()
    if os.environ.get(NO_RESOLVER_ENV):
        return stats
    from repro.analysis.liveness import compute_liveness

    liveness = compute_liveness(fn)
    for block in fn.blocks:
        instrs = block.instrs
        # live set before each instruction index (backward walk)
        live: Set[Reg] = set(liveness.live_out[block.name])
        live_before: List[Set[Reg]] = [set()] * len(instrs)
        for i in range(len(instrs) - 1, -1, -1):
            live = (live - set(instrs[i].defs())) | set(instrs[i].uses())
            live_before[i] = set(live)

        out: List[Instr] = []
        i = 0
        while i < len(instrs):
            if not _is_plain_move(instrs[i], cls):
                out.append(instrs[i])
                i += 1
                continue
            j = i
            while j < len(instrs) and _is_plain_move(instrs[j], cls):
                j += 1
            run = instrs[i:j]
            if len(run) < 2:
                out.extend(run)
                i = j
                continue
            stats.runs_seen += 1
            stats.movs_before += len(run)
            mapping = _composite_mapping(run)
            involved = set(mapping) | set(mapping.values())
            scratch = next(
                (r for r in range(reg_n)
                 if r not in involved
                 and Reg(r, virtual=False, cls=cls) not in live_before[i]),
                None,
            )
            resolved = resolve_parallel_move(
                mapping, scratch=scratch, has_permi=has_permi, reg_n=reg_n,
            )
            if resolved.n_instructions < len(run):
                stats.runs_rewritten += 1
                stats.instrs_after += resolved.n_instructions
                stats.permis += sum(1 for op in resolved.ops
                                    if op[0] == "permi")
                stats.swaps += sum(1 for op in resolved.ops
                                   if op[0] == "swap")
                if resolved.scratch is not None:
                    stats.scratch_cycles += 1
                out.extend(lower_ops(resolved.ops, cls=cls))
            else:
                stats.instrs_after += len(run)
                out.extend(run)
            i = j
        block.instrs = out
    stats.stats = stats.as_stats()
    return stats
