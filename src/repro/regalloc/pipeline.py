"""End-to-end setups of the low-end evaluation (paper Section 10.1).

The five paper configurations, matching Section 10.1 exactly:

=========== ============================================== ================
setup       allocator                                      encoding
=========== ============================================== ================
baseline    iterated register coalescing, k = 8            direct, 3-bit
remapping   iterated k = 12, then differential remapping   RegN=12, DiffN=8
select      iterated k = 12 with differential select       RegN=12, DiffN=8
ospill      optimal spilling, k = 8                        direct, 3-bit
coalesce    differential coalesce on optimal spilling,     RegN=12, DiffN=8
            k = 12
=========== ============================================== ================

The differential setups allocate with more registers than the 3-bit field
directly encodes — that is the whole point — and pay ``set_last_reg``
instructions for it.

Dispatch goes through the allocator zoo (:mod:`repro.regalloc.zoo`):
this module registers the paper setups — plus the SSA spill-everywhere
backend (``ssa_spill``, :mod:`repro.regalloc.ssa_spill`) — as backends,
and :func:`run_setup` looks the requested one up in the registry.
``SETUPS`` is derived from the registry, so new backends become visible
to the CLI, the fuzz harness and the compile service by registering;
``PAPER_SETUPS`` stays pinned to the Section 10.1 five for the figure
reproductions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

from repro.encoding.config import EncodingConfig
from repro.encoding.encoder import EncodedFunction, encode_function
from repro.encoding.verifier import verify_encoding
from repro.ir.function import Function
from repro.regalloc.base import AllocationResult
from repro.regalloc.diff_coalesce import differential_coalesce_allocate
from repro.regalloc.diff_select import DifferentialSelector
from repro.regalloc.iterated import iterated_allocate
from repro.regalloc.moves import resolve_move_runs
from repro.regalloc.optimal_spill import optimal_spill_allocate
from repro.regalloc.remap import differential_remap
from repro.regalloc.ssa_spill import ssa_spill_allocate
from repro.regalloc.zoo import (AllocatorContext, AllocatorInfo,
                                allocator_names, get_allocator,
                                register_allocator)

if TYPE_CHECKING:  # the verifier is duck-typed at runtime: regalloc never
    from repro.lint import PassVerifier  # imports lint at module level
    from repro.machine.spec import LowEndConfig

__all__ = ["AllocatedProgram", "run_setup", "SETUPS", "PAPER_SETUPS"]

#: the Section 10.1 configurations — the experiment grids that reproduce
#: the paper's figures iterate exactly these
PAPER_SETUPS = ("baseline", "remapping", "select", "ospill", "coalesce")


@dataclass
class AllocatedProgram:
    """One function taken through one experimental setup."""

    name: str
    setup: str
    allocation: AllocationResult
    final_fn: Function
    encoded: Optional[EncodedFunction] = None

    @property
    def n_instructions(self) -> int:
        return self.final_fn.num_instructions()

    @property
    def n_spills(self) -> int:
        return sum(
            1 for i in self.final_fn.instructions()
            if i.op in ("ldslot", "stslot")
        )

    @property
    def spill_fraction(self) -> float:
        """Spill instructions over all instructions (Figure 11)."""
        n = self.n_instructions
        return self.n_spills / n if n else 0.0

    @property
    def n_setlr(self) -> int:
        return self.encoded.n_setlr if self.encoded else 0

    @property
    def n_setlr_removed(self) -> int:
        """Repairs deleted by the ``setlr_elim`` post-pass."""
        return self.encoded.n_setlr_removed if self.encoded else 0

    @property
    def setlr_fraction(self) -> float:
        """set_last_reg instructions over all instructions (Figure 12)."""
        n = self.n_instructions
        return self.n_setlr / n if n else 0.0

    def metrics(self) -> Dict[str, float]:
        """The Figure 11-13 quantities as one flat dict."""
        return {
            "instructions": float(self.n_instructions),
            "spills": float(self.n_spills),
            "spill_fraction": self.spill_fraction,
            "setlr": float(self.n_setlr),
            "setlr_fraction": self.setlr_fraction,
        }


def _weighted_setlr(encoded: EncodedFunction, freq=None) -> float:
    """Frequency-weighted ``set_last_reg`` cost of an encoded function —
    the dynamic-cost estimate both remapping and select optimise."""
    from repro.analysis.frequency import estimate_block_frequencies

    if freq is None:
        freq = estimate_block_frequencies(encoded.fn)
    total = 0.0
    for block in encoded.fn.blocks:
        w = freq.get(block.name, 1.0)
        total += w * sum(1 for i in block.instrs if i.op == "setlr")
    return total


def _encode_best(candidates, config: EncodingConfig, freq=None) -> EncodedFunction:
    """Encode every candidate function and keep the cheapest.

    The adjacency-graph cost that remapping minimises is a proxy — the
    encoder's join repairs make the true ``set_last_reg`` placement differ —
    so a remap that looks better on the proxy can regress the real count.
    Selecting on actual encodings makes post-remapping monotone.
    """
    best = None
    best_cost = None
    for fn in candidates:
        enc = encode_function(fn, config, freq=freq)
        cost = (_weighted_setlr(enc, freq), enc.n_setlr)
        if best_cost is None or cost < best_cost:
            best, best_cost = enc, cost
    assert best is not None
    return best


# ----------------------------------------------------------------------
# built-in backends
# ----------------------------------------------------------------------
# Each runner performs exactly the allocation stage of its setup —
# including the stage checkpoints the pass verifier keys on — and
# returns the AllocationResult.  The differential encode path (remap
# candidates + best-encoding selection) is shared by run_setup for
# every backend whose info says differential=True.

def _run_baseline(fn: Function, ctx: AllocatorContext) -> AllocationResult:
    alloc = iterated_allocate(fn, ctx.base_k, freq=ctx.freq)
    ctx.checkpoint("alloc:iterated", alloc.fn, allocated=True, k=ctx.base_k,
                   coloring=alloc.coloring, original=alloc.colored_fn)
    return alloc


def _run_remapping(fn: Function, ctx: AllocatorContext) -> AllocationResult:
    alloc = iterated_allocate(fn, ctx.reg_n, freq=ctx.freq)
    ctx.checkpoint("alloc:iterated", alloc.fn, allocated=True, k=ctx.reg_n,
                   coloring=alloc.coloring, original=alloc.colored_fn)
    return alloc


def _run_select(fn: Function, ctx: AllocatorContext) -> AllocationResult:
    selector = DifferentialSelector(ctx.reg_n, ctx.diff_n,
                                    order=ctx.access_order)
    alloc = iterated_allocate(fn, ctx.reg_n, selector=selector, freq=ctx.freq)
    ctx.checkpoint("alloc:diff_select", alloc.fn, allocated=True, k=ctx.reg_n,
                   coloring=alloc.coloring, original=alloc.colored_fn)
    move_stats = resolve_move_runs(alloc.fn, ctx.reg_n,
                                   has_permi=ctx.has_permi)
    alloc.stats.update(move_stats.as_stats())
    return alloc


def _run_ospill(fn: Function, ctx: AllocatorContext) -> AllocationResult:
    alloc = optimal_spill_allocate(fn, ctx.base_k, use_ilp=ctx.use_ilp,
                                   freq=ctx.freq)
    ctx.checkpoint("alloc:ospill", alloc.fn, allocated=True, k=ctx.base_k,
                   coloring=alloc.coloring, original=alloc.colored_fn)
    return alloc


def _run_coalesce(fn: Function, ctx: AllocatorContext) -> AllocationResult:
    alloc = differential_coalesce_allocate(
        fn, ctx.reg_n, ctx.diff_n, order=ctx.access_order,
        use_ilp=ctx.use_ilp, has_permi=ctx.has_permi, freq=ctx.freq,
    )
    ctx.checkpoint("alloc:diff_coalesce", alloc.fn, allocated=True,
                   k=ctx.reg_n, coloring=alloc.coloring,
                   original=alloc.colored_fn)
    return alloc


def _run_ssa_spill(fn: Function, ctx: AllocatorContext) -> AllocationResult:
    alloc = ssa_spill_allocate(fn, ctx.reg_n, freq=ctx.freq)
    ctx.checkpoint("alloc:ssa_spill", alloc.fn, allocated=True, k=ctx.reg_n,
                   coloring=alloc.coloring, original=alloc.colored_fn)
    # phi lowering leaves copy runs the resolver can shorten (and fold
    # into permi when the machine has it), same as the select setup
    move_stats = resolve_move_runs(alloc.fn, ctx.reg_n,
                                   has_permi=ctx.has_permi)
    alloc.stats.update(move_stats.as_stats())
    return alloc


register_allocator(AllocatorInfo(
    name="baseline",
    description="iterated register coalescing at the directly encodable "
                "budget (k = base_k)",
    spill_style="iterated",
    differential=False,
    source="George & Appel, iterated register coalescing",
), _run_baseline)
register_allocator(AllocatorInfo(
    name="remapping",
    description="iterated coalescing over the full file, then "
                "differential remapping (paper approach 1)",
    spill_style="iterated",
    differential=True,
    source="Zhuang & Pande, Section 5",
), _run_remapping)
register_allocator(AllocatorInfo(
    name="select",
    description="iterated coalescing with the differential-aware color "
                "selector (paper approach 2)",
    spill_style="iterated",
    differential=True,
    source="Zhuang & Pande, Section 6",
), _run_select)
register_allocator(AllocatorInfo(
    name="ospill",
    description="optimal (ILP) spilling at the directly encodable budget",
    spill_style="optimal-ilp",
    differential=False,
    source="Appel & George, optimal spilling",
), _run_ospill)
register_allocator(AllocatorInfo(
    name="coalesce",
    description="differential coalescing on optimally spilled code "
                "(paper approach 3)",
    spill_style="optimal-ilp",
    differential=True,
    source="Zhuang & Pande, Section 7",
), _run_coalesce)
register_allocator(AllocatorInfo(
    name="ssa_spill",
    description="SSA spill-everywhere: Belady furthest-use spilling on "
                "SSA live ranges, then greedy coloring",
    spill_style="everywhere",
    differential=True,
    needs_ssa=True,
    source="Bouchez, Darte & Rastello, spill everywhere under SSA",
), _run_ssa_spill)

#: every registered backend, registration order: the paper five first,
#: then the zoo additions
SETUPS = allocator_names()


def run_setup(fn: Function, setup: str,
              base_k: int = 8, reg_n: int = 12, diff_n: int = 8,
              remap_restarts: int = 100,
              use_ilp: bool = True,
              verify: bool = True,
              access_order: str = "src_first",
              freq: Optional[Dict[str, float]] = None,
              pass_verifier: Optional["PassVerifier"] = None,
              remap_seed: int = 0,
              remap_jobs: int = 1,
              setlr_elim: bool = True,
              machine: Optional["LowEndConfig"] = None,
              ) -> AllocatedProgram:
    """Run one function through one registered allocation setup.

    ``setup`` names any backend in the allocator zoo (``SETUPS`` lists
    them; the Section 10.1 five are ``PAPER_SETUPS``).  Differential
    backends are post-processed identically — remap-candidate encoding,
    ``setlr`` elimination, decode verification — whatever allocator
    produced the coloring.

    ``base_k`` is the directly encodable register count (the THUMB-like 8);
    ``reg_n``/``diff_n`` parameterise the differential setups.  With
    ``verify`` set, differential encodings are decode-replayed over every
    CFG path before the result is returned.  ``freq`` supplies block
    frequencies (e.g. from :func:`repro.analysis.profile.
    profile_block_frequencies`); the default is the static loop-nest
    estimate the paper uses.

    ``pass_verifier`` — a :class:`repro.lint.PassVerifier` — runs the
    static IR checker after every stage (input, allocation, encoding) with
    stage-appropriate expectations, attributing the first invariant
    violation to the pass that introduced it (``--verify-each-pass``).

    ``remap_seed`` seeds the remapping search's random restarts;
    ``remap_jobs`` fans those restarts out over a process pool (``0`` =
    all cores).  Neither changes results — remap restarts are
    deterministic in the seed regardless of the job count.

    ``setlr_elim`` (default on) runs :func:`repro.encoding.setlr_elim.
    eliminate_redundant_setlr` on the chosen encoding: ``set_last_reg``
    repairs the static verifier proves redundant or dead are deleted
    before verification.

    ``machine`` (a :class:`repro.machine.spec.LowEndConfig`) feeds ISA
    feature flags to the allocators — today just ``has_permi``, which
    lets the parallel-move resolver (``docs/moves.md``) fold join-repair
    register cycles into one ``permi`` permutation instruction in the
    ``select`` and ``coalesce`` setups.
    """
    from repro.analysis.batched import prewarm_corpus

    # one vectorized analysis pass over a corpus of one: the liveness and
    # first-round interference memos every allocator below starts from
    # are warmed up front (a no-op when a batch caller — the service
    # dispatcher, experiment grids — already prewarmed this function)
    prewarm_corpus([fn])

    config = EncodingConfig(reg_n=reg_n, diff_n=diff_n, access_order=access_order)
    encoded: Optional[EncodedFunction] = None
    has_permi = bool(machine is not None and machine.has_permi)

    def checkpoint(stage: str, f: Function, **expectations) -> None:
        if pass_verifier is None:
            return
        from repro.lint import LintOptions  # lazy: keeps layering acyclic

        pass_verifier.check(
            f, f"{setup}:{stage}",
            LintOptions(access_order=access_order, **expectations),
        )

    checkpoint("input", fn)

    def remap_candidates(allocated_fn: Function) -> list:
        """The function itself plus remappings under both adjacency
        weightings: frequency-weighted (targets the hot path, Figure 14)
        and unweighted (targets the static count, Figure 12)."""
        freq_remap = differential_remap(
            allocated_fn, reg_n, diff_n, order=access_order,
            restarts=remap_restarts, freq=freq,
            seed=remap_seed, jobs=remap_jobs,
        )
        static_remap = differential_remap(
            allocated_fn, reg_n, diff_n, order=access_order,
            restarts=remap_restarts, freq={},
            seed=remap_seed, jobs=remap_jobs,
        )
        return [allocated_fn, freq_remap.fn, static_remap.fn]

    try:
        entry = get_allocator(setup)
    except KeyError:
        raise ValueError(
            f"unknown setup {setup!r}; expected one of {SETUPS}") from None

    ctx = AllocatorContext(
        base_k=base_k, reg_n=reg_n, diff_n=diff_n, freq=freq,
        use_ilp=use_ilp, has_permi=has_permi, access_order=access_order,
        checkpoint=checkpoint,
    )
    alloc = entry.runner(fn, ctx)
    if entry.info.differential:
        # "differential remapping can always be invoked after approach 2 or
        # 3" (Section 3); kept only when the real encoding improves
        encoded = _encode_best(remap_candidates(alloc.fn), config, freq)
        final = encoded.fn
        checkpoint("encode:remap", final, allocated=True, encoding=config)
    else:
        final = alloc.fn

    if encoded is not None and setlr_elim:
        from repro.encoding.setlr_elim import eliminate_redundant_setlr

        if eliminate_redundant_setlr(encoded, verify=False).n_removed:
            checkpoint("encode:setlr_elim", final,
                       allocated=True, encoding=config)
    if verify and encoded is not None:
        verify_encoding(encoded)
    return AllocatedProgram(
        name=fn.name, setup=setup, allocation=alloc,
        final_fn=final, encoded=encoded,
    )
