"""Calling conventions under differential remapping (paper Section 9.3).

Remapping permutes *all* register numbers, which would silently move
argument, return and saved registers away from where callers and callees
expect them.  The paper offers the repair route: "We first apply
differential remapping regardless of the caller-save/callee-save
conventions, then remedy them separately"; the obvious alternative is to
pin the convention registers so the permutation never touches them.  Both
are implemented here:

* ``strategy="pin"`` — convention registers are fixed points of the
  permutation; the search optimises the rest.  Zero repair cost, smaller
  search space.
* ``strategy="repair"`` — the permutation is unconstrained; every call
  site then gets compensation moves that place arguments into their
  convention registers before the call and fetch results out of them
  after.  The moves are real instructions (unlike ``set_last_reg`` they
  survive decode), so this models the paper's "insert a few
  instructions ... in the middle of these caller-save instructions" cost
  honestly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ir.function import Function
from repro.ir.instr import Instr, Reg
from repro.regalloc.remap import RemapResult, differential_remap

__all__ = [
    "CallingConvention",
    "ConventionViolation",
    "check_convention",
    "remap_with_convention",
]


@dataclass(frozen=True)
class CallingConvention:
    """Register roles at call boundaries.

    All numbers are physical register ids.  ``caller_saved`` /
    ``callee_saved`` partition the scratch space; the experiment pipelines
    only need ``pinned`` (everything with a cross-call meaning).
    """

    arg_regs: Tuple[int, ...] = (0, 1, 2, 3)
    ret_reg: int = 0
    caller_saved: Tuple[int, ...] = (0, 1, 2, 3)
    callee_saved: Tuple[int, ...] = (4, 5, 6, 7)

    @property
    def pinned(self) -> Tuple[int, ...]:
        ids = set(self.arg_regs) | {self.ret_reg} | set(self.callee_saved)
        return tuple(sorted(ids))


@dataclass(frozen=True)
class ConventionViolation:
    """One call-boundary register observed outside its convention home."""

    block: str
    call_label: str
    role: str          # "arg" or "ret"
    expected: int
    found: int


def check_convention(fn: Function, cc: CallingConvention) -> List[ConventionViolation]:
    """Report call sites whose explicit register effects left the
    convention homes (as a permutation-applying pass would cause)."""
    violations: List[ConventionViolation] = []
    for block in fn.blocks:
        for instr in block.instrs:
            if instr.op != "call":
                continue
            for i, r in enumerate(instr.call_uses):
                if i < len(cc.arg_regs) and r.id != cc.arg_regs[i]:
                    violations.append(ConventionViolation(
                        block.name, instr.label or "?", "arg",
                        cc.arg_regs[i], r.id,
                    ))
            for r in instr.call_defs:
                if r.id != cc.ret_reg:
                    violations.append(ConventionViolation(
                        block.name, instr.label or "?", "ret",
                        cc.ret_reg, r.id,
                    ))
    return violations


def _sequence_parallel_moves(wanted: Sequence[Tuple[Reg, Reg]]) -> List[Instr]:
    """Emit argument-setup moves minimally via the parallel-move resolver.

    The moves ``home_i := src_i`` are conceptually parallel — exactly the
    shuffle-code problem :mod:`repro.regalloc.moves` solves.  Acyclic
    dependencies become plain moves in safe order; residual cycles break
    with xor-swap triples, which need no scratch register (liveness at a
    call site is too murky to prove one dead, and the calling convention
    is machine-independent, so no ``permi`` here either).
    """
    from repro.regalloc.moves import lower_ops, resolve_parallel_move

    by_cls: Dict[str, Dict[int, int]] = {}
    for dst, src in wanted:
        by_cls.setdefault(dst.cls, {})[dst.id] = src.id
    out: List[Instr] = []
    for cls in sorted(by_cls):
        resolved = resolve_parallel_move(by_cls[cls])
        out.extend(lower_ops(resolved.ops, cls=cls))
    return out


def _repair_call_sites(fn: Function, cc: CallingConvention,
                       reg_n: int) -> Tuple[Function, int]:
    """Insert compensation moves so every call keeps its convention.

    ``fn`` has already been renamed through the permutation, call effects
    included: the value meant for argument slot ``i`` now sits in the
    (renamed) register recorded in ``call_uses[i]``.  A
    ``mov home_i, renamed`` restores it right before the call, and the
    result moves out of the return home afterwards.  The call's own
    register effects go back to convention numbers.  Returns the repaired
    function and the move count.
    """
    n_moves = 0
    out = fn.copy()
    for block in out.blocks:
        new_instrs: List[Instr] = []
        for instr in block.instrs:
            if instr.op != "call":
                new_instrs.append(instr)
                continue
            wanted: List[Tuple[Reg, Reg]] = []  # (home, source)
            fixed_uses: List[Reg] = []
            for i, r in enumerate(instr.call_uses):
                if i >= len(cc.arg_regs):
                    fixed_uses.append(r)
                    continue
                home = Reg(cc.arg_regs[i], virtual=False, cls=r.cls)
                fixed_uses.append(home)
                if r != home:
                    wanted.append((home, r))
            pre = _sequence_parallel_moves(wanted)
            n_moves += len(pre)
            post: List[Instr] = []
            fixed_defs: List[Reg] = []
            for r in instr.call_defs:
                home = Reg(cc.ret_reg, virtual=False, cls=r.cls)
                fixed_defs.append(home)
                if r != home:
                    post.append(Instr("mov", dst=r, srcs=(home,)))
                    n_moves += 1
            repaired = instr.copy()
            repaired.call_uses = tuple(fixed_uses)
            repaired.call_defs = tuple(fixed_defs)
            new_instrs.extend(pre)
            new_instrs.append(repaired)
            new_instrs.extend(post)
        block.instrs = new_instrs
    return out, n_moves


@dataclass
class ConventionRemapResult:
    """A remapping that respects a calling convention."""

    remap: RemapResult
    fn: Function
    strategy: str
    repair_moves: int = 0


def remap_with_convention(fn: Function, reg_n: int, diff_n: int,
                          cc: CallingConvention,
                          strategy: str = "pin",
                          restarts: int = 50,
                          seed: int = 0,
                          freq: Optional[Dict[str, float]] = None
                          ) -> ConventionRemapResult:
    """Differential remapping that leaves call boundaries intact.

    Returns the chosen permutation, the (repaired) function, and the repair
    cost.  With ``strategy="pin"`` the result needs no repair by
    construction; with ``strategy="repair"`` the unconstrained permutation
    usually achieves a lower adjacency cost, paid for with compensation
    moves at each call site — the paper's Section 9.3 trade.
    """
    if strategy == "pin":
        remap = differential_remap(
            fn, reg_n, diff_n, restarts=restarts, seed=seed, freq=freq,
            pinned=[p for p in cc.pinned if p < reg_n],
        )
        return ConventionRemapResult(remap, remap.fn, "pin", 0)
    if strategy == "repair":
        remap = differential_remap(
            fn, reg_n, diff_n, restarts=restarts, seed=seed, freq=freq,
        )
        repaired, n_moves = _repair_call_sites(remap.fn, cc, reg_n)
        return ConventionRemapResult(remap, repaired, "repair", n_moves)
    raise ValueError(f"unknown strategy {strategy!r}; use 'pin' or 'repair'")
