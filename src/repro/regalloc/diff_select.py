"""Differential select — approach 2 (paper Section 6, Figure 8).

A :class:`~repro.regalloc.iterated.ColorSelector` that, whenever the select
stage has more than one legal color for a node, picks the one minimising the
adjacency-graph cost against the neighbours colored so far.  Working on live
ranges rather than on the post-allocation register graph makes the problem
far less constrained than remapping — the reason the paper's select scheme
beats remapping in Figure 12.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.analysis.adjacency import AdjacencyGraph, build_adjacency, edge_satisfied
from repro.analysis.frequency import estimate_block_frequencies
from repro.ir.function import Function
from repro.ir.instr import Reg
from repro.regalloc.iterated import ColorSelector

__all__ = ["DifferentialSelector"]


class DifferentialSelector(ColorSelector):
    """Pick colors that minimise differential-encoding cost.

    Args:
        reg_n: RegN of the target encoding.
        diff_n: DiffN of the target encoding.
        order: access order used to build the adjacency graph.
        use_frequency: weight adjacency edges by static block frequency.
    """

    def __init__(self, reg_n: int, diff_n: int, order: str = "src_first",
                 use_frequency: bool = True) -> None:
        if diff_n > reg_n:
            raise ValueError("diff_n cannot exceed reg_n")
        self.reg_n = reg_n
        self.diff_n = diff_n
        self.order = order
        self.use_frequency = use_frequency
        self._graph: Optional[AdjacencyGraph] = None
        self._assignment: Dict[Reg, int] = {}

    # ------------------------------------------------------------------
    # ColorSelector interface
    # ------------------------------------------------------------------

    def begin_round(self, fn: Function, members: Dict[Reg, Set[Reg]],
                    freq: Optional[Dict[Reg, float]] = None) -> None:
        """Rebuild the adjacency graph for this allocation round."""
        if not self.use_frequency:
            freq = None
        elif freq is None:
            freq = estimate_block_frequencies(fn)
        self._graph = build_adjacency(fn, order=self.order, freq=freq)
        # physical registers present in the code are already "assigned"
        self._assignment = {
            r: r.id for r in self._graph.nodes() if not r.virtual
        }

    def on_color(self, members: Set[Reg], color: int) -> None:
        """Record the chosen number for every member of the node."""
        for m in members:
            self._assignment[m] = color

    def choose(self, node: Reg, members: Set[Reg], ok_colors: Set[int]) -> int:
        """Pick the legal color with minimal adjacency cost (Figure 8)."""
        if len(ok_colors) == 1 or self._graph is None:
            return min(ok_colors)
        best_color = None
        best_cost = None
        for c in sorted(ok_colors):
            cost = self._member_cost(members, c)
            if best_cost is None or cost < best_cost:
                best_cost, best_color = cost, c
        return best_color  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # cost of assigning `color` to every member of a coalesced node
    # ------------------------------------------------------------------

    def _member_cost(self, members: Set[Reg], color: int) -> float:
        graph = self._graph
        assert graph is not None
        total = 0.0
        for m in members:
            if m not in graph:
                continue
            for v, w in graph.out_edges(m).items():
                if v in members:
                    continue  # same future register: difference 0
                nv = self._assignment.get(v)
                if nv is not None and not edge_satisfied(
                        color, nv, self.reg_n, self.diff_n):
                    total += w
            for u, w in graph.in_edges(m).items():
                if u in members:
                    continue
                nu = self._assignment.get(u)
                if nu is not None and not edge_satisfied(
                        nu, color, self.reg_n, self.diff_n):
                    total += w
        return total
