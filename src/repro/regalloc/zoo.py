"""The allocator zoo: a pluggable registry of allocation backends.

Every allocation scheme the pipeline can run — the paper's five setups
and anything added later — registers itself here as a *backend*: a
:class:`AllocatorInfo` capability record plus a runner callable.  The
pipeline (:func:`repro.regalloc.pipeline.run_setup`), the CLI, the
experiment grids, the compile-service protocol and the fuzz harness all
discover backends through this registry, so adding one in a single
``register_allocator`` call makes it reachable — and differentially
cross-checked — everywhere at once.

A runner has the signature ``runner(fn, ctx) -> AllocationResult``:

* ``fn`` is the virtual-register input function (never mutated);
* ``ctx`` is an :class:`AllocatorContext` carrying the pipeline knobs
  (register budgets, frequency estimates, machine capabilities) and the
  pipeline's checkpoint callable, which the runner invokes at the same
  stage boundaries the monolithic pipeline used to, so pass verifiers
  observe identical stage names regardless of how dispatch happens.

The registry deliberately knows nothing about the pipeline: built-in
backends are registered by :mod:`repro.regalloc.pipeline` at import
time, and the lookup helpers import it lazily so CLI code can call
:func:`allocator_names` without ordering constraints.

Registration order is served back verbatim by :func:`allocator_names`
— the pipeline registers the paper's setups first, so existing tuple
consumers (service request mixes, experiment grids) keep their historic
ordering with new backends appended at the end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.ir.function import Function
from repro.regalloc.base import AllocationResult

__all__ = [
    "AllocatorInfo",
    "AllocatorContext",
    "RegisteredAllocator",
    "register_allocator",
    "unregister_allocator",
    "get_allocator",
    "list_allocators",
    "allocator_names",
]


@dataclass(frozen=True)
class AllocatorInfo:
    """Capability metadata for one registered backend.

    ``differential`` marks backends that allocate over the full
    ``RegN`` register file and therefore go through the differential
    encode path (remapping + setlr elimination); non-differential
    backends (the baseline, the optimal spiller) are compared against
    them and skip re-encoding.
    """

    name: str
    description: str
    #: how the backend makes spill decisions, e.g. "iterated",
    #: "optimal-ilp", "everywhere"
    spill_style: str
    #: allocates over RegN and feeds the differential encoder
    differential: bool
    #: builds SSA form internally (diagnostic: such backends exercise
    #: the construct/destruct path and the parallel-move resolver)
    needs_ssa: bool = False
    #: register classes the backend knows how to color
    reg_classes: Tuple[str, ...] = ("int",)
    #: provenance note, e.g. the paper a scheme comes from
    source: str = ""

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form (``repro allocators --json``, bench docs)."""
        return {
            "name": self.name,
            "description": self.description,
            "spill_style": self.spill_style,
            "differential": self.differential,
            "needs_ssa": self.needs_ssa,
            "reg_classes": list(self.reg_classes),
            "source": self.source,
        }


def _no_checkpoint(stage: str, fn: Function, **expectations: object) -> None:
    """Default checkpoint hook: observe nothing."""


@dataclass
class AllocatorContext:
    """Everything a backend needs beyond the input function.

    Mirrors :func:`repro.regalloc.pipeline.run_setup`'s keyword surface
    so runners stay free of pipeline imports.  ``checkpoint`` is called
    with ``(stage, fn, **expectations)`` at each stage boundary; the
    default does nothing, which is what standalone runner invocations
    (tests, benchmarks) want.
    """

    base_k: int = 8
    reg_n: int = 12
    diff_n: int = 8
    #: block name -> execution frequency estimate
    freq: Optional[Dict[str, float]] = None
    use_ilp: bool = True
    has_permi: bool = False
    access_order: str = "src_first"
    checkpoint: Callable[..., None] = field(default=_no_checkpoint)


@dataclass(frozen=True)
class RegisteredAllocator:
    """A registry entry: capability record plus runner."""

    info: AllocatorInfo
    runner: Callable[[Function, AllocatorContext], AllocationResult]


_REGISTRY: Dict[str, RegisteredAllocator] = {}


def register_allocator(
    info: AllocatorInfo,
    runner: Callable[[Function, AllocatorContext], AllocationResult],
) -> RegisteredAllocator:
    """Register a backend; the name must be new and the runner callable."""
    if not info.name or not info.name.replace("_", "").isalnum():
        raise ValueError(f"invalid allocator name {info.name!r}")
    if info.name in _REGISTRY:
        raise ValueError(f"allocator {info.name!r} is already registered")
    if not callable(runner):
        raise TypeError(f"runner for {info.name!r} is not callable")
    entry = RegisteredAllocator(info=info, runner=runner)
    _REGISTRY[info.name] = entry
    return entry


def unregister_allocator(name: str) -> None:
    """Remove a backend (tests register throwaway backends)."""
    _REGISTRY.pop(name, None)


def _ensure_builtins() -> None:
    # the pipeline registers the built-in setups as an import side
    # effect; importing it here keeps the registry dependency-free
    # while letting the CLI ask for names before touching the pipeline
    import repro.regalloc.pipeline  # noqa: F401


def get_allocator(name: str) -> RegisteredAllocator:
    """Look up a backend by name (KeyError with the known names if absent)."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown allocator {name!r}; registered: "
            f"{', '.join(allocator_names())}") from None


def list_allocators() -> Tuple[AllocatorInfo, ...]:
    """All registered backends' capability records, registration order."""
    _ensure_builtins()
    return tuple(entry.info for entry in _REGISTRY.values())


def allocator_names() -> Tuple[str, ...]:
    """Registered backend names, registration order."""
    _ensure_builtins()
    return tuple(_REGISTRY)
