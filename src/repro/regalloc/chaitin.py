"""Chaitin-Briggs graph-coloring allocation (optimistic spilling).

Simpler than iterated coalescing — no coalescing at all — but useful both as
a reference point and to exercise differential remapping behind a second
allocator (the paper stresses remapping "can follow any register allocator").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.analysis.frequency import estimate_block_frequencies
from repro.analysis.interference import build_interference
from repro.ir.function import Function
from repro.ir.instr import Reg
from repro.regalloc.base import AllocationError, AllocationResult, spill_cost_estimates
from repro.regalloc.iterated import _rewrite_with_colors
from repro.regalloc.spill import (
    SpillSlotAllocator,
    first_free_slot,
    insert_spill_code,
)

__all__ = ["chaitin_allocate"]


def _color_round(fn: Function, k: int, costs: Dict[Reg, float],
                 no_spill: Set[Reg]):
    """One simplify/select round; returns (coloring, spilled)."""
    graph = build_interference(fn)
    work = graph.copy()
    stack: List[Reg] = []
    nodes = [n for n in graph.nodes() if n.virtual]
    in_graph = set(nodes)

    while in_graph:
        low = sorted(n for n in in_graph if work.degree(n) < k)
        if low:
            n = low[0]
        else:
            # optimistic potential spill: cheapest cost/degree
            n = min(
                (x for x in in_graph if x not in no_spill),
                key=lambda x: (costs.get(x, 1.0) / max(1, work.degree(x)), x),
                default=None,
            )
            if n is None:
                n = min(in_graph)
        stack.append(n)
        in_graph.discard(n)
        work.remove_node(n)

    color: Dict[Reg, int] = {
        n: n.id for n in graph.nodes() if not n.virtual
    }
    spilled: Set[Reg] = set()
    while stack:
        n = stack.pop()
        used = {
            color[w] for w in graph.neighbors(n) if w in color
        }
        ok = [c for c in range(k) if c not in used]
        if ok:
            color[n] = ok[0]
        else:
            spilled.add(n)
    return color, spilled


def chaitin_allocate(fn: Function, k: int, max_rounds: int = 64) -> AllocationResult:
    """Allocate with Chaitin-Briggs optimistic coloring."""
    if k < 1:
        raise ValueError("k must be positive")
    current = fn
    slots = SpillSlotAllocator(first_free_slot(fn))
    next_vreg = fn.max_vreg_id() + 1
    no_spill: Set[Reg] = set()
    all_spilled: Set[Reg] = set()
    freq = estimate_block_frequencies(fn)

    for round_no in range(1, max_rounds + 1):
        costs = spill_cost_estimates(current, freq)
        color, spilled = _color_round(current, k, costs, no_spill)
        if not spilled:
            allocated, removed = _rewrite_with_colors(current, color)
            return AllocationResult(
                fn=allocated,
                coloring=color,
                spilled=frozenset(all_spilled),
                k=k,
                rounds=round_no,
                moves_removed=removed,
                colored_fn=current,
            )
        all_spilled |= spilled
        current, next_vreg, temps = insert_spill_code(
            current, spilled, slots, next_vreg
        )
        no_spill |= temps
    raise AllocationError(
        f"{fn.name}: no coloring with k={k} after {max_rounds} rounds"
    )
