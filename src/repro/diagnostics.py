"""Shared diagnostic objects: severities, locations, findings, reports.

This is the bottom layer of the static-analysis stack — pure data plus
text/JSON renderers, with no IR dependencies — so every producer of
user-facing findings (the :mod:`repro.lint` rules, the assembly parser,
the encoder's preconditions) can emit the same objects and every consumer
(CLI, tests, pass-pipeline instrumentation) can format them uniformly.

A :class:`Diagnostic` is one finding: a stable rule id (``L002``), a
human-readable rule name (``def-before-use``), a severity, a location
inside a function (or a source line for parser errors), a message, and an
optional fix-it hint.  A :class:`DiagnosticReport` is an ordered
collection with filtering and rendering helpers.  :class:`LintError` is
the strict-mode escape hatch: a ``ValueError`` that carries the report
that triggered it.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional

__all__ = [
    "Severity",
    "Location",
    "Diagnostic",
    "DiagnosticReport",
    "LintError",
    "FormatError",
    "check_format_version",
]


class Severity(enum.IntEnum):
    """Diagnostic severity, ordered so comparisons mean "at least"."""

    NOTE = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Location:
    """Where a finding points.

    All fields are optional: a parser diagnostic has ``file``/``line``, a
    lint diagnostic has ``function``/``block`` and usually
    ``instr_index`` (position within the block) plus the instruction
    ``uid`` for programmatic lookup.
    """

    function: Optional[str] = None
    block: Optional[str] = None
    instr_index: Optional[int] = None
    uid: Optional[int] = None
    file: Optional[str] = None
    line: Optional[int] = None

    def __str__(self) -> str:
        parts: List[str] = []
        if self.file is not None:
            parts.append(self.file)
        if self.line is not None:
            parts.append(f"line {self.line}")
        where = ""
        if self.function is not None:
            where = self.function
        if self.block is not None:
            where += f"/{self.block}" if where else self.block
        if self.instr_index is not None:
            where += f"#{self.instr_index}"
        if where:
            parts.append(where)
        return ":".join(parts) if parts else "<unknown>"

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly dict with null fields dropped."""
        return {
            k: v for k, v in (
                ("function", self.function),
                ("block", self.block),
                ("instr_index", self.instr_index),
                ("uid", self.uid),
                ("file", self.file),
                ("line", self.line),
            ) if v is not None
        }


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one rule."""

    rule: str                 # stable id, e.g. "L002"
    name: str                 # readable slug, e.g. "def-before-use"
    severity: Severity
    message: str
    location: Location = field(default_factory=Location)
    hint: Optional[str] = None

    def render(self) -> str:
        """One-per-line text form: ``loc: error: message [L002/name]``."""
        out = f"{self.location}: {self.severity}: {self.message} " \
              f"[{self.rule}/{self.name}]"
        if self.hint:
            out += f"\n    hint: {self.hint}"
        return out

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly dict; the hint is included only when set."""
        d: Dict[str, object] = {
            "rule": self.rule,
            "name": self.name,
            "severity": str(self.severity),
            "message": self.message,
            "location": self.location.to_dict(),
        }
        if self.hint:
            d["hint"] = self.hint
        return d


@dataclass
class DiagnosticReport:
    """An ordered collection of diagnostics with filter/render helpers."""

    diagnostics: List[Diagnostic] = field(default_factory=list)

    def add(self, diag: Diagnostic) -> None:
        """Append one finding."""
        self.diagnostics.append(diag)

    def extend(self, diags: Iterable[Diagnostic]) -> None:
        """Append every finding of ``diags`` in order."""
        self.diagnostics.extend(diags)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    # ------------------------------------------------------------------
    # filtering
    # ------------------------------------------------------------------

    def at_least(self, severity: Severity) -> List[Diagnostic]:
        """Diagnostics at or above ``severity``."""
        return [d for d in self.diagnostics if d.severity >= severity]

    @property
    def errors(self) -> List[Diagnostic]:
        return self.at_least(Severity.ERROR)

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.WARNING]

    @property
    def ok(self) -> bool:
        """No error-severity findings."""
        return not self.errors

    def by_rule(self, rule: str) -> List[Diagnostic]:
        """Findings of one rule, matched by id or name."""
        return [d for d in self.diagnostics if rule in (d.rule, d.name)]

    def max_severity(self) -> Optional[Severity]:
        """Highest severity present, or None for an empty report."""
        if not self.diagnostics:
            return None
        return max(d.severity for d in self.diagnostics)

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------

    def render_text(self) -> str:
        """Human-readable listing followed by a one-line tally."""
        lines = [d.render() for d in self.diagnostics]
        n_err = len(self.errors)
        n_warn = len(self.warnings)
        lines.append(f"{n_err} error(s), {n_warn} warning(s), "
                     f"{len(self.diagnostics) - n_err - n_warn} note(s)")
        return "\n".join(lines)

    def render_json(self) -> str:
        """Machine-readable form for tooling."""
        return json.dumps({
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "errors": len(self.errors),
            "warnings": len(self.warnings),
        }, indent=2)


class LintError(ValueError):
    """A diagnostic report escalated to an exception (strict mode).

    Subclasses ``ValueError`` so call sites that historically raised
    ``ValueError`` (the encoder preconditions) keep their contract.
    """

    def __init__(self, message: str,
                 report: Optional[DiagnosticReport] = None) -> None:
        self.report = report or DiagnosticReport()
        if self.report.diagnostics:
            message = message + "\n" + self.report.render_text()
        super().__init__(message)

    @property
    def diagnostics(self) -> List[Diagnostic]:
        return self.report.diagnostics


class FormatError(LintError):
    """A versioned JSON document failed envelope validation.

    Raised by :func:`check_format_version` for persisted experiment
    results (:mod:`repro.experiments.persist`) and service protocol
    messages (:mod:`repro.service.protocol`).  Subclasses
    :class:`LintError` so existing ``ValueError`` handlers keep working
    while new callers can read the structured report.
    """


def check_format_version(data: object,
                         kind: Optional[str] = None,
                         supported: Iterable[int] = (1,),
                         version_field: str = "format",
                         kind_field: str = "kind",
                         file: Optional[str] = None) -> int:
    """Validate the envelope of a versioned JSON document.

    Checks, in order: ``data`` is a JSON object; its ``kind_field``
    matches ``kind`` (when ``kind`` is given); its ``version_field``
    holds one of the ``supported`` integers.  Returns the version on
    success and raises :class:`FormatError` (rules F001-F003) otherwise —
    loaders never surface a raw ``KeyError``/``TypeError`` for a file
    written by a newer schema.
    """
    location = Location(file=file)

    def fail(rule: str, name: str, message: str, hint: str) -> "FormatError":
        report = DiagnosticReport([Diagnostic(
            rule=rule, name=name, severity=Severity.ERROR,
            message=message, location=location, hint=hint,
        )])
        return FormatError(message, report)

    if not isinstance(data, dict):
        raise fail("F001", "not-a-document",
                   f"expected a JSON object, got {type(data).__name__}",
                   "the file is not a persisted document at all")
    if kind is not None and data.get(kind_field) != kind:
        raise fail("F002", "wrong-kind",
                   f"not a {kind!r} document: "
                   f"{kind_field}={data.get(kind_field)!r}",
                   f"expected {kind_field}={kind!r}")
    version = data.get(version_field)
    supported = tuple(supported)
    if version not in supported:
        raise fail("F003", "unsupported-format-version",
                   f"unsupported {version_field} version {version!r} "
                   f"(supported: {', '.join(map(str, supported))})",
                   "the file was written by a different schema version; "
                   "regenerate it or upgrade")
    return version  # type: ignore[return-value]
