"""Deterministic parallel execution engine.

A process-pool layer used by the remapping search (restart fan-out), the
experiment harnesses (workload × configuration grids), the fuzz harness
and the compile service's batch dispatcher.  Design rules, in order of
priority:

1. **Bit-identical results.**  ``jobs=1`` and ``jobs>1`` must produce
   exactly the same outputs.  Tasks are therefore pure functions of their
   payloads, randomness is derived *before* the fan-out (or from
   :func:`derive_seed`, which depends only on the task key, never on the
   worker), and results are gathered in submission order.
2. **Serial fallback.**  ``jobs=1`` never touches ``multiprocessing`` —
   it is a plain list comprehension, so single-job runs behave identically
   on platforms without working process pools and under debuggers.  The
   same fallback engages whenever a fan-out could not help: fewer than two
   tasks, or a machine with fewer cores than requested workers (the pool
   never oversubscribes — ``jobs=8`` on a 2-core box runs 2 workers, and
   on a 1-core box runs serially, identically by rule 1).
3. **Workers are a fleet, not a per-call cost.**  Pool spin-up and
   per-task dispatch cost far more than a small task.  :func:`parallel_map`
   therefore draws workers from a process-wide **shared fleet** —
   :class:`WorkerPool` instances created once per process and reused
   across every ``map`` call — and passes a computed ``chunksize``
   (:func:`compute_chunksize`) so many small tasks travel as few
   pickled messages.

The fleet survives worker crashes: a ``map`` that hits a broken pool
discards the dead executor, re-creates it, and retries the batch once
(tasks are pure, so a retry cannot change results).  A batch that kills
its workers twice raises :class:`WorkerCrashError` — and the *next*
``map`` call still gets a fresh pool, so one poisonous batch never
bricks a long-lived server.
"""

from __future__ import annotations

import atexit
import hashlib
import os
import threading
from typing import Callable, Dict, Iterable, List, Optional, Sequence, TypeVar

__all__ = ["resolve_jobs", "derive_seed", "parallel_map", "chunked",
           "compute_chunksize", "WorkerPool", "WorkerCrashError",
           "get_fleet", "shutdown_fleet"]

T = TypeVar("T")
R = TypeVar("R")


class WorkerCrashError(RuntimeError):
    """A task batch killed its worker processes (twice — once on the
    original pool and once on a fresh retry pool).  The pool itself has
    already been recycled; subsequent ``map`` calls run on clean workers.
    """


def resolve_jobs(jobs: int) -> int:
    """Normalise a ``--jobs`` value to a concrete worker count.

    ``1`` (the default) means serial; ``0`` means one worker per CPU;
    anything greater is taken literally.  Negative or non-integer values
    raise ``ValueError`` — the CLI renders that through the diagnostics
    machinery.
    """
    if isinstance(jobs, bool) or not isinstance(jobs, int):
        raise ValueError(f"jobs must be an integer, got {jobs!r}")
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0 (0 means all cores), got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def derive_seed(base_seed: int, *key: object) -> int:
    """A deterministic per-task seed from a base seed and a task key.

    Stable across processes, platforms and Python versions (unlike
    ``hash()``, which is salted): the digest of ``repr`` of the whole key
    tuple.  Tasks seeded this way give the same stream no matter which
    worker — or how many workers — ran them.
    """
    digest = hashlib.sha256(repr((base_seed,) + key).encode()).digest()
    return int.from_bytes(digest[:8], "little")


def chunked(items: Sequence[T], n_chunks: int) -> List[List[T]]:
    """Split ``items`` into at most ``n_chunks`` contiguous, balanced runs.

    Concatenating the chunks reproduces ``items`` exactly, so order-
    dependent folds over chunked results match the unchunked fold.
    """
    items = list(items)
    if n_chunks <= 0:
        raise ValueError(f"n_chunks must be positive, got {n_chunks}")
    n_chunks = min(n_chunks, len(items)) or 1
    size, extra = divmod(len(items), n_chunks)
    out: List[List[T]] = []
    start = 0
    for i in range(n_chunks):
        end = start + size + (1 if i < extra else 0)
        out.append(items[start:end])
        start = end
    return [c for c in out if c]


def compute_chunksize(n_tasks: int, workers: int) -> int:
    """The ``chunksize`` a pooled map should use for ``n_tasks``.

    Targets four chunks per worker: large enough that per-message pickle
    and queue overhead amortises across tasks, small enough that one slow
    chunk cannot leave the other workers idle for long.  Chunking never
    changes results — ``Executor.map`` preserves submission order
    regardless of chunk boundaries.
    """
    if n_tasks <= 0 or workers <= 0:
        return 1
    size, extra = divmod(n_tasks, workers * 4)
    return max(1, size + (1 if extra else 0))


def _serial_map(fn: Callable[[T], R], tasks: Sequence[T]) -> List[R]:
    """The shared serial fallback: a plain in-process loop."""
    return [fn(t) for t in tasks]


def _worker_warmup() -> int:
    """No-op task used to force worker processes to actually spawn."""
    return os.getpid()


class WorkerPool:
    """A persistent, crash-tolerant process pool with the
    :func:`parallel_map` contract: ordered, deterministic, bit-identical
    to serial execution.

    The executor is created lazily on the first multi-task ``map`` (or
    eagerly via :meth:`warm`) and **reused across calls** — the whole
    point of a fleet.  ``jobs=1``, single-task maps, and single-core
    machines never touch ``multiprocessing`` at all.

    Lifecycle properties:

    * **Re-creatable after close.**  :meth:`close` releases the workers;
      a later ``map`` transparently builds a fresh pool.  A closed pool
      is therefore never an error, just a cold one.
    * **Crash recovery.**  A batch that breaks the pool (a worker
      segfault, ``os._exit``, OOM kill) is retried once on a fresh pool;
      if it breaks that one too, :class:`WorkerCrashError` is raised and
      the pool is left cold-but-usable for the next batch.
    * **Recycling.**  With ``recycle_after=N``, the pool retires its
      workers after ~N dispatched tasks and respawns at the next ``map``
      boundary — bounding memory growth in week-long server processes.
    * **Fork hygiene.**  A pool object inherited through ``os.fork`` in
      a worker discards the parent's executor instead of deadlocking on
      its queues.
    """

    def __init__(self, jobs: int = 1, *,
                 recycle_after: Optional[int] = None) -> None:
        if recycle_after is not None and recycle_after < 1:
            raise ValueError(
                f"recycle_after must be >= 1 tasks, got {recycle_after}")
        self.jobs = resolve_jobs(jobs)
        self.recycle_after = recycle_after
        self._executor = None
        self._tasks_dispatched = 0
        self._recycled = 0
        self._pid = os.getpid()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # sizing
    # ------------------------------------------------------------------

    @property
    def max_workers(self) -> int:
        """Worker ceiling: requested jobs clamped to the machine's cores
        (oversubscribing a CPU-bound pool only adds scheduler churn)."""
        return max(1, min(self.jobs, os.cpu_count() or 1))

    def _workers_for(self, n_tasks: int) -> int:
        return min(self.max_workers, n_tasks)

    # ------------------------------------------------------------------
    # executor lifecycle
    # ------------------------------------------------------------------

    def _ensure_executor(self):
        """The live executor, (re)created as needed — after ``close``,
        after a crash, after recycling, or in a forked child."""
        with self._lock:
            if self._pid != os.getpid():
                # forked child: the inherited executor's queues belong to
                # the parent; using them would deadlock
                self._executor = None
                self._tasks_dispatched = 0
                self._pid = os.getpid()
            if self._executor is not None and self.recycle_after is not None \
                    and self._tasks_dispatched >= self.recycle_after:
                self._executor.shutdown(wait=True)
                self._executor = None
                self._tasks_dispatched = 0
                self._recycled += 1
            if self._executor is None:
                from concurrent.futures import ProcessPoolExecutor

                self._executor = ProcessPoolExecutor(
                    max_workers=self.max_workers)
            return self._executor

    def _discard_executor(self) -> None:
        """Drop a (possibly broken) executor; the next map starts fresh."""
        with self._lock:
            executor = self._executor
            self._executor = None
            self._tasks_dispatched = 0
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    def warm(self) -> int:
        """Eagerly spawn the workers (servers call this before accepting
        traffic, so the first batch is not also the slowest).  Returns the
        number of workers spawned; 0 when the pool runs serially."""
        if self.max_workers <= 1:
            return 0
        executor = self._ensure_executor()
        futures = [executor.submit(_worker_warmup)
                   for _ in range(self.max_workers)]
        for f in futures:
            f.result()
        return self.max_workers

    # ------------------------------------------------------------------
    # the map
    # ------------------------------------------------------------------

    def map(self, fn: Callable[[T], R], tasks: Iterable[T],
            chunksize: Optional[int] = None) -> List[R]:
        """Map ``fn`` over ``tasks`` in order, reusing the fleet.

        ``fn`` and every payload must be picklable (module-level
        function, plain-data arguments).  The result list is identical
        for every worker count — parallelism never changes outputs, only
        wall-clock time.
        """
        task_list = list(tasks)
        workers = self._workers_for(len(task_list))
        if workers <= 1 or len(task_list) <= 1:
            return _serial_map(fn, task_list)
        if chunksize is None:
            chunksize = compute_chunksize(len(task_list), workers)
        try:
            return self._dispatch(fn, task_list, chunksize)
        except _broken_pool_errors():
            # the batch killed its workers: recycle the pool and retry
            # once — tasks are pure, so the retry cannot change results
            self._discard_executor()
        try:
            return self._dispatch(fn, task_list, chunksize)
        except _broken_pool_errors() as exc:
            self._discard_executor()
            raise WorkerCrashError(
                f"task batch of {len(task_list)} crashed the worker pool "
                f"twice ({type(exc).__name__}); the pool has been recycled "
                "and the next batch will run on fresh workers") from exc

    def _dispatch(self, fn, task_list, chunksize) -> List[R]:
        executor = self._ensure_executor()
        results = list(executor.map(fn, task_list, chunksize=chunksize))
        with self._lock:
            self._tasks_dispatched += len(task_list)
        return results

    # ------------------------------------------------------------------
    # introspection / shutdown
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Counters for ``/statsz`` and tests: worker ceiling, liveness,
        dispatched task total and recycle count."""
        return {
            "jobs": self.jobs,
            "max_workers": self.max_workers,
            "live": int(self._executor is not None),
            "tasks_dispatched": self._tasks_dispatched,
            "recycled": self._recycled,
        }

    def close(self) -> None:
        """Release the workers (idempotent).  The pool stays usable: a
        later ``map`` lazily re-creates the executor."""
        with self._lock:
            executor = self._executor
            self._executor = None
            self._tasks_dispatched = 0
        if executor is not None:
            executor.shutdown(wait=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _broken_pool_errors():
    """The exception types that mean "the pool's workers died"."""
    from concurrent.futures import BrokenExecutor
    from concurrent.futures.process import BrokenProcessPool

    return (BrokenExecutor, BrokenProcessPool, EOFError)


# ----------------------------------------------------------------------
# the shared fleet
# ----------------------------------------------------------------------

_fleet: Dict[int, WorkerPool] = {}
_fleet_lock = threading.Lock()


def get_fleet(jobs: int) -> WorkerPool:
    """The process-wide shared :class:`WorkerPool` for a worker count.

    Fleets are keyed by their *effective* (core-clamped) worker count and
    live until :func:`shutdown_fleet` or interpreter exit, so every
    ``parallel_map`` in a CLI invocation — hundreds of remap fan-outs in
    one experiment grid — reuses the same warm workers instead of paying
    pool spin-up per call.
    """
    workers = max(1, min(resolve_jobs(jobs), os.cpu_count() or 1))
    with _fleet_lock:
        pool = _fleet.get(workers)
        if pool is None or pool._pid != os.getpid():
            pool = WorkerPool(workers)
            _fleet[workers] = pool
        return pool


def shutdown_fleet() -> None:
    """Close every shared fleet pool (idempotent; re-usable afterwards —
    pools re-create their executors lazily)."""
    with _fleet_lock:
        pools = list(_fleet.values())
    for pool in pools:
        if pool._pid == os.getpid():
            pool.close()


atexit.register(shutdown_fleet)


def parallel_map(fn: Callable[[T], R], tasks: Iterable[T],
                 jobs: int = 1,
                 chunksize: Optional[int] = None) -> List[R]:
    """Map ``fn`` over ``tasks``, preserving task order in the results.

    With ``jobs=1`` (or fewer than two tasks, or a single-core machine)
    this is a serial loop; otherwise it fans out over the **shared
    fleet** (:func:`get_fleet`) with a computed ``chunksize``, so
    repeated calls in one process reuse warm workers.  The result list
    is identical in either mode — parallelism never changes outputs,
    only wall-clock time.
    """
    jobs = resolve_jobs(jobs)
    task_list = list(tasks)
    if jobs == 1 or len(task_list) <= 1:
        return _serial_map(fn, task_list)
    return get_fleet(jobs).map(fn, task_list, chunksize=chunksize)
