"""Deterministic parallel execution engine.

A thin process-pool layer used by the remapping search (restart fan-out)
and the experiment harnesses (workload × configuration grids).  Design
rules, in order of priority:

1. **Bit-identical results.**  ``jobs=1`` and ``jobs>1`` must produce
   exactly the same outputs.  Tasks are therefore pure functions of their
   payloads, randomness is derived *before* the fan-out (or from
   :func:`derive_seed`, which depends only on the task key, never on the
   worker), and results are gathered in submission order.
2. **Serial fallback.**  ``jobs=1`` never touches ``multiprocessing`` —
   it is a plain list comprehension, so single-job runs behave identically
   on platforms without working process pools and under debuggers.
3. **Chunking is the caller's job.**  Per-process task dispatch costs
   far more than a small task; callers batch small units (e.g. remap
   restarts) into contiguous chunks with :func:`chunked`.
"""

from __future__ import annotations

import hashlib
import os
from typing import Callable, Iterable, List, Sequence, TypeVar

__all__ = ["resolve_jobs", "derive_seed", "parallel_map", "chunked",
           "WorkerPool"]

T = TypeVar("T")
R = TypeVar("R")


def resolve_jobs(jobs: int) -> int:
    """Normalise a ``--jobs`` value to a concrete worker count.

    ``1`` (the default) means serial; ``0`` means one worker per CPU;
    anything greater is taken literally.  Negative or non-integer values
    raise ``ValueError`` — the CLI renders that through the diagnostics
    machinery.
    """
    if isinstance(jobs, bool) or not isinstance(jobs, int):
        raise ValueError(f"jobs must be an integer, got {jobs!r}")
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0 (0 means all cores), got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def derive_seed(base_seed: int, *key: object) -> int:
    """A deterministic per-task seed from a base seed and a task key.

    Stable across processes, platforms and Python versions (unlike
    ``hash()``, which is salted): the digest of ``repr`` of the whole key
    tuple.  Tasks seeded this way give the same stream no matter which
    worker — or how many workers — ran them.
    """
    digest = hashlib.sha256(repr((base_seed,) + key).encode()).digest()
    return int.from_bytes(digest[:8], "little")


def chunked(items: Sequence[T], n_chunks: int) -> List[List[T]]:
    """Split ``items`` into at most ``n_chunks`` contiguous, balanced runs.

    Concatenating the chunks reproduces ``items`` exactly, so order-
    dependent folds over chunked results match the unchunked fold.
    """
    items = list(items)
    if n_chunks <= 0:
        raise ValueError(f"n_chunks must be positive, got {n_chunks}")
    n_chunks = min(n_chunks, len(items)) or 1
    size, extra = divmod(len(items), n_chunks)
    out: List[List[T]] = []
    start = 0
    for i in range(n_chunks):
        end = start + size + (1 if i < extra else 0)
        out.append(items[start:end])
        start = end
    return [c for c in out if c]


def parallel_map(fn: Callable[[T], R], tasks: Iterable[T],
                 jobs: int = 1) -> List[R]:
    """Map ``fn`` over ``tasks``, preserving task order in the results.

    With ``jobs=1`` (or fewer than two tasks) this is a serial loop; with
    more it fans out over a process pool.  ``fn`` and every payload must be
    picklable (module-level function, plain-data arguments).  The result
    list is identical in either mode — parallelism never changes outputs,
    only wall-clock time.
    """
    jobs = resolve_jobs(jobs)
    task_list = list(tasks)
    if jobs == 1 or len(task_list) <= 1:
        return [fn(t) for t in task_list]
    # imported lazily so jobs=1 runs never pay for (or depend on) the
    # multiprocessing machinery
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=min(jobs, len(task_list))) as pool:
        return list(pool.map(fn, task_list))


class WorkerPool:
    """A reusable :func:`parallel_map`: same ordered, deterministic
    contract, but the process pool persists across ``map`` calls.

    One-shot ``parallel_map`` pays pool startup per call, which is fine
    for experiment grids but not for a long-lived server dispatching
    micro-batches every few milliseconds.  ``jobs=1`` never creates a
    pool at all, and the pool is created lazily on the first multi-task
    ``map`` — so serial servers stay ``multiprocessing``-free.
    """

    def __init__(self, jobs: int = 1) -> None:
        self.jobs = resolve_jobs(jobs)
        self._executor = None

    def map(self, fn: Callable[[T], R], tasks: Iterable[T]) -> List[R]:
        """Map ``fn`` over ``tasks`` in order, reusing the pool."""
        task_list = list(tasks)
        if self.jobs == 1 or len(task_list) <= 1:
            return [fn(t) for t in task_list]
        if self._executor is None:
            from concurrent.futures import ProcessPoolExecutor

            self._executor = ProcessPoolExecutor(max_workers=self.jobs)
        return list(self._executor.map(fn, task_list))

    def close(self) -> None:
        """Shut the pool down (idempotent; the pool is not reusable)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
