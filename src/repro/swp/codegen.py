"""Symbolic code generation for software-pipelined loops.

Turns a :class:`~repro.swp.rotalloc.KernelAllocation` into the actual shape
of the emitted loop: the *prologue* (pipeline fill — one partial copy of the
body per overlapped stage), the *kernel* (steady state, unrolled by the
modulo-variable-expansion factor with rotated register names), and the
*epilogue* (drain).  The paper's Table 3 code-growth numbers are exactly
the size of this expansion, and Section 8.1's promoted ``set_last_reg``
instructions go in front of the whole thing.

The listing is symbolic (no executable semantics — loop bodies come from
DDGs, not IR), but every structural quantity matches the analytical
accounting in :class:`~repro.swp.modulo.ModuloSchedule`:
``len(kernel) == kernel_code_size()`` and
``len(prologue) + len(epilogue) == (stage_count - 1) * len(ops)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.swp.diffswp import SwpEncodingReport
from repro.swp.rotalloc import KernelAllocation

__all__ = ["PipelinedOp", "PipelinedLoop", "generate_pipelined_loop"]


@dataclass(frozen=True)
class PipelinedOp:
    """One emitted operation of the pipelined loop."""

    op_id: int
    kind: str
    cycle: int           # issue cycle within its section
    stage: int           # pipeline stage the op belongs to
    copy: int            # MVE copy index (kernel ops only)
    dst: Optional[int]   # destination register, None for stores/branches
    srcs: Tuple[int, ...]

    def render(self) -> str:
        """One listing line: cycle, stage, copy, op, registers."""
        dst = f"r{self.dst}" if self.dst is not None else "-"
        srcs = ",".join(f"r{s}" for s in self.srcs) or "-"
        return (f"t={self.cycle:4d} s{self.stage} c{self.copy} "
                f"op{self.op_id:<4d} {self.kind:<10} {dst:>5} <- {srcs}")


@dataclass
class PipelinedLoop:
    """The three sections of an emitted software-pipelined loop."""

    prologue: List[PipelinedOp]
    kernel: List[PipelinedOp]
    epilogue: List[PipelinedOp]
    ii: int
    mve_unroll: int
    setlr_preamble: int = 0

    @property
    def total_ops(self) -> int:
        return (len(self.prologue) + len(self.kernel) + len(self.epilogue)
                + self.setlr_preamble)

    def render(self) -> str:
        """The full prologue/kernel/epilogue listing as text."""
        lines = [f"; II={self.ii}, MVE unroll={self.mve_unroll}, "
                 f"{self.setlr_preamble} promoted set_last_reg"]
        for title, section in (("prologue", self.prologue),
                               ("kernel", self.kernel),
                               ("epilogue", self.epilogue)):
            lines.append(f"{title}:")
            lines.extend("    " + op.render() for op in section)
        return "\n".join(lines)


def _rotated(reg: Optional[int], copy: int, budget: int) -> Optional[int]:
    """MVE renaming: kernel copy ``k`` shifts register names by ``k``.

    Lam's modulo variable expansion gives each unrolled kernel copy its own
    register set so values whose lifetimes exceed one II never collide with
    their own next-iteration incarnations.
    """
    if reg is None:
        return None
    return (reg + copy) % budget


def generate_pipelined_loop(alloc: KernelAllocation,
                            encoding: Optional[SwpEncodingReport] = None
                            ) -> PipelinedLoop:
    """Emit the prologue/kernel/epilogue structure for ``alloc``.

    ``encoding`` (from :func:`repro.swp.diffswp.encode_kernel`) contributes
    the promoted ``set_last_reg`` preamble and applies its register
    permutation to the listing.
    """
    sched = alloc.schedule
    ddg = sched.ddg
    ii = sched.ii
    stages = sched.stage_count
    unroll = sched.mve_unroll()
    budget = max(alloc.reg_n, 1)

    perm = list(encoding.permutation) if encoding else None

    producers_of: Dict[int, List[int]] = {op.id: [] for op in ddg.ops}
    for d in ddg.deps:
        if d.is_data:
            producers_of[d.dst].append(d.src)

    def regs_for(op_id: int, copy: int) -> Tuple[Optional[int], Tuple[int, ...]]:
        op = ddg.op(op_id)
        dst = alloc.assignment.get(op_id) if op.produces_value else None
        srcs = tuple(
            alloc.assignment[p] for p in sorted(producers_of[op_id])
            if p in alloc.assignment
        )
        dst = _rotated(dst, copy, budget)
        srcs = tuple(_rotated(s, copy, budget) for s in srcs)
        if perm is not None:
            dst = perm[dst] if dst is not None else None
            srcs = tuple(perm[s] for s in srcs)
        return dst, srcs

    ordered = sorted(ddg.ops, key=lambda o: (sched.times[o.id], o.id))

    # prologue: stage s of iteration i issues before the kernel reaches
    # steady state — iterations 0..stages-2 contribute their early stages
    prologue: List[PipelinedOp] = []
    for it in range(stages - 1):
        for op in ordered:
            stage = sched.times[op.id] // ii
            if stage <= stages - 2 - it:
                dst, srcs = regs_for(op.id, it % max(1, unroll))
                prologue.append(PipelinedOp(
                    op_id=op.id, kind=op.kind,
                    cycle=it * ii + sched.times[op.id],
                    stage=stage, copy=it % max(1, unroll),
                    dst=dst, srcs=srcs,
                ))

    # kernel: every op once per MVE copy
    kernel: List[PipelinedOp] = []
    for copy in range(unroll):
        for op in ordered:
            dst, srcs = regs_for(op.id, copy)
            kernel.append(PipelinedOp(
                op_id=op.id, kind=op.kind,
                cycle=copy * ii + (sched.times[op.id] % ii),
                stage=sched.times[op.id] // ii, copy=copy,
                dst=dst, srcs=srcs,
            ))

    # epilogue mirrors the prologue: late stages of the final iterations
    epilogue: List[PipelinedOp] = []
    for it in range(stages - 1):
        for op in ordered:
            stage = sched.times[op.id] // ii
            if stage > stages - 2 - it:
                dst, srcs = regs_for(op.id, it % max(1, unroll))
                epilogue.append(PipelinedOp(
                    op_id=op.id, kind=op.kind,
                    cycle=it * ii + (sched.times[op.id] % ii),
                    stage=stage, copy=it % max(1, unroll),
                    dst=dst, srcs=srcs,
                ))

    return PipelinedLoop(
        prologue=prologue,
        kernel=kernel,
        epilogue=epilogue,
        ii=ii,
        mve_unroll=unroll,
        setlr_preamble=(encoding.n_setlr + encoding.enable_overhead
                        if encoding else 0),
    )
