"""Iterative modulo scheduling (Rau, MICRO 1994 — simplified).

Operations are placed into a flat schedule (op -> start cycle, possibly
negative relative offsets normalised afterwards) under a modulo resource
reservation table: at most ``n_functional_units`` ops and
``n_memory_ports`` memory ops per modulo slot.  Scheduling priority is
height (longest latency path to any successor chain), and when an op cannot
be placed within its window, already-placed conflicting ops are evicted
(the "iterative" part) up to a budget; the II is then increased.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.machine.spec import VLIW, VLIWConfig
from repro.swp.ddg import Dep, LoopDDG, LoopOp

__all__ = ["ModuloSchedule", "ScheduleError", "modulo_schedule"]


class ScheduleError(RuntimeError):
    """No feasible schedule within the II / budget limits."""


@dataclass
class ModuloSchedule:
    """A modulo schedule: start times are nonnegative, one per op."""

    ddg: LoopDDG
    ii: int
    times: Dict[int, int]
    machine: VLIWConfig

    @property
    def length(self) -> int:
        """Schedule length of one iteration (for prologue/epilogue size)."""
        return max(
            self.times[op.id] + op.latency for op in self.ddg.ops
        ) if self.ddg.ops else 0

    @property
    def stage_count(self) -> int:
        """Number of pipeline stages (overlapped iterations)."""
        return max(1, math.ceil(self.length / self.ii))

    def value_lifetimes(self) -> Dict[int, Tuple[int, int]]:
        """``op id -> (start, end)`` for every value-producing op.

        A value is born when its producer issues and dies at its last
        consumer's issue (plus ``II * distance`` for loop-carried uses).
        Values with no consumer die after their producer's latency.
        """
        out: Dict[int, Tuple[int, int]] = {}
        for op in self.ddg.ops:
            if not op.produces_value:
                continue
            start = self.times[op.id]
            end = start + op.latency
            for d in self.ddg.consumers(op.id):
                end = max(end, self.times[d.dst] + self.ii * d.distance)
            out[op.id] = (start, end)
        return out

    def max_live(self) -> int:
        """MaxLive over the kernel's modulo slots.

        A value spanning more than one II overlaps itself across iterations
        (which modulo variable expansion must rename), so its interval
        contributes multiplicity to every slot it covers.
        """
        ii = self.ii
        pressure = [0] * ii
        for start, end in self.value_lifetimes().values():
            span = end - start
            if span <= 0:
                continue
            full, rem = divmod(span, ii)
            for c in range(ii):
                pressure[c] += full
            for k in range(rem):
                pressure[(start + k) % ii] += 1
        return max(pressure) if pressure else 0

    def mve_unroll(self) -> int:
        """Modulo-variable-expansion unroll factor: the longest value
        lifetime in IIs (Lam's compile-time renaming)."""
        factor = 1
        for start, end in self.value_lifetimes().values():
            factor = max(factor, math.ceil((end - start) / self.ii))
        return factor

    def kernel_code_size(self) -> int:
        """Static ops in the expanded kernel (body × MVE unroll)."""
        return len(self.ddg.ops) * self.mve_unroll()

    def execution_cycles(self, trip_count: Optional[int] = None) -> int:
        """Approximate loop execution time: fill + steady state."""
        trips = trip_count if trip_count is not None else self.ddg.trip_count
        return self.length + self.ii * max(0, trips - 1)


def _heights(ddg: LoopDDG) -> Dict[int, int]:
    """Longest zero-distance latency path from each op (priority)."""
    height = {op.id: op.latency for op in ddg.ops}
    # relax |V| times over zero-distance edges (they form a DAG, but this
    # avoids building a topological order)
    for _ in range(len(ddg.ops)):
        changed = False
        for d in ddg.deps:
            if d.distance != 0:
                continue
            cand = ddg.op(d.src).latency + height[d.dst]
            if cand > height[d.src]:
                height[d.src] = cand
                changed = True
        if not changed:
            break
    return height


class _ResourceTable:
    def __init__(self, ii: int, machine: VLIWConfig) -> None:
        self.ii = ii
        self.machine = machine
        self.fu = [0] * ii
        self.mem = [0] * ii
        self.placed: Dict[int, Tuple[int, bool]] = {}  # op id -> (slot, is_mem)

    def fits(self, t: int, is_mem: bool) -> bool:
        s = t % self.ii
        if self.fu[s] >= self.machine.n_functional_units:
            return False
        if is_mem and self.mem[s] >= self.machine.n_memory_ports:
            return False
        return True

    def place(self, op_id: int, t: int, is_mem: bool) -> None:
        s = t % self.ii
        self.fu[s] += 1
        if is_mem:
            self.mem[s] += 1
        self.placed[op_id] = (s, is_mem)

    def evict(self, op_id: int) -> None:
        s, is_mem = self.placed.pop(op_id)
        self.fu[s] -= 1
        if is_mem:
            self.mem[s] -= 1

    def conflicting_ops(self, t: int, is_mem: bool) -> List[int]:
        """Occupants that must leave slot ``t mod II`` before a forced
        placement.  If the FU limit binds, everything in the slot goes; if
        only the memory-port limit binds (the incoming op is a memory op),
        evicting the resident memory ops suffices."""
        s = t % self.ii
        occupants = [
            (op_id, mem) for op_id, (slot, mem) in self.placed.items()
            if slot == s
        ]
        if self.fu[s] >= self.machine.n_functional_units:
            return [op_id for op_id, _ in occupants]
        if is_mem and self.mem[s] >= self.machine.n_memory_ports:
            return [op_id for op_id, mem in occupants if mem]
        return []


def modulo_schedule(ddg: LoopDDG, machine: VLIWConfig = VLIW,
                    max_ii: Optional[int] = None,
                    budget_factor: int = 8,
                    min_ii: Optional[int] = None) -> ModuloSchedule:
    """Schedule ``ddg``, starting at MII and increasing II until feasible.

    ``min_ii`` forces a larger starting II — the register allocator uses it
    to trade issue rate for pressure when spilling alone cannot fit the
    kernel (Section 10.2 discusses exactly this alternative).
    """
    if not ddg.ops:
        raise ScheduleError(f"{ddg.name}: empty loop")
    mii = ddg.mii(machine)
    if min_ii is not None:
        mii = max(mii, min_ii)
    top = max_ii if max_ii is not None else max(mii * 4, mii + 32)
    height = _heights(ddg)
    order = sorted(ddg.ops, key=lambda op: (-height[op.id], op.id))

    preds: Dict[int, List[Dep]] = {op.id: [] for op in ddg.ops}
    for d in ddg.deps:
        preds[d.dst].append(d)

    # quality gate: near 100% utilisation the evicting scheduler can emit
    # technically valid but sprawled schedules (inverted modulo slots force
    # chains to cost a full II per link), whose inflated lifetimes would
    # corrupt MaxLive.  Such schedules are rejected and the II increased —
    # a slightly larger II schedules cleanly.
    height_cap = 2 * max(height.values())
    fallback: Optional[ModuloSchedule] = None
    for ii in range(mii, top + 1):
        times = _try_schedule(ddg, machine, ii, order, preds,
                              budget_factor * len(ddg.ops))
        if times is None:
            continue
        times = _retime(ddg, ii, times)
        schedule = ModuloSchedule(ddg, ii, times, machine)
        _alap_spread(schedule)
        _compact_loads(schedule)
        if schedule.length <= max(2 * ii, height_cap):
            return schedule
        if fallback is None or schedule.length < fallback.length:
            fallback = schedule
    if fallback is not None:
        return fallback
    raise ScheduleError(f"{ddg.name}: no schedule with II <= {top}")


def _retime(ddg: LoopDDG, ii: int, times: Dict[int, int]) -> Dict[int, int]:
    """Compact a schedule without changing any op's modulo slot.

    The iterative scheduler's evictions ratchet start times forward, which
    sprawls the flat schedule (long prologue, huge lifetimes) even though
    the modulo reservation table is tight.  Since resources depend only on
    ``time mod II``, we recompute the smallest start times congruent to the
    chosen slots that satisfy every dependence — a longest-path relaxation
    that terminates because II ≥ RecMII rules out positive cycles.
    """
    slots = {op_id: t % ii for op_id, t in times.items()}
    t = dict(slots)
    n = len(ddg.ops)
    for _ in range(n + 1):
        changed = False
        for d in ddg.deps:
            need = t[d.src] + ddg.op(d.src).latency - ii * d.distance
            if t[d.dst] < need:
                # bump to the smallest congruent time >= need
                delta = (need - t[d.dst] + ii - 1) // ii
                t[d.dst] += delta * ii
                changed = True
        if not changed:
            break
    else:
        return times  # should not happen; keep the valid original
    lo = min(t.values())
    shift = (lo // ii) * ii  # keep congruence while normalising near zero
    return {k: v - shift for k, v in t.items()}


def _alap_spread(schedule: ModuloSchedule) -> None:
    """Slide every non-sink op as late as its consumers allow.

    The iterative scheduler is ASAP-biased: it packs the whole body into
    the earliest slots, saturating memory ports there even when the II
    leaves most of the reservation table empty.  That congestion blocks
    the load compaction that keeps spill reloads (and thus MaxLive) short.
    Spreading ops toward their consumers decongests the active region.
    Sink ops (no outgoing dependences) stay put and anchor the schedule.
    """
    ddg, ii, times = schedule.ddg, schedule.ii, schedule.times
    machine = schedule.machine
    mem_use = [0] * ii
    fu_use = [0] * ii
    for op in ddg.ops:
        fu_use[times[op.id] % ii] += 1
        if op.uses_memory_port:
            mem_use[times[op.id] % ii] += 1
    out_deps: Dict[int, List[Dep]] = {op.id: [] for op in ddg.ops}
    for d in ddg.deps:
        if d.src != d.dst:
            out_deps[d.src].append(d)
    for op in sorted(ddg.ops, key=lambda o: -times[o.id]):
        deps = out_deps[op.id]
        if not deps:
            continue
        upper = min(
            times[d.dst] + ii * d.distance - op.latency for d in deps
        )
        cur = times[op.id]
        if upper <= cur:
            continue
        old_slot = cur % ii
        is_mem = op.uses_memory_port
        for t in range(upper, cur, -1):
            slot = t % ii
            if slot == old_slot or (
                    fu_use[slot] < machine.n_functional_units
                    and (not is_mem
                         or mem_use[slot] < machine.n_memory_ports)):
                fu_use[old_slot] -= 1
                fu_use[slot] += 1
                if is_mem:
                    mem_use[old_slot] -= 1
                    mem_use[slot] += 1
                times[op.id] = t
                break


def _compact_loads(schedule: ModuloSchedule) -> None:
    """Move loads as late as their consumers allow (pressure compaction).

    A ``mem_load`` has no register inputs, so delaying it can only shorten
    its value's lifetime — the dominant term in post-spill MaxLive.  The
    move must respect each consumer's issue time, any dependence *out of*
    the load, incoming memory-ordering edges are ≥-constraints that later
    placement can only keep satisfied, and the memory-port reservation of
    the target modulo slot.
    """
    ddg, ii, times = schedule.ddg, schedule.ii, schedule.times
    machine = schedule.machine
    mem_use = [0] * ii
    fu_use = [0] * ii
    for op in ddg.ops:
        fu_use[times[op.id] % ii] += 1
        if op.uses_memory_port:
            mem_use[times[op.id] % ii] += 1
    out_deps: Dict[int, List[Dep]] = {op.id: [] for op in ddg.ops}
    for d in ddg.deps:
        out_deps[d.src].append(d)
    for op in sorted(ddg.ops, key=lambda o: -times[o.id]):
        if op.kind != "mem_load":
            continue
        upper: Optional[int] = None
        for d in out_deps[op.id]:
            bound = times[d.dst] + ii * d.distance - op.latency
            upper = bound if upper is None else min(upper, bound)
        if upper is None or upper <= times[op.id]:
            continue
        old_slot = times[op.id] % ii
        for t in range(upper, times[op.id], -1):
            slot = t % ii
            if slot == old_slot or (
                    mem_use[slot] < machine.n_memory_ports
                    and fu_use[slot] < machine.n_functional_units):
                mem_use[old_slot] -= 1
                mem_use[slot] += 1
                fu_use[old_slot] -= 1
                fu_use[slot] += 1
                times[op.id] = t
                break


def _try_schedule(ddg: LoopDDG, machine: VLIWConfig, ii: int,
                  order: List[LoopOp], preds: Dict[int, List[Dep]],
                  budget: int) -> Optional[Dict[int, int]]:
    table = _ResourceTable(ii, machine)
    times: Dict[int, int] = {}
    worklist: List[LoopOp] = list(order)
    tries = 0
    last_attempt: Dict[int, int] = {}

    while worklist:
        tries += 1
        if tries > budget + len(order):
            return None
        op = worklist.pop(0)
        # earliest start from scheduled predecessors
        est = 0
        for d in preds[op.id]:
            if d.src in times:
                est = max(est, times[d.src] + ddg.op(d.src).latency
                          - ii * d.distance)
        start = max(est, last_attempt.get(op.id, -1) + 1)
        slot: Optional[int] = None
        for t in range(start, start + ii):
            if table.fits(t, op.uses_memory_port):
                slot = t
                break
        if slot is None:
            slot = start  # force placement; evict the conflicts
            for victim in table.conflicting_ops(slot, op.uses_memory_port):
                table.evict(victim)
                del times[victim]
                worklist.append(ddg.op(victim))
        # evict already-placed successors violating their dependence
        for d in ddg.deps:
            if d.src == op.id and d.dst in times and d.dst != op.id:
                if times[d.dst] < slot + op.latency - ii * d.distance:
                    if d.dst in table.placed:
                        table.evict(d.dst)
                    del times[d.dst]
                    worklist.append(ddg.op(d.dst))
        table.place(op.id, slot, op.uses_memory_port)
        times[op.id] = slot
        last_attempt[op.id] = slot

    # final sanity: every dependence satisfied
    for d in ddg.deps:
        if times[d.dst] + ii * d.distance < times[d.src] + ddg.op(d.src).latency:
            return None
    return times
