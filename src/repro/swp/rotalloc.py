"""Kernel register allocation for software-pipelined loops.

The Section 10.2 flow (Figure 10): schedule, then allocate registers to the
kernel's values; when the number of simultaneously live values (MaxLive,
including the cross-iteration copies that modulo variable expansion
renames) exceeds the architected registers, spill values and reschedule —
"the scheduling algorithm carefully spills variables when the number of used
registers exceeds the number of available registers".

Spilling reroutes a value through memory (store + loads), consuming memory
ports and usually raising the II — that is the performance cost differential
encoding removes by exposing more architected registers.

Register assignment uses modulo renaming: values sorted by birth time get
registers round-robin, with each value's MVE copies occupying consecutive
numbers.  The exact numbering matters only to the differential encoding
study (:mod:`repro.swp.diffswp`), which renumbers via differential remapping
anyway.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.machine.spec import VLIW, VLIWConfig
from repro.swp.ddg import LoopDDG
from repro.swp.modulo import ModuloSchedule, ScheduleError, modulo_schedule

__all__ = ["KernelAllocation", "allocate_kernel"]


@dataclass
class KernelAllocation:
    """Result of scheduling + register allocation for one loop."""

    schedule: ModuloSchedule
    reg_n: int
    assignment: Dict[int, int]  # value (producer op id) -> register number
    spilled_values: Tuple[int, ...] = ()
    n_spill_ops: int = 0
    derated: bool = False   # see allocate_kernel(derate_on_failure=...)
    ii_override: Optional[int] = None

    @property
    def ii(self) -> int:
        return self.ii_override if self.ii_override is not None \
            else self.schedule.ii

    @property
    def max_live(self) -> int:
        return self.schedule.max_live()

    @property
    def registers_used(self) -> int:
        return len(set(self.assignment.values()))

    def execution_cycles(self, trip_count: Optional[int] = None) -> int:
        """Loop execution time: fill plus II per steady-state iteration."""
        trips = trip_count if trip_count is not None \
            else self.schedule.ddg.trip_count
        return self.schedule.length + self.ii * max(0, trips - 1)

    def code_size_ops(self, rotating: bool = False) -> int:
        """Static size of the emitted loop.

        Default: compile-time renaming (modulo variable expansion) — the
        kernel is unrolled by the MVE factor, plus the prologue/epilogue
        fill and drain.  With ``rotating=True``, model an Itanium-style
        rotating register file instead (the hardware alternative the paper
        contrasts in Section 8.1): the renaming happens in hardware, so the
        kernel is a single copy of the body.
        """
        if rotating:
            kernel = len(self.schedule.ddg.ops)
        else:
            kernel = self.schedule.kernel_code_size()
        # prologue+epilogue fill/drain: (stages - 1) copies of the body
        wind = (self.schedule.stage_count - 1) * len(self.schedule.ddg.ops)
        extra = self.n_spill_ops if self.derated else 0
        return kernel + wind + extra


def _assign_registers(schedule: ModuloSchedule, reg_n: int) -> Dict[int, int]:
    """Round-robin modulo renaming over values sorted by birth time.

    A value living ``ceil(lifetime / II)`` IIs occupies that many
    consecutive register numbers (its MVE copies); the next value continues
    from there.  With ``MaxLive <= reg_n`` this wrap-around assignment is
    conflict-free for kernels in practice; the differential study only needs
    a *valid-shaped* numbering, and renumbers it anyway.
    """
    assignment: Dict[int, int] = {}
    cursor = 0
    lifetimes = schedule.value_lifetimes()
    for op_id, (start, end) in sorted(
            lifetimes.items(), key=lambda it: (it[1][0], it[0])):
        copies = max(1, math.ceil((end - start) / schedule.ii))
        assignment[op_id] = cursor % reg_n
        cursor += copies
    return assignment


def allocate_kernel(ddg: LoopDDG, reg_n: int,
                    machine: VLIWConfig = VLIW,
                    reserved: int = 0,
                    max_spills: int = 64,
                    derate_on_failure: bool = True) -> KernelAllocation:
    """Schedule ``ddg`` and fit its values into ``reg_n`` registers.

    ``reserved`` registers are withheld (loop control, base addresses).
    Victims are chosen to relieve the hottest kernel slot, then the loop
    reschedules; when spilling stalls, the II is raised instead (both
    alternatives the paper discusses in Section 10.2).

    A few percent of extreme loops resist both (their reload bursts keep
    the memory ports saturated around the pressure peak).  With
    ``derate_on_failure`` the allocator returns a *derated* estimate built
    from the best schedule found: each register of residual overshoot costs
    15% of the II — the midpoint of what converged heavy-spill cases pay —
    and three memory ops of code, with ``derated=True`` marking the
    approximation.  Otherwise a :class:`ScheduleError` is raised.
    """
    budget = reg_n - reserved
    if budget < 1:
        raise ValueError("no registers available after reservation")
    current = ddg
    next_id = max((op.id for op in ddg.ops), default=0) + 1
    spilled: List[int] = []
    n_spill_ops = 0
    forced_ii: Optional[int] = None
    ii_cap = 16 * ddg.mii(machine)
    best: Optional[ModuloSchedule] = None
    best_spill_ops = 0

    for _ in range(max_spills + 1):
        schedule = modulo_schedule(current, machine, min_ii=forced_ii)
        if best is None or schedule.max_live() < best.max_live():
            best = schedule
            best_spill_ops = n_spill_ops
        if schedule.max_live() <= budget:
            return KernelAllocation(
                schedule=schedule,
                reg_n=reg_n,
                assignment=_assign_registers(schedule, budget),
                spilled_values=tuple(spilled),
                n_spill_ops=n_spill_ops,
            )
        excess = schedule.max_live() - budget
        victims = _spill_victims(schedule, set(spilled),
                                 batch=max(1, excess // 2))
        if not victims:
            # Targeted spilling has run dry — the residual pressure comes
            # from reload bursts around port-congested regions.  Go to the
            # heavy-spill endgame: every remaining long value goes to
            # memory, the ports then force a larger II, and the abundant
            # port slots let reloads sit right before their consumers.
            victims = _spill_victims(schedule, set(spilled),
                                     batch=len(schedule.ddg.ops),
                                     any_slot=True)
        if not victims:
            # nothing left to spill: trade issue rate for pressure instead —
            # "we can increase the II to reduce register pressure" (§10.2)
            forced_ii = int(schedule.ii * 1.3) + 1
            if forced_ii > ii_cap:
                break
            continue
        for victim in victims:
            n_consumers = len(current.consumers(victim))
            current, next_id = current.with_spilled_value(victim, next_id)
            spilled.append(victim)
            n_spill_ops += 1 + n_consumers  # a store + loads for consumers

    if derate_on_failure and best is not None:
        overshoot = best.max_live() - budget
        return KernelAllocation(
            schedule=best,
            reg_n=reg_n,
            assignment=_assign_registers(best, budget),
            spilled_values=tuple(spilled),
            n_spill_ops=best_spill_ops + 3 * overshoot,
            derated=True,
            ii_override=int(best.ii * (1 + 0.15 * overshoot)) + 1,
        )
    raise ScheduleError(
        f"{ddg.name}: cannot fit MaxLive into {reg_n} registers "
        f"after {max_spills} spills"
    )


def _spill_victims(schedule: ModuloSchedule, already: set,
                   batch: int = 1, any_slot: bool = False) -> List[int]:
    """Choose values to spill: relieve the most pressure per memory op.

    Candidates must be live at the maximum-pressure modulo slot (anything
    else cannot lower MaxLive), must not be reloads of earlier spills, and
    must have a lifetime long enough that rerouting through memory actually
    frees the register for a while.  Among those, prefer long lifetimes and
    few consumers.  Returns up to ``batch`` victims.
    """
    ii = schedule.ii
    lifetimes = schedule.value_lifetimes()
    pressure = [0] * ii
    covers: Dict[int, set] = {}
    for op_id, (start, end) in lifetimes.items():
        span = end - start
        if span <= 0:
            continue
        full, rem = divmod(span, ii)
        slots = set(range(ii)) if full else set()
        for k in range(rem):
            slots.add((start + k) % ii)
        covers[op_id] = slots
        for c in slots:
            pressure[c] += 1
        if full > 1:
            for c in range(ii):
                pressure[c] += full - 1
    if not any(pressure):
        return []
    hot = max(range(ii), key=lambda c: pressure[c])

    def score(op_id: int) -> float:
        start, end = lifetimes[op_id]
        span = end - start
        n_consumers = max(1, len(schedule.ddg.consumers(op_id)))
        return span / n_consumers

    candidates = [
        op_id for op_id, slots in covers.items()
        if (any_slot or hot in slots)
        and op_id not in already
        and not schedule.ddg.op(op_id).from_spill
        and lifetimes[op_id][1] - lifetimes[op_id][0] > 2 * schedule.ddg.op(op_id).latency
    ]
    candidates.sort(key=lambda o: (-score(o), o))
    return candidates[:batch]
