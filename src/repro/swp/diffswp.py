"""Differential encoding of software-pipelined kernels (Section 8.1).

For loops that need more than the directly encodable registers, the paper
applies *differential remapping only* — the kernel's register numbering is
permuted to minimise out-of-range differences, and all ``set_last_reg``
repairs are **promoted in front of the modulo-scheduled code** using delay
numbers, so they never perturb the schedule: their cost is code size, not
loop cycles.

This module builds the kernel's register access sequence from the schedule
(ops in issue order; each op reads its data-dependence sources and writes
its own value register), constructs the adjacency graph, runs the
Section 5 remapping search, and counts the residual out-of-range
differences — each one is a promoted ``set_last_reg``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.swp.rotalloc import KernelAllocation

__all__ = ["SwpEncodingReport", "kernel_access_sequence", "encode_kernel"]


@dataclass
class SwpEncodingReport:
    """Differential-encoding outcome for one kernel."""

    reg_n: int
    diff_n: int
    n_fields: int
    n_out_of_range_before: int
    n_out_of_range_after: int
    permutation: Tuple[int, ...]

    @property
    def n_setlr(self) -> int:
        """Promoted ``set_last_reg`` instructions (static, outside the loop)."""
        return self.n_out_of_range_after

    @property
    def enable_overhead(self) -> int:
        """Instructions to turn differential decoding on and off around the
        loop (Section 8.2)."""
        return 2


def kernel_access_sequence(alloc: KernelAllocation) -> List[int]:
    """The kernel's register access sequence, in schedule order.

    Each op's fields are its data sources (registers of producing ops)
    followed by its own destination register — the paper's default access
    order.  Ops without a value (stores, branches) contribute sources only.
    """
    sched = alloc.schedule
    ddg = sched.ddg
    producers_of: Dict[int, List[int]] = {op.id: [] for op in ddg.ops}
    for d in ddg.deps:
        if d.is_data:
            producers_of[d.dst].append(d.src)
    seq: List[int] = []
    for op in sorted(ddg.ops, key=lambda o: (sched.times[o.id], o.id)):
        for src in sorted(producers_of[op.id]):
            r = alloc.assignment.get(src)
            if r is not None:
                seq.append(r)
        dst = alloc.assignment.get(op.id)
        if dst is not None:
            seq.append(dst)
    return seq


def _count_out_of_range(seq: Sequence[int], perm: Sequence[int],
                        reg_n: int, diff_n: int) -> int:
    """Out-of-range differences over the *cyclic* kernel sequence.

    The kernel repeats every iteration, so the decode state entering the
    body is the state leaving the previous iteration — the initial
    ``last_reg`` is the last access of the sequence, which also accounts for
    the wrap-around edge.
    """
    if not seq:
        return 0
    count = 0
    last = perm[seq[-1]]
    for r in seq:
        n = perm[r]
        if (n - last) % reg_n >= diff_n:
            count += 1
        last = n
    return count


def encode_kernel(alloc: KernelAllocation, diff_n: int,
                  restarts: int = 32, seed: int = 0) -> SwpEncodingReport:
    """Differentially remap a kernel's registers (Section 8.1).

    Greedy pairwise-swap descent with random restarts over the register
    permutation, minimising the number of out-of-range differences in the
    kernel's access sequence.  The count after search is the number of
    promoted ``set_last_reg`` instructions.
    """
    reg_n = alloc.reg_n
    if diff_n > reg_n:
        raise ValueError("diff_n cannot exceed reg_n")
    seq = kernel_access_sequence(alloc)
    identity = list(range(reg_n))
    before = _count_out_of_range(seq, identity, reg_n, diff_n)
    if diff_n == reg_n or before == 0:
        return SwpEncodingReport(reg_n, diff_n, len(seq), before, before,
                                 tuple(identity))

    used = sorted({r for r in seq})
    rng = random.Random(seed)

    def descend(perm: List[int]) -> int:
        cost = _count_out_of_range(seq, perm, reg_n, diff_n)
        while True:
            best_delta, best_swap = 0, None
            for ai in range(len(used)):
                for bi in range(ai + 1, len(used)):
                    a, b = used[ai], used[bi]
                    perm[a], perm[b] = perm[b], perm[a]
                    c = _count_out_of_range(seq, perm, reg_n, diff_n)
                    perm[a], perm[b] = perm[b], perm[a]
                    if cost - c > best_delta:
                        best_delta, best_swap = cost - c, (a, b)
            if best_swap is None:
                return cost
            a, b = best_swap
            perm[a], perm[b] = perm[b], perm[a]
            cost -= best_delta

    best_perm = list(identity)
    best_cost = descend(best_perm)
    for _ in range(max(0, restarts - 1)):
        if best_cost == 0:
            break
        perm = list(identity)
        images = [perm[u] for u in used]
        rng.shuffle(images)
        for u, img in zip(used, images):
            perm[u] = img
        cost = descend(perm)
        if cost < best_cost:
            best_perm, best_cost = perm, cost
    return SwpEncodingReport(
        reg_n=reg_n, diff_n=diff_n, n_fields=len(seq),
        n_out_of_range_before=before, n_out_of_range_after=best_cost,
        permutation=tuple(best_perm),
    )
