"""Software pipelining substrate (paper Sections 8.1 and 10.2).

* :mod:`repro.swp.ddg` — loop data-dependence graphs, ResMII/RecMII.
* :mod:`repro.swp.modulo` — iterative modulo scheduling (Rau-style).
* :mod:`repro.swp.rotalloc` — kernel register allocation: modulo renaming,
  MaxLive, spill insertion when pressure exceeds the architected registers,
  and modulo variable expansion statistics.
* :mod:`repro.swp.diffswp` — differential remapping over the scheduled
  kernel: counts the promoted ``set_last_reg`` instructions (Section 8.1).
"""

from repro.swp.ddg import Dep, LoopDDG, LoopOp
from repro.swp.modulo import ModuloSchedule, ScheduleError, modulo_schedule
from repro.swp.rotalloc import KernelAllocation, allocate_kernel
from repro.swp.diffswp import SwpEncodingReport, encode_kernel
from repro.swp.codegen import PipelinedLoop, PipelinedOp, generate_pipelined_loop

__all__ = [
    "PipelinedLoop",
    "PipelinedOp",
    "generate_pipelined_loop",
    "Dep",
    "LoopDDG",
    "LoopOp",
    "ModuloSchedule",
    "ScheduleError",
    "modulo_schedule",
    "KernelAllocation",
    "allocate_kernel",
    "SwpEncodingReport",
    "encode_kernel",
]
