"""Loop data-dependence graphs for modulo scheduling.

A :class:`LoopDDG` describes one innermost loop iteration: operations with
latencies and resource kinds, plus dependences annotated with an iteration
*distance* (0 = same iteration, k = value flows to the k-th later
iteration).  The two classic lower bounds on the initiation interval are
computed here:

* **ResMII** — resource-constrained: ops competing for functional units and
  memory ports.
* **RecMII** — recurrence-constrained: for every dependence cycle,
  ``ceil(total latency / total distance)``.  Computed by binary search over
  II with a Bellman-Ford positive-cycle test on edge weights
  ``latency - II * distance``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.machine.spec import VLIW, VLIWConfig

__all__ = ["LoopOp", "Dep", "LoopDDG"]

_MEM_KINDS = frozenset({"mem_load", "mem_store"})


@dataclass(frozen=True)
class LoopOp:
    """One operation of the loop body.

    ``kind`` is one of ``alu``, ``mul``, ``div``, ``mem_load``,
    ``mem_store``, ``branch``.  ``produces_value`` marks ops whose result is
    register-allocated (stores and branches produce none).  ``from_spill``
    tags memory ops introduced by spilling — re-spilling a reload cannot
    shorten anything, so the allocator never picks them as victims.
    """

    id: int
    kind: str = "alu"
    latency: int = 1
    from_spill: bool = False

    @property
    def produces_value(self) -> bool:
        return self.kind not in ("mem_store", "branch")

    @property
    def uses_memory_port(self) -> bool:
        return self.kind in _MEM_KINDS


@dataclass(frozen=True)
class Dep:
    """Dependence ``src -> dst`` with iteration ``distance``.

    ``is_data`` marks true register dataflow (the consumer reads the
    producer's value); anti/output/memory ordering dependences set it False
    and contribute to scheduling but not to register pressure.
    """

    src: int
    dst: int
    distance: int = 0
    is_data: bool = True


class LoopDDG:
    """An innermost loop's dependence graph."""

    def __init__(self, ops: Sequence[LoopOp], deps: Sequence[Dep],
                 trip_count: int = 100, name: str = "loop") -> None:
        self.ops: Tuple[LoopOp, ...] = tuple(ops)
        self.deps: Tuple[Dep, ...] = tuple(deps)
        self.trip_count = trip_count
        self.name = name
        ids = {op.id for op in self.ops}
        if len(ids) != len(self.ops):
            raise ValueError("duplicate op ids")
        for d in self.deps:
            if d.src not in ids or d.dst not in ids:
                raise ValueError(f"dependence {d} references unknown op")
            if d.distance < 0:
                raise ValueError("negative dependence distance")
        self._by_id: Dict[int, LoopOp] = {op.id: op for op in self.ops}

    def op(self, op_id: int) -> LoopOp:
        """Look up an operation by id."""
        return self._by_id[op_id]

    def __len__(self) -> int:
        return len(self.ops)

    # ------------------------------------------------------------------
    # II lower bounds
    # ------------------------------------------------------------------

    def res_mii(self, machine: VLIWConfig = VLIW) -> int:
        """Resource-constrained lower bound on the II."""
        n_ops = len(self.ops)
        n_mem = sum(1 for op in self.ops if op.uses_memory_port)
        fu_bound = math.ceil(n_ops / machine.n_functional_units)
        mem_bound = math.ceil(n_mem / machine.n_memory_ports) if n_mem else 0
        return max(1, fu_bound, mem_bound)

    def _has_positive_cycle(self, ii: int) -> bool:
        """Bellman-Ford longest-path: is some cycle's latency > II*distance?"""
        ids = [op.id for op in self.ops]
        dist = {i: 0.0 for i in ids}
        edges = [
            (d.src, d.dst, self._by_id[d.src].latency - ii * d.distance)
            for d in self.deps
        ]
        for it in range(len(ids)):
            changed = False
            for u, v, w in edges:
                if dist[u] + w > dist[v]:
                    dist[v] = dist[u] + w
                    changed = True
            if not changed:
                return False
        return True  # still relaxing after |V| passes: positive cycle

    def rec_mii(self, max_ii: int = 512) -> int:
        """Smallest II with no positive-latency recurrence cycle."""
        lo, hi = 1, max_ii
        if self._has_positive_cycle(hi):
            raise ValueError(f"{self.name}: recurrence unsatisfiable at II={hi}")
        while lo < hi:
            mid = (lo + hi) // 2
            if self._has_positive_cycle(mid):
                lo = mid + 1
            else:
                hi = mid
        return lo

    def mii(self, machine: VLIWConfig = VLIW) -> int:
        """The minimum initiation interval: max(ResMII, RecMII)."""
        return max(self.res_mii(machine), self.rec_mii())

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------

    def consumers(self, op_id: int) -> List[Dep]:
        """Data dependences reading the value ``op_id`` produces."""
        return [d for d in self.deps if d.src == op_id and d.is_data]

    def with_spilled_value(self, op_id: int, next_id: int,
                           mem_latency: int = 2,
                           share_limit: int = 1) -> Tuple["LoopDDG", int]:
        """Spill the value produced by ``op_id`` (Section 10.2's "carefully
        spills variables").

        The register-carried dataflow out of ``op_id`` is rerouted through
        memory: a store after the producer, and loads shared by up to
        ``share_limit`` consumers at the same dependence distance.  Sharing
        loads follows the spill-code optimisation of Zalamea et al. [21]
        (the paper's reference for SWP spill generation), but each shared
        load's value lives until its *last* consumer — with widely spread
        consumers that recreates the long lifetime being spilled — so the
        default reloads per consumer, which keeps spilling monotone on
        MaxLive.  The loads/stores occupy memory ports, which is exactly
        how spilling hurts ResMII on this machine.  Returns the new DDG and
        the next free op id.
        """
        store = LoopOp(next_id, "mem_store", mem_latency, from_spill=True)
        next_id += 1
        new_ops: List[LoopOp] = list(self.ops) + [store]
        new_deps: List[Dep] = [
            d for d in self.deps if not (d.src == op_id and d.is_data)
        ]
        new_deps.append(Dep(op_id, store.id, 0, is_data=False))
        by_distance: Dict[int, List[Dep]] = {}
        for d in self.consumers(op_id):
            by_distance.setdefault(d.distance, []).append(d)
        for distance, consumer_deps in sorted(by_distance.items()):
            for i in range(0, len(consumer_deps), share_limit):
                chunk = consumer_deps[i:i + share_limit]
                load = LoopOp(next_id, "mem_load", mem_latency, from_spill=True)
                next_id += 1
                new_ops.append(load)
                # memory ordering store -> load carries the iteration distance
                new_deps.append(Dep(store.id, load.id, distance, is_data=False))
                for d in chunk:
                    new_deps.append(Dep(load.id, d.dst, 0, is_data=True))
        return LoopDDG(new_ops, new_deps, self.trip_count, self.name), next_id
