"""Compact wire codec for functions: flat columns instead of object graphs.

Pickling a :class:`~repro.ir.function.Function` walks thousands of small
objects — ``Instr`` dataclasses, ``Reg`` tuples, per-field memo dicts —
and that cost is paid *per task* on every process-pool dispatch.  This
module flattens a function into one contiguous ``bytes`` payload the way
the columnar trace layer flattens execution (:mod:`repro.ir.trace`) and
the binary encoder flattens encodings (:mod:`repro.encoding.binary`):

* a **string table** (function name, block names, branch labels,
  register classes) — every string stored once, referenced by index;
* **per-instruction columns** — opcode code, destination register code,
  flattened source registers with per-instruction counts, immediate
  kind/values, label index, call use/def lists, uid;
* **register codes** — one integer per operand:
  ``(id << 9) | (class_index << 1) | virtual``;
* **width-adaptive sections** — every column is stored at the narrowest
  of int8/int16/int32/int64 that holds its values, so a typical column
  (opcodes, source counts, small register codes) costs one or two bytes
  per instruction instead of a pickled object reference.

``from_wire(to_wire(f))`` reproduces ``f`` exactly up to instruction
``uid``s (compare with :func:`functions_structurally_equal`); pass
``preserve_uids=True`` to round-trip uids too.  By default decoded
instructions draw **fresh local uids**, which is what cross-process
shipping wants: a decoded function behaves like one freshly built in the
receiving process, so uid-keyed side tables (decode repairs, checker
anchors) can never collide with uids minted later in that process.

This is an **IPC format, not a storage format**: payloads use native
byte order and the current opcode table, and are only meaningful between
processes running the same code — exactly the worker-fleet use case.
The versioned on-disk formats live in :mod:`repro.experiments.persist`
and the artifact store.
"""

from __future__ import annotations

import struct
from array import array
from typing import Dict, List, Sequence, Tuple

from repro.ir.function import BasicBlock, Function
from repro.ir.instr import OPCODES, Instr, Reg, _next_uid
from repro.ir.trace import OP_CODE, OP_NAMES

__all__ = ["WireError", "to_wire", "from_wire",
           "functions_structurally_equal", "wire_stats"]

_MAGIC = b"RWIR"
_VERSION = 1

#: register codes pack ``(id, class, virtual)`` into one non-negative
#: int64: 54 bits of id, 8 bits of class index, 1 bit of virtuality
_MAX_REG_ID = (1 << 54) - 1
_MAX_CLASSES = 1 << 8

_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1

#: imm column kinds
_IMM_NONE = 0
_IMM_INT = 1
_IMM_PAIR = 2    # setlr's short (value, delay) payload
_IMM_TRIPLE = 3  # setlr's full (value, delay, cls) payload; cls interned
_IMM_INTS = 4    # length-prefixed int tuple (permi's permutation)

#: width-adaptive storage: the narrowest signed array typecode per bound.
#: Resolved by itemsize at import so platform typecode sizes cannot bite.
_WIDTH_CODES: Tuple[Tuple[int, str], ...] = tuple(sorted(
    {array(tc).itemsize: tc for tc in ("q", "l", "i", "h", "b")}.items()))


class WireError(ValueError):
    """A function (or payload) outside the wire format's model — an
    immediate that is not a small int or ``setlr`` pair, a register id
    past 2^54, a truncated or foreign buffer.  Callers that can fall
    back to pickling should treat this as "ship it the slow way"."""


# ----------------------------------------------------------------------
# encoding
# ----------------------------------------------------------------------


def _pack_section(values: Sequence[int]) -> bytes:
    """One column: u8 typecode + u32 element count + packed elements."""
    lo = min(values, default=0)
    hi = max(values, default=0)
    if lo < _I64_MIN or hi > _I64_MAX:
        raise WireError("column value does not fit the wire's int64")
    for itemsize, typecode in _WIDTH_CODES:
        bound = 1 << (8 * itemsize - 1)
        if -bound <= lo and hi < bound:
            break
    return struct.pack("<cI", typecode.encode(), len(values)) + \
        array(typecode, values).tobytes()


def to_wire(fn: Function) -> bytes:
    """Serialize ``fn`` to one flat, cheaply-decodable payload."""
    strings: List[str] = [fn.name]
    string_index: Dict[str, int] = {fn.name: 0}

    def intern(s: str) -> int:
        idx = string_index.get(s)
        if idx is None:
            idx = len(strings)
            strings.append(s)
            string_index[s] = idx
        return idx

    # Memoized per object identity: Reg is a frozen dataclass whose
    # value-hash runs at Python speed, and the function keeps every reg
    # alive for the duration of the call, so id() keys are stable and
    # much cheaper.  Equal-but-distinct objects just recompute.
    reg_memo: Dict[int, int] = {}

    def reg_code(reg: Reg) -> int:
        code = reg_memo.get(id(reg))
        if code is None:
            if reg.id > _MAX_REG_ID:
                raise WireError(f"register id {reg.id} exceeds the "
                                "wire limit")
            cls_idx = intern(reg.cls)
            if cls_idx >= _MAX_CLASSES:
                raise WireError("more than 256 distinct register classes")
            code = (reg.id << 9) | (cls_idx << 1) | (1 if reg.virtual else 0)
            reg_memo[id(reg)] = code
        return code

    block_names: List[int] = []
    block_lens: List[int] = []
    ops: List[int] = []
    dsts: List[int] = []
    n_srcs: List[int] = []
    srcs: List[int] = []
    imm_kinds: List[int] = []
    imm_values: List[int] = []
    labels: List[int] = []
    n_cuses: List[int] = []
    cuses: List[int] = []
    n_cdefs: List[int] = []
    cdefs: List[int] = []
    uids: List[int] = []

    params = [reg_code(p) for p in fn.params]

    op_code_get = OP_CODE.get
    for block in fn.blocks:
        block_names.append(intern(block.name))
        block_lens.append(len(block.instrs))
        for instr in block.instrs:
            code = op_code_get(instr.op)
            if code is None:  # pragma: no cover - OPCODES gates this
                raise WireError(f"unknown opcode {instr.op!r}")
            ops.append(code)
            dst = instr.dst
            dsts.append(reg_code(dst) if dst is not None else -1)
            instr_srcs = instr.srcs
            n_srcs.append(len(instr_srcs))
            srcs += [reg_code(r) for r in instr_srcs]
            imm = instr.imm
            if imm is None:
                imm_kinds.append(_IMM_NONE)
            elif type(imm) is int:
                imm_kinds.append(_IMM_INT)
                imm_values.append(imm)
            elif type(imm) is tuple and len(imm) == 2 \
                    and all(type(v) is int for v in imm):
                imm_kinds.append(_IMM_PAIR)
                imm_values.extend(imm)
            elif type(imm) is tuple and len(imm) == 3 \
                    and type(imm[0]) is int and type(imm[1]) is int \
                    and type(imm[2]) is str:
                imm_kinds.append(_IMM_TRIPLE)
                imm_values.extend((imm[0], imm[1], intern(imm[2])))
            elif type(imm) is tuple and all(type(v) is int for v in imm):
                imm_kinds.append(_IMM_INTS)
                imm_values.append(len(imm))
                imm_values.extend(imm)
            else:
                raise WireError(
                    f"immediate {imm!r} is outside the wire model "
                    "(int, (int, int), (int, int, str) or None)")
            label = instr.label
            labels.append(intern(label) if label is not None else -1)
            call_uses = instr.call_uses
            call_defs = instr.call_defs
            n_cuses.append(len(call_uses))
            if call_uses:
                cuses += [reg_code(r) for r in call_uses]
            n_cdefs.append(len(call_defs))
            if call_defs:
                cdefs += [reg_code(r) for r in call_defs]
            uids.append(instr.uid)

    blob = bytearray()
    blob += _MAGIC
    blob += struct.pack("<HH", _VERSION, 0)

    string_bytes = bytearray()
    for s in strings:
        data = s.encode("utf-8")
        string_bytes += struct.pack("<I", len(data))
        string_bytes += data
    blob += struct.pack("<I", len(strings))
    blob += string_bytes

    for section in (params, block_names, block_lens, ops, dsts, n_srcs,
                    srcs, imm_kinds, imm_values, labels, n_cuses, cuses,
                    n_cdefs, cdefs, uids):
        blob += _pack_section(section)
    return bytes(blob)


# ----------------------------------------------------------------------
# decoding
# ----------------------------------------------------------------------


class _Reader:
    def __init__(self, data: bytes) -> None:
        self.data = data
        self.off = 0

    def take(self, n: int) -> bytes:
        end = self.off + n
        if end > len(self.data):
            raise WireError("truncated wire payload")
        chunk = self.data[self.off:end]
        self.off = end
        return chunk

    def u32(self) -> int:
        return struct.unpack("<I", self.take(4))[0]

    def section(self) -> List[int]:
        typecode, count = struct.unpack("<cI", self.take(5))
        if typecode not in (b"b", b"h", b"i", b"l", b"q"):
            raise WireError(f"unknown wire column typecode {typecode!r}")
        out = array(typecode.decode())
        out.frombytes(self.take(count * out.itemsize))
        return out.tolist()


def _make_instr(op: str, dst, srcs, imm, label, call_uses, call_defs,
                uid: int) -> Instr:
    """Construct a validated ``Instr`` without dataclass ``__init__``
    overhead — the checks of ``Instr.__post_init__`` are replicated here
    against the decoded fields (a corrupt payload must still surface)."""
    info = OPCODES.get(op)
    if info is None:
        raise WireError(f"unknown opcode {op!r}")
    if op != "call" and len(srcs) != info.n_src:
        raise WireError(f"{op} expects {info.n_src} sources, "
                        f"got {len(srcs)}")
    if info.has_dst and dst is None:
        raise WireError(f"{op} requires a destination register")
    if not info.has_dst and dst is not None:
        raise WireError(f"{op} takes no destination register")
    instr = Instr.__new__(Instr)
    instr.op = op
    instr.dst = dst
    instr.srcs = srcs
    instr.imm = imm
    instr.label = label
    instr.call_uses = call_uses
    instr.call_defs = call_defs
    instr.uid = uid
    return instr


def from_wire(data: bytes, preserve_uids: bool = False) -> Function:
    """Decode a :func:`to_wire` payload back into a :class:`Function`.

    Decoded instructions get fresh local uids unless ``preserve_uids``
    is set (see the module docstring for why fresh is the default).
    """
    r = _Reader(data)
    if r.take(4) != _MAGIC:
        raise WireError("not a wire payload (bad magic)")
    version, _pad = struct.unpack("<HH", r.take(4))
    if version != _VERSION:
        raise WireError(f"wire version {version} != {_VERSION}")

    strings: List[str] = []
    try:
        for _ in range(r.u32()):
            strings.append(r.take(r.u32()).decode("utf-8"))
    except UnicodeDecodeError:
        raise WireError("corrupt wire string table") from None
    if not strings:
        raise WireError("wire payload has no function name")

    params = r.section()
    block_names = r.section()
    block_lens = r.section()
    ops = r.section()
    dsts = r.section()
    n_srcs = r.section()
    srcs = r.section()
    imm_kinds = r.section()
    imm_values = r.section()
    labels = r.section()
    n_cuses = r.section()
    cuses = r.section()
    n_cdefs = r.section()
    cdefs = r.section()
    uids = r.section()
    if r.off != len(r.data):
        raise WireError("trailing bytes after the last wire section")
    if sum(block_lens) != len(ops) or not (
            len(ops) == len(dsts) == len(n_srcs) == len(imm_kinds)
            == len(labels) == len(n_cuses) == len(n_cdefs) == len(uids)):
        raise WireError("inconsistent wire column lengths")

    n_classes = len(strings)
    reg_memo: Dict[int, Reg] = {}

    def decode_reg(code: int) -> Reg:
        reg = reg_memo.get(code)
        if reg is None:
            cls_idx = (code >> 1) & 0xFF
            if code < 0 or cls_idx >= n_classes:
                raise WireError(f"malformed register code {code}")
            reg = Reg(code >> 9, virtual=bool(code & 1),
                      cls=strings[cls_idx])
            reg_memo[code] = reg
        return reg

    def string_at(idx: int, what: str) -> str:
        if not 0 <= idx < len(strings):
            raise WireError(f"{what} string index {idx} out of range")
        return strings[idx]

    src_off = cuse_off = cdef_off = imm_off = 0
    index = 0
    n_ops = len(OP_NAMES)
    blocks: List[BasicBlock] = []
    try:
        for b in range(len(block_names)):
            instrs: List[Instr] = []
            append_instr = instrs.append
            for _ in range(block_lens[b]):
                op_code = ops[index]
                if not 0 <= op_code < n_ops:
                    raise WireError(f"opcode code {op_code} out of range")
                kind = imm_kinds[index]
                if kind == _IMM_NONE:
                    imm: object = None
                elif kind == _IMM_INT:
                    imm = imm_values[imm_off]
                    imm_off += 1
                elif kind == _IMM_PAIR:
                    imm = (imm_values[imm_off], imm_values[imm_off + 1])
                    imm_off += 2
                elif kind == _IMM_TRIPLE:
                    imm = (imm_values[imm_off], imm_values[imm_off + 1],
                           string_at(imm_values[imm_off + 2],
                                     "setlr class"))
                    imm_off += 3
                elif kind == _IMM_INTS:
                    count = imm_values[imm_off]
                    imm_off += 1
                    imm = tuple(imm_values[imm_off:imm_off + count])
                    imm_off += count
                else:
                    raise WireError(f"unknown immediate kind {kind}")
                dst_code = dsts[index]
                label_idx = labels[index]
                ns, nu, nd = n_srcs[index], n_cuses[index], n_cdefs[index]
                append_instr(_make_instr(
                    OP_NAMES[op_code],
                    decode_reg(dst_code) if dst_code >= 0 else None,
                    tuple([decode_reg(c)
                           for c in srcs[src_off:src_off + ns]]),
                    imm,
                    (string_at(label_idx, "label")
                     if label_idx >= 0 else None),
                    tuple([decode_reg(c)
                           for c in cuses[cuse_off:cuse_off + nu]])
                    if nu else (),
                    tuple([decode_reg(c)
                           for c in cdefs[cdef_off:cdef_off + nd]])
                    if nd else (),
                    uids[index] if preserve_uids else _next_uid(),
                ))
                src_off += ns
                cuse_off += nu
                cdef_off += nd
                index += 1
            blocks.append(BasicBlock(string_at(block_names[b],
                                               "block name"), instrs))
    except IndexError:
        raise WireError("inconsistent wire column lengths") from None
    try:
        return Function(strings[0], blocks,
                        tuple(decode_reg(c) for c in params))
    except ValueError as exc:
        raise WireError(f"wire payload decodes to an invalid function: "
                        f"{exc}") from None


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------


def functions_structurally_equal(a: Function, b: Function) -> bool:
    """Whether two functions are identical up to instruction uids —
    the equality ``from_wire(to_wire(f)) == f`` promises."""
    if a.name != b.name or a.params != b.params or \
            len(a.blocks) != len(b.blocks):
        return False
    for ba, bb in zip(a.blocks, b.blocks):
        if ba.name != bb.name or len(ba.instrs) != len(bb.instrs):
            return False
        for ia, ib in zip(ba.instrs, bb.instrs):
            if (ia.op, ia.dst, ia.srcs, ia.imm, ia.label, ia.call_uses,
                    ia.call_defs) != (ib.op, ib.dst, ib.srcs, ib.imm,
                                      ib.label, ib.call_uses, ib.call_defs):
                return False
    return True


def wire_stats(fn: Function) -> Dict[str, int]:
    """Payload-size comparison for one function: wire vs pickle bytes.
    Used by the serialization micro-benchmark (BENCH_remap's ``wire``
    section) to track the codec's advantage over object-graph pickling."""
    import pickle

    wire = to_wire(fn)
    pickled = pickle.dumps(fn, protocol=pickle.HIGHEST_PROTOCOL)
    return {
        "instructions": fn.num_instructions(),
        "wire_bytes": len(wire),
        "pickle_bytes": len(pickled),
    }
