"""Two-address lowering (THUMB-style instruction forms).

The paper's low-end machine mimics ARM/THUMB, whose 16-bit ALU
instructions are *two-address*: ``add rd, rs`` computes ``rd += rs``, so an
instruction carries two register fields, not three.  Our IR is
three-address; this pass rewrites every register-register ALU instruction
into two-address form::

    add v3, v1, v2    ->    mov v3, v1 ; add v3, v3, v2

(no copy when the destination already equals the first source, or when the
operation commutes and matches the second source).  Lowered code is what
the ``two_address`` access order in :mod:`repro.encoding.access_order`
expects: with ``dst == src1`` guaranteed, the ISA encodes two fields per
ALU instruction and the adjacency graph loses the third-field pressure —
one reason whole THUMB programs pay a lower ``set_last_reg`` rate than
dense three-address kernels (see EXPERIMENTS.md's Figure 12 discussion).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.ir.function import Function
from repro.ir.instr import ALU_REG_OPS, Instr

__all__ = ["to_two_address", "is_two_address"]

_COMMUTATIVE = frozenset({"add", "mul", "and", "or", "xor"})


def to_two_address(fn: Function) -> Tuple[Function, int]:
    """Rewrite register-register ALU ops so ``dst == src1``.

    Returns ``(lowered_fn, copies inserted)``.  Semantics preserving:

    * ``dst == src1`` already — untouched;
    * ``dst == src2``, commutative op — operands swap, no copy;
    * ``dst == src2``, non-commutative op — ``mov dst, src1`` would clobber
      the second source, so the instruction stays three-address (real ISAs
      use a scratch register here; allocators rarely produce the pattern);
    * otherwise — ``mov dst, src1`` then ``op dst, dst, src2``.
    """
    out = fn.copy()
    copies = 0
    for block in out.blocks:
        new_instrs: List[Instr] = []
        for instr in block.instrs:
            if instr.op not in ALU_REG_OPS or instr.dst is None:
                new_instrs.append(instr)
                continue
            dst, (s1, s2) = instr.dst, instr.srcs
            if dst == s1:
                new_instrs.append(instr)
                continue
            if dst == s2 and instr.op in _COMMUTATIVE:
                swapped = instr.copy()
                swapped.srcs = (s2, s1)
                new_instrs.append(swapped)
                continue
            if dst == s2:
                # dst aliases the second source of a non-commutative op:
                # `mov dst, s1` would clobber s2.  Compute into the first
                # source's register?  That clobbers s1 for later uses.
                # The robust rewrite keeps this instruction three-address;
                # real ISAs handle it with a scratch register, and
                # allocators rarely produce the pattern (the coalescer
                # prefers dst == s1).
                new_instrs.append(instr)
                continue
            new_instrs.append(Instr("mov", dst=dst, srcs=(s1,)))
            copies += 1
            lowered = instr.copy()
            lowered.srcs = (dst, s2)
            new_instrs.append(lowered)
        block.instrs = new_instrs
    out.validate()
    return out, copies


def is_two_address(fn: Function) -> bool:
    """Whether every register-register ALU op satisfies ``dst == src1``
    (``dst == src2`` residuals from :func:`to_two_address` excepted)."""
    for instr in fn.instructions():
        if instr.op in ALU_REG_OPS and instr.dst is not None:
            if instr.dst not in (instr.srcs[0], instr.srcs[1]):
                return False
    return True
