"""IR cleanup transforms: dead-code elimination and copy propagation.

The allocation pipelines occasionally leave residue — dead stores after
optimal-spill splitting, copies the conservative coalescer declined to
merge.  These standard passes clean it up; they are also useful standalone
when preparing input programs.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.ir.function import Function
from repro.ir.instr import Instr, Reg

# NOTE: repro.analysis imports are deferred to call time.  The ir package
# must stay importable before analysis/encoding exist (repro/__init__ pulls
# encoding, whose access-order module imports repro.ir — a module-level
# analysis import here would close that cycle).

__all__ = ["dead_code_elimination", "copy_propagation", "cleanup"]

_SIDE_EFFECTS = frozenset({"st", "stslot", "br", "ret", "call", "setlr",
                           "permi", "beq", "bne", "blt", "bge", "bgt", "ble"})


def dead_code_elimination(fn: Function, max_rounds: int = 8
                          ) -> Tuple[Function, int]:
    """Remove instructions whose results are never used.

    Only side-effect-free instructions are candidates (stores, branches,
    ``set_last_reg`` and calls always stay).  Iterates to a fixed point —
    removing one dead value can kill its producers.  Returns ``(new_fn,
    instructions removed)``.
    """
    from repro.analysis.liveness import compute_liveness

    out = fn.copy()
    removed = 0
    for _ in range(max_rounds):
        liveness = compute_liveness(out)
        changed = False
        for block in out.blocks:
            kept: List[Instr] = []
            for instr in block.instrs:
                if instr.op in _SIDE_EFFECTS or not instr.defs():
                    kept.append(instr)
                    continue
                live_after = liveness.instr_live_out[instr.uid]
                if any(d in live_after for d in instr.defs()):
                    kept.append(instr)
                else:
                    removed += 1
                    changed = True
            block.instrs = kept
        if not changed:
            break
    return out, removed


def copy_propagation(fn: Function) -> Tuple[Function, int]:
    """Forward copies within basic blocks: after ``mov x, y``, uses of ``x``
    read ``y`` until either is redefined.

    A local (per-block) pass: copies are not propagated across block
    boundaries, so no dataflow join logic is needed.  Combined with
    :func:`dead_code_elimination` it removes copies whose value was only
    forwarded.  Returns ``(new_fn, uses rewritten)``.
    """
    out = fn.copy()
    rewritten = 0
    for block in out.blocks:
        available: Dict[Reg, Reg] = {}  # copy dst -> original source
        new_instrs: List[Instr] = []
        for instr in block.instrs:
            mapping = {
                r: available[r] for r in instr.uses() if r in available
            }
            if mapping:
                rewritten += len(mapping)
                instr = _rewrite_uses(instr, mapping)
            for d in instr.defs():
                # a redefinition invalidates copies into or out of d
                available = {
                    dst: src for dst, src in available.items()
                    if dst != d and src != d
                }
            if instr.is_move() and instr.dst != instr.srcs[0]:
                available[instr.dst] = instr.srcs[0]
            new_instrs.append(instr)
        block.instrs = new_instrs
    return out, rewritten


def _rewrite_uses(instr: Instr, mapping: Dict[Reg, Reg]) -> Instr:
    """Rewrite only the *uses* of an instruction, leaving defs in place."""
    new = instr.rewrite(mapping)
    if instr.dst is not None and instr.dst in mapping:
        new = new.copy()
        new.dst = instr.dst
    return new


def global_copy_propagation(fn: Function) -> Tuple[Function, int]:
    """Forward copies across basic blocks.

    Classic available-copies dataflow: a copy ``x := y`` reaches a block
    entry if it is available at the exit of *every* predecessor (must
    intersection), and any redefinition of either side kills it.  Uses of
    ``x`` under a reaching copy read ``y`` instead.  Loops converge because
    the available set only shrinks across iterations.

    Returns ``(new_fn, uses rewritten)``.
    """
    names = [b.name for b in fn.blocks]
    _, preds = fn.cfg()

    def transfer(block, inp: Dict[Reg, Reg]) -> Dict[Reg, Reg]:
        avail = dict(inp)
        for instr in block.instrs:
            for d in instr.defs():
                avail = {
                    dst: src for dst, src in avail.items()
                    if dst != d and src != d
                }
            if instr.is_move() and instr.dst != instr.srcs[0]:
                avail[instr.dst] = instr.srcs[0]
        return avail

    # fixed point over block-exit available-copy maps; entry starts empty,
    # unreached blocks start at "top" (None = everything available)
    out_maps: Dict[str, object] = {n: None for n in names}
    out_maps[fn.entry.name] = transfer(fn.entry, {})
    changed = True
    while changed:
        changed = False
        for block in fn.blocks:
            if block.name == fn.entry.name:
                continue
            pred_maps = [out_maps[p] for p in preds[block.name]]
            known = [m for m in pred_maps if m is not None]
            if not known:
                continue
            inp: Dict[Reg, Reg] = dict(known[0])
            for m in known[1:]:
                inp = {
                    k: v for k, v in inp.items() if m.get(k) == v
                }
            new_out = transfer(block, inp)
            if new_out != out_maps[block.name]:
                out_maps[block.name] = new_out
                changed = True

    # rewrite pass with the converged entry maps
    new_fn = fn.copy()
    rewritten = 0
    for block in new_fn.blocks:
        pred_maps = [out_maps[p] for p in preds[block.name]]
        known = [m for m in pred_maps if m is not None]
        if block.name == new_fn.entry.name or not known:
            avail: Dict[Reg, Reg] = {}
        else:
            avail = dict(known[0])
            for m in known[1:]:
                avail = {k: v for k, v in avail.items() if m.get(k) == v}
        new_instrs: List[Instr] = []
        for instr in block.instrs:
            mapping = {r: avail[r] for r in instr.uses() if r in avail}
            if mapping:
                rewritten += len(mapping)
                instr = _rewrite_uses(instr, mapping)
            for d in instr.defs():
                avail = {
                    dst: src for dst, src in avail.items()
                    if dst != d and src != d
                }
            if instr.is_move() and instr.dst != instr.srcs[0]:
                avail[instr.dst] = instr.srcs[0]
            new_instrs.append(instr)
        block.instrs = new_instrs
    return new_fn, rewritten


def cleanup(fn: Function) -> Tuple[Function, int]:
    """Global copy propagation followed by DCE; returns (new_fn, changes)."""
    out, rewritten = global_copy_propagation(fn)
    out, removed = dead_code_elimination(out)
    return out, rewritten + removed
