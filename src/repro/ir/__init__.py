"""Three-address RISC intermediate representation.

This package provides the compiler substrate the paper's algorithms run on:
register operands (:class:`Reg`), instructions (:class:`Instr`), basic blocks
and functions (:class:`BasicBlock`, :class:`Function`), a builder DSL
(:class:`FunctionBuilder`), a textual assembly parser/printer, and an
executable interpreter used by the trace-driven timing models.
"""

from repro.ir.instr import (
    Instr,
    Reg,
    OPCODES,
    OpInfo,
    BRANCH_OPS,
    COND_BRANCH_OPS,
    MEMORY_OPS,
    phys,
    vreg,
)
from repro.ir.function import BasicBlock, Function
from repro.ir.builder import FunctionBuilder
from repro.ir.printer import format_function, format_instr
from repro.ir.parser import parse_function, ParseError
from repro.ir.interp import ExecutionResult, Interpreter, InterpError
from repro.ir.trace import ColumnarTrace, FunctionCodec, derive_trace
from repro.ir.wire import (
    WireError,
    from_wire,
    functions_structurally_equal,
    to_wire,
)
from repro.ir.lowering import is_two_address, to_two_address
from repro.ir.scheduler import list_schedule
from repro.ir.transforms import (
    cleanup,
    copy_propagation,
    dead_code_elimination,
    global_copy_propagation,
)

__all__ = [
    "is_two_address",
    "to_two_address",
    "list_schedule",
    "cleanup",
    "copy_propagation",
    "dead_code_elimination",
    "global_copy_propagation",
    "Instr",
    "Reg",
    "OPCODES",
    "OpInfo",
    "BRANCH_OPS",
    "COND_BRANCH_OPS",
    "MEMORY_OPS",
    "phys",
    "vreg",
    "BasicBlock",
    "Function",
    "FunctionBuilder",
    "format_function",
    "format_instr",
    "parse_function",
    "ParseError",
    "ExecutionResult",
    "Interpreter",
    "InterpError",
    "ColumnarTrace",
    "FunctionCodec",
    "derive_trace",
    "WireError",
    "to_wire",
    "from_wire",
    "functions_structurally_equal",
]
