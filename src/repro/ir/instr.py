"""Instruction and register operand definitions.

The IR is a classless three-address RISC modelled on the machines the paper
targets (ARM/THUMB-like for the low-end study, a generic VLIW for the
software-pipelining study).  Register operands are :class:`Reg` values; an
instruction's register *fields* appear in a well-defined order (sources first,
then the destination) which is also the paper's default *access order*
(Section 2: ``src1, src2 ... dst``).

Opcode summary
--------------

========== =========================== ==========================
kind       opcodes                     operands
========== =========================== ==========================
ALU r,r    add sub mul div rem and or  ``dst, src1, src2``
           xor shl shr slt sge
ALU r,imm  addi subi muli andi ori     ``dst, src1, imm``
           xori shli shri slti
data       li (``dst, imm``), mov      ``dst, src``
memory     ld (``dst, [addr+imm]``),   ``st`` stores ``val`` to
           st (``val, [addr+imm]``)    ``[addr+imm]``; no def
spill      ldslot (``dst, slot``),     abstract frame slots used
           stslot (``src, slot``)      by spill-code insertion
control    br / beq bne blt bge bgt    labels name basic blocks
           ble / ret
call       call                        explicit use/def reg lists
decode     setlr                       ``set_last_reg(value[, delay])``
shuffle    permi                       full-file register permutation;
                                       ``imm`` is the permutation tuple
========== =========================== ==========================

``setlr`` is the paper's ``set_last_reg`` ISA extension (Section 2.3).  It
carries no register fields — its payload lives in ``instr.imm`` as a
``(value, delay)`` pair — and it is discarded after the decode stage, which
the timing model honours.

``permi`` is the optional permutation instruction of the shuffle-code
extension (Buchwald et al., see ``docs/moves.md``), gated by the
``has_permi`` machine feature flag: ``R'[i] = R[perm[i]]`` for the
permutation carried in ``instr.imm``.  Like ``call`` its register effects
(every non-fixed point of the permutation) are not differential register
*fields* — the specifiers are direct, so it neither reads nor disturbs the
decoder's ``last_reg`` chain.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Reg",
    "Instr",
    "OpInfo",
    "OPCODES",
    "BRANCH_OPS",
    "COND_BRANCH_OPS",
    "MEMORY_OPS",
    "ALU_REG_OPS",
    "ALU_IMM_OPS",
    "phys",
    "vreg",
]


@dataclass(frozen=True, order=True)
class Reg:
    """A register operand.

    ``virtual`` registers (``v0, v1, ...``) exist before register allocation;
    physical registers (``r0, r1, ...``) exist after.  ``cls`` names the
    register class (Section 9.1) — the default single class is ``"int"``.
    """

    id: int
    virtual: bool = True
    cls: str = "int"

    def __post_init__(self) -> None:
        if self.id < 0:
            raise ValueError(f"register id must be non-negative, got {self.id}")

    def __str__(self) -> str:
        prefix = "v" if self.virtual else "r"
        suffix = "" if self.cls == "int" else f".{self.cls}"
        return f"{prefix}{self.id}{suffix}"

    __repr__ = __str__


def vreg(rid: int, cls: str = "int") -> Reg:
    """Shorthand for a virtual register."""
    return Reg(rid, virtual=True, cls=cls)


def phys(rid: int, cls: str = "int") -> Reg:
    """Shorthand for a physical (architected) register."""
    return Reg(rid, virtual=False, cls=cls)


@dataclass(frozen=True)
class OpInfo:
    """Static properties of an opcode."""

    name: str
    n_src: int  # register sources
    has_dst: bool
    has_imm: bool
    is_branch: bool = False
    is_cond_branch: bool = False
    is_memory: bool = False
    is_store: bool = False
    latency: int = 1


def _op(name: str, n_src: int, has_dst: bool, has_imm: bool, **kw) -> OpInfo:
    return OpInfo(name, n_src, has_dst, has_imm, **kw)


ALU_REG_OPS: Tuple[str, ...] = (
    "add", "sub", "mul", "div", "rem", "and", "or", "xor", "shl", "shr",
    "slt", "sge",
)
ALU_IMM_OPS: Tuple[str, ...] = (
    "addi", "subi", "muli", "andi", "ori", "xori", "shli", "shri", "slti",
)
COND_BRANCH_OPS: FrozenSet[str] = frozenset(
    {"beq", "bne", "blt", "bge", "bgt", "ble"}
)
BRANCH_OPS: FrozenSet[str] = COND_BRANCH_OPS | {"br", "ret"}
MEMORY_OPS: FrozenSet[str] = frozenset({"ld", "st", "ldslot", "stslot"})

_LONG_LATENCY = {"mul": 2, "div": 8, "rem": 8, "ld": 2, "ldslot": 2}

OPCODES: Dict[str, OpInfo] = {}
for _name in ALU_REG_OPS:
    OPCODES[_name] = _op(_name, 2, True, False, latency=_LONG_LATENCY.get(_name, 1))
for _name in ALU_IMM_OPS:
    OPCODES[_name] = _op(_name, 1, True, True)
OPCODES["li"] = _op("li", 0, True, True)
OPCODES["mov"] = _op("mov", 1, True, False)
OPCODES["ld"] = _op("ld", 1, True, True, is_memory=True, latency=2)
OPCODES["st"] = _op("st", 2, False, True, is_memory=True, is_store=True)
OPCODES["ldslot"] = _op("ldslot", 0, True, True, is_memory=True, latency=2)
OPCODES["stslot"] = _op("stslot", 1, False, True, is_memory=True, is_store=True)
OPCODES["br"] = _op("br", 0, False, False, is_branch=True)
for _name in COND_BRANCH_OPS:
    OPCODES[_name] = _op(_name, 2, False, False, is_branch=True, is_cond_branch=True)
OPCODES["ret"] = _op("ret", 1, False, False, is_branch=True)
OPCODES["call"] = _op("call", 0, False, False)
OPCODES["setlr"] = _op("setlr", 0, False, True)
OPCODES["nop"] = _op("nop", 0, False, False)
OPCODES["permi"] = _op("permi", 0, False, True)


_counter = [0]


def _next_uid() -> int:
    _counter[0] += 1
    return _counter[0]


@dataclass
class Instr:
    """One three-address instruction.

    Attributes:
        op: opcode name; must be a key of :data:`OPCODES`.
        dst: destination register, or ``None``.
        srcs: source registers, in field order.
        imm: immediate payload.  For ``setlr`` this is a ``(value, delay)``
            tuple; for memory ops it is the address offset or slot number.
        label: branch target block name, for control-flow ops and ``call``.
        call_uses / call_defs: explicit register effects of a ``call``
            (argument registers / caller-saved clobbers + return value).
        uid: unique id, stable across copies made with :meth:`copy`, used to
            key per-instruction side tables (e.g. decode repairs).
    """

    op: str
    dst: Optional[Reg] = None
    srcs: Tuple[Reg, ...] = ()
    imm: object = None
    label: Optional[str] = None
    call_uses: Tuple[Reg, ...] = ()
    call_defs: Tuple[Reg, ...] = ()
    uid: int = field(default_factory=_next_uid)

    def __post_init__(self) -> None:
        if self.op not in OPCODES:
            raise ValueError(f"unknown opcode {self.op!r}")
        self.srcs = tuple(self.srcs)
        info = OPCODES[self.op]
        if self.op != "call" and len(self.srcs) != info.n_src:
            raise ValueError(
                f"{self.op} expects {info.n_src} sources, got {len(self.srcs)}"
            )
        if info.has_dst and self.dst is None:
            raise ValueError(f"{self.op} requires a destination register")
        if not info.has_dst and self.dst is not None:
            raise ValueError(f"{self.op} takes no destination register")
        if self.op == "permi":
            perm = self.imm
            if (not isinstance(perm, tuple)
                    or sorted(perm) != list(range(len(perm)))):
                raise ValueError(
                    f"permi immediate must be a permutation of its register "
                    f"window, got {perm!r}")

    @property
    def info(self) -> OpInfo:
        return OPCODES[self.op]

    def uses(self) -> Tuple[Reg, ...]:
        """Registers read by this instruction, in field order."""
        if self.op == "call":
            return self.srcs + self.call_uses
        if self.op == "permi":
            return tuple(Reg(p, virtual=False)
                         for i, p in enumerate(self.imm) if p != i)
        return self.srcs

    def defs(self) -> Tuple[Reg, ...]:
        """Registers written by this instruction."""
        if self.op == "call":
            return self.call_defs
        if self.op == "permi":
            return tuple(Reg(i, virtual=False)
                         for i, p in enumerate(self.imm) if p != i)
        return (self.dst,) if self.dst is not None else ()

    def reg_fields(self) -> Tuple[Reg, ...]:
        """Register *fields* as they appear in the instruction encoding.

        This is the unit the differential encoder works on: sources in field
        order followed by the destination (the paper's default access order).
        ``call`` side-effect registers are not encoded fields.
        """
        fields: List[Reg] = list(self.srcs)
        if self.dst is not None:
            fields.append(self.dst)
        return tuple(fields)

    def rewrite(self, mapping: Dict[Reg, Reg]) -> "Instr":
        """Return a copy with every register replaced through ``mapping``.

        Registers absent from ``mapping`` are kept as-is.
        """
        sub = lambda r: mapping.get(r, r)  # noqa: E731 - tiny local helper
        if self.op == "permi":
            # permi's registers live in its immediate; a renaming sigma
            # turns R'[i] = R[perm[i]] into R'[sigma(i)] = R[sigma(perm[i])]
            perm = tuple(self.imm)
            sigma = {i: sub(Reg(i, virtual=False)).id
                     for i in range(len(perm))}
            if sorted(sigma.values()) != list(range(len(perm))):
                raise ValueError(
                    f"rewrite of permi {perm} is not a permutation of its "
                    f"register window")
            new_perm = list(range(len(perm)))
            for i, p in enumerate(perm):
                new_perm[sigma[i]] = sigma[p]
            return replace(self, imm=tuple(new_perm))
        return replace(
            self,
            dst=sub(self.dst) if self.dst is not None else None,
            srcs=tuple(sub(s) for s in self.srcs),
            call_uses=tuple(sub(s) for s in self.call_uses),
            call_defs=tuple(sub(s) for s in self.call_defs),
        )

    def copy(self) -> "Instr":
        """Shallow copy preserving ``uid``."""
        return replace(self)

    def is_move(self) -> bool:
        """Whether this is a register-to-register copy."""
        return self.op == "mov"

    def __str__(self) -> str:  # pragma: no cover - delegated to printer
        from repro.ir.printer import format_instr

        return format_instr(self)
