"""An executable interpreter for the IR.

The low-end evaluation (Section 10.1) is trace driven: the interpreter runs a
kernel and records the dynamic instruction stream; the timing model in
:mod:`repro.machine.lowend` then assigns cycles to that stream.  The
interpreter works identically on virtual-register code (pre-allocation) and
physical-register code (post-allocation), which lets tests assert that
register allocation and differential remapping preserve program semantics.

Semantics notes:

* Values are Python ints truncated to 32-bit two's complement after every
  ALU op.
* ``ld``/``st`` address a flat word-addressed memory (a dict); ``ldslot`` /
  ``stslot`` address an abstract spill-slot file, disjoint from memory.
* ``setlr`` executes as a no-op: it only matters to the decode stage.
* ``call`` assigns zero to its ``call_defs`` — the workloads are leaf
  kernels; calls appear only in calling-convention tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ir.function import Function
from repro.ir.instr import COND_BRANCH_OPS, Instr, Reg

__all__ = ["Interpreter", "ExecutionResult", "InterpError", "TraceEntry"]

_MASK = 0xFFFFFFFF


def _wrap(x: int) -> int:
    """Truncate to signed 32-bit."""
    x &= _MASK
    return x - (1 << 32) if x >= (1 << 31) else x


class InterpError(RuntimeError):
    """Raised on runtime faults: undefined register read, step overrun, ..."""


@dataclass
class TraceEntry:
    """One dynamically executed instruction.

    ``static_index`` is the instruction's position in layout order — the
    timing model turns it into a PC for the I-cache.  ``mem_addr`` is the
    effective data address for ``ld``/``st`` (``None`` otherwise;
    spill-slot ops report a synthetic address in a reserved region so the
    D-cache sees spill traffic, as it would on real hardware).
    """

    instr: Instr
    static_index: int
    mem_addr: Optional[int] = None


@dataclass
class ExecutionResult:
    """Outcome of running a function."""

    return_value: int
    steps: int
    trace: List[TraceEntry] = field(default_factory=list)
    regs: Dict[Reg, int] = field(default_factory=dict)
    dynamic_counts: Dict[str, int] = field(default_factory=dict)

    def count(self, op: str) -> int:
        """Dynamic execution count of one opcode."""
        return self.dynamic_counts.get(op, 0)


_SPILL_REGION_BASE = 1 << 24  # synthetic addresses for spill slots


class Interpreter:
    """Execute a :class:`Function`.

    Args:
        max_steps: hard bound on dynamic instructions, to catch diverging
            or miscompiled programs in tests.
        record_trace: disable for speed when only the result matters.
    """

    def __init__(self, max_steps: int = 2_000_000, record_trace: bool = True) -> None:
        self.max_steps = max_steps
        self.record_trace = record_trace

    def run(self, fn: Function, args: Tuple[int, ...] = (),
            memory: Optional[Dict[int, int]] = None) -> ExecutionResult:
        """Run ``fn`` with ``args`` bound to its parameters.

        ``memory`` (word address -> value) is mutated in place, so callers
        can inspect stores after the run.
        """
        if len(args) != len(fn.params):
            raise InterpError(
                f"{fn.name} expects {len(fn.params)} args, got {len(args)}"
            )
        regs: Dict[Reg, int] = dict(zip(fn.params, args))
        mem: Dict[int, int] = memory if memory is not None else {}
        slots: Dict[int, int] = {}
        static_index = {
            instr.uid: i for i, instr in enumerate(fn.instructions())
        }
        trace: List[TraceEntry] = []
        counts: Dict[str, int] = {}

        def read(r: Reg) -> int:
            try:
                return regs[r]
            except KeyError:
                raise InterpError(f"read of undefined register {r} in {fn.name}")

        block_idx = 0
        instr_idx = 0
        steps = 0
        while True:
            if steps >= self.max_steps:
                raise InterpError(
                    f"{fn.name}: exceeded {self.max_steps} steps (diverging?)"
                )
            block = fn.blocks[block_idx]
            if instr_idx >= len(block.instrs):
                # fall through to the next block in layout order
                block_idx += 1
                instr_idx = 0
                if block_idx >= len(fn.blocks):
                    raise InterpError(f"{fn.name}: fell off the end")
                continue
            instr = block.instrs[instr_idx]
            steps += 1
            counts[instr.op] = counts.get(instr.op, 0) + 1
            mem_addr: Optional[int] = None
            op = instr.op

            if op == "li":
                regs[instr.dst] = _wrap(instr.imm)
            elif op == "mov":
                regs[instr.dst] = read(instr.srcs[0])
            elif op == "ld":
                mem_addr = _wrap(read(instr.srcs[0]) + instr.imm)
                regs[instr.dst] = mem.get(mem_addr, 0)
            elif op == "st":
                mem_addr = _wrap(read(instr.srcs[1]) + instr.imm)
                mem[mem_addr] = read(instr.srcs[0])
            elif op == "ldslot":
                mem_addr = _SPILL_REGION_BASE + int(instr.imm)
                regs[instr.dst] = slots.get(instr.imm, 0)
            elif op == "stslot":
                mem_addr = _SPILL_REGION_BASE + int(instr.imm)
                slots[instr.imm] = read(instr.srcs[0])
            elif op == "setlr" or op == "nop":
                pass
            elif op == "call":
                for d in instr.call_defs:
                    regs[d] = 0
            elif op == "ret":
                value = read(instr.srcs[0])
                if self.record_trace:
                    trace.append(TraceEntry(instr, static_index[instr.uid]))
                return ExecutionResult(value, steps, trace, regs, counts)
            elif op == "br":
                if self.record_trace:
                    trace.append(TraceEntry(instr, static_index[instr.uid]))
                block_idx = fn.block_index(instr.label)
                instr_idx = 0
                continue
            elif op in COND_BRANCH_OPS:
                a, b = read(instr.srcs[0]), read(instr.srcs[1])
                taken = {
                    "beq": a == b,
                    "bne": a != b,
                    "blt": a < b,
                    "bge": a >= b,
                    "bgt": a > b,
                    "ble": a <= b,
                }[op]
                if self.record_trace:
                    trace.append(TraceEntry(instr, static_index[instr.uid]))
                if taken:
                    block_idx = fn.block_index(instr.label)
                    instr_idx = 0
                else:
                    instr_idx += 1
                continue
            else:
                regs[instr.dst] = self._alu(op, instr, read)

            if self.record_trace:
                trace.append(
                    TraceEntry(instr, static_index[instr.uid], mem_addr)
                )
            instr_idx += 1

    @staticmethod
    def _alu(op: str, instr: Instr, read) -> int:
        a = read(instr.srcs[0])
        b = read(instr.srcs[1]) if len(instr.srcs) > 1 else int(instr.imm)
        if op in ("add", "addi"):
            return _wrap(a + b)
        if op in ("sub", "subi"):
            return _wrap(a - b)
        if op in ("mul", "muli"):
            return _wrap(a * b)
        if op == "div":
            if b == 0:
                raise InterpError("division by zero")
            return _wrap(int(a / b))  # C-style truncating division
        if op == "rem":
            if b == 0:
                raise InterpError("remainder by zero")
            return _wrap(a - int(a / b) * b)
        if op in ("and", "andi"):
            return _wrap(a & b)
        if op in ("or", "ori"):
            return _wrap(a | b)
        if op in ("xor", "xori"):
            return _wrap(a ^ b)
        if op in ("shl", "shli"):
            return _wrap(a << (b & 31))
        if op in ("shr", "shri"):
            return _wrap((a & _MASK) >> (b & 31))
        if op in ("slt", "slti"):
            return 1 if a < b else 0
        if op == "sge":
            return 1 if a >= b else 0
        raise InterpError(f"unimplemented opcode {op}")
