"""An executable interpreter for the IR.

The low-end evaluation (Section 10.1) is trace driven: the interpreter runs a
kernel and records the dynamic instruction stream; the timing model in
:mod:`repro.machine.lowend` then assigns cycles to that stream.  The
interpreter works identically on virtual-register code (pre-allocation) and
physical-register code (post-allocation), which lets tests assert that
register allocation and differential remapping preserve program semantics.

Two engines implement the same semantics:

* the **fast engine** (default) pre-decodes each static instruction once
  into a zero-argument closure, so the per-dynamic-step cost is one
  indirect call instead of a string-dispatch chain.  With tracing on it
  records the compact block path / data-address form and assembles a
  :class:`repro.ir.trace.ColumnarTrace`; ``trace_format="objects"``
  expands that to the classic ``TraceEntry`` list for compatibility.
* the **reference engine** is the original per-step dispatch loop, kept
  verbatim as ``_run_reference``.  ``engine="reference"`` or
  ``REPRO_SIM_REFERENCE=1`` selects it; the fast engine also falls back
  to it for functions outside the structural model it compiles (a branch
  that is not the last instruction of its block).

Semantics notes:

* Values are Python ints truncated to 32-bit two's complement after every
  ALU op.
* ``ld``/``st`` address a flat word-addressed memory (a dict); ``ldslot`` /
  ``stslot`` address an abstract spill-slot file, disjoint from memory.
* ``setlr`` executes as a no-op: it only matters to the decode stage.
* ``call`` assigns zero to its ``call_defs`` — the workloads are leaf
  kernels; calls appear only in calling-convention tests.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ir.function import Function
from repro.ir.instr import BRANCH_OPS, COND_BRANCH_OPS, Instr, Reg
from repro.ir.trace import ColumnarTrace, FunctionCodec

__all__ = ["Interpreter", "ExecutionResult", "InterpError", "TraceEntry"]

_MASK = 0xFFFFFFFF


def _wrap(x: int) -> int:
    """Truncate to signed 32-bit."""
    x &= _MASK
    return x - (1 << 32) if x >= (1 << 31) else x


class InterpError(RuntimeError):
    """Raised on runtime faults: undefined register read, step overrun, ..."""


@dataclass
class TraceEntry:
    """One dynamically executed instruction.

    ``static_index`` is the instruction's position in layout order — the
    timing model turns it into a PC for the I-cache.  ``mem_addr`` is the
    effective data address for ``ld``/``st`` (``None`` otherwise;
    spill-slot ops report a synthetic address in a reserved region so the
    D-cache sees spill traffic, as it would on real hardware).
    """

    instr: Instr
    static_index: int
    mem_addr: Optional[int] = None


@dataclass
class ExecutionResult:
    """Outcome of running a function.

    ``trace`` is the object-form dynamic stream (empty unless it was
    requested); ``columnar`` is the compact column form when the fast
    engine recorded one.  ``block_instr_counts`` maps block name to the
    number of instructions dynamically executed in that block — enough to
    reconstruct profiles without walking any trace.
    """

    return_value: int
    steps: int
    trace: List[TraceEntry] = field(default_factory=list)
    regs: Dict[Reg, int] = field(default_factory=dict)
    dynamic_counts: Dict[str, int] = field(default_factory=dict)
    columnar: Optional[ColumnarTrace] = None
    block_instr_counts: Dict[str, int] = field(default_factory=dict)

    def count(self, op: str) -> int:
        """Dynamic execution count of one opcode (O(1) table lookup)."""
        if not self.dynamic_counts and self.columnar is not None:
            # derived results (trace reuse) carry only the columns; build
            # the table once and serve every later lookup from it
            self.dynamic_counts = self.columnar.counts()
        return self.dynamic_counts.get(op, 0)


_SPILL_REGION_BASE = 1 << 24  # synthetic addresses for spill slots


def _alu_add(a, b):
    return _wrap(a + b)


def _alu_sub(a, b):
    return _wrap(a - b)


def _alu_mul(a, b):
    return _wrap(a * b)


def _alu_div(a, b):
    if b == 0:
        raise InterpError("division by zero")
    return _wrap(int(a / b))  # C-style truncating division


def _alu_rem(a, b):
    if b == 0:
        raise InterpError("remainder by zero")
    return _wrap(a - int(a / b) * b)


def _alu_and(a, b):
    return _wrap(a & b)


def _alu_or(a, b):
    return _wrap(a | b)


def _alu_xor(a, b):
    return _wrap(a ^ b)


def _alu_shl(a, b):
    return _wrap(a << (b & 31))


def _alu_shr(a, b):
    return _wrap((a & _MASK) >> (b & 31))


def _alu_slt(a, b):
    return 1 if a < b else 0


def _alu_sge(a, b):
    return 1 if a >= b else 0


# binary ALU semantics shared by the register and immediate forms; each
# function matches the corresponding expression in ``_alu`` exactly
_ALU2 = {
    "add": _alu_add, "addi": _alu_add,
    "sub": _alu_sub, "subi": _alu_sub,
    "mul": _alu_mul, "muli": _alu_mul,
    "div": _alu_div,
    "rem": _alu_rem,
    "and": _alu_and, "andi": _alu_and,
    "or": _alu_or, "ori": _alu_or,
    "xor": _alu_xor, "xori": _alu_xor,
    "shl": _alu_shl, "shli": _alu_shl,
    "shr": _alu_shr, "shri": _alu_shr,
    "slt": _alu_slt, "slti": _alu_slt,
    "sge": _alu_sge,
}

_CMP = {
    "beq": lambda a, b: a == b,
    "bne": lambda a, b: a != b,
    "blt": lambda a, b: a < b,
    "bge": lambda a, b: a >= b,
    "bgt": lambda a, b: a > b,
    "ble": lambda a, b: a <= b,
}

# terminator kinds for compiled blocks
_T_FALL, _T_BR, _T_COND, _T_RET = 0, 1, 2, 3


def _nop_step():
    return None


class _CompiledBlock:
    """Pre-decoded executed prefix of one basic block."""

    __slots__ = ("steps", "slow_steps", "n", "term_kind", "term_target",
                 "term_label", "cmp", "s0", "s1", "ret_src")

    def __init__(self) -> None:
        self.steps: List = []
        self.slow_steps: List = []
        self.n = 0
        self.term_kind = _T_FALL
        self.term_target: Optional[int] = None
        self.term_label: Optional[str] = None
        self.cmp = None
        self.s0: Optional[Reg] = None
        self.s1: Optional[Reg] = None
        self.ret_src: Optional[Reg] = None


class Interpreter:
    """Execute a :class:`Function`.

    Args:
        max_steps: hard bound on dynamic instructions, to catch diverging
            or miscompiled programs in tests.
        record_trace: disable for speed when only the result matters; the
            disabled path allocates no per-step objects at all.
        trace_format: ``"objects"`` (default) materialises the classic
            ``TraceEntry`` list; ``"columnar"`` records only the compact
            column form in ``result.columnar`` and leaves ``result.trace``
            empty.
        engine: ``"fast"`` (pre-decoded closures) or ``"reference"`` (the
            original dispatch loop).  Defaults to fast unless
            ``REPRO_SIM_REFERENCE=1`` is set.
    """

    def __init__(self, max_steps: int = 2_000_000, record_trace: bool = True,
                 trace_format: str = "objects",
                 engine: Optional[str] = None) -> None:
        if trace_format not in ("objects", "columnar"):
            raise ValueError(f"unknown trace_format {trace_format!r}")
        if engine is None:
            engine = ("reference"
                      if os.environ.get("REPRO_SIM_REFERENCE") == "1"
                      else "fast")
        if engine not in ("fast", "reference"):
            raise ValueError(f"unknown engine {engine!r}")
        self.max_steps = max_steps
        self.record_trace = record_trace
        self.trace_format = trace_format
        self.engine = engine

    def run(self, fn: Function, args: Tuple[int, ...] = (),
            memory: Optional[Dict[int, int]] = None) -> ExecutionResult:
        """Run ``fn`` with ``args`` bound to its parameters.

        ``memory`` (word address -> value) is mutated in place, so callers
        can inspect stores after the run.
        """
        if self.engine == "reference":
            return self._run_reference(fn, args, memory)
        return self._run_fast(fn, args, memory)

    # ------------------------------------------------------------------
    # fast engine: per-block pre-decode into closures
    # ------------------------------------------------------------------

    def _run_fast(self, fn: Function, args: Tuple[int, ...] = (),
                  memory: Optional[Dict[int, int]] = None) -> ExecutionResult:
        if len(args) != len(fn.params):
            raise InterpError(
                f"{fn.name} expects {len(fn.params)} args, got {len(args)}"
            )
        regs: Dict[Reg, int] = dict(zip(fn.params, args))
        mem: Dict[int, int] = memory if memory is not None else {}
        slots: Dict[int, int] = {}
        recording = self.record_trace
        dyn_mem: List[int] = []
        path: List[int] = []

        codec = FunctionCodec(fn)
        compiled = self._compile(fn, codec, regs, mem, slots, dyn_mem,
                                 recording)
        if compiled is None:
            # a branch that is not the last instruction of its block makes
            # the not-taken tail reachable; the prefix model cannot express
            # that, so run the general loop instead
            return self._run_reference(fn, args, memory)

        max_steps = self.max_steps
        n_blocks = len(fn.blocks)
        exec_counts = [0] * n_blocks
        path_append = path.append
        undef = f"read of undefined register {{}} in {fn.name}"
        overrun = f"{fn.name}: exceeded {max_steps} steps (diverging?)"
        off_end = f"{fn.name}: fell off the end"

        block_idx = 0
        steps = 0
        while True:
            if steps >= max_steps:
                raise InterpError(overrun)
            cb = compiled[block_idx]
            n = cb.n
            if steps + n > max_steps:
                # the overrun happens inside this block: replay it one
                # instruction at a time so the caller-visible memory holds
                # exactly the stores the reference loop would have made
                try:
                    for f in cb.slow_steps:
                        if steps >= max_steps:
                            raise InterpError(overrun)
                        steps += 1
                        f()
                except KeyError as e:
                    raise InterpError(undef.format(e.args[0]))
                raise InterpError(overrun)
            steps += n
            exec_counts[block_idx] += 1
            if recording:
                path_append(block_idx)
            try:
                for f in cb.steps:
                    f()
            except KeyError as e:
                raise InterpError(undef.format(e.args[0]))

            kind = cb.term_kind
            if kind == _T_COND:
                try:
                    a = regs[cb.s0]
                    b = regs[cb.s1]
                except KeyError as e:
                    raise InterpError(undef.format(e.args[0]))
                if cb.cmp(a, b):
                    block_idx = (cb.term_target if cb.term_target is not None
                                 else fn.block_index(cb.term_label))
                else:
                    block_idx += 1
                    if block_idx >= n_blocks:
                        if steps >= max_steps:
                            raise InterpError(overrun)
                        raise InterpError(off_end)
            elif kind == _T_FALL:
                block_idx += 1
                if block_idx >= n_blocks:
                    if steps >= max_steps:
                        raise InterpError(overrun)
                    raise InterpError(off_end)
            elif kind == _T_RET:
                try:
                    value = regs[cb.ret_src]
                except KeyError as e:
                    raise InterpError(undef.format(e.args[0]))
                break
            else:  # _T_BR
                block_idx = (cb.term_target if cb.term_target is not None
                             else fn.block_index(cb.term_label))

        counts: Dict[str, int] = {}
        bic: Dict[str, int] = {}
        for bid in range(n_blocks):
            ops = codec.prefix_ops[bid]
            c = exec_counts[bid]
            bic[codec.block_names[bid]] = c * len(ops)
            if c:
                for op in ops:
                    counts[op] = counts.get(op, 0) + c

        trace: List[TraceEntry] = []
        columnar: Optional[ColumnarTrace] = None
        if recording:
            columnar = codec.assemble(path, dyn_mem)
            if self.trace_format == "objects":
                trace = columnar.to_entries()
        return ExecutionResult(value, steps, trace, regs, counts,
                               columnar=columnar, block_instr_counts=bic)

    def _compile(self, fn: Function, codec: FunctionCodec,
                 regs: Dict[Reg, int], mem: Dict[int, int],
                 slots: Dict[int, int], dyn_mem: List[int],
                 recording: bool) -> Optional[List[_CompiledBlock]]:
        """Pre-decode every block's executed prefix; ``None`` means the
        function is outside the prefix model and needs the reference loop."""
        compiled: List[_CompiledBlock] = []
        for bid, block in enumerate(fn.blocks):
            prefix = codec.prefixes[bid]
            if len(prefix) < len(block.instrs):
                return None  # mid-block branch: not-taken tail is reachable
            cb = _CompiledBlock()
            cb.n = len(prefix)
            term = (prefix[-1]
                    if prefix and prefix[-1].op in BRANCH_OPS else None)
            body = prefix[:-1] if term is not None else prefix
            for instr in body:
                step = self._compile_step(instr, regs, mem, slots, dyn_mem,
                                          recording)
                if step is None:
                    return None
                cb.steps.append(step)
            # the slow (overrun) path counts the terminator as a step but
            # provably raises before reaching it; a placeholder keeps the
            # closure list aligned with the prefix
            cb.slow_steps = cb.steps + ([_nop_step] if term is not None else [])
            if term is None:
                cb.term_kind = _T_FALL
            elif term.op == "ret":
                cb.term_kind = _T_RET
                cb.ret_src = term.srcs[0]
            else:
                cb.term_label = term.label
                try:
                    cb.term_target = fn.block_index(term.label)
                except Exception:
                    # resolve lazily so a never-taken branch to a bogus
                    # label behaves exactly as in the reference loop
                    cb.term_target = None
                if term.op == "br":
                    cb.term_kind = _T_BR
                else:
                    cb.term_kind = _T_COND
                    cb.cmp = _CMP[term.op]
                    cb.s0, cb.s1 = term.srcs[0], term.srcs[1]
            compiled.append(cb)
        return compiled

    @staticmethod
    def _compile_step(instr: Instr, regs: Dict[Reg, int],
                      mem: Dict[int, int], slots: Dict[int, int],
                      dyn_mem: List[int], recording: bool):
        """One non-terminator instruction as a zero-argument closure.

        Register reads are plain dict lookups; the driver translates a
        ``KeyError`` into the reference engine's undefined-register fault.
        """
        op = instr.op
        if op == "li":
            d, v = instr.dst, _wrap(instr.imm)

            def step(regs=regs, d=d, v=v):
                regs[d] = v
        elif op == "mov":
            d, s = instr.dst, instr.srcs[0]

            def step(regs=regs, d=d, s=s):
                regs[d] = regs[s]
        elif op == "ld":
            d, s, imm = instr.dst, instr.srcs[0], instr.imm
            if recording:
                def step(regs=regs, mem=mem, rec=dyn_mem.append,
                         d=d, s=s, imm=imm):
                    addr = _wrap(regs[s] + imm)
                    regs[d] = mem.get(addr, 0)
                    rec(addr)
            else:
                def step(regs=regs, mem=mem, d=d, s=s, imm=imm):
                    regs[d] = mem.get(_wrap(regs[s] + imm), 0)
        elif op == "st":
            v, a, imm = instr.srcs[0], instr.srcs[1], instr.imm
            if recording:
                def step(regs=regs, mem=mem, rec=dyn_mem.append,
                         v=v, a=a, imm=imm):
                    addr = _wrap(regs[a] + imm)
                    mem[addr] = regs[v]
                    rec(addr)
            else:
                def step(regs=regs, mem=mem, v=v, a=a, imm=imm):
                    mem[_wrap(regs[a] + imm)] = regs[v]
        elif op == "ldslot":
            d, slot = instr.dst, instr.imm

            def step(regs=regs, slots=slots, d=d, slot=slot):
                regs[d] = slots.get(slot, 0)
        elif op == "stslot":
            s, slot = instr.srcs[0], instr.imm

            def step(regs=regs, slots=slots, s=s, slot=slot):
                slots[slot] = regs[s]
        elif op == "setlr" or op == "nop":
            step = _nop_step
        elif op == "permi":
            moved = tuple((Reg(i, virtual=False), Reg(p, virtual=False))
                          for i, p in enumerate(instr.imm) if p != i)

            def step(regs=regs, moved=moved):
                vals = [regs[s] for _, s in moved]
                for (d, _), v in zip(moved, vals):
                    regs[d] = v
        elif op == "call":
            defs = instr.call_defs

            def step(regs=regs, defs=defs):
                for d in defs:
                    regs[d] = 0
        else:
            f = _ALU2.get(op)
            if f is None:
                return None  # unknown to this engine: use the reference
            d = instr.dst
            if len(instr.srcs) > 1:
                s0, s1 = instr.srcs[0], instr.srcs[1]

                def step(regs=regs, f=f, d=d, s0=s0, s1=s1):
                    regs[d] = f(regs[s0], regs[s1])
            else:
                s0, b = instr.srcs[0], int(instr.imm)

                def step(regs=regs, f=f, d=d, s0=s0, b=b):
                    regs[d] = f(regs[s0], b)
        return step

    # ------------------------------------------------------------------
    # reference engine: the original per-step dispatch loop
    # ------------------------------------------------------------------

    def _run_reference(self, fn: Function, args: Tuple[int, ...] = (),
                       memory: Optional[Dict[int, int]] = None
                       ) -> ExecutionResult:
        if len(args) != len(fn.params):
            raise InterpError(
                f"{fn.name} expects {len(fn.params)} args, got {len(args)}"
            )
        regs: Dict[Reg, int] = dict(zip(fn.params, args))
        mem: Dict[int, int] = memory if memory is not None else {}
        slots: Dict[int, int] = {}
        static_index = {
            instr.uid: i for i, instr in enumerate(fn.instructions())
        }
        trace: List[TraceEntry] = []
        counts: Dict[str, int] = {}

        def read(r: Reg) -> int:
            try:
                return regs[r]
            except KeyError:
                raise InterpError(f"read of undefined register {r} in {fn.name}")

        block_idx = 0
        instr_idx = 0
        steps = 0
        while True:
            if steps >= self.max_steps:
                raise InterpError(
                    f"{fn.name}: exceeded {self.max_steps} steps (diverging?)"
                )
            block = fn.blocks[block_idx]
            if instr_idx >= len(block.instrs):
                # fall through to the next block in layout order
                block_idx += 1
                instr_idx = 0
                if block_idx >= len(fn.blocks):
                    raise InterpError(f"{fn.name}: fell off the end")
                continue
            instr = block.instrs[instr_idx]
            steps += 1
            counts[instr.op] = counts.get(instr.op, 0) + 1
            mem_addr: Optional[int] = None
            op = instr.op

            if op == "li":
                regs[instr.dst] = _wrap(instr.imm)
            elif op == "mov":
                regs[instr.dst] = read(instr.srcs[0])
            elif op == "ld":
                mem_addr = _wrap(read(instr.srcs[0]) + instr.imm)
                regs[instr.dst] = mem.get(mem_addr, 0)
            elif op == "st":
                mem_addr = _wrap(read(instr.srcs[1]) + instr.imm)
                mem[mem_addr] = read(instr.srcs[0])
            elif op == "ldslot":
                mem_addr = _SPILL_REGION_BASE + int(instr.imm)
                regs[instr.dst] = slots.get(instr.imm, 0)
            elif op == "stslot":
                mem_addr = _SPILL_REGION_BASE + int(instr.imm)
                slots[instr.imm] = read(instr.srcs[0])
            elif op == "setlr" or op == "nop":
                pass
            elif op == "permi":
                moved = [(Reg(i, virtual=False), read(Reg(p, virtual=False)))
                         for i, p in enumerate(instr.imm) if p != i]
                for d, v in moved:
                    regs[d] = v
            elif op == "call":
                for d in instr.call_defs:
                    regs[d] = 0
            elif op == "ret":
                value = read(instr.srcs[0])
                if self.record_trace:
                    trace.append(TraceEntry(instr, static_index[instr.uid]))
                return ExecutionResult(value, steps, trace, regs, counts)
            elif op == "br":
                if self.record_trace:
                    trace.append(TraceEntry(instr, static_index[instr.uid]))
                block_idx = fn.block_index(instr.label)
                instr_idx = 0
                continue
            elif op in COND_BRANCH_OPS:
                a, b = read(instr.srcs[0]), read(instr.srcs[1])
                taken = {
                    "beq": a == b,
                    "bne": a != b,
                    "blt": a < b,
                    "bge": a >= b,
                    "bgt": a > b,
                    "ble": a <= b,
                }[op]
                if self.record_trace:
                    trace.append(TraceEntry(instr, static_index[instr.uid]))
                if taken:
                    block_idx = fn.block_index(instr.label)
                    instr_idx = 0
                else:
                    instr_idx += 1
                continue
            else:
                regs[instr.dst] = self._alu(op, instr, read)

            if self.record_trace:
                trace.append(
                    TraceEntry(instr, static_index[instr.uid], mem_addr)
                )
            instr_idx += 1

    @staticmethod
    def _alu(op: str, instr: Instr, read) -> int:
        a = read(instr.srcs[0])
        b = read(instr.srcs[1]) if len(instr.srcs) > 1 else int(instr.imm)
        if op in ("add", "addi"):
            return _wrap(a + b)
        if op in ("sub", "subi"):
            return _wrap(a - b)
        if op in ("mul", "muli"):
            return _wrap(a * b)
        if op == "div":
            if b == 0:
                raise InterpError("division by zero")
            return _wrap(int(a / b))  # C-style truncating division
        if op == "rem":
            if b == 0:
                raise InterpError("remainder by zero")
            return _wrap(a - int(a / b) * b)
        if op in ("and", "andi"):
            return _wrap(a & b)
        if op in ("or", "ori"):
            return _wrap(a | b)
        if op in ("xor", "xori"):
            return _wrap(a ^ b)
        if op in ("shl", "shli"):
            return _wrap(a << (b & 31))
        if op in ("shr", "shri"):
            return _wrap((a & _MASK) >> (b & 31))
        if op in ("slt", "slti"):
            return 1 if a < b else 0
        if op == "sge":
            return 1 if a >= b else 0
        raise InterpError(f"unimplemented opcode {op}")
